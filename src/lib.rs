#![forbid(unsafe_code)]
//! # TEPICS — Time-Encoded PIxel Compressive Sampling
//!
//! A full-system Rust reproduction of *"Concurrent focal-plane generation
//! of compressed samples from time-encoded pixel values"* (Trevisi et
//! al., DATE 2018): an event-accurate simulator of the proposed 64×64
//! compressive-sampling image sensor, its Rule-30 cellular-automaton
//! measurement generator, the sparse-recovery decoder, and the baselines
//! the paper compares against.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! namespace. See the individual crates for deep documentation:
//!
//! * [`ca`] — cellular automata, LFSR, Hadamard pattern generators.
//! * [`imaging`] — images, synthetic scenes, metrics, transforms.
//! * [`cs`] — measurement operators, dictionaries, matrix analysis.
//! * [`recovery`] — FISTA/ISTA/OMP/CoSaMP/IHT sparse recovery.
//! * [`sensor`] — the event-accurate chip simulator.
//! * [`core`] — the end-to-end imager/decoder pipeline.
//! * [`util`] — bit vectors, deterministic RNG, statistics.
//!
//! # Quickstart
//!
//! The public API is session-oriented: an
//! [`EncodeSession`](core::EncodeSession) captures a sequence of scenes
//! into one contiguous wire stream (stream header once, compact
//! per-frame records after), and a [`DecodeSession`](core::DecodeSession)
//! consumes that stream incrementally — from arbitrary byte chunks —
//! reconstructing each frame as it completes. The decoder receives only
//! samples plus a 64-bit seed, never Φ; the session rebuilds Φ once and
//! reuses it (with the dictionary, the per-solver step sizes, and the
//! column-materialized views) for every frame of the stream.
//!
//! Recovery is solver-pluggable: every algorithm in [`recovery`]
//! (FISTA, ISTA, IHT, AMP, OMP, CoSaMP, CGLS, and the CGLS debias
//! wrapper) implements one `Solver` trait and is selectable per
//! session via [`SolverKind`](core::SolverKind) /
//! [`RecoveryParams`](core::RecoveryParams) — see the README's
//! "Choosing a solver" table for guidance.
//!
//! ```
//! use tepics::prelude::*;
//!
//! // Capture a short 32×32 sequence at compression ratio 0.35.
//! let imager = CompressiveImager::builder(32, 32)
//!     .ratio(0.35)
//!     .seed(42)
//!     .build()
//!     .expect("valid configuration");
//! let mut enc = EncodeSession::new(imager).expect("header fits the container");
//! let scene = Scene::gaussian_blobs(3).render(32, 32, 7);
//! enc.capture(&scene).expect("capture");
//! enc.capture(&scene).expect("capture");
//!
//! // The receiver sees only bytes; frames pop out as records complete.
//! let mut dec = DecodeSession::new();
//! let decoded = dec.push_bytes(&enc.to_bytes()).expect("well-formed stream");
//! assert_eq!(decoded.len(), 2);
//! assert_eq!(dec.cache().stats().hits, 1, "second frame decoded warm");
//!
//! let truth = enc.imager().ideal_codes(&scene);
//! let db = psnr(
//!     &truth.to_code_f64(),
//!     decoded[0].reconstruction.code_image(),
//!     255.0,
//! );
//! assert!(db > 18.0, "PSNR {db} dB unexpectedly low");
//! ```
//!
//! # Migrating from the frame-at-a-time API
//!
//! The single-frame entry points still work, but every loop over frames
//! is simpler and faster as a session (the deprecated `SequenceDecoder`
//! shim has been removed — use delta mode):
//!
//! | frame API                                            | session API                                  |
//! |------------------------------------------------------|----------------------------------------------|
//! | `imager.capture(&scene)` then `frame.to_bytes()`     | `enc.capture(&scene)?` then `enc.to_bytes()` |
//! | `CompressedFrame::from_bytes(&bytes)?`               | `dec.push_bytes(&bytes)?`                    |
//! | `Decoder::for_frame(&frame)?.reconstruct(&frame)?`   | `dec.push_bytes(..)` / `dec.push_frame(..)`  |
//! | `decoder.dictionary(..)` / `decoder.algorithm(..)`   | same calls on `DecodeSession`                |
//! | `SequenceDecoder::new(&first, s, n)?` + `push(..)` (removed) | `dec.delta_mode(s, n)` + `push_bytes(..)` |
//! | `pipeline::evaluate(&imager, .., &scene)?` per scene | `pipeline::evaluate_with_cache(&cache, ..)?` |
//! | N × `Decoder::for_frame` rebuilding Φ per frame      | one `OperatorCache`, Φ built once            |
//! | `builder(rows, cols)` (one sensor-sized frame)       | `builder_for(FrameGeometry)` + `.tiling(TileConfig)` — stitched tiled decode |

pub use tepics_ca as ca;
pub use tepics_core as core;
pub use tepics_cs as cs;
pub use tepics_imaging as imaging;
pub use tepics_recovery as recovery;
pub use tepics_sensor as sensor;
pub use tepics_util as util;

/// One-stop imports for the common capture → transmit → reconstruct flow.
pub mod prelude {
    pub use tepics_core::prelude::*;
}
