//! # TEPICS — Time-Encoded PIxel Compressive Sampling
//!
//! A full-system Rust reproduction of *"Concurrent focal-plane generation
//! of compressed samples from time-encoded pixel values"* (Trevisi et
//! al., DATE 2018): an event-accurate simulator of the proposed 64×64
//! compressive-sampling image sensor, its Rule-30 cellular-automaton
//! measurement generator, the sparse-recovery decoder, and the baselines
//! the paper compares against.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! namespace. See the individual crates for deep documentation:
//!
//! * [`ca`] — cellular automata, LFSR, Hadamard pattern generators.
//! * [`imaging`] — images, synthetic scenes, metrics, transforms.
//! * [`cs`] — measurement operators, dictionaries, matrix analysis.
//! * [`recovery`] — FISTA/ISTA/OMP/CoSaMP/IHT sparse recovery.
//! * [`sensor`] — the event-accurate chip simulator.
//! * [`core`] — the end-to-end imager/decoder pipeline.
//! * [`util`] — bit vectors, deterministic RNG, statistics.
//!
//! # Quickstart
//!
//! ```
//! use tepics::prelude::*;
//!
//! // Capture a 32×32 synthetic scene at compression ratio 0.35 and
//! // reconstruct it from the compressed samples alone: the decoder
//! // receives only the frame (samples + 64-bit seed), never Φ.
//! let scene = Scene::gaussian_blobs(3).render(32, 32, 7);
//! let imager = CompressiveImager::builder(32, 32)
//!     .ratio(0.35)
//!     .seed(42)
//!     .build()
//!     .expect("valid configuration");
//! let frame = imager.capture(&scene);
//! let decoder = Decoder::for_frame(&frame).expect("frame is well-formed");
//! let recon = decoder.reconstruct(&frame).expect("recovery converges");
//! let truth = imager.ideal_codes(&scene);
//! let db = psnr(&truth.to_code_f64(), recon.code_image(), 255.0);
//! assert!(db > 18.0, "PSNR {db} dB unexpectedly low");
//! ```

pub use tepics_ca as ca;
pub use tepics_core as core;
pub use tepics_cs as cs;
pub use tepics_imaging as imaging;
pub use tepics_recovery as recovery;
pub use tepics_sensor as sensor;
pub use tepics_util as util;

/// One-stop imports for the common capture → transmit → reconstruct flow.
pub mod prelude {
    pub use tepics_core::prelude::*;
}
