//! On-line `V_rst` / `V_ref` adaptation to illumination.
//!
//! ```text
//! cargo run --release --example adaptive_exposure
//! ```
//!
//! Sect. II.A: "both V_rst and V_ref can be adjusted on-line in order to
//! adapt to different illumination conditions in real-time". This
//! example shows why that knob exists: under a dim scene the default
//! threshold makes dark pixels flip *after* the conversion window —
//! their pulses are lost and the samples are biased. Narrowing the
//! integration swing (raising `V_ref`) pulls the flip times back inside
//! the window; a simple closed-loop controller finds the setting from
//! the missed-pulse statistics the readout already collects.

use std::sync::Arc;
use tepics::prelude::*;

fn capture_stats(
    side: usize,
    v_ref: f64,
    scene: &ImageF64,
    cache: &Arc<OperatorCache>,
) -> Result<(f64, u64, f64), Box<dyn std::error::Error>> {
    // A real photodiode's dark current is tiny; the library default is a
    // deliberately comfortable background current that keeps every pixel
    // inside the conversion window. Here we model honest low-light
    // hardware (0.2 nA) so dim pixels genuinely overrun the window.
    let config = SensorConfig::builder(side, side)
        .i_dark(0.2e-9)
        .v_ref(v_ref)
        .build()?;
    let imager = CompressiveImager::builder(side, side)
        .sensor_config(config)
        .ratio(0.35)
        .seed(0xADA9)
        .build()?;
    let (frame, stats) = imager.capture_with_stats(scene);
    // The analog knob does not touch Φ — every sweep point shares the
    // seed, so the decode session reuses one cached operator.
    let mut session = DecodeSession::with_cache(cache.clone());
    let decoded = session.push_frame(&frame)?;
    let truth = imager.ideal_codes(scene).to_code_f64();
    let db = psnr(&truth, decoded.reconstruction.code_image(), 255.0);
    Ok((db, stats.missed_pulses, stats.total_pulses as f64))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let side = 24;
    // A dim scene: 10% of full-scale illumination.
    let scene = Scene::gaussian_blobs(3)
        .render(side, side, 5)
        .map(|v| v * 0.1);
    println!("dim scene, max intensity {:.2}", scene.max_value());

    // One operator cache for the whole sweep (same seed everywhere).
    let cache = OperatorCache::shared();

    // Open-loop sweep: quality and missed pulses vs V_ref.
    println!("\n  V_ref | missed pulses | PSNR vs own ideal codes");
    println!("  ------+---------------+------------------------");
    for v_ref in [1.3, 1.8, 2.1, 2.4, 2.6] {
        let (db, missed, total) = capture_stats(side, v_ref, &scene, &cache)?;
        println!(
            "   {v_ref:.1}  |  {missed:6} / {total:6.0} | {db:6.1} dB{}",
            if missed > 0 {
                "  <- pulses lost past the window"
            } else {
                ""
            }
        );
    }

    // Closed loop: raise V_ref (shrinking the swing C·(V_rst − V_ref))
    // until no pulse misses the window, in the coarse steps a real
    // controller DAC would take.
    println!("\nclosed-loop controller:");
    let mut v_ref = 1.3;
    loop {
        let (db, missed, _) = capture_stats(side, v_ref, &scene, &cache)?;
        println!("  V_ref = {v_ref:.2} V -> {missed} missed pulses, PSNR {db:.1} dB");
        if missed == 0 || v_ref >= 2.6 {
            println!("  settled at V_ref = {v_ref:.2} V");
            break;
        }
        v_ref += 0.2;
    }
    Ok(())
}
