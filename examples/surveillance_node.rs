//! Autonomous camera node on a bandwidth-starved link.
//!
//! ```text
//! cargo run --release --example surveillance_node
//! ```
//!
//! The paper's motivating scenario (Sect. I): "deliver images over a
//! network under a restricted data rate and still receive enough
//! meaningful information", without the memory and processing budget of
//! digitizing full frames. This example sizes the compression ratio to
//! a link budget, streams a short surveillance sequence, and reports
//! the per-frame quality the receiver actually gets — including what
//! happens past the R = 0.4 break-even where compression stops paying.

use tepics::core::params;
use tepics::prelude::*;

/// Pick the largest ratio whose wire bits fit the per-frame budget.
fn ratio_for_budget(side: usize, sample_bits: u32, budget_bits: f64) -> f64 {
    let mn = (side * side) as f64;
    let header_bits = 27.0 * 8.0;
    ((budget_bits - header_bits) / sample_bits as f64 / mn).clamp(0.02, 1.0)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let side = 32;
    let fps = 30.0;
    let link_bps = 60_000.0; // a LoRa-class/acoustic-class starved link
    let budget_bits = link_bps / fps;
    let sample_bits = params::eq1_sample_bits(8, side as u32, side as u32);
    let raw_bits = params::raw_bits(side as u32, side as u32, 8) as f64;
    let ratio = ratio_for_budget(side, sample_bits, budget_bits);

    println!("link budget {link_bps:.0} bit/s at {fps:.0} fps -> {budget_bits:.0} bits/frame");
    println!(
        "raw readout needs {raw_bits:.0} bits/frame ({:.1}x the budget); \
         sample width {sample_bits} bits -> choosing R = {ratio:.3}",
        raw_bits / budget_bits
    );
    println!(
        "break-even ratio (Eq. 1): R < {:.2}; compressed-sample rate (Eq. 2): {:.1} kHz",
        params::breakeven_ratio(8, sample_bits),
        params::eq2_cs_rate(ratio, side as u32, side as u32, fps) / 1e3
    );

    // A short "surveillance" sequence: a blob (intruder) drifting across
    // a piecewise-smooth background, streamed as ONE wire container —
    // the seed and geometry cross the link once, in the stream header.
    let imager = CompressiveImager::builder(side, side)
        .ratio(ratio)
        .seed(0x5EC2)
        .build()?;
    let mut encoder = EncodeSession::new(imager)?;
    let mut truths = Vec::new();
    let mut frame_codec_bits = 0usize;
    for t in 0..6 {
        let background = Scene::piecewise_smooth(3).render(side, side, 77);
        let mut scene = background;
        // Moving target: a bright disk marching left to right.
        let cx = 4.0 + t as f64 * 4.5;
        let cy = 16.0 + (t as f64 * 0.9).sin() * 5.0;
        for y in 0..side {
            for x in 0..side {
                let dx = x as f64 - cx;
                let dy = y as f64 - cy;
                if dx * dx + dy * dy < 9.0 {
                    scene.set(x, y, 0.95);
                }
            }
        }
        let records = encoder.capture(&scene)?;
        frame_codec_bits += records.iter().map(|f| f.wire_bits()).sum::<usize>();
        truths.push(encoder.imager().ideal_codes(&scene).to_code_f64());
    }

    // The receiver: one decode session, Φ rebuilt once from the header
    // seed and reused for all six frames (watch the cache hit rate).
    let mut decoder = DecodeSession::new();
    let decoded = decoder.push_bytes(&encoder.to_bytes())?;
    println!("\nframe |   PSNR(dB) |  SSIM | solver iters");
    println!("------+------------+-------+-------------");
    for (d, truth) in decoded.iter().zip(&truths) {
        let recon = d.reconstruction.code_image();
        println!(
            "  {}   |    {:6.1}  | {:.3} |  {:5}",
            d.index,
            psnr(truth, recon, 255.0),
            ssim(truth, recon, 255.0),
            d.reconstruction.stats().iterations,
        );
    }
    let stats = decoder.cache().stats();
    let per_frame_raw = raw_bits * decoded.len() as f64;
    println!(
        "\nstream: {} bits for {} frames ({:.1}% saving vs raw; per-frame \
         codec would spend {} bits); operator cache {:.0}% hit rate",
        encoder.wire_bits(),
        decoded.len(),
        (1.0 - encoder.wire_bits() as f64 / per_frame_raw) * 100.0,
        frame_codec_bits,
        stats.hit_rate() * 100.0
    );

    // What if the operator ignores the break-even rule? Past R = 0.4 the
    // compressed stream is *larger* than the raw image.
    println!("\nR sweep (Eq. 1 break-even check, {side}x{side}, {sample_bits}-bit samples):");
    for r in [0.1, 0.25, 0.4, 0.5, 0.6] {
        let k = (r * (side * side) as f64).ceil() as u32;
        let compressed = params::compressed_bits(k, sample_bits);
        println!(
            "  R = {r:.2}: {compressed:6} bits vs raw {raw_bits:.0} -> {}",
            if (compressed as f64) < raw_bits {
                "compression wins"
            } else {
                "send the raw image instead"
            }
        );
    }
    Ok(())
}
