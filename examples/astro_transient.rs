//! Transient detection on star fields — compressed-domain differencing.
//!
//! ```text
//! cargo run --release --example astro_transient
//! ```
//!
//! The INAOE co-authorship points at astronomy: star fields are sparse
//! in the *pixel* domain, the best case for compressive acquisition.
//! This example exploits a property the paper's architecture gets for
//! free: two frames captured with the **same seed** use the identical
//! measurement matrix, so the difference of their compressed samples is
//! a compressed measurement of the difference image,
//! `y₂ − y₁ = Φ(x₂ − x₁)`. A transient (new source) is a 1-sparse-ish
//! difference — recoverable from very few samples with IHT and an
//! identity dictionary, without ever reconstructing the full frames.

use tepics::cs::dictionary::IdentityDictionary;
use tepics::cs::ComposedOperator;
use tepics::prelude::*;
use tepics::recovery::Iht;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let side = 32;
    // Aggressive compression: 12% of the pixel count.
    let ratio = 0.12;
    let seed = 0xA57;

    let night1 = Scene::star_field(18).render(side, side, 900);
    // Night 2: same sky plus one new source (the transient).
    let mut night2 = night1.clone();
    let (tx, ty) = (21usize, 9usize);
    for dy in -2i64..=2 {
        for dx in -2i64..=2 {
            let x = (tx as i64 + dx).clamp(0, side as i64 - 1) as usize;
            let y = (ty as i64 + dy).clamp(0, side as i64 - 1) as usize;
            let d2 = (dx * dx + dy * dy) as f64;
            let add = 0.85 * (-d2 / 1.0).exp();
            night2.set(x, y, (night2.get(x, y) + add).min(1.0));
        }
    }

    // Same seed ⇒ same Φ on both nights. Both captures travel as one
    // stream: the seed crosses the downlink once, in the stream header.
    let imager = CompressiveImager::builder(side, side)
        .ratio(ratio)
        .seed(seed)
        .build()?;
    let mut encoder = EncodeSession::new(imager)?;
    encoder.capture(&night1)?;
    encoder.capture(&night2)?;
    let downlink = encoder.into_bytes();

    // Ground station: re-parse the two frames from the raw stream bytes.
    let mut parser = tepics::core::stream::StreamParser::new();
    parser.push_bytes(&downlink);
    let f1 = parser.next_frame()?.expect("night 1 in stream");
    let f2 = parser.next_frame()?.expect("night 2 in stream");
    println!(
        "two nights captured at R = {ratio}: {} samples each (full frame would be {} pixels), \
         {} bytes downlinked",
        f1.sample_count(),
        side * side,
        downlink.len()
    );

    // Compressed-domain difference.
    let dy_samples: Vec<f64> = f2
        .samples
        .iter()
        .zip(&f1.samples)
        .map(|(&a, &b)| a as f64 - b as f64)
        .collect();
    let nonzero = dy_samples.iter().filter(|&&v| v != 0.0).count();
    println!(
        "sample difference: {nonzero}/{} entries changed",
        dy_samples.len()
    );

    // Recover the difference image: pixel-sparse, so identity dictionary
    // + hard thresholding. Rebuild Φ from the shared seed.
    let decoder = Decoder::for_frame(&f1)?;
    let phi = decoder.rebuild_measurement(f1.sample_count())?;
    let dict = IdentityDictionary::new(side * side);
    let a = ComposedOperator::new(&phi, &dict);
    let recovery = Iht::new(30).max_iter(200).solve(&a, &dy_samples)?;

    // Locate the transient: strongest |difference| pixel.
    let (best_px, best_val) = recovery
        .coefficients
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
        .expect("non-empty");
    let (bx, by) = (best_px % side, best_px / side);
    println!(
        "transient localized at ({bx}, {by}) with code change {best_val:.1} \
         (injected at ({tx}, {ty}))"
    );
    println!(
        "solver: {} iterations, residual {:.2}",
        recovery.stats.iterations, recovery.stats.residual_norm
    );

    // Render the detection map.
    let detection = ImageF64::from_vec(
        side,
        side,
        recovery.coefficients.iter().map(|&v| v.abs()).collect(),
    )
    .normalized();
    println!("detection map:\n{}", detection.to_ascii());

    let hit = bx.abs_diff(tx) <= 1 && by.abs_diff(ty) <= 1;
    println!(
        "{}",
        if hit {
            "transient recovered from compressed samples alone ✔"
        } else {
            "transient missed — try more samples (higher R)"
        }
    );
    Ok(())
}
