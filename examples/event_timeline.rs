//! Signal-level walkthrough of the pixel and the column bus (Fig. 1).
//!
//! ```text
//! cargo run --release --example event_timeline
//! ```
//!
//! Renders the node waveforms of one pixel (`V_pix`, `V1..V5`, `Q′`,
//! `V_o`) and then replays a three-pixel column where two pixels flip
//! almost simultaneously — showing the token protocol serialize the
//! pulses with a top-down release, exactly as Sect. II.C–II.E describe.

use tepics::sensor::column::ColumnArbiter;
use tepics::sensor::pixel::NodeTrace;
use tepics::sensor::tdc::{Conversion, GlobalCounter};
use tepics::sensor::SensorConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SensorConfig::builder(64, 64).build()?;

    // --- Single pixel: the Fig. 1 timeline -------------------------
    let intensity = 0.35;
    let t_flip =
        tepics::sensor::photodiode::crossing_time(&config, intensity) + config.comparator_delay();
    println!(
        "single pixel at intensity {intensity}: comparator flips at {:.3} us",
        t_flip * 1e6
    );
    let trace = NodeTrace::simulate(&config, intensity, true, t_flip, 120);
    println!("{}", trace.to_ascii());
    println!("(time axis: 0 .. {:.2} us)\n", config.window_end() * 1e6);

    // --- Three-pixel column: arbitration in action -----------------
    // Pixels at rows 5, 20, 41. Rows 20 and 41 flip 2 ns apart — far
    // closer than the 5 ns event duration — so the bus must serialize
    // them; row 5 flips later, alone.
    let arbiter = ColumnArbiter::new(&config);
    let pulses = [(20usize, 1.000e-6), (41usize, 1.002e-6), (5usize, 3.0e-6)];
    let outcome = arbiter.arbitrate(&pulses);
    let counter = GlobalCounter::new(&config);

    println!(
        "column arbitration ({} ns events):",
        config.event_duration() * 1e9
    );
    println!("row | flip (us) | grant (us) | queued | code(ideal) | code(actual)");
    println!("----+-----------+------------+--------+-------------+-------------");
    for e in &outcome.events {
        let ideal = match counter.ideal_code(e.t_flip) {
            Conversion::Code(c) => c.to_string(),
            Conversion::Missed => "missed".into(),
        };
        let actual = match counter.convert(e.t_grant) {
            Conversion::Code(c) => c.to_string(),
            Conversion::Missed => "missed".into(),
        };
        println!(
            " {:2} |  {:8.4} |  {:9.4} |   {}    |     {:>5}   |     {:>5}",
            e.row,
            e.t_flip * 1e6,
            e.t_grant * 1e6,
            if e.queued { "yes" } else { " no" },
            ideal,
            actual
        );
    }
    println!(
        "max queue depth {}; worst delay {:.1} ns — codes agree unless the \
         delay crosses a {:.1} ns clock edge (the paper's 1 LSB case)",
        outcome.max_queue_depth,
        outcome.max_delay() * 1e9,
        config.t_clk() * 1e9
    );

    // --- The release-order subtlety --------------------------------
    // Row 50 takes the bus; rows 30 and 10 flip during its pulse (30
    // first). The chain releases TOP-DOWN: row 10 fires before row 30
    // even though it flipped later.
    let outcome = arbiter.arbitrate(&[(50, 2.0e-6), (30, 2.001e-6), (10, 2.003e-6)]);
    let order: Vec<usize> = outcome.events.iter().map(|e| e.row).collect();
    println!("\nrelease order for flips (50 @2.000us, 30 @2.001us, 10 @2.003us): {order:?}");
    println!("(sequential top-down release: the topmost waiting pixel wins)");

    // --- VCD export for a real waveform viewer ----------------------
    // The same traces, in the format post-layout simulation uses: open
    // them in GTKWave next to actual silicon dumps.
    let pixel_vcd = tepics::sensor::vcd::node_trace_to_vcd(&trace);
    let column_vcd = tepics::sensor::vcd::column_outcome_to_vcd(&outcome, config.event_duration());
    std::fs::write("tepics_pixel.vcd", pixel_vcd)?;
    std::fs::write("tepics_column.vcd", column_vcd)?;
    println!("\nwaveforms dumped: tepics_pixel.vcd, tepics_column.vcd (IEEE-1364 VCD)");
    Ok(())
}
