//! Strategy shoot-out: the Rule-30 CA against every cited alternative.
//!
//! ```text
//! cargo run --release --example strategy_shootout
//! ```
//!
//! Sect. III.A argues for a 1-D cellular automaton over Hadamard vectors
//! [13] and LFSRs [14]; the idealized thresholded-Gaussian ensemble of
//! Sect. I is the theory reference point. Because [`StrategyKind`] is a
//! wire-level field, the whole pipeline swaps generators with one line —
//! this example reconstructs the same scene under each and prints the
//! league table.

use tepics::core::pipeline::evaluate_with_cache;
use tepics::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let side = 32;
    let ratio = 0.35;
    let scene = Scene::piecewise_smooth(5).render(side, side, 21);

    let strategies: Vec<(&str, StrategyKind)> = vec![
        (
            "CA Rule 30 (the chip)",
            StrategyKind::default_for(side, side),
        ),
        (
            "CA Rule 90 (additive)",
            StrategyKind::CellularAutomaton {
                rule: 90,
                warmup: 128,
                steps_per_sample: 1,
            },
        ),
        ("LFSR-16 (ref. [14])", StrategyKind::Lfsr { width: 16 }),
        ("Hadamard (ref. [13])", StrategyKind::Hadamard),
        ("Bernoulli (idealized)", StrategyKind::Bernoulli),
    ];

    println!("scene: piecewise-smooth, {side}x{side}, R = {ratio}");
    println!("\n strategy                 |  PSNR(dB) |  SSIM | iters");
    println!("--------------------------+-----------+-------+------");
    // One cache across the league table — each strategy is its own key,
    // so this is one cold build per row, warm on any repeat.
    let cache = OperatorCache::shared();
    for (name, strategy) in strategies {
        let imager = CompressiveImager::builder(side, side)
            .ratio(ratio)
            .seed(0x57A7)
            .strategy(strategy)
            .build()?;
        let report = evaluate_with_cache(&cache, &imager, |_| {}, &scene)?;
        println!(
            " {name:<24} |   {:6.1}  | {:.3} | {:4}",
            report.psnr_code_db, report.ssim_code, report.iterations
        );
    }
    println!(
        "\nThe CA matches the idealized ensemble while needing only {} cells\n\
         of on-chip state and no matrix storage at either end of the link.\n\
         Rule 90 collapses: additive rules are nilpotent on power-of-two\n\
         rings (T^64 = 0 on {} cells), so the automaton reaches the all-zero\n\
         state during warm-up and stops selecting pixels — the concrete\n\
         version of the paper's insistence on class-III (Rule 30) behavior.",
        2 * side,
        2 * side
    );
    Ok(())
}
