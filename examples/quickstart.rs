//! Quickstart: capture a scene, ship the compressed stream over the
//! "wire", reconstruct it on the other side.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This is the paper's whole system in one page: the imager generates
//! compressed samples *at the focal plane* (event-accurate simulation of
//! the time-encoded pixels and the Rule-30 selection ring), the stream
//! carries only the samples and a 64-bit seed — written once, in the
//! stream header — and the decode session replays the automaton to
//! rebuild Φ before running sparse recovery.

use tepics::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let side = 32;
    let ratio = 0.35;

    // A synthetic scene (no test corpora ship with TEPICS).
    let scene = Scene::gaussian_blobs(3).render(side, side, 7);
    println!("scene ({side}x{side}):\n{}", scene.to_ascii());

    // The encoder: event-accurate sensor + Rule-30 strategy, streaming
    // into one wire container.
    let imager = CompressiveImager::builder(side, side)
        .ratio(ratio)
        .seed(0xC0FFEE)
        .build()?;
    let mut encoder = EncodeSession::new(imager)?;
    let (frames, stats) = encoder.capture_with_stats(&scene)?;
    let frame = &frames[0]; // untiled imagers emit one record per capture
    let bytes = encoder.to_bytes();
    println!(
        "captured {} compressed samples ({} bytes on the wire, raw readout would be {} bytes)",
        frame.sample_count(),
        bytes.len(),
        side * side
    );
    println!(
        "event readout: {} pulses, {} queued, {} missed, worst serialization delay {:.1} ns",
        stats.total_pulses,
        stats.queued_pulses,
        stats.missed_pulses,
        stats.max_delay * 1e9
    );

    // The decode session sees only the bytes; frames pop out as their
    // records complete.
    let mut decoder = DecodeSession::new();
    let decoded = decoder.push_bytes(&bytes)?;
    let recon = &decoded
        .first()
        .expect("one complete frame in the stream")
        .reconstruction;

    // Quality against the ideal code image (what a raw readout of the
    // same sensor would have delivered).
    let imager = encoder.imager();
    let truth = imager.ideal_codes(&scene).to_code_f64();
    let db = psnr(&truth, recon.code_image(), 255.0);
    let structural = ssim(&truth, recon.code_image(), 255.0);
    println!(
        "reconstruction: PSNR {db:.1} dB, SSIM {structural:.3}, mean code {:.1}",
        recon.mean_code()
    );

    // Display in the intensity domain (inverts the pulse-modulation
    // transfer).
    let intensity = recon.to_intensity(imager.sensor_config());
    println!("reconstructed intensity:\n{}", intensity.to_ascii());

    // Save viewable images: scene, reconstruction, signed error map —
    // into the gitignored `out/` directory.
    use tepics::imaging::io::{write_error_ppm, write_pgm_f64};
    std::fs::create_dir_all("out")?;
    write_pgm_f64(&scene, std::fs::File::create("out/tepics_scene.pgm")?)?;
    write_pgm_f64(&intensity, std::fs::File::create("out/tepics_recon.pgm")?)?;
    let error = ImageF64::from_vec(
        truth.width(),
        truth.height(),
        truth
            .as_slice()
            .iter()
            .zip(recon.code_image().as_slice())
            .map(|(&a, &b)| a - b)
            .collect(),
    );
    write_error_ppm(&error, 32.0, std::fs::File::create("out/tepics_error.ppm")?)?;
    println!("images written: out/tepics_scene.pgm, out/tepics_recon.pgm, out/tepics_error.ppm");
    Ok(())
}
