//! CLI entry point: `cargo run -p tepics-tidy [-- --skip <check>…]`.
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O
//! error.

use std::path::PathBuf;
use std::process::ExitCode;
use tepics_tidy::model::ALL_CHECKS;
use tepics_tidy::{find_workspace_root, run_workspace, CheckId};

const USAGE: &str = "\
tepics-tidy — workspace invariant linter

USAGE:
    cargo run -p tepics-tidy [-- OPTIONS]

OPTIONS:
    --root <dir>     workspace root (default: walk up from the cwd)
    --skip <check>   disable a check (repeatable; see --list)
    --list           list the available checks and exit
    --help           show this help
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut skip: Vec<CheckId> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--list" => {
                for c in ALL_CHECKS {
                    println!("{c}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("error: --root needs a directory");
                    return ExitCode::from(2);
                };
                root = Some(PathBuf::from(dir));
            }
            "--skip" => {
                let Some(name) = args.next() else {
                    eprintln!("error: --skip needs a check name (see --list)");
                    return ExitCode::from(2);
                };
                let Some(check) = CheckId::from_name(&name) else {
                    eprintln!("error: unknown check `{name}` (see --list)");
                    return ExitCode::from(2);
                };
                skip.push(check);
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    match run_workspace(&root, &skip) {
        Ok(report) => {
            for v in &report.violations {
                println!("{v}");
            }
            if report.is_clean() {
                println!(
                    "tidy: OK ({} files across {} crates)",
                    report.files_scanned,
                    report.crates_scanned.len()
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "tidy: {} violation(s) in {} files across {} crates",
                    report.violations.len(),
                    report.files_scanned,
                    report.crates_scanned.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
