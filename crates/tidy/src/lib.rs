#![forbid(unsafe_code)]
//! `tepics-tidy` — the workspace invariant linter.
//!
//! The reproduction rests on three invariants that ordinary tests
//! cannot guard by construction:
//!
//! 1. **alloc-free** — warm decode hot paths (`solve_with` bodies, the
//!    measurement/dictionary kernels) perform no heap allocation;
//! 2. **determinism** — results never depend on wall-clock time or on
//!    hash-map iteration order;
//! 3. **panic-freedom** — library code surfaces errors instead of
//!    panicking, so hostile wire input can never abort a service.
//!
//! This crate makes them machine-checked: a string/comment/`cfg(test)`-
//! aware source scanner walks every workspace crate and enforces the
//! invariants as named, individually-silenceable checks (run
//! `cargo run -p tepics-tidy` from the workspace root). It is the
//! static half of the enforcement harness; the dynamic half is the
//! counting-allocator test in `tests/zero_alloc.rs` at the workspace
//! root, which asserts the alloc-free invariant at runtime.
//!
//! # Checks
//!
//! | name            | meaning                                                        |
//! |-----------------|----------------------------------------------------------------|
//! | `alloc-free`    | no allocating calls inside `// tidy:alloc-free` regions        |
//! | `wall-clock`    | no `Instant::now`/`SystemTime` outside the bench harness       |
//! | `hash-iter`     | no unjustified `HashMap`/`HashSet` in result-affecting crates  |
//! | `panic`         | no `unwrap`/`expect`/`panic!`/… in non-test library code       |
//! | `unsafe-forbid` | every crate root keeps `#![forbid(unsafe_code)]`               |
//! | `debug-print`   | no `dbg!`/stray `eprintln!`/`println!` in library code         |
//! | `todo-issue`    | no `TODO`/`FIXME` comment without an issue reference (`#123`)  |
//! | `marker`        | every `tidy:` marker parses and carries a non-empty reason     |
//!
//! # Markers
//!
//! * `// tidy:alloc-free` — the next braced block (typically the
//!   following function body) must be allocation-free.
//! * `// tidy:allow(<check>: <reason>)` — silences `<check>` on the
//!   same line and on the next code line. The reason is mandatory; a
//!   missing or empty reason is itself a violation (`marker`).
//!
//! Markers are recognized only in plain `//` (or `/* … */`) comments.
//! Doc comments (`///`, `//!`) are prose *about* the code — mentioning
//! a marker there documents it without activating it.
//!
//! # Scope
//!
//! The scanner reads every `.rs` file under each member crate's `src/`
//! tree (integration tests, examples, and fixtures are governed by the
//! test suite, not the linter). `cfg(test)` modules, `#[test]` items,
//! comments, string literals, and doctests never trigger code checks.
//! Crates are classified as *product* (all checks) or *harness*
//! (`tepics-bench`, the criterion shim: measurement/reporting code
//! where panicking loudly and reading the clock are the point — only
//! the meta checks apply).

pub mod checks;
pub mod mask;
pub mod model;
pub mod runner;

pub use model::{CheckId, CrateClass, SourceFile, Violation};
pub use runner::{find_workspace_root, run_workspace, Report, TidyError};
