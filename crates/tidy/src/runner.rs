//! Workspace discovery and check orchestration.
//!
//! The runner reads the workspace `Cargo.toml` members list (plus the
//! root facade package), classifies each crate as product or harness,
//! walks every `src/` tree in sorted order, and runs the enabled
//! checks over each parsed [`SourceFile`]. Everything is std-only and
//! deterministic: same tree in, same report out.

use crate::checks::run_checks;
use crate::model::{CheckId, CrateClass, SourceFile, Violation, ALL_CHECKS};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Crates whose job is measurement and reporting: reading the clock
/// and failing loudly are the point there, so only the meta checks
/// apply (see [`CrateClass::Harness`]).
const HARNESS_CRATES: [&str; 2] = ["tepics-bench", "criterion"];

/// A failure of the runner itself (not a lint finding).
#[derive(Debug)]
pub enum TidyError {
    /// Reading a file or directory failed.
    Io {
        /// The path being read.
        path: PathBuf,
        /// The underlying error text.
        message: String,
    },
    /// The workspace layout was not understood.
    Workspace(String),
}

impl fmt::Display for TidyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TidyError::Io { path, message } => {
                write!(f, "{}: {message}", path.display())
            }
            TidyError::Workspace(msg) => write!(f, "workspace error: {msg}"),
        }
    }
}

impl std::error::Error for TidyError {}

/// The outcome of a workspace scan.
#[derive(Debug)]
pub struct Report {
    /// Every finding, sorted by file then line.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Names of the crates scanned, in scan order.
    pub crates_scanned: Vec<String>,
}

impl Report {
    /// Did the scan find nothing?
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Scans the workspace rooted at `root`, running every check except
/// those in `skip`.
pub fn run_workspace(root: &Path, skip: &[CheckId]) -> Result<Report, TidyError> {
    let checks: Vec<CheckId> = ALL_CHECKS
        .into_iter()
        .filter(|c| !skip.contains(c))
        .collect();
    let manifest = read_to_string(&root.join("Cargo.toml"))?;
    let mut crate_dirs = parse_members(&manifest)
        .into_iter()
        .map(|m| root.join(m))
        .collect::<Vec<_>>();
    if crate_dirs.is_empty() {
        return Err(TidyError::Workspace(format!(
            "no workspace members found in {}",
            root.join("Cargo.toml").display()
        )));
    }
    // The root facade package ("tepics") lives beside the workspace
    // table and has its own src/ tree.
    if root.join("src").is_dir() {
        crate_dirs.insert(0, root.to_path_buf());
    }

    let mut violations = Vec::new();
    let mut files_scanned = 0;
    let mut crates_scanned = Vec::new();
    for dir in crate_dirs {
        let crate_manifest = read_to_string(&dir.join("Cargo.toml"))?;
        let Some(name) = parse_crate_name(&crate_manifest) else {
            return Err(TidyError::Workspace(format!(
                "no [package] name in {}",
                dir.join("Cargo.toml").display()
            )));
        };
        let class = classify(&name);
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        walk_sorted(&src, &mut files)?;
        for path in files {
            let text = read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .map(Path::to_path_buf)
                .unwrap_or_else(|_| path.clone());
            let in_src = path
                .strip_prefix(&src)
                .map(Path::to_path_buf)
                .unwrap_or_else(|_| path.clone());
            let is_bin = in_src == Path::new("main.rs") || in_src.starts_with("bin");
            let is_crate_root = in_src == Path::new("lib.rs");
            let file = SourceFile::parse(rel, &name, class, is_bin, is_crate_root, &text);
            violations.extend(run_checks(&file, &checks));
            files_scanned += 1;
        }
        crates_scanned.push(name);
    }
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(Report {
        violations,
        files_scanned,
        crates_scanned,
    })
}

/// Walks upward from `start` to the first directory whose
/// `Cargo.toml` declares `[workspace]`.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

fn classify(name: &str) -> CrateClass {
    if HARNESS_CRATES.contains(&name) {
        CrateClass::Harness
    } else {
        CrateClass::Product
    }
}

fn read_to_string(path: &Path) -> Result<String, TidyError> {
    fs::read_to_string(path).map_err(|e| TidyError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    })
}

/// Collects every `.rs` file under `dir`, depth-first in sorted order
/// so reports are stable across filesystems.
fn walk_sorted(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), TidyError> {
    let entries = fs::read_dir(dir).map_err(|e| TidyError::Io {
        path: dir.to_path_buf(),
        message: e.to_string(),
    })?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            walk_sorted(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Extracts the `members = […]` entries of the workspace table with a
/// line scan (enough for this repo's hand-written manifest; a TOML
/// parser would be an external dependency).
fn parse_members(manifest: &str) -> Vec<String> {
    let mut members = Vec::new();
    let mut in_members = false;
    for line in manifest.lines() {
        let t = line.trim();
        if !in_members {
            if t.starts_with("members") && t.contains('[') {
                in_members = true;
                // Fall through to pick up same-line entries.
            } else {
                continue;
            }
        }
        members.extend(quoted_strings(t));
        if t.contains(']') {
            break;
        }
    }
    members
}

/// Extracts the `[package] name = "…"` value.
fn parse_crate_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_package = t == "[package]";
            continue;
        }
        if in_package && (t.starts_with("name =") || t.starts_with("name=")) {
            return quoted_strings(t).into_iter().next();
        }
    }
    None
}

/// All `"…"` substrings of `line` (comments stripped first).
fn quoted_strings(line: &str) -> Vec<String> {
    let line = line.split('#').next().unwrap_or(line);
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find('"') {
        let Some(close) = rest[open + 1..].find('"') else {
            break;
        };
        out.push(rest[open + 1..open + 1 + close].to_string());
        rest = &rest[open + close + 2..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_parse_from_a_block_list() {
        let manifest =
            "[workspace]\nmembers = [\n    \"crates/util\", # comment\n    \"crates/core\",\n]\n";
        assert_eq!(parse_members(manifest), vec!["crates/util", "crates/core"]);
    }

    #[test]
    fn members_parse_from_a_single_line() {
        let manifest = "[workspace]\nmembers = [\"a\", \"b\"]\n";
        assert_eq!(parse_members(manifest), vec!["a", "b"]);
    }

    #[test]
    fn crate_name_comes_from_the_package_section() {
        let manifest =
            "[package]\nname = \"tepics-core\"\n[dependencies]\nname-like = { path = \"x\" }\n";
        assert_eq!(parse_crate_name(manifest).as_deref(), Some("tepics-core"));
    }

    #[test]
    fn crate_name_ignores_dependency_tables() {
        let manifest = "[dependencies]\nname = \"not-it\"\n";
        assert_eq!(parse_crate_name(manifest), None);
    }

    #[test]
    fn harness_classification_matches_the_bench_crates() {
        assert_eq!(classify("tepics-bench"), CrateClass::Harness);
        assert_eq!(classify("criterion"), CrateClass::Harness);
        assert_eq!(classify("tepics-core"), CrateClass::Product);
        assert_eq!(classify("tepics-tidy"), CrateClass::Product);
    }
}
