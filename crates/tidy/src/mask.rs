//! Source masking: splitting Rust source into per-line *code* and
//! *comment* channels.
//!
//! Every check in this crate is a substring scan, and substring scans
//! over raw source lie: `"call .unwrap() here"` inside a string
//! literal, an `Instant::now` in a doc-comment example, or a `vec![`
//! in a `/* … */` block are not violations. The masker walks the file
//! once with a small lexer-grade state machine and emits, for each
//! line,
//!
//! * `code` — the source with string/char-literal *contents* blanked to
//!   spaces (delimiters kept, so `format!("…")` still reads as
//!   `format!(`) and comments removed entirely, and
//! * `comment` — the text of every comment on the line (line, block,
//!   and doc comments), which is where `tidy:` markers live.
//!
//! The state machine understands nested block comments, escaped
//! string/char contents, raw strings with any `#` count (including
//! byte/raw-byte variants), and the `'a`-lifetime vs `'a'`-char-literal
//! ambiguity. It does not parse Rust — it only needs to know what is
//! code and what is not.

/// One source line split into its code and comment channels.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MaskedLine {
    /// Code with string/char contents blanked and comments stripped.
    pub code: String,
    /// Concatenated comment text of the line (markers live here).
    pub comment: String,
}

/// Lexer state carried across characters (and, for block comments and
/// multi-line strings, across lines).
enum State {
    Code,
    LineComment,
    /// Nesting depth (Rust block comments nest).
    BlockComment(u32),
    Str,
    /// Number of `#` marks closing the raw string.
    RawStr(usize),
    Char,
}

/// Splits `src` into per-line code/comment channels (see module docs).
pub fn mask_source(src: &str) -> Vec<MaskedLine> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines = Vec::new();
    let mut line = MaskedLine::default();
    let mut state = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut line));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if let Some(hashes) = raw_string_open(&chars, i) {
                    // r"…", r#"…"#, br"…", … — keep the opener in code.
                    let quote = chars[i..].iter().position(|&ch| ch == '"').unwrap_or(0);
                    for &ch in &chars[i..=i + quote] {
                        line.code.push(ch);
                    }
                    i += quote + 1;
                    state = State::RawStr(hashes);
                } else if c == '"' {
                    line.code.push('"');
                    state = State::Str;
                    i += 1;
                } else if c == '\'' && is_char_literal(&chars, i) {
                    line.code.push('\'');
                    state = State::Char;
                    i += 1;
                } else {
                    line.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                line.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    line.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    line.code.push(' ');
                    if chars.get(i + 1).is_some_and(|&e| e != '\n') {
                        line.code.push(' ');
                        i += 1;
                    }
                } else if c == '"' {
                    line.code.push('"');
                    state = State::Code;
                } else {
                    line.code.push(' ');
                }
                i += 1;
            }
            State::RawStr(hashes) => {
                if c == '"'
                    && chars[i + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|&&h| h == '#')
                        .count()
                        == hashes
                {
                    line.code.push('"');
                    for _ in 0..hashes {
                        line.code.push('#');
                    }
                    i += hashes + 1;
                    state = State::Code;
                } else {
                    line.code.push(' ');
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' {
                    line.code.push(' ');
                    if chars.get(i + 1).is_some_and(|&e| e != '\n') {
                        line.code.push(' ');
                        i += 1;
                    }
                } else if c == '\'' {
                    line.code.push('\'');
                    state = State::Code;
                } else {
                    line.code.push(' ');
                }
                i += 1;
            }
        }
    }
    if !line.code.is_empty() || !line.comment.is_empty() {
        lines.push(line);
    }
    lines
}

/// Is the `'` at `chars[i]` opening a char literal (vs a lifetime)?
///
/// `'\…'` and `'x'` are literals; `'a` followed by anything but a
/// closing quote (`'static`, `<'a>`, `'a,`) is a lifetime.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// If `chars[i]` starts a raw-string opener (`r`, `br`, `rb` + `#*` +
/// `"`), returns the number of `#` marks; `None` otherwise.
fn raw_string_open(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    // Don't mistake identifiers ending in r/br (e.g. `var"` is not
    // valid Rust anyway, but `xr#"` would mis-trigger on `x` + `r#"`).
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask(src: &str) -> Vec<MaskedLine> {
        mask_source(src)
    }

    #[test]
    fn strings_are_blanked_but_delimited() {
        let m = mask(r#"let s = "call .unwrap() now"; s.len();"#);
        assert_eq!(m.len(), 1);
        assert!(!m[0].code.contains("unwrap"), "{:?}", m[0].code);
        assert!(m[0].code.contains("let s = \""));
        assert!(m[0].code.contains(".len()"));
    }

    #[test]
    fn line_comments_move_to_the_comment_channel() {
        let m = mask("foo(); // tidy:allow(panic: reason)\nbar();");
        assert_eq!(m.len(), 2);
        assert!(m[0].code.contains("foo()"));
        assert!(!m[0].code.contains("tidy"));
        assert!(m[0].comment.contains("tidy:allow(panic: reason)"));
        assert!(m[1].code.contains("bar()"));
    }

    #[test]
    fn doc_comments_with_examples_do_not_leak_into_code() {
        let src = "/// ```\n/// x.unwrap();\n/// ```\nfn f() {}\n";
        let m = mask(src);
        assert!(m[1].code.is_empty());
        assert!(m[1].comment.contains("unwrap"));
        assert!(m[3].code.contains("fn f()"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let src = "a(); /* outer /* inner */ still comment\nmore */ b();";
        let m = mask(src);
        assert!(m[0].code.contains("a()"));
        assert!(!m[0].code.contains("still"));
        assert!(m[0].comment.contains("still comment"));
        assert!(m[1].code.contains("b()"));
        assert!(!m[1].code.contains("more"));
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let src = "let p = r#\"vec![Instant::now()]\"#; q();";
        let m = mask(src);
        assert!(!m[0].code.contains("vec!"), "{:?}", m[0].code);
        assert!(!m[0].code.contains("Instant"));
        assert!(m[0].code.contains("q()"));
    }

    #[test]
    fn multiline_strings_stay_masked() {
        let src = "let s = \"first\n.unwrap()\nlast\"; t();";
        let m = mask(src);
        assert!(!m[1].code.contains("unwrap"));
        assert!(m[2].code.contains("t()"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { g('x', '\\n') }";
        let m = mask(src);
        // Lifetimes survive in code; char contents are blanked.
        assert!(m[0].code.contains("<'a>"));
        assert!(m[0].code.contains("'static"));
        assert!(!m[0].code.contains("'x'"));
    }

    #[test]
    fn escaped_quotes_do_not_terminate_strings() {
        let src = r#"let s = "she said \"hi\" .unwrap()"; u();"#;
        let m = mask(src);
        assert!(!m[0].code.contains("unwrap"));
        assert!(m[0].code.contains("u()"));
    }
}
