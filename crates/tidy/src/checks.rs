//! The individual checks.
//!
//! Every check is a pure function from a parsed [`SourceFile`] to
//! zero or more [`Violation`]s. They scan the **code channel** only
//! (strings, comments, and doctests are masked out by
//! [`mask`](crate::mask)), skip `cfg(test)`/`#[test]` regions, and
//! honor `// tidy:allow(check: reason)` markers. See the crate docs
//! for the check table.

use crate::model::{CheckId, CrateClass, SourceFile, Violation};

/// Allocating calls forbidden inside `tidy:alloc-free` regions. The
/// list is the set of *unconditional* allocators — `Vec::push`/`resize`
/// are absent deliberately, because on the warm path they reuse
/// capacity (the zero-alloc runtime harness covers that side).
const ALLOC_PATTERNS: [&str; 11] = [
    "Vec::new",
    "vec!",
    ".to_vec()",
    ".collect()",
    "Box::new",
    "format!",
    ".clone()",
    "String::new",
    ".to_string()",
    ".to_owned()",
    "with_capacity",
];

/// Wall-clock sources: results must never depend on when they ran.
const WALL_CLOCK_PATTERNS: [&str; 2] = ["Instant::now", "SystemTime"];

/// Panicking constructs forbidden in non-test library code.
const PANIC_PATTERNS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// Debug/print output forbidden in library code.
const DEBUG_PRINT_PATTERNS: [&str; 3] = ["dbg!(", "eprintln!(", "println!("];

/// Runs every check in `checks` over `file`.
pub fn run_checks(file: &SourceFile, checks: &[CheckId]) -> Vec<Violation> {
    let mut out = Vec::new();
    for &check in checks {
        match check {
            CheckId::AllocFree => alloc_free(file, &mut out),
            CheckId::WallClock => wall_clock(file, &mut out),
            CheckId::HashIter => hash_iter(file, &mut out),
            CheckId::Panic => panic_freedom(file, &mut out),
            CheckId::UnsafeForbid => unsafe_forbid(file, &mut out),
            CheckId::DebugPrint => debug_print(file, &mut out),
            CheckId::TodoIssue => todo_issue(file, &mut out),
            CheckId::Marker => marker(file, &mut out),
        }
    }
    out
}

fn violation(file: &SourceFile, i: usize, check: CheckId, message: String) -> Violation {
    Violation {
        file: file.rel.clone(),
        line: i + 1,
        check,
        message,
    }
}

/// Reports each `patterns` hit on non-test lines passing `active`,
/// unless silenced by an allow marker for `check`.
fn scan_patterns(
    file: &SourceFile,
    check: CheckId,
    patterns: &[&str],
    active: impl Fn(&SourceFile, usize) -> bool,
    out: &mut Vec<Violation>,
) {
    for (i, line) in file.lines.iter().enumerate() {
        if !file.is_code_line(i) || !active(file, i) || file.allowed(check, i) {
            continue;
        }
        for pat in patterns {
            if line.code.contains(pat) {
                out.push(violation(
                    file,
                    i,
                    check,
                    format!(
                        "`{pat}` (add `// tidy:allow({}: <reason>)` if justified)",
                        check.name()
                    ),
                ));
            }
        }
    }
}

/// **alloc-free** — no unconditional allocator calls inside
/// `tidy:alloc-free` regions. Applies to every crate (the regions are
/// opt-in by marker).
fn alloc_free(file: &SourceFile, out: &mut Vec<Violation>) {
    scan_patterns(
        file,
        CheckId::AllocFree,
        &ALLOC_PATTERNS,
        |f, i| f.alloc_mask[i],
        out,
    );
}

/// **wall-clock** — no `Instant::now`/`SystemTime` in product crates:
/// every result must be a pure function of its inputs and seeds.
fn wall_clock(file: &SourceFile, out: &mut Vec<Violation>) {
    if file.class != CrateClass::Product {
        return;
    }
    scan_patterns(
        file,
        CheckId::WallClock,
        &WALL_CLOCK_PATTERNS,
        |_, _| true,
        out,
    );
}

/// **hash-iter** — `HashMap`/`HashSet` in product crates need a
/// justified marker: iteration order is nondeterministic, and code
/// that iterates a hash map can silently order-couple its results.
/// `use` lines are exempt (the declaration site is where the risk
/// lives).
fn hash_iter(file: &SourceFile, out: &mut Vec<Violation>) {
    if file.class != CrateClass::Product {
        return;
    }
    scan_patterns(
        file,
        CheckId::HashIter,
        &["HashMap", "HashSet"],
        |f, i| !f.lines[i].code.trim_start().starts_with("use "),
        out,
    );
}

/// **panic** — no panicking constructs in non-test, non-binary library
/// code of product crates: hostile wire input must surface as an error
/// value, never an abort.
fn panic_freedom(file: &SourceFile, out: &mut Vec<Violation>) {
    if file.class != CrateClass::Product || file.is_bin {
        return;
    }
    scan_patterns(file, CheckId::Panic, &PANIC_PATTERNS, |_, _| true, out);
}

/// **unsafe-forbid** — every crate root keeps `#![forbid(unsafe_code)]`.
fn unsafe_forbid(file: &SourceFile, out: &mut Vec<Violation>) {
    if !file.is_crate_root {
        return;
    }
    let present = file
        .lines
        .iter()
        .any(|l| l.code.contains("#![forbid(unsafe_code)]"));
    if !present {
        out.push(violation(
            file,
            0,
            CheckId::UnsafeForbid,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        ));
    }
}

/// **debug-print** — no `dbg!` or stray `eprintln!`/`println!` in
/// non-binary library code of product crates.
fn debug_print(file: &SourceFile, out: &mut Vec<Violation>) {
    if file.class != CrateClass::Product || file.is_bin {
        return;
    }
    scan_patterns(
        file,
        CheckId::DebugPrint,
        &DEBUG_PRINT_PATTERNS,
        |_, _| true,
        out,
    );
}

/// **todo-issue** — every `TODO` (or `FIXME`) must cite an issue (`#123`)
/// on the same line, so deferred work is tracked rather than forgotten.
fn todo_issue(file: &SourceFile, out: &mut Vec<Violation>) {
    for (i, line) in file.lines.iter().enumerate() {
        let c = &line.comment;
        if !(c.contains("TODO") || c.contains("FIXME")) || file.allowed(CheckId::TodoIssue, i) {
            continue;
        }
        let has_issue_ref = c.char_indices().any(|(p, ch)| {
            ch == '#'
                && c[p + 1..]
                    .chars()
                    .next()
                    .is_some_and(|d| d.is_ascii_digit())
        });
        if !has_issue_ref {
            out.push(violation(
                file,
                i,
                CheckId::TodoIssue,
                "TODO/FIXME without an issue reference (e.g. `TODO(#42): …`)".to_string(),
            ));
        }
    }
}

/// **marker** — surfaces the marker-syntax problems collected during
/// parsing (unknown check names, missing reasons, dangling region
/// markers).
fn marker(file: &SourceFile, out: &mut Vec<Violation>) {
    for (i, msg) in &file.marker_violations {
        out.push(violation(file, *i, CheckId::Marker, msg.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ALL_CHECKS;
    use std::path::PathBuf;

    fn scan_class(src: &str, class: CrateClass, is_bin: bool, root: bool) -> Vec<Violation> {
        let f = SourceFile::parse(PathBuf::from("f.rs"), "demo", class, is_bin, root, src);
        run_checks(&f, &ALL_CHECKS)
    }

    fn scan(src: &str) -> Vec<Violation> {
        scan_class(src, CrateClass::Product, false, false)
    }

    fn has(violations: &[Violation], check: CheckId) -> bool {
        violations.iter().any(|v| v.check == check)
    }

    // ---- alloc-free -----------------------------------------------------

    #[test]
    fn alloc_free_catches_a_seeded_violation() {
        let src = "// tidy:alloc-free\nfn hot() {\n    let v = Vec::new();\n}\n";
        let v = scan(src);
        assert!(has(&v, CheckId::AllocFree), "{v:?}");
        assert_eq!(
            v.iter()
                .find(|v| v.check == CheckId::AllocFree)
                .map(|v| v.line),
            Some(3)
        );
    }

    #[test]
    fn alloc_free_ignores_code_outside_regions() {
        let v = scan("fn cold() {\n    let v = vec![1, 2];\n    let s = x.to_vec();\n}\n");
        assert!(!has(&v, CheckId::AllocFree));
    }

    #[test]
    fn alloc_free_honors_allow_markers() {
        let src = "// tidy:alloc-free\nfn hot() {\n    // tidy:allow(alloc: result vector, outside the loop)\n    let out = vec![0.0; n];\n}\n";
        assert!(!has(&scan(src), CheckId::AllocFree));
    }

    #[test]
    fn alloc_free_catches_every_listed_allocator() {
        for pat in [
            "Vec::new()",
            "vec![0; 4]",
            "x.to_vec()",
            "it.collect()",
            "Box::new(y)",
            "format!(\"x\")",
            "x.clone()",
            "String::new()",
            "x.to_string()",
            "x.to_owned()",
            "Vec::with_capacity(8)",
        ] {
            let src = format!("// tidy:alloc-free\nfn hot() {{\n    let a = {pat};\n}}\n");
            assert!(has(&scan(&src), CheckId::AllocFree), "missed `{pat}`");
        }
    }

    // ---- wall-clock -----------------------------------------------------

    #[test]
    fn wall_clock_catches_a_seeded_violation() {
        let v = scan("fn f() {\n    let t = std::time::Instant::now();\n}\n");
        assert!(has(&v, CheckId::WallClock));
        let v = scan("fn f() {\n    let t = SystemTime::now();\n}\n");
        assert!(has(&v, CheckId::WallClock));
    }

    #[test]
    fn wall_clock_exempts_harness_crates_and_tests() {
        let src = "fn f() {\n    let t = Instant::now();\n}\n";
        assert!(!has(
            &scan_class(src, CrateClass::Harness, false, false),
            CheckId::WallClock
        ));
        let test_src = "#[cfg(test)]\nmod tests {\n    fn t() { let x = Instant::now(); }\n}\n";
        assert!(!has(&scan(test_src), CheckId::WallClock));
    }

    // ---- hash-iter ------------------------------------------------------

    #[test]
    fn hash_iter_catches_a_seeded_violation() {
        let v = scan("struct S {\n    map: HashMap<u32, u32>,\n}\n");
        assert!(has(&v, CheckId::HashIter));
    }

    #[test]
    fn hash_iter_accepts_justified_markers_and_use_lines() {
        let src = "use std::collections::HashMap;\nstruct S {\n    // tidy:allow(hash-iter: iteration order never observed)\n    map: HashMap<u32, u32>,\n}\n";
        assert!(!has(&scan(src), CheckId::HashIter));
    }

    // ---- panic ----------------------------------------------------------

    #[test]
    fn panic_catches_each_seeded_violation() {
        for pat in [
            "x.unwrap()",
            "x.expect(\"m\")",
            "panic!(\"m\")",
            "unreachable!()",
            "todo!()",
            "unimplemented!()",
        ] {
            let src = format!("fn f() {{\n    {pat};\n}}\n");
            assert!(has(&scan(&src), CheckId::Panic), "missed `{pat}`");
        }
    }

    #[test]
    fn panic_skips_tests_doctests_strings_and_bins() {
        let in_test = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(!has(&scan(in_test), CheckId::Panic));
        let in_doc = "/// ```\n/// x.unwrap();\n/// ```\nfn f() {}\n";
        assert!(!has(&scan(in_doc), CheckId::Panic));
        let in_str = "fn f() -> &'static str {\n    \"never .unwrap() in prod\"\n}\n";
        assert!(!has(&scan(in_str), CheckId::Panic));
        let in_bin = "fn main() {\n    run().unwrap();\n}\n";
        assert!(!has(
            &scan_class(in_bin, CrateClass::Product, true, false),
            CheckId::Panic
        ));
    }

    #[test]
    fn panic_does_not_flag_unwrap_or_variants() {
        let src = "fn f() {\n    x.unwrap_or(0);\n    y.unwrap_or_else(|| 1);\n    z.unwrap_or_default();\n}\n";
        assert!(!has(&scan(src), CheckId::Panic));
    }

    #[test]
    fn panic_honors_allow_markers() {
        let src = "fn f() {\n    // tidy:allow(panic: length checked two lines above)\n    x.unwrap();\n}\n";
        assert!(!has(&scan(src), CheckId::Panic));
    }

    // ---- unsafe-forbid --------------------------------------------------

    #[test]
    fn unsafe_forbid_catches_a_missing_attribute() {
        let v = scan_class(
            "//! docs\npub fn f() {}\n",
            CrateClass::Product,
            false,
            true,
        );
        assert!(has(&v, CheckId::UnsafeForbid));
        let ok = scan_class(
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
            CrateClass::Product,
            false,
            true,
        );
        assert!(!has(&ok, CheckId::UnsafeForbid));
    }

    #[test]
    fn unsafe_forbid_only_applies_to_crate_roots() {
        assert!(!has(&scan("pub fn f() {}\n"), CheckId::UnsafeForbid));
    }

    // ---- debug-print ----------------------------------------------------

    #[test]
    fn debug_print_catches_seeded_violations() {
        for pat in ["dbg!(x)", "eprintln!(\"x\")", "println!(\"x\")"] {
            let src = format!("fn f() {{\n    {pat};\n}}\n");
            assert!(has(&scan(&src), CheckId::DebugPrint), "missed `{pat}`");
        }
    }

    #[test]
    fn debug_print_exempts_bins_and_harness() {
        let src = "fn main() {\n    println!(\"report\");\n}\n";
        assert!(!has(
            &scan_class(src, CrateClass::Product, true, false),
            CheckId::DebugPrint
        ));
        assert!(!has(
            &scan_class(src, CrateClass::Harness, false, false),
            CheckId::DebugPrint
        ));
    }

    // ---- todo-issue -----------------------------------------------------

    #[test]
    fn todo_issue_requires_an_issue_reference() {
        assert!(has(
            &scan("// TODO: someday\nfn f() {}\n"),
            CheckId::TodoIssue
        ));
        assert!(has(
            &scan("// FIXME later\nfn f() {}\n"),
            CheckId::TodoIssue
        ));
        assert!(!has(
            &scan("// TODO(#42): tracked\nfn f() {}\n"),
            CheckId::TodoIssue
        ));
    }

    // ---- marker ---------------------------------------------------------

    #[test]
    fn marker_violations_surface_through_the_marker_check() {
        let v = scan("// tidy:allow(bogus-check: reason)\nfn f() {}\n");
        assert!(has(&v, CheckId::Marker));
    }

    // ---- cross-check: skip list ----------------------------------------

    #[test]
    fn checks_are_individually_skippable() {
        let f = SourceFile::parse(
            PathBuf::from("f.rs"),
            "demo",
            CrateClass::Product,
            false,
            false,
            "fn f() {\n    x.unwrap();\n    let t = Instant::now();\n}\n",
        );
        let all = run_checks(&f, &ALL_CHECKS);
        assert!(has(&all, CheckId::Panic) && has(&all, CheckId::WallClock));
        let only_panic = run_checks(&f, &[CheckId::Panic]);
        assert!(has(&only_panic, CheckId::Panic) && !has(&only_panic, CheckId::WallClock));
    }
}
