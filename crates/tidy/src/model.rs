//! The scanner's file model: masked lines, skip regions, and markers.
//!
//! A [`SourceFile`] is built once per file and shared by every check:
//! it holds the per-line code/comment channels from
//! [`mask`](crate::mask), a `cfg(test)`/`#[test]` region mask, the
//! `// tidy:alloc-free` region mask, and the parsed
//! `// tidy:allow(check: reason)` markers with the lines they cover.

use crate::mask::{mask_source, MaskedLine};
use std::fmt;
use std::path::PathBuf;

/// The named checks (each individually silenceable with
/// `// tidy:allow(<name>: <reason>)` or the CLI `--skip <name>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckId {
    /// No allocating calls inside `tidy:alloc-free` regions.
    AllocFree,
    /// No `Instant::now`/`SystemTime` outside the bench harness.
    WallClock,
    /// No unjustified `HashMap`/`HashSet` in result-affecting crates.
    HashIter,
    /// No `unwrap`/`expect`/`panic!`/… in non-test library code.
    Panic,
    /// Every crate root keeps `#![forbid(unsafe_code)]`.
    UnsafeForbid,
    /// No `dbg!` or stray `eprintln!`/`println!` in library code.
    DebugPrint,
    /// No `TODO`/`FIXME` comment without an issue reference (`#123`).
    TodoIssue,
    /// Marker hygiene: every `tidy:` marker parses with a reason.
    Marker,
}

/// All checks, in reporting order.
pub const ALL_CHECKS: [CheckId; 8] = [
    CheckId::AllocFree,
    CheckId::WallClock,
    CheckId::HashIter,
    CheckId::Panic,
    CheckId::UnsafeForbid,
    CheckId::DebugPrint,
    CheckId::TodoIssue,
    CheckId::Marker,
];

impl CheckId {
    /// The marker/CLI name of the check.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CheckId::AllocFree => "alloc-free",
            CheckId::WallClock => "wall-clock",
            CheckId::HashIter => "hash-iter",
            CheckId::Panic => "panic",
            CheckId::UnsafeForbid => "unsafe-forbid",
            CheckId::DebugPrint => "debug-print",
            CheckId::TodoIssue => "todo-issue",
            CheckId::Marker => "marker",
        }
    }

    /// Parses a marker/CLI name (`"alloc"` is accepted as shorthand
    /// for `"alloc-free"`, matching the inline-annotation idiom).
    #[must_use]
    pub fn from_name(name: &str) -> Option<CheckId> {
        match name {
            "alloc-free" | "alloc" => Some(CheckId::AllocFree),
            "wall-clock" => Some(CheckId::WallClock),
            "hash-iter" => Some(CheckId::HashIter),
            "panic" => Some(CheckId::Panic),
            "unsafe-forbid" => Some(CheckId::UnsafeForbid),
            "debug-print" => Some(CheckId::DebugPrint),
            "todo-issue" => Some(CheckId::TodoIssue),
            "marker" => Some(CheckId::Marker),
            _ => None,
        }
    }
}

impl fmt::Display for CheckId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a crate is treated by the crate-scoped checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateClass {
    /// Result-affecting code: every check applies.
    Product,
    /// Measurement/reporting harness (bench, criterion shim): reading
    /// the clock and failing loudly are the point, so only the meta
    /// checks (`unsafe-forbid`, `todo-issue`, `marker`, and any
    /// explicit `alloc-free` regions) apply.
    Harness,
}

/// One finding: a check tripped at a file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Path relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The check that tripped.
    pub check: CheckId,
    /// Human-readable detail (the offending pattern, the missing
    /// attribute, …).
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.check,
            self.message
        )
    }
}

/// A parsed `tidy:allow` marker.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Allow {
    check: CheckId,
    /// Lines the marker covers (0-based, inclusive).
    lines: (usize, usize),
}

/// One source file, masked and region-annotated, ready for checks.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root (for reporting).
    pub rel: PathBuf,
    /// Name of the owning crate.
    pub crate_name: String,
    /// Crate classification (product vs harness).
    pub class: CrateClass,
    /// Whether this file is a binary target (`src/bin/**` or
    /// `src/main.rs`): entry points may print and exit.
    pub is_bin: bool,
    /// Whether this file is the crate root (`src/lib.rs`).
    pub is_crate_root: bool,
    /// Per-line code/comment channels.
    pub lines: Vec<MaskedLine>,
    /// `true` for lines inside `#[cfg(test)]` / `#[test]` items.
    pub test_mask: Vec<bool>,
    /// `true` for lines inside `// tidy:alloc-free` regions.
    pub alloc_mask: Vec<bool>,
    allows: Vec<Allow>,
    /// Marker-syntax violations found while parsing (reported by the
    /// `marker` check).
    pub marker_violations: Vec<(usize, String)>,
}

impl SourceFile {
    /// Masks `src` and computes regions and markers.
    #[must_use]
    pub fn parse(
        rel: PathBuf,
        crate_name: &str,
        class: CrateClass,
        is_bin: bool,
        is_crate_root: bool,
        src: &str,
    ) -> SourceFile {
        let lines = mask_source(src);
        let test_mask = test_regions(&lines);
        let (alloc_mask, mut marker_violations) = alloc_regions(&lines);
        let (allows, allow_violations) = parse_allows(&lines);
        marker_violations.extend(allow_violations);
        SourceFile {
            rel,
            crate_name: crate_name.to_string(),
            class,
            is_bin,
            is_crate_root,
            lines,
            test_mask,
            alloc_mask,
            allows,
            marker_violations,
        }
    }

    /// Is `check` silenced on 0-based line `i` by an allow marker?
    #[must_use]
    pub fn allowed(&self, check: CheckId, i: usize) -> bool {
        self.allows
            .iter()
            .any(|a| a.check == check && a.lines.0 <= i && i <= a.lines.1)
    }

    /// Is 0-based line `i` ordinary library code for this check pass
    /// (i.e. not inside a test item)?
    #[must_use]
    pub fn is_code_line(&self, i: usize) -> bool {
        !self.test_mask[i]
    }
}

/// Computes the `cfg(test)` / `#[test]` line mask.
fn test_regions(lines: &[MaskedLine]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    for (i, line) in lines.iter().enumerate() {
        if mask[i] {
            continue; // already inside an outer test region
        }
        let code = &line.code;
        let is_test_attr =
            code.contains("#[test]") || code.contains("#[should_panic") || cfg_attr_is_test(code);
        if !is_test_attr {
            continue;
        }
        if let Some(end) = item_end(lines, i) {
            for m in mask.iter_mut().take(end + 1).skip(i) {
                *m = true;
            }
        }
    }
    mask
}

/// Does `code` carry a `#[cfg(…)]` attribute that enables the line
/// only under `test`? (`not(test)` groups are stripped first, so
/// `#[cfg(not(test))]` is production code.)
fn cfg_attr_is_test(code: &str) -> bool {
    let Some(start) = code.find("#[cfg(") else {
        return false;
    };
    let inner = &code[start + "#[cfg(".len()..];
    let inner = strip_not_groups(inner);
    inner
        .split(|c: char| !c.is_alphanumeric() && c != '_')
        .any(|tok| tok == "test")
}

/// Removes `not(…)` groups (balanced parens) from a cfg argument list.
fn strip_not_groups(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let bytes: Vec<char> = s.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i..].starts_with(&['n', 'o', 't', '(']) {
            let mut depth = 1;
            i += 4;
            while i < bytes.len() && depth > 0 {
                match bytes[i] {
                    '(' => depth += 1,
                    ')' => depth -= 1,
                    _ => {}
                }
                i += 1;
            }
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    out
}

/// Finds the 0-based line on which the item starting at line `start`
/// ends: the matching `}` of its first body brace, or a `;` outside
/// every bracket (attribute-only lines and signatures flow through).
fn item_end(lines: &[MaskedLine], start: usize) -> Option<usize> {
    let mut depth = 0i64; // () and []
    let mut braces = 0i64;
    for (li, line) in lines.iter().enumerate().skip(start) {
        for c in line.code.chars() {
            match c {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                '{' => braces += 1,
                '}' => {
                    braces -= 1;
                    if braces == 0 {
                        return Some(li);
                    }
                }
                ';' if braces == 0 && depth == 0 => return Some(li),
                _ => {}
            }
        }
    }
    None
}

/// Finds the 0-based line closing the first braced block at or after
/// line `start` (for `tidy:alloc-free` regions: the next function
/// body).
fn block_end(lines: &[MaskedLine], start: usize) -> Option<usize> {
    let mut braces = 0i64;
    let mut opened = false;
    for (li, line) in lines.iter().enumerate().skip(start) {
        for c in line.code.chars() {
            match c {
                '{' => {
                    braces += 1;
                    opened = true;
                }
                '}' => {
                    braces -= 1;
                    if opened && braces == 0 {
                        return Some(li);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Is this comment text documentation (`///`, `//!`, `/**`, `/*!`)?
///
/// The masker strips the `//` opener, so doc comments are the ones
/// whose text begins with `/`, `!`, or `*`. Markers must live in
/// plain `//` comments — doc comments are prose *about* the markers
/// (this crate's own docs would otherwise lint themselves).
fn is_doc_comment(comment: &str) -> bool {
    matches!(comment.chars().next(), Some('/' | '!' | '*'))
}

/// Computes the `tidy:alloc-free` region mask; a marker with no
/// following block is a marker violation.
fn alloc_regions(lines: &[MaskedLine]) -> (Vec<bool>, Vec<(usize, String)>) {
    let mut mask = vec![false; lines.len()];
    let mut violations = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if !line.comment.contains("tidy:alloc-free") || is_doc_comment(&line.comment) {
            continue;
        }
        match block_end(lines, i) {
            Some(end) => {
                for m in mask.iter_mut().take(end + 1).skip(i) {
                    *m = true;
                }
            }
            None => violations.push((
                i,
                "tidy:alloc-free marker with no following block".to_string(),
            )),
        }
    }
    (mask, violations)
}

/// Parses every `tidy:allow(check: reason)` marker. A marker covers
/// its own line and the next line that carries code (so it can sit on
/// its own comment line above the site it justifies).
fn parse_allows(lines: &[MaskedLine]) -> (Vec<Allow>, Vec<(usize, String)>) {
    let mut allows = Vec::new();
    let mut violations = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if is_doc_comment(&line.comment) {
            continue;
        }
        let mut rest = line.comment.as_str();
        while let Some(pos) = rest.find("tidy:allow") {
            rest = &rest[pos + "tidy:allow".len()..];
            let Some(stripped) = rest.strip_prefix('(') else {
                violations.push((i, "tidy:allow must be followed by (check: reason)".into()));
                continue;
            };
            let Some(close) = stripped.find(')') else {
                violations.push((i, "unterminated tidy:allow marker".into()));
                break;
            };
            let body = &stripped[..close];
            rest = &stripped[close + 1..];
            let Some((name, reason)) = body.split_once(':') else {
                violations.push((
                    i,
                    format!("tidy:allow({body}) is missing its `: <reason>` justification"),
                ));
                continue;
            };
            let Some(check) = CheckId::from_name(name.trim()) else {
                violations.push((i, format!("unknown check `{}` in tidy:allow", name.trim())));
                continue;
            };
            if reason.trim().is_empty() {
                violations.push((
                    i,
                    format!("tidy:allow({}) has an empty justification", name.trim()),
                ));
                continue;
            }
            // Cover this line plus the next line carrying code.
            let mut end = i;
            for (j, later) in lines.iter().enumerate().skip(i + 1) {
                if !later.code.trim().is_empty() {
                    end = j;
                    break;
                }
            }
            allows.push(Allow {
                check,
                lines: (i, end),
            });
        }
    }
    (allows, violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse(
            PathBuf::from("x.rs"),
            "demo",
            CrateClass::Product,
            false,
            false,
            src,
        )
    }

    #[test]
    fn cfg_test_modules_are_masked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn more() {}\n";
        let f = file(src);
        assert_eq!(
            f.test_mask,
            vec![false, true, true, true, true, false],
            "{:?}",
            f.test_mask
        );
    }

    #[test]
    fn cfg_not_test_is_production_code() {
        let f = file("#[cfg(not(test))]\nfn prod() {}\n");
        assert!(!f.test_mask[0]);
        assert!(!f.test_mask[1]);
    }

    #[test]
    fn test_attribute_masks_one_item() {
        let src = "#[test]\nfn t() {\n    y.unwrap();\n}\nfn lib() {}\n";
        let f = file(src);
        assert_eq!(f.test_mask, vec![true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_on_use_statement_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() {}\n";
        let f = file(src);
        assert_eq!(f.test_mask, vec![true, true, false]);
    }

    #[test]
    fn semicolons_inside_brackets_do_not_end_items() {
        let src = "#[cfg(test)]\nfn t(x: [u8; 3]) {\n    body();\n}\nfn lib() {}\n";
        let f = file(src);
        assert_eq!(f.test_mask, vec![true, true, true, true, false]);
    }

    #[test]
    fn alloc_free_region_covers_the_next_block() {
        let src =
            "// tidy:alloc-free\nfn hot(&self) {\n    work();\n}\nfn cold() { Vec::new(); }\n";
        let f = file(src);
        assert_eq!(f.alloc_mask, vec![true, true, true, true, false]);
    }

    #[test]
    fn dangling_alloc_free_marker_is_a_violation() {
        let f = file("fn f() {}\n// tidy:alloc-free\n");
        assert_eq!(f.marker_violations.len(), 1);
    }

    #[test]
    fn allow_markers_cover_their_line_and_the_next_code_line() {
        let src = "// tidy:allow(panic: cannot happen, checked above)\n// explanatory prose\nx.unwrap();\ny.unwrap();\n";
        let f = file(src);
        assert!(f.allowed(CheckId::Panic, 0));
        assert!(f.allowed(CheckId::Panic, 2), "skips comment-only lines");
        assert!(!f.allowed(CheckId::Panic, 3));
        assert!(!f.allowed(CheckId::WallClock, 2), "only the named check");
    }

    #[test]
    fn trailing_allow_marker_covers_its_own_line() {
        let f = file("x.unwrap(); // tidy:allow(panic: invariant)\n");
        assert!(f.allowed(CheckId::Panic, 0));
    }

    #[test]
    fn allow_without_reason_is_a_violation() {
        let f =
            file("// tidy:allow(panic)\n// tidy:allow(panic:   )\n// tidy:allow(nonsense: why)\n");
        assert_eq!(f.marker_violations.len(), 3, "{:?}", f.marker_violations);
    }

    #[test]
    fn doc_comments_never_act_as_markers() {
        let src = "/// Use `// tidy:alloc-free` above hot fns and silence\n/// sites with `// tidy:allow(panic: why)`.\nfn f() {\n    let v = Vec::new();\n}\n";
        let f = file(src);
        assert!(f.alloc_mask.iter().all(|&m| !m), "{:?}", f.alloc_mask);
        assert!(!f.allowed(CheckId::Panic, 2));
        assert!(f.marker_violations.is_empty(), "{:?}", f.marker_violations);
    }

    #[test]
    fn check_names_roundtrip() {
        for c in ALL_CHECKS {
            assert_eq!(CheckId::from_name(c.name()), Some(c));
        }
        assert_eq!(CheckId::from_name("alloc"), Some(CheckId::AllocFree));
        assert_eq!(CheckId::from_name("bogus"), None);
    }
}
