//! The linter's own acceptance test: the real workspace scans clean.
//!
//! This is the in-tree twin of the CI `tidy` job — `cargo test` alone
//! catches a violation even when nobody runs the binary.

use std::path::Path;

#[test]
fn workspace_has_no_tidy_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = tepics_tidy::run_workspace(&root, &[]).expect("scan succeeds");
    assert!(
        report.is_clean(),
        "tidy violations:\n{}",
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the scan actually covered the workspace (all nine member
    // crates plus the facade and this linter).
    assert!(report.files_scanned > 50, "{} files", report.files_scanned);
    assert!(
        report.crates_scanned.len() >= 10,
        "{:?}",
        report.crates_scanned
    );
}
