//! Stateful codec sessions: the stream-oriented public API.
//!
//! The paper's deployment is a *stream*: a camera node captures frame
//! after frame with one seed, and only compressed samples (plus that
//! 64-bit seed, once) cross the wire. [`EncodeSession`] is the capture
//! side — it owns a [`CompressiveImager`] and appends every captured
//! frame to one contiguous [`stream`](crate::stream) container.
//! [`DecodeSession`] is the receiver — it consumes bytes incrementally
//! ([`DecodeSession::push_bytes`] returns zero or more decoded frames as
//! records complete) and owns an [`OperatorCache`], so the measurement
//! operator, dictionary, and FISTA step size are built once and reused
//! across every frame of the stream (and, when the cache is shared,
//! across batch items with the same seed).
//!
//! Sessions subsume the older single-frame entry points:
//!
//! | frame API (still works)                    | session API                           |
//! |--------------------------------------------|---------------------------------------|
//! | `imager.capture(&scene)` + `to_bytes()`    | `enc.capture(&scene)` + `to_bytes()`  |
//! | `CompressedFrame::from_bytes` + `Decoder`  | `dec.push_bytes(&bytes)`              |
//! | `SequenceDecoder::push` (removed)          | `dec.delta_mode(..)` + `push_bytes`   |
//!
//! # Examples
//!
//! ```
//! use tepics_core::prelude::*;
//! use tepics_core::session::{DecodeSession, EncodeSession};
//!
//! let imager = CompressiveImager::builder(16, 16)
//!     .ratio(0.35)
//!     .seed(9)
//!     .fidelity(Fidelity::Functional)
//!     .build()
//!     .unwrap();
//! let mut enc = EncodeSession::new(imager).unwrap();
//! for i in 0..3 {
//!     let scene = Scene::gaussian_blobs(2).render(16, 16, i);
//!     enc.capture(&scene).unwrap();
//! }
//!
//! let mut dec = DecodeSession::new();
//! let decoded = dec.push_bytes(&enc.to_bytes()).unwrap();
//! assert_eq!(decoded.len(), 3);
//! // Frames 2 and 3 reused the operator built for frame 1.
//! assert_eq!(dec.cache().stats().hits, 2);
//! ```

use std::sync::Arc;

use crate::cache::OperatorCache;
use crate::decoder::{Decoder, DictionaryKind, Reconstruction};
use crate::error::CoreError;
use crate::frame::{CompressedFrame, FrameHeader};
use crate::imager::CompressiveImager;
use crate::solver::{RecoveryParams, SolverKind};
use crate::stream::{StreamParser, StreamWriter};
use tepics_cs::dictionary::IdentityDictionary;
use tepics_cs::ComposedOperator;
use tepics_imaging::ImageF64;
use tepics_recovery::{Iht, SolverWorkspace};
use tepics_sensor::EventStats;

/// Capture-side session: scenes in, one contiguous wire stream out.
#[derive(Debug, Clone)]
pub struct EncodeSession {
    imager: CompressiveImager,
    writer: StreamWriter,
}

impl EncodeSession {
    /// Opens an encode session around `imager`; the stream header is
    /// written immediately.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedFrame`] if the imager's header
    /// cannot be represented by the container (e.g. samples wider than
    /// 32 bits).
    pub fn new(imager: CompressiveImager) -> Result<EncodeSession, CoreError> {
        let writer = StreamWriter::new(imager.frame_header())?;
        Ok(EncodeSession { imager, writer })
    }

    /// The imager driving this session.
    pub fn imager(&self) -> &CompressiveImager {
        &self.imager
    }

    /// The stream header (shared by every frame of the session).
    pub fn header(&self) -> &FrameHeader {
        self.writer.header()
    }

    /// Captures a scene and appends it to the stream; the captured
    /// frame is returned for local inspection.
    ///
    /// # Errors
    ///
    /// Propagates container errors (which cannot occur for frames the
    /// session's own imager produced).
    ///
    /// # Panics
    ///
    /// Panics if the scene dimensions do not match the sensor.
    pub fn capture(&mut self, scene: &ImageF64) -> Result<CompressedFrame, CoreError> {
        self.capture_with_stats(scene).map(|(frame, _)| frame)
    }

    /// Like [`EncodeSession::capture`], also returning the event-level
    /// statistics of the capture.
    ///
    /// # Errors
    ///
    /// Propagates container errors.
    ///
    /// # Panics
    ///
    /// Panics if the scene dimensions do not match the sensor.
    pub fn capture_with_stats(
        &mut self,
        scene: &ImageF64,
    ) -> Result<(CompressedFrame, EventStats), CoreError> {
        let (frame, stats) = self.imager.capture_with_stats(scene);
        self.writer.push_frame(&frame)?;
        Ok((frame, stats))
    }

    /// Appends a pre-captured frame (it must match the stream header).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FrameMismatch`] on a header mismatch.
    pub fn push_frame(&mut self, frame: &CompressedFrame) -> Result<(), CoreError> {
        self.writer.push_frame(frame)
    }

    /// Number of frames captured into the stream so far.
    pub fn frames(&self) -> usize {
        self.writer.frames()
    }

    /// Total wire size of the stream so far, in bits.
    pub fn wire_bits(&self) -> usize {
        self.writer.wire_bits()
    }

    /// The serialized stream so far (header + all frames).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        self.writer.bytes().to_vec()
    }

    /// Consumes the session, returning the serialized stream.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.writer.into_bytes()
    }
}

/// Delta-decoding configuration of a [`DecodeSession`].
#[derive(Debug, Clone, Copy)]
struct DeltaMode {
    sparsity: usize,
    keyframe_interval: usize,
}

/// One decoded frame out of a [`DecodeSession`].
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedFrame {
    /// Position of the frame in the stream (0-based).
    pub index: usize,
    /// Whether this frame ran full sparse recovery (`true`) or delta
    /// recovery against the previous reconstruction (`false`). Always
    /// `true` outside delta mode.
    pub is_key: bool,
    /// The reconstruction.
    pub reconstruction: Reconstruction,
}

/// Receiver-side session: wire bytes in, reconstructed frames out.
///
/// Bytes may arrive in arbitrary chunks; each [`DecodeSession::push_bytes`]
/// call returns the frames completed by that chunk. All decoding state —
/// the rebuilt measurement operator, the dictionary, the per-solver
/// operator-norm estimate, the column-materialized view (for greedy
/// solvers), the solver workspace, and (in delta mode) the previous
/// reconstruction — lives in the session, keyed by the stream header,
/// so a long same-seed sequence pays the operator construction cost
/// exactly once and, once warm, decodes frames with zero heap
/// allocation inside the solver loop (the cached Φ carries its
/// precompiled gather structure; the workspace carries the iterate,
/// greedy, and least-squares buffers). The allocation-free guarantee
/// covers every [`SolverKind`] — including the greedy pursuits and the
/// CGLS debias pass.
#[derive(Debug, Clone, Default)]
pub struct DecodeSession {
    parser: StreamParser,
    cache: Arc<OperatorCache>,
    decoder: Option<Decoder>,
    dictionary: DictionaryKind,
    algorithm: SolverKind,
    delta: Option<DeltaMode>,
    header: Option<FrameHeader>,
    prev_samples: Option<Vec<u32>>,
    prev_codes: Option<ImageF64>,
    last_mean: f64,
    frames_since_key: usize,
    decoded: usize,
    /// Reused solver buffers: one allocation for the whole stream.
    workspace: SolverWorkspace,
}

impl DecodeSession {
    /// A session with its own private [`OperatorCache`].
    #[must_use]
    pub fn new() -> DecodeSession {
        DecodeSession::default()
    }

    /// A session sharing `cache` (e.g. with other sessions of a batch,
    /// so same-seed items reuse one operator).
    #[must_use]
    pub fn with_cache(cache: Arc<OperatorCache>) -> DecodeSession {
        DecodeSession {
            cache,
            ..DecodeSession::default()
        }
    }

    /// The operator cache this session decodes through.
    pub fn cache(&self) -> &Arc<OperatorCache> {
        &self.cache
    }

    /// Selects the sparsifying dictionary for key frames.
    pub fn dictionary(&mut self, kind: DictionaryKind) -> &mut Self {
        self.dictionary = kind;
        if let Some(d) = &mut self.decoder {
            d.dictionary(kind);
        }
        self
    }

    /// Selects the recovery algorithm for key frames (any
    /// [`SolverKind`]).
    pub fn algorithm(&mut self, algorithm: SolverKind) -> &mut Self {
        self.algorithm = algorithm;
        if let Some(d) = &mut self.decoder {
            d.algorithm(algorithm);
        }
        self
    }

    /// Applies a bundled [`RecoveryParams`] (solver + dictionary) for
    /// key frames.
    pub fn params(&mut self, params: RecoveryParams) -> &mut Self {
        self.algorithm(params.solver).dictionary(params.dictionary)
    }

    /// Switches the session to sequence (delta) decoding: the first
    /// frame (and every `keyframe_interval`-th frame; 0 = never again)
    /// runs full recovery, intermediate frames recover only the
    /// pixel-sparse delta `Φ⁻¹(y_t − y_{t−1})` with an IHT budget of
    /// `sparsity` pixels. Frames must then share header *and* sample
    /// count.
    pub fn delta_mode(&mut self, sparsity: usize, keyframe_interval: usize) -> &mut Self {
        self.delta = Some(DeltaMode {
            sparsity: sparsity.max(1),
            keyframe_interval,
        });
        self
    }

    /// The stream header, once known (from priming or the first parsed
    /// bytes).
    pub fn header(&self) -> Option<&FrameHeader> {
        self.header.as_ref()
    }

    /// Number of frames decoded so far.
    pub fn frames_decoded(&self) -> usize {
        self.decoded
    }

    /// Bytes received but not yet consumed by a complete frame.
    pub fn buffered_bytes(&self) -> usize {
        self.parser.buffered_bytes()
    }

    /// Builds (or returns) the per-frame decoder for `header`, giving
    /// access to its dictionary/algorithm knobs before any frame is
    /// decoded.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedFrame`] for degenerate headers.
    pub fn prime(&mut self, header: &FrameHeader) -> Result<&mut Decoder, CoreError> {
        if self.decoder.is_none() {
            let mut decoder = Decoder::for_header(header)?;
            decoder
                .dictionary(self.dictionary)
                .algorithm(self.algorithm)
                .use_cache(self.cache.clone());
            self.decoder = Some(decoder);
            self.header = Some(*header);
        }
        Ok(self.decoder.as_mut().expect("primed above"))
    }

    /// Direct access to the per-frame decoder, once primed.
    pub fn decoder_mut(&mut self) -> Option<&mut Decoder> {
        self.decoder.as_mut()
    }

    /// Feeds received bytes, returning every frame completed by them
    /// (possibly none).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedFrame`] on a corrupt stream (the
    /// parser error is sticky) plus any recovery error.
    pub fn push_bytes(&mut self, bytes: &[u8]) -> Result<Vec<DecodedFrame>, CoreError> {
        self.parser.push_bytes(bytes);
        let mut out = Vec::new();
        while let Some(frame) = self.parser.next_frame()? {
            out.push(self.decode(&frame)?);
        }
        Ok(out)
    }

    /// Decodes one frame directly, bypassing the stream container (for
    /// callers that already hold parsed [`CompressedFrame`]s).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FrameMismatch`] if the frame does not match
    /// the session, plus any recovery error.
    pub fn push_frame(&mut self, frame: &CompressedFrame) -> Result<DecodedFrame, CoreError> {
        self.decode(frame)
    }

    fn decode(&mut self, frame: &CompressedFrame) -> Result<DecodedFrame, CoreError> {
        self.prime(&frame.header)?;
        let is_key = match (&self.delta, &self.prev_samples) {
            (Some(delta), Some(prev)) => {
                if self.header.as_ref() != Some(&frame.header) || prev.len() != frame.samples.len()
                {
                    return Err(CoreError::FrameMismatch(
                        "sequence frames must share header and sample count".into(),
                    ));
                }
                delta.keyframe_interval > 0 && self.frames_since_key >= delta.keyframe_interval
            }
            _ => true,
        };
        let reconstruction = if is_key {
            let recon = self
                .decoder
                .as_ref()
                .expect("primed above")
                .reconstruct_with(frame, &mut self.workspace)?;
            self.frames_since_key = 0;
            self.last_mean = recon.mean_code();
            recon
        } else {
            self.decode_delta(frame)?
        };
        if self.delta.is_some() {
            if !is_key {
                self.frames_since_key += 1;
            }
            self.prev_samples = Some(frame.samples.clone());
            self.prev_codes = Some(reconstruction.code_image().clone());
        }
        let index = self.decoded;
        self.decoded += 1;
        Ok(DecodedFrame {
            index,
            is_key,
            reconstruction,
        })
    }

    /// Delta recovery: `y_t − y_{t−1} = Φ(x_t − x_{t−1})`, solved
    /// pixel-sparse (IHT, identity dictionary) against the previous
    /// reconstruction. Same seed ⇒ same Φ, so the operator comes warm
    /// from the cache.
    fn decode_delta(&mut self, frame: &CompressedFrame) -> Result<Reconstruction, CoreError> {
        let prev_samples = self.prev_samples.as_ref().expect("delta needs history");
        let prev_codes = self.prev_codes.as_ref().expect("delta needs history");
        let delta = self.delta.expect("delta mode configured");
        let decoder = self.decoder.as_ref().expect("primed");
        let dy: Vec<f64> = frame
            .samples
            .iter()
            .zip(prev_samples)
            .map(|(&a, &b)| a as f64 - b as f64)
            .collect();
        let (phi, _) = self
            .cache
            .operator(&decoder.operator_key(frame.samples.len()))?;
        let dict = IdentityDictionary::new(prev_codes.len());
        let a = ComposedOperator::new(phi.as_ref(), &dict);
        let rec =
            Iht::new(delta.sparsity)
                .max_iter(200)
                .solve_with(&a, &dy, &mut self.workspace)?;
        let code_max = ((1u32 << frame.header.code_bits) - 1) as f64;
        let codes = ImageF64::from_vec(
            prev_codes.width(),
            prev_codes.height(),
            prev_codes
                .as_slice()
                .iter()
                .zip(&rec.coefficients)
                .map(|(&p, &d)| (p + d).clamp(0.0, code_max))
                .collect(),
        );
        Ok(Reconstruction::from_parts(codes, self.last_mean, rec.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tepics_imaging::{psnr, Scene};
    use tepics_sensor::Fidelity;

    fn imager(side: usize, seed: u64) -> CompressiveImager {
        CompressiveImager::builder(side, side)
            .ratio(0.35)
            .seed(seed)
            .fidelity(Fidelity::Functional)
            .build()
            .unwrap()
    }

    #[test]
    fn session_roundtrip_matches_per_frame_pipeline() {
        // The acceptance property: a sequence encoded via
        // EncodeSession::to_bytes and decoded via push_bytes round-trips
        // bit-identically to per-frame capture/reconstruct.
        let im = imager(16, 42);
        let scenes: Vec<ImageF64> = (0..4)
            .map(|i| Scene::gaussian_blobs(2).render(16, 16, i))
            .collect();
        let mut enc = EncodeSession::new(im.clone()).unwrap();
        let mut per_frame = Vec::new();
        for scene in &scenes {
            let frame = im.capture(scene);
            let cold = Decoder::for_frame(&frame)
                .unwrap()
                .reconstruct(&frame)
                .unwrap();
            per_frame.push(cold);
            enc.capture(scene).unwrap();
        }
        let mut dec = DecodeSession::new();
        let decoded = dec.push_bytes(&enc.to_bytes()).unwrap();
        assert_eq!(decoded.len(), scenes.len());
        for (d, cold) in decoded.iter().zip(&per_frame) {
            assert_eq!(d.reconstruction, *cold, "frame {}", d.index);
            assert!(d.is_key);
        }
    }

    #[test]
    fn chunked_delivery_decodes_incrementally() {
        let im = imager(16, 7);
        let mut enc = EncodeSession::new(im).unwrap();
        for i in 0..3 {
            enc.capture(&Scene::gaussian_blobs(2).render(16, 16, i))
                .unwrap();
        }
        let bytes = enc.into_bytes();
        let mut dec = DecodeSession::new();
        let mut total = 0;
        for chunk in bytes.chunks(97) {
            total += dec.push_bytes(chunk).unwrap().len();
        }
        assert_eq!(total, 3);
        assert_eq!(dec.frames_decoded(), 3);
        assert_eq!(dec.buffered_bytes(), 0);
    }

    #[test]
    fn operator_cache_hits_across_frames() {
        let im = imager(16, 5);
        let mut enc = EncodeSession::new(im).unwrap();
        for i in 0..4 {
            enc.capture(&Scene::gaussian_blobs(2).render(16, 16, i))
                .unwrap();
        }
        let mut dec = DecodeSession::new();
        dec.push_bytes(&enc.to_bytes()).unwrap();
        let stats = dec.cache().stats();
        assert_eq!(stats.misses, 1, "one cold build");
        assert_eq!(stats.hits, 3, "three warm frames");
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn delta_mode_matches_sequence_decoder_semantics() {
        let im = imager(24, 0xCAFE);
        let scene = Scene::gaussian_blobs(3).render(24, 24, 5);
        let frame = im.capture(&scene);
        let mut session = DecodeSession::new();
        session.delta_mode(20, 0);
        let key = session.push_frame(&frame).unwrap();
        assert!(key.is_key);
        // Identical second frame: zero delta, identical reconstruction.
        let second = session.push_frame(&frame).unwrap();
        assert!(!second.is_key);
        assert_eq!(
            key.reconstruction.code_image(),
            second.reconstruction.code_image()
        );
    }

    #[test]
    fn delta_mode_rejects_mismatched_frames() {
        let im1 = imager(16, 1);
        let im2 = imager(16, 2);
        let scene = Scene::Uniform(0.5).render(16, 16, 0);
        let f1 = im1.capture(&scene);
        let f2 = im2.capture(&scene);
        let mut session = DecodeSession::new();
        session.delta_mode(10, 0);
        session.push_frame(&f1).unwrap();
        assert!(matches!(
            session.push_frame(&f2),
            Err(CoreError::FrameMismatch(_))
        ));
    }

    #[test]
    fn keyframe_interval_refreshes_full_recovery() {
        let im = imager(16, 0xCC);
        let scene = Scene::gaussian_blobs(3).render(16, 16, 9);
        let frame = im.capture(&scene);
        let mut session = DecodeSession::new();
        session.delta_mode(20, 2);
        let flags: Vec<bool> = (0..5)
            .map(|_| session.push_frame(&frame).unwrap().is_key)
            .collect();
        assert_eq!(flags, vec![true, false, false, true, false]);
    }

    #[test]
    fn session_tracks_quality_of_a_moving_sequence() {
        let im = imager(24, 0x5E9);
        let mut enc = EncodeSession::new(im.clone()).unwrap();
        let mut truths = Vec::new();
        for t in 0..4 {
            let mut scene = Scene::gaussian_blobs(2).render(24, 24, 77);
            for dy in 0..2 {
                for dx in 0..2 {
                    scene.set(3 + t * 3 + dx, 10 + dy, 0.95);
                }
            }
            truths.push(im.ideal_codes(&scene).to_code_f64());
            enc.capture(&scene).unwrap();
        }
        let mut dec = DecodeSession::new();
        dec.delta_mode(40, 0);
        let decoded = dec.push_bytes(&enc.to_bytes()).unwrap();
        for (d, truth) in decoded.iter().zip(&truths) {
            let db = psnr(truth, d.reconstruction.code_image(), 255.0);
            assert!(db > 22.0, "frame {}: {db:.1} dB", d.index);
        }
    }

    #[test]
    fn corrupt_stream_surfaces_malformed_frame() {
        let im = imager(16, 3);
        let mut enc = EncodeSession::new(im).unwrap();
        enc.capture(&Scene::Uniform(0.4).render(16, 16, 0)).unwrap();
        let mut bytes = enc.into_bytes();
        bytes[2] ^= 0xFF; // corrupt the magic
        let mut dec = DecodeSession::new();
        assert!(matches!(
            dec.push_bytes(&bytes),
            Err(CoreError::MalformedFrame(_))
        ));
    }
}
