//! Stateful codec sessions: the stream-oriented public API.
//!
//! The paper's deployment is a *stream*: a camera node captures frame
//! after frame with one seed, and only compressed samples (plus that
//! 64-bit seed, once) cross the wire. [`EncodeSession`] is the capture
//! side — it owns a [`CompressiveImager`] and appends every captured
//! frame to one contiguous [`stream`](crate::stream) container.
//! [`DecodeSession`] is the receiver — it consumes bytes incrementally
//! ([`DecodeSession::push_bytes`] returns zero or more decoded frames as
//! records complete) and owns an [`OperatorCache`], so the measurement
//! operator, dictionary, and FISTA step size are built once and reused
//! across every frame of the stream (and, when the cache is shared,
//! across batch items with the same seed).
//!
//! Sessions subsume the older single-frame entry points:
//!
//! | frame API (still works)                    | session API                           |
//! |--------------------------------------------|---------------------------------------|
//! | `imager.capture(&scene)` + `to_bytes()`    | `enc.capture(&scene)` + `to_bytes()`  |
//! | `CompressedFrame::from_bytes` + `Decoder`  | `dec.push_bytes(&bytes)`              |
//! | `SequenceDecoder::push` (removed)          | `dec.delta_mode(..)` + `push_bytes`   |
//!
//! # Tiled streams
//!
//! When the imager is tiled (built with
//! [`CompressiveImagerBuilder::tiling`](crate::imager::CompressiveImagerBuilder::tiling)),
//! the session writes a version-2 stream whose header carries the tile
//! layout; each captured scene contributes one record per tile. The
//! decode side detects the layout from the wire, buffers each complete
//! tile group, recovers the tiles independently — in parallel across
//! [`DecodeSession::threads`] workers — and stitches them with overlap
//! blending into one full-frame [`Reconstruction`]. Stitching order is
//! deterministic, so decoded frames are bit-identical at every thread
//! count.
//!
//! Parallel tiled decodes run on the process-wide persistent
//! [`WorkerPool`] by default ([`DecodeExecutor::Pooled`]): workers are
//! spawned once, keep a warm per-geometry solver workspace each, and
//! when a single [`DecodeSession::push_bytes`] call completes the tile
//! groups of several frames, all their tiles fan out across the pool
//! together — frames of one stream *pipeline* instead of decoding
//! strictly one after another. [`DecodeSession::prewarm`] primes every
//! executor up front so the steady state spawns no threads and
//! allocates nothing.
//!
//! # Examples
//!
//! ```
//! use tepics_core::prelude::*;
//! use tepics_core::session::{DecodeSession, EncodeSession};
//!
//! let imager = CompressiveImager::builder(16, 16)
//!     .ratio(0.35)
//!     .seed(9)
//!     .fidelity(Fidelity::Functional)
//!     .build()
//!     .unwrap();
//! let mut enc = EncodeSession::new(imager).unwrap();
//! for i in 0..3 {
//!     let scene = Scene::gaussian_blobs(2).render(16, 16, i);
//!     enc.capture(&scene).unwrap();
//! }
//!
//! let mut dec = DecodeSession::new();
//! let decoded = dec.push_bytes(&enc.to_bytes()).unwrap();
//! assert_eq!(decoded.len(), 3);
//! // Frames 2 and 3 reused the operator built for frame 1.
//! assert_eq!(dec.cache().stats().hits, 2);
//! ```

use std::sync::Arc;

use crate::cache::OperatorCache;
use crate::decoder::{Decoder, DictionaryKind, Reconstruction};
use crate::error::CoreError;
use crate::frame::{CompressedFrame, FrameHeader};
use crate::imager::CompressiveImager;
use crate::solver::{RecoveryParams, SolverKind};
use crate::stream::{
    StreamEvent, StreamParser, StreamWriter, WireProfile, STREAM_VERSION_RESILIENT,
};
use tepics_cs::dictionary::IdentityDictionary;
use tepics_cs::ComposedOperator;
use tepics_imaging::tile::{fill_uncovered, merge_tiles_sparse, TileLayout};
use tepics_imaging::ImageF64;
use tepics_recovery::{Iht, SolveStats, SolverWorkspace};
use tepics_sensor::EventStats;
use tepics_util::parallel::par_map;
use tepics_util::pool::{self, WorkerPool};

/// Capture-side session: scenes in, one contiguous wire stream out.
#[derive(Debug, Clone)]
pub struct EncodeSession {
    imager: CompressiveImager,
    writer: StreamWriter,
}

impl EncodeSession {
    /// Opens an encode session around `imager`; the stream header is
    /// written immediately. A tiled imager opens a version-2 (tiled)
    /// stream whose header carries the tile layout.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedFrame`] if the imager's header
    /// cannot be represented by the container (e.g. samples wider than
    /// 32 bits).
    pub fn new(imager: CompressiveImager) -> Result<EncodeSession, CoreError> {
        EncodeSession::with_profile(imager, WireProfile::default())
    }

    /// Opens an encode session speaking a specific [`WireProfile`]:
    /// [`WireProfile::Compact`] writes the minimal version-1/2
    /// container, [`WireProfile::Resilient`] the CRC-guarded,
    /// self-synchronizing version-3 container for lossy transports.
    ///
    /// # Errors
    ///
    /// Returns the header errors of [`EncodeSession::new`].
    pub fn with_profile(
        imager: CompressiveImager,
        profile: WireProfile,
    ) -> Result<EncodeSession, CoreError> {
        let header = imager.frame_header();
        let writer = StreamWriter::for_profile(header, imager.tile_layout(), profile)?;
        Ok(EncodeSession { imager, writer })
    }

    /// The container version this session's stream uses (1, 2, or 3).
    pub fn wire_version(&self) -> u8 {
        self.writer.wire_version()
    }

    /// The imager driving this session.
    pub fn imager(&self) -> &CompressiveImager {
        &self.imager
    }

    /// The stream header (shared by every frame record of the session;
    /// the **tile** header for a tiled imager).
    pub fn header(&self) -> &FrameHeader {
        self.writer.header()
    }

    /// The tile layout of a tiled session's stream, `None` otherwise.
    pub fn tile_layout(&self) -> Option<&TileLayout> {
        self.writer.tile_layout()
    }

    /// Captures a scene and appends it to the stream; the captured
    /// frame records are returned for local inspection — one per tile
    /// for a tiled imager (row-major tile order), a single record
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Propagates container errors (which cannot occur for frames the
    /// session's own imager produced).
    ///
    /// # Panics
    ///
    /// Panics if the scene dimensions do not match the frame geometry.
    pub fn capture(&mut self, scene: &ImageF64) -> Result<Vec<CompressedFrame>, CoreError> {
        self.capture_with_stats(scene).map(|(frames, _)| frames)
    }

    /// Like [`EncodeSession::capture`], also returning the event-level
    /// statistics of the capture (merged across tiles for a tiled
    /// imager).
    ///
    /// # Errors
    ///
    /// Propagates container errors.
    ///
    /// # Panics
    ///
    /// Panics if the scene dimensions do not match the frame geometry.
    pub fn capture_with_stats(
        &mut self,
        scene: &ImageF64,
    ) -> Result<(Vec<CompressedFrame>, EventStats), CoreError> {
        let (frames, stats) = self.imager.capture_tiles_with_stats(scene);
        for frame in &frames {
            self.writer.push_frame(frame)?;
        }
        Ok((frames, stats))
    }

    /// Appends a pre-captured frame record (it must match the stream
    /// header; for a tiled stream the caller is responsible for pushing
    /// complete row-major tile groups).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FrameMismatch`] on a header mismatch.
    pub fn push_frame(&mut self, frame: &CompressedFrame) -> Result<(), CoreError> {
        self.writer.push_frame(frame)
    }

    /// Number of scenes captured into the stream so far (each scene is
    /// one record untiled, `layout.tiles()` records tiled).
    pub fn frames(&self) -> usize {
        let per_frame = self
            .writer
            .tile_layout()
            .map_or(1, tepics_imaging::tile::TileLayout::tiles);
        self.writer.frames() / per_frame
    }

    /// Number of frame records written to the stream so far (equals
    /// [`EncodeSession::frames`] for untiled sessions).
    pub fn records(&self) -> usize {
        self.writer.frames()
    }

    /// Total wire size of the stream so far, in bits.
    pub fn wire_bits(&self) -> usize {
        self.writer.wire_bits()
    }

    /// The serialized stream so far (header + all frames).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        self.writer.bytes().to_vec()
    }

    /// Consumes the session, returning the serialized stream.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.writer.into_bytes()
    }
}

/// Delta-decoding configuration of a [`DecodeSession`].
#[derive(Debug, Clone, Copy)]
struct DeltaMode {
    sparsity: usize,
    keyframe_interval: usize,
}

/// How a [`DecodeSession`] treats a tile group with erased
/// (missing/corrupt) tiles on a resilient (version-3) tiled stream.
///
/// Versions 1 and 2 never reach this policy: their parser is sticky
/// and a corrupt stream errors out instead of degrading.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErasurePolicy {
    /// Drop any frame missing at least one tile (counted in
    /// [`DecodeReport::frames_lost`]); emitted frames are always
    /// complete.
    Strict,
    /// Stitch the surviving tiles and leave pixels no tile covers at
    /// zero — the [`DecodedFrame::erased_tiles`] count flags the
    /// degradation.
    FlaggedZero,
    /// Stitch the surviving tiles and fill uncovered pixels by
    /// deterministic inward diffusion from the surviving boundary
    /// ([`fill_uncovered`]) — the visually smoothest degradation.
    #[default]
    NeighborBlend,
}

/// Which execution engine a [`DecodeSession`] uses for parallel tiled
/// decodes (when [`DecodeSession::threads`] is above 1).
///
/// Both engines produce **bit-identical** output — tiles are solved
/// from independent records and stitched in deterministic row-major
/// order — so this knob only trades scheduling overhead, never results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecodeExecutor {
    /// The process-wide persistent [`WorkerPool`]: workers are spawned
    /// once and parked between calls, and each keeps a warm
    /// per-geometry [`SolverWorkspace`] in its sticky scratch, so the
    /// warm steady state spawns no threads and allocates nothing.
    /// When one [`DecodeSession::push_bytes`] call completes tile
    /// groups of *several* frames, their tiles fan out across the pool
    /// together (frame pipelining).
    #[default]
    Pooled,
    /// Fresh scoped threads and fresh per-tile workspaces on every
    /// tile group — the pre-pool behavior, kept as the A/B baseline
    /// for the throughput benchmark.
    SpawnPerCall,
}

/// Degradation accounting of one [`DecodeSession`].
///
/// All counters are cumulative over the session's lifetime. On a clean
/// stream everything but `frames_recovered` (and `tiles_recovered`, if
/// tiled+resilient) stays zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecodeReport {
    /// Frames decoded from fully intact records.
    pub frames_recovered: usize,
    /// Frames emitted with at least one erased tile (resilient tiled
    /// streams under [`ErasurePolicy::FlaggedZero`] /
    /// [`ErasurePolicy::NeighborBlend`]).
    pub frames_degraded: usize,
    /// Frame positions known to exist (from sequence numbers) that were
    /// never emitted: every record lost, or dropped by
    /// [`ErasurePolicy::Strict`].
    pub frames_lost: usize,
    /// Tiles decoded into emitted frames (resilient tiled streams).
    pub tiles_recovered: usize,
    /// Tiles erased from emitted (degraded) frames.
    pub tiles_erased: usize,
    /// Corruption events the parser resynchronized through.
    pub corrupt_events: usize,
    /// Total bytes the parser skipped as corrupt.
    pub bytes_skipped: usize,
    /// Times delta-mode decoding re-anchored (full recovery) after a
    /// gap instead of chaining a delta across it.
    pub reanchors: usize,
    /// Duplicate/stale records discarded (replayed or re-ordered
    /// sequence numbers).
    pub stale_records: usize,
}

impl DecodeReport {
    /// Frames that came out of the session, degraded or not.
    #[must_use]
    pub fn frames_emitted(&self) -> usize {
        self.frames_recovered + self.frames_degraded
    }

    /// Frame positions the session knows about (emitted + lost).
    #[must_use]
    pub fn frames_seen(&self) -> usize {
        self.frames_emitted() + self.frames_lost
    }

    /// Fraction of known frame positions that produced a frame
    /// (1.0 for an empty or clean session).
    #[must_use]
    pub fn recovered_fraction(&self) -> f64 {
        let seen = self.frames_seen();
        if seen == 0 {
            1.0
        } else {
            self.frames_emitted() as f64 / seen as f64
        }
    }
}

/// One decoded frame out of a [`DecodeSession`].
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedFrame {
    /// Position of the frame in the stream (0-based). On a resilient
    /// stream this is derived from wire sequence numbers, so it stays
    /// the *true* capture position even when earlier frames were lost.
    pub index: usize,
    /// Whether this frame ran full sparse recovery (`true`) or delta
    /// recovery against the previous reconstruction (`false`). Always
    /// `true` outside delta mode.
    pub is_key: bool,
    /// Number of tiles erased (missing or corrupt) from this frame;
    /// 0 for a fully intact frame.
    pub erased_tiles: usize,
    /// The reconstruction.
    pub reconstruction: Reconstruction,
}

/// One complete (or partially erased) tile group buffered during an
/// event loop, awaiting decode. `slots` is in row-major tile order;
/// `None` marks an erased tile. Compact groups are always all-`Some`.
#[derive(Debug)]
struct GroupJob {
    /// Stream position of the frame this group stitches into.
    index: usize,
    /// Tiles erased from the group (0 for a compact/complete group).
    erased: usize,
    /// The tile records, row-major.
    slots: Vec<Option<CompressedFrame>>,
}

/// How a session executes the tiles of buffered groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TileRoute {
    /// Sequentially on the caller, reusing the session workspace.
    Serial,
    /// Scoped spawn-per-call threads ([`DecodeExecutor::SpawnPerCall`]).
    Spawn,
    /// The persistent global [`WorkerPool`].
    Pool,
}

/// Sticky-scratch slot key for a tile geometry: pool workers keep one
/// warm [`SolverWorkspace`] per distinct tile size, shared by every
/// session decoding that geometry.
fn scratch_key(header: &FrameHeader) -> u64 {
    (u64::from(header.rows) << 16) | u64::from(header.cols)
}

/// Stitches per-tile reconstructions (row-major, `None` = erased) into
/// one frame, pooling the solver stats (summed iterations,
/// root-sum-square residual of the disjoint tile systems). A fully
/// present set stitches bit-identically to the dense merge
/// ([`merge_tiles_sparse`] documents that contract), so complete and
/// degraded groups share this one path.
fn stitch_group(
    recons: &[Option<Reconstruction>],
    layout: &TileLayout,
    policy: ErasurePolicy,
) -> Reconstruction {
    let mut code_tiles: Vec<Option<Vec<f64>>> = Vec::with_capacity(recons.len());
    let mut stats = SolveStats {
        iterations: 0,
        residual_norm: 0.0,
        converged: true,
    };
    for recon in recons {
        let Some(recon) = recon else {
            code_tiles.push(None);
            continue;
        };
        stats.iterations += recon.stats().iterations;
        stats.residual_norm = stats.residual_norm.hypot(recon.stats().residual_norm);
        stats.converged &= recon.stats().converged;
        code_tiles.push(Some(recon.code_image().as_slice().to_vec()));
    }
    let (mut stitched, uncovered) = merge_tiles_sparse(&code_tiles, layout);
    if policy == ErasurePolicy::NeighborBlend && uncovered.iter().any(|&u| u) {
        fill_uncovered(&mut stitched, &uncovered);
    }
    let mean_code = stitched.mean();
    Reconstruction::from_parts(stitched, mean_code, stats)
}

/// Receiver-side session: wire bytes in, reconstructed frames out.
///
/// Bytes may arrive in arbitrary chunks; each [`DecodeSession::push_bytes`]
/// call returns the frames completed by that chunk. All decoding state —
/// the rebuilt measurement operator, the dictionary, the per-solver
/// operator-norm estimate, the column-materialized view (for greedy
/// solvers), the solver workspace, and (in delta mode) the previous
/// reconstruction — lives in the session, keyed by the stream header,
/// so a long same-seed sequence pays the operator construction cost
/// exactly once and, once warm, decodes frames with zero heap
/// allocation inside the solver loop (the cached Φ carries its
/// precompiled gather structure; the workspace carries the iterate,
/// greedy, and least-squares buffers). The allocation-free guarantee
/// covers every [`SolverKind`] — including the greedy pursuits and the
/// CGLS debias pass.
#[derive(Debug, Clone, Default)]
pub struct DecodeSession {
    parser: StreamParser,
    cache: Arc<OperatorCache>,
    decoder: Option<Arc<Decoder>>,
    dictionary: DictionaryKind,
    algorithm: SolverKind,
    delta: Option<DeltaMode>,
    header: Option<FrameHeader>,
    prev_samples: Option<Vec<u32>>,
    prev_codes: Option<ImageF64>,
    last_mean: f64,
    frames_since_key: usize,
    decoded: usize,
    /// Worker threads for tiled decodes (0 and 1 both mean inline).
    threads: usize,
    /// Execution engine for parallel tiled decodes.
    executor: DecodeExecutor,
    /// Tile records of the frame currently being assembled (tiled
    /// streams buffer `layout.tiles()` records before decoding).
    pending: Vec<CompressedFrame>,
    /// Reused solver buffers: one allocation for the whole stream.
    workspace: SolverWorkspace,
    /// Erased-tile handling for resilient tiled streams.
    policy: ErasurePolicy,
    /// Cumulative degradation accounting.
    report: DecodeReport,
    /// Next expected sequence number (resilient untiled streams).
    next_seq: u64,
    /// Set when a gap was detected in delta mode: the next frame must
    /// re-anchor with full recovery instead of chaining a delta.
    reanchor: bool,
    /// Slot-addressed tile group of a resilient tiled stream
    /// (`seq % tiles` indexes the slot; erased tiles stay `None`).
    slots: Vec<Option<CompressedFrame>>,
    /// Frame index of the group in `slots`, if one is in progress.
    group_idx: Option<usize>,
    /// Lowest frame index still acceptable (everything below was
    /// already flushed or counted lost).
    group_floor: usize,
    /// An error hit after frames had already been decoded in the same
    /// [`DecodeSession::push_bytes`] call; surfaced (sticky) on the
    /// next call so those frames are not discarded.
    deferred: Option<CoreError>,
}

impl DecodeSession {
    /// A session with its own private [`OperatorCache`].
    #[must_use]
    pub fn new() -> DecodeSession {
        DecodeSession::default()
    }

    /// A session sharing `cache` (e.g. with other sessions of a batch,
    /// so same-seed items reuse one operator).
    #[must_use]
    pub fn with_cache(cache: Arc<OperatorCache>) -> DecodeSession {
        DecodeSession {
            cache,
            ..DecodeSession::default()
        }
    }

    /// The operator cache this session decodes through.
    pub fn cache(&self) -> &Arc<OperatorCache> {
        &self.cache
    }

    /// Selects the sparsifying dictionary for key frames.
    pub fn dictionary(&mut self, kind: DictionaryKind) -> &mut Self {
        self.dictionary = kind;
        if let Some(d) = &mut self.decoder {
            Arc::make_mut(d).dictionary(kind);
        }
        self
    }

    /// Selects the recovery algorithm for key frames (any
    /// [`SolverKind`]).
    pub fn algorithm(&mut self, algorithm: SolverKind) -> &mut Self {
        self.algorithm = algorithm;
        if let Some(d) = &mut self.decoder {
            Arc::make_mut(d).algorithm(algorithm);
        }
        self
    }

    /// Applies a bundled [`RecoveryParams`] (solver + dictionary) for
    /// key frames.
    pub fn params(&mut self, params: RecoveryParams) -> &mut Self {
        self.algorithm(params.solver).dictionary(params.dictionary)
    }

    /// Sets the worker-thread count for tiled decodes (default inline).
    /// Tiles are recovered concurrently — on the calling thread plus up
    /// to `threads − 1` persistent pool workers under the default
    /// [`DecodeExecutor::Pooled`] engine — and stitched in a
    /// deterministic order, so the result is **bit-identical for every
    /// thread count**; untiled decodes are unaffected.
    pub fn threads(&mut self, threads: usize) -> &mut Self {
        self.threads = threads;
        self
    }

    /// Selects the execution engine for parallel tiled decodes (default
    /// [`DecodeExecutor::Pooled`]). Results are bit-identical either
    /// way; [`DecodeExecutor::SpawnPerCall`] exists as the throughput
    /// benchmark's A/B baseline.
    pub fn executor(&mut self, executor: DecodeExecutor) -> &mut Self {
        self.executor = executor;
        self
    }

    /// The tile layout of the stream being decoded, once a tiled
    /// header has been parsed; `None` for untiled streams.
    pub fn tile_layout(&self) -> Option<&TileLayout> {
        self.parser.tile_layout()
    }

    /// Sets how tile groups with erased tiles are handled on resilient
    /// (version-3) tiled streams (default
    /// [`ErasurePolicy::NeighborBlend`]).
    pub fn erasure_policy(&mut self, policy: ErasurePolicy) -> &mut Self {
        self.policy = policy;
        self
    }

    /// The session's cumulative degradation accounting.
    pub fn report(&self) -> DecodeReport {
        self.report
    }

    /// Flushes the trailing partial tile group of a resilient tiled
    /// stream (the stream ended mid-frame, or its last records were
    /// lost), stitching the surviving tiles per the erasure policy.
    /// No-op — and always empty — for compact streams, whose partial
    /// groups stay buffered awaiting more bytes.
    ///
    /// # Errors
    ///
    /// Propagates recovery errors from stitching the final group.
    pub fn finish(&mut self) -> Result<Vec<DecodedFrame>, CoreError> {
        let mut out = Vec::new();
        if self.parser.wire_version() == Some(STREAM_VERSION_RESILIENT) {
            if let Some(layout) = self.parser.tile_layout().cloned() {
                if let Some(job) = self.flush_group(&layout) {
                    self.decode_jobs(vec![job], &layout, &mut out)?;
                }
            }
        }
        Ok(out)
    }

    /// Switches the session to sequence (delta) decoding: the first
    /// frame (and every `keyframe_interval`-th frame; 0 = never again)
    /// runs full recovery, intermediate frames recover only the
    /// pixel-sparse delta `Φ⁻¹(y_t − y_{t−1})` with an IHT budget of
    /// `sparsity` pixels. Frames must then share header *and* sample
    /// count.
    pub fn delta_mode(&mut self, sparsity: usize, keyframe_interval: usize) -> &mut Self {
        self.delta = Some(DeltaMode {
            sparsity: sparsity.max(1),
            keyframe_interval,
        });
        self
    }

    /// The stream header, once known (from priming or the first parsed
    /// bytes).
    pub fn header(&self) -> Option<&FrameHeader> {
        self.header.as_ref()
    }

    /// Number of frames decoded so far.
    pub fn frames_decoded(&self) -> usize {
        self.decoded
    }

    /// Bytes received but not yet consumed by a complete frame.
    pub fn buffered_bytes(&self) -> usize {
        self.parser.buffered_bytes()
    }

    /// Builds (or returns) the per-frame decoder for `header`, giving
    /// access to its dictionary/algorithm knobs before any frame is
    /// decoded.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedFrame`] for degenerate headers.
    pub fn prime(&mut self, header: &FrameHeader) -> Result<&mut Decoder, CoreError> {
        self.ensure_primed(header)?;
        self.decoder
            .as_mut()
            .map(Arc::make_mut)
            .ok_or_else(|| CoreError::InvalidConfig("decode session failed to prime".into()))
    }

    /// Builds the decoder for `header` if none exists yet. The decode
    /// paths use this instead of [`DecodeSession::prime`]: they only
    /// read the decoder (through its `Arc`), and `Arc::make_mut` would
    /// clone it whenever a drained pool ticket still holds a transient
    /// reference — a timing-dependent allocation the warm steady state
    /// must not have.
    fn ensure_primed(&mut self, header: &FrameHeader) -> Result<(), CoreError> {
        if self.decoder.is_none() {
            let mut decoder = Decoder::for_header(header)?;
            decoder
                .dictionary(self.dictionary)
                .algorithm(self.algorithm)
                .use_cache(self.cache.clone());
            self.decoder = Some(Arc::new(decoder));
            self.header = Some(*header);
        }
        Ok(())
    }

    /// Direct access to the per-frame decoder, once primed.
    pub fn decoder_mut(&mut self) -> Option<&mut Decoder> {
        self.decoder.as_mut().map(Arc::make_mut)
    }

    /// The session's sticky error, if one occurred: the parser's
    /// poisoned state, or a decode error whose preceding frames were
    /// already handed out by [`DecodeSession::push_bytes`].
    pub fn error(&self) -> Option<&CoreError> {
        self.deferred.as_ref().or_else(|| self.parser.error())
    }

    /// Feeds received bytes, returning every frame completed by them
    /// (possibly none).
    ///
    /// On a resilient (version-3) stream, corruption does not error:
    /// the parser resynchronizes, the session stitches what survives
    /// per its [`ErasurePolicy`], and [`DecodeSession::report`]
    /// accumulates what was lost.
    ///
    /// Frames decoded before an error are never discarded: if a chunk
    /// decodes some frames and *then* hits an error, those frames are
    /// returned and the (sticky) error surfaces on the next call — see
    /// [`DecodeSession::error`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedFrame`] on a corrupt compact
    /// (version-1/2) stream or a resilient stream with a damaged
    /// header (the parser error is sticky), plus any recovery error.
    pub fn push_bytes(&mut self, bytes: &[u8]) -> Result<Vec<DecodedFrame>, CoreError> {
        if let Some(e) = &self.deferred {
            return Err(e.clone());
        }
        self.parser.push_bytes(bytes);
        let mut out = Vec::new();
        let mut jobs = Vec::new();
        let parse_err = loop {
            match self.parser.next_event() {
                Ok(None) => break None,
                Err(e) => break Some(e),
                Ok(Some(event)) => {
                    if let Err(e) = self.handle_event(event, &mut out, &mut jobs) {
                        break Some(e);
                    }
                }
            }
        };
        // Tile groups completed by this chunk were buffered during the
        // event loop and decode together here, so complete groups of
        // *different frames* pipeline across the pool. A decode error
        // outranks a parse error: its group sits earlier in the stream
        // than wherever parsing stopped.
        let decode_err = match self.parser.tile_layout().cloned() {
            Some(layout) if !jobs.is_empty() => self.decode_jobs(jobs, &layout, &mut out).err(),
            _ => None,
        };
        self.report.corrupt_events = self.parser.corrupt_events();
        self.report.bytes_skipped = self.parser.bytes_skipped();
        match decode_err.or(parse_err) {
            Some(e) if out.is_empty() => Err(e),
            Some(e) => {
                self.deferred = Some(e);
                Ok(out)
            }
            None => Ok(out),
        }
    }

    /// Processes one parser event inside [`DecodeSession::push_bytes`]:
    /// untiled frames decode (and land in `out`) immediately, while
    /// completed tile groups are appended to `jobs` for the batched
    /// decode after the event loop.
    fn handle_event(
        &mut self,
        event: StreamEvent,
        out: &mut Vec<DecodedFrame>,
        jobs: &mut Vec<GroupJob>,
    ) -> Result<(), CoreError> {
        let StreamEvent::Frame { seq, frame } = event else {
            // Corruption totals are copied from the parser after the
            // event loop; record loss is detected through sequence
            // gaps.
            return Ok(());
        };
        let resilient = self.parser.wire_version() == Some(STREAM_VERSION_RESILIENT);
        match self.parser.tile_layout().cloned() {
            Some(layout) => {
                if self.delta.is_some() {
                    return Err(CoreError::InvalidConfig(
                        "delta mode is not supported for tiled streams (tiles are \
                         recovered independently)"
                            .into(),
                    ));
                }
                if resilient {
                    self.push_resilient_tile(seq, frame, &layout, jobs);
                } else {
                    self.pending.push(frame);
                    if self.pending.len() == layout.tiles() {
                        let tiles = std::mem::take(&mut self.pending);
                        // Earlier jobs of this same push haven't bumped
                        // `decoded` yet; account for them in the index.
                        let index = self.decoded + jobs.len();
                        jobs.push(GroupJob {
                            index,
                            erased: 0,
                            slots: tiles.into_iter().map(Some).collect(),
                        });
                    }
                }
            }
            None if resilient => {
                if seq < self.next_seq {
                    self.report.stale_records += 1;
                    return Ok(());
                }
                if seq > self.next_seq {
                    self.report.frames_lost += (seq - self.next_seq) as usize;
                    if self.delta.is_some() {
                        self.reanchor = true;
                    }
                }
                self.next_seq = seq + 1;
                out.push(self.decode_indexed(&frame, seq as usize)?);
            }
            None => out.push(self.decode(&frame)?),
        }
        Ok(())
    }

    /// Routes one resilient tiled record into its group slot, flushing
    /// groups (into `jobs`) as they complete or as the stream moves
    /// past them.
    fn push_resilient_tile(
        &mut self,
        seq: u64,
        frame: CompressedFrame,
        layout: &TileLayout,
        jobs: &mut Vec<GroupJob>,
    ) {
        let tiles = layout.tiles();
        let frame_idx = seq as usize / tiles;
        let tile_idx = seq as usize % tiles;
        if frame_idx < self.group_floor || self.group_idx.is_some_and(|g| frame_idx < g) {
            self.report.stale_records += 1;
            return;
        }
        if let Some(current) = self.group_idx {
            if frame_idx > current {
                // The stream moved on: stitch what we have.
                jobs.extend(self.flush_group(layout));
            }
        }
        if self.group_idx.is_none() {
            // Frames between the floor and this record lost every tile.
            self.report.frames_lost += frame_idx - self.group_floor;
            self.group_floor = frame_idx;
            self.group_idx = Some(frame_idx);
            self.slots.clear();
            self.slots.resize(tiles, None);
        }
        if self.slots[tile_idx].is_some() {
            self.report.stale_records += 1;
        } else {
            self.slots[tile_idx] = Some(frame);
            if self.slots.iter().all(Option::is_some) {
                jobs.extend(self.flush_group(layout));
            }
        }
    }

    /// Closes the in-progress tile group into a decode job, or drops it
    /// (strict policy / nothing survived), keeping the tile-level
    /// report accounting here so counters reflect stream order even
    /// though the solve happens later in [`DecodeSession::decode_jobs`].
    fn flush_group(&mut self, layout: &TileLayout) -> Option<GroupJob> {
        let frame_idx = self.group_idx.take()?;
        self.group_floor = frame_idx + 1;
        let total = layout.tiles();
        let present = self.slots.iter().flatten().count();
        if present == 0 || (self.policy == ErasurePolicy::Strict && present < total) {
            self.report.frames_lost += 1;
            return None;
        }
        self.report.tiles_recovered += present;
        self.report.tiles_erased += total - present;
        Some(GroupJob {
            index: frame_idx,
            erased: total - present,
            slots: std::mem::take(&mut self.slots),
        })
    }

    /// Decodes one frame directly, bypassing the stream container (for
    /// callers that already hold parsed [`CompressedFrame`]s). The
    /// frame is decoded as an untiled capture — tiled decoding needs
    /// the stream's tile layout, which only
    /// [`DecodeSession::push_bytes`] sees.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FrameMismatch`] if the frame does not match
    /// the session, plus any recovery error.
    pub fn push_frame(&mut self, frame: &CompressedFrame) -> Result<DecodedFrame, CoreError> {
        self.decode(frame)
    }

    /// Picks the execution route for this session's tiled decodes.
    /// Nested use — a session decoding *on* a pool worker, e.g. a
    /// batch stream job — runs serially on the worker's own warm
    /// workspace instead of re-entering the pool.
    fn tile_route(&self) -> TileRoute {
        if self.threads <= 1 {
            TileRoute::Serial
        } else if self.executor == DecodeExecutor::SpawnPerCall {
            TileRoute::Spawn
        } else if pool::is_worker_thread() {
            TileRoute::Serial
        } else {
            TileRoute::Pool
        }
    }

    /// Decodes buffered tile groups in stream order, appending the
    /// stitched frames to `out`. On the pooled route the tiles of
    /// *every* group fan out across the pool in one map — so a push
    /// that completed several frames pipelines them — while stitching
    /// and report accounting stay sequential in stream order, keeping
    /// output and counters bit-identical to group-at-a-time decoding.
    ///
    /// On a tile decode error the frames stitched before it stay in
    /// `out` (the caller defers the error per the push contract) and
    /// later groups are dropped with the session's sticky error.
    fn decode_jobs(
        &mut self,
        jobs: Vec<GroupJob>,
        layout: &TileLayout,
        out: &mut Vec<DecodedFrame>,
    ) -> Result<(), CoreError> {
        let route = self.tile_route();
        if route == TileRoute::Pool {
            return self.decode_jobs_pooled(jobs, layout, out);
        }
        for job in jobs {
            let decoded = self.decode_group(job, layout, route)?;
            out.push(decoded);
        }
        Ok(())
    }

    /// Decodes one tile group on the serial or spawn-per-call route.
    fn decode_group(
        &mut self,
        job: GroupJob,
        layout: &TileLayout,
        route: TileRoute,
    ) -> Result<DecodedFrame, CoreError> {
        let GroupJob {
            index,
            erased,
            slots,
        } = job;
        let Some(first) = slots.iter().flatten().next() else {
            return Err(CoreError::InvalidConfig(
                "tile group has no surviving tile".into(),
            ));
        };
        self.ensure_primed(&first.header)?;
        let Some(decoder) = self.decoder.clone() else {
            return Err(CoreError::InvalidConfig(
                "decode session has no primed decoder".into(),
            ));
        };
        let recons: Vec<Option<Result<Reconstruction, CoreError>>> = if route == TileRoute::Spawn {
            par_map(self.threads, &slots, |_, slot| {
                slot.as_ref().map(|frame| {
                    let mut workspace = SolverWorkspace::default();
                    decoder.reconstruct_with(frame, &mut workspace)
                })
            })
        } else {
            // Inline: reuse the session workspace across tiles (the
            // workspace never changes results, only allocations).
            let workspace = &mut self.workspace;
            slots
                .iter()
                .map(|slot| {
                    slot.as_ref()
                        .map(|frame| decoder.reconstruct_with(frame, workspace))
                })
                .collect()
        };
        let mut solved = Vec::with_capacity(recons.len());
        for recon in recons {
            solved.push(recon.transpose()?);
        }
        Ok(self.emit_group(index, erased, &solved, layout))
    }

    /// Decodes tile groups on the persistent pool: all present tiles of
    /// all groups flatten into one task list, so one map exploits both
    /// tile- and frame-level parallelism; each executor solves on its
    /// sticky per-geometry workspace (zero allocation once warm).
    fn decode_jobs_pooled(
        &mut self,
        mut jobs: Vec<GroupJob>,
        layout: &TileLayout,
        out: &mut Vec<DecodedFrame>,
    ) -> Result<(), CoreError> {
        let Some(first) = jobs.iter().flat_map(|j| j.slots.iter().flatten()).next() else {
            return Err(CoreError::InvalidConfig(
                "tile group has no surviving tile".into(),
            ));
        };
        let key = scratch_key(&first.header);
        self.ensure_primed(&first.header)?;
        let Some(decoder) = self.decoder.clone() else {
            return Err(CoreError::InvalidConfig(
                "decode session has no primed decoder".into(),
            ));
        };
        let tiles_per = layout.tiles();
        let mut items: Vec<(usize, CompressedFrame)> = Vec::new();
        for (j, job) in jobs.iter_mut().enumerate() {
            for (t, slot) in job.slots.iter_mut().enumerate() {
                if let Some(frame) = slot.take() {
                    items.push((j * tiles_per + t, frame));
                }
            }
        }
        let solved = WorkerPool::global().map(self.threads, items, move |_, (slot, frame), s| {
            let workspace = s.slot::<SolverWorkspace, _>(key, SolverWorkspace::default);
            (slot, decoder.reconstruct_with(&frame, workspace))
        });
        let mut recons: Vec<Option<Result<Reconstruction, CoreError>>> = Vec::new();
        recons.resize_with(jobs.len() * tiles_per, || None);
        for (slot, result) in solved {
            recons[slot] = Some(result);
        }
        for (j, job) in jobs.into_iter().enumerate() {
            let mut group = Vec::with_capacity(tiles_per);
            for recon in recons[j * tiles_per..(j + 1) * tiles_per]
                .iter_mut()
                .map(Option::take)
            {
                group.push(recon.transpose()?);
            }
            out.push(self.emit_group(job.index, job.erased, &group, layout));
        }
        Ok(())
    }

    /// Stitches one solved group and applies the frame-level
    /// accounting, in stream order.
    fn emit_group(
        &mut self,
        index: usize,
        erased: usize,
        recons: &[Option<Reconstruction>],
        layout: &TileLayout,
    ) -> DecodedFrame {
        let reconstruction = stitch_group(recons, layout, self.policy);
        self.decoded += 1;
        if erased == 0 {
            self.report.frames_recovered += 1;
        } else {
            self.report.frames_degraded += 1;
        }
        DecodedFrame {
            index,
            is_key: true,
            erased_tiles: erased,
            reconstruction,
        }
    }

    /// Warms the decode executors for `frame`'s geometry: primes the
    /// decoder (operator-cache build) and runs one solve of `frame` on
    /// every executor a pooled tiled decode would use — the calling
    /// thread plus `threads − 1` distinct pool workers — so each
    /// acquires its sticky per-geometry [`SolverWorkspace`]. After a
    /// prewarm, steady-state pooled decodes of same-geometry streams
    /// spawn no threads and allocate nothing.
    ///
    /// Serial (and nested / spawn-per-call) configurations warm the
    /// session's own workspace instead. Solve failures while warming
    /// are ignored — warming is best-effort and never changes results.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedFrame`] for a degenerate header.
    pub fn prewarm(&mut self, frame: &CompressedFrame) -> Result<(), CoreError> {
        self.ensure_primed(&frame.header)?;
        let Some(decoder) = self.decoder.clone() else {
            return Err(CoreError::InvalidConfig(
                "decode session has no primed decoder".into(),
            ));
        };
        if self.tile_route() == TileRoute::Pool {
            let key = scratch_key(&frame.header);
            let frame = frame.clone();
            WorkerPool::global().broadcast(self.threads, move |s| {
                let workspace = s.slot::<SolverWorkspace, _>(key, SolverWorkspace::default);
                let _ = decoder.reconstruct_with(&frame, workspace);
            });
        } else {
            let _ = decoder.reconstruct_with(frame, &mut self.workspace);
        }
        Ok(())
    }

    fn decode(&mut self, frame: &CompressedFrame) -> Result<DecodedFrame, CoreError> {
        let index = self.decoded;
        self.decode_indexed(frame, index)
    }

    fn decode_indexed(
        &mut self,
        frame: &CompressedFrame,
        index: usize,
    ) -> Result<DecodedFrame, CoreError> {
        self.ensure_primed(&frame.header)?;
        if std::mem::take(&mut self.reanchor) {
            // A gap swallowed the frame the next delta would chain
            // from: drop the chain and re-anchor with full recovery.
            self.prev_samples = None;
            self.prev_codes = None;
            self.frames_since_key = 0;
            self.report.reanchors += 1;
        }
        let is_key = match (&self.delta, &self.prev_samples) {
            (Some(delta), Some(prev)) => {
                if self.header.as_ref() != Some(&frame.header) || prev.len() != frame.samples.len()
                {
                    return Err(CoreError::FrameMismatch(
                        "sequence frames must share header and sample count".into(),
                    ));
                }
                delta.keyframe_interval > 0 && self.frames_since_key >= delta.keyframe_interval
            }
            _ => true,
        };
        let reconstruction = if is_key {
            let Some(decoder) = self.decoder.as_ref() else {
                return Err(CoreError::InvalidConfig(
                    "decode session has no primed decoder".into(),
                ));
            };
            let recon = decoder.reconstruct_with(frame, &mut self.workspace)?;
            self.frames_since_key = 0;
            self.last_mean = recon.mean_code();
            recon
        } else {
            self.decode_delta(frame)?
        };
        if self.delta.is_some() {
            if !is_key {
                self.frames_since_key += 1;
            }
            self.prev_samples = Some(frame.samples.clone());
            self.prev_codes = Some(reconstruction.code_image().clone());
        }
        self.decoded += 1;
        self.report.frames_recovered += 1;
        Ok(DecodedFrame {
            index,
            is_key,
            erased_tiles: 0,
            reconstruction,
        })
    }

    /// Delta recovery: `y_t − y_{t−1} = Φ(x_t − x_{t−1})`, solved
    /// pixel-sparse (IHT, identity dictionary) against the previous
    /// reconstruction. Same seed ⇒ same Φ, so the operator comes warm
    /// from the cache.
    fn decode_delta(&mut self, frame: &CompressedFrame) -> Result<Reconstruction, CoreError> {
        let (Some(prev_samples), Some(prev_codes), Some(delta), Some(decoder)) = (
            self.prev_samples.as_ref(),
            self.prev_codes.as_ref(),
            self.delta,
            self.decoder.as_ref(),
        ) else {
            return Err(CoreError::InvalidConfig(
                "delta decode needs a primed decoder, delta mode, and a previous frame".into(),
            ));
        };
        let dy: Vec<f64> = frame
            .samples
            .iter()
            .zip(prev_samples)
            .map(|(&a, &b)| a as f64 - b as f64)
            .collect();
        let (phi, _) = self
            .cache
            .operator(&decoder.operator_key(frame.samples.len()))?;
        let dict = IdentityDictionary::new(prev_codes.len());
        let a =
            ComposedOperator::new(phi.as_ref(), &dict).with_scratch(self.workspace.take_composed());
        let rec =
            Iht::new(delta.sparsity)
                .max_iter(200)
                .solve_with(&a, &dy, &mut self.workspace)?;
        self.workspace.store_composed(a.into_scratch());
        let code_max = ((1u32 << frame.header.code_bits) - 1) as f64;
        let codes = ImageF64::from_vec(
            prev_codes.width(),
            prev_codes.height(),
            prev_codes
                .as_slice()
                .iter()
                .zip(&rec.coefficients)
                .map(|(&p, &d)| (p + d).clamp(0.0, code_max))
                .collect(),
        );
        Ok(Reconstruction::from_parts(codes, self.last_mean, rec.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tepics_imaging::{psnr, Scene};
    use tepics_sensor::Fidelity;

    fn imager(side: usize, seed: u64) -> CompressiveImager {
        CompressiveImager::builder(side, side)
            .ratio(0.35)
            .seed(seed)
            .fidelity(Fidelity::Functional)
            .build()
            .unwrap()
    }

    #[test]
    fn session_roundtrip_matches_per_frame_pipeline() {
        // The acceptance property: a sequence encoded via
        // EncodeSession::to_bytes and decoded via push_bytes round-trips
        // bit-identically to per-frame capture/reconstruct.
        let im = imager(16, 42);
        let scenes: Vec<ImageF64> = (0..4)
            .map(|i| Scene::gaussian_blobs(2).render(16, 16, i))
            .collect();
        let mut enc = EncodeSession::new(im.clone()).unwrap();
        let mut per_frame = Vec::new();
        for scene in &scenes {
            let frame = im.capture(scene);
            let cold = Decoder::for_frame(&frame)
                .unwrap()
                .reconstruct(&frame)
                .unwrap();
            per_frame.push(cold);
            enc.capture(scene).unwrap();
        }
        let mut dec = DecodeSession::new();
        let decoded = dec.push_bytes(&enc.to_bytes()).unwrap();
        assert_eq!(decoded.len(), scenes.len());
        for (d, cold) in decoded.iter().zip(&per_frame) {
            assert_eq!(d.reconstruction, *cold, "frame {}", d.index);
            assert!(d.is_key);
        }
    }

    #[test]
    fn chunked_delivery_decodes_incrementally() {
        let im = imager(16, 7);
        let mut enc = EncodeSession::new(im).unwrap();
        for i in 0..3 {
            enc.capture(&Scene::gaussian_blobs(2).render(16, 16, i))
                .unwrap();
        }
        let bytes = enc.into_bytes();
        let mut dec = DecodeSession::new();
        let mut total = 0;
        for chunk in bytes.chunks(97) {
            total += dec.push_bytes(chunk).unwrap().len();
        }
        assert_eq!(total, 3);
        assert_eq!(dec.frames_decoded(), 3);
        assert_eq!(dec.buffered_bytes(), 0);
    }

    #[test]
    fn operator_cache_hits_across_frames() {
        let im = imager(16, 5);
        let mut enc = EncodeSession::new(im).unwrap();
        for i in 0..4 {
            enc.capture(&Scene::gaussian_blobs(2).render(16, 16, i))
                .unwrap();
        }
        let mut dec = DecodeSession::new();
        dec.push_bytes(&enc.to_bytes()).unwrap();
        let stats = dec.cache().stats();
        assert_eq!(stats.misses, 1, "one cold build");
        assert_eq!(stats.hits, 3, "three warm frames");
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn delta_mode_matches_sequence_decoder_semantics() {
        let im = imager(24, 0xCAFE);
        let scene = Scene::gaussian_blobs(3).render(24, 24, 5);
        let frame = im.capture(&scene);
        let mut session = DecodeSession::new();
        session.delta_mode(20, 0);
        let key = session.push_frame(&frame).unwrap();
        assert!(key.is_key);
        // Identical second frame: zero delta, identical reconstruction.
        let second = session.push_frame(&frame).unwrap();
        assert!(!second.is_key);
        assert_eq!(
            key.reconstruction.code_image(),
            second.reconstruction.code_image()
        );
    }

    #[test]
    fn delta_mode_rejects_mismatched_frames() {
        let im1 = imager(16, 1);
        let im2 = imager(16, 2);
        let scene = Scene::Uniform(0.5).render(16, 16, 0);
        let f1 = im1.capture(&scene);
        let f2 = im2.capture(&scene);
        let mut session = DecodeSession::new();
        session.delta_mode(10, 0);
        session.push_frame(&f1).unwrap();
        assert!(matches!(
            session.push_frame(&f2),
            Err(CoreError::FrameMismatch(_))
        ));
    }

    #[test]
    fn keyframe_interval_refreshes_full_recovery() {
        let im = imager(16, 0xCC);
        let scene = Scene::gaussian_blobs(3).render(16, 16, 9);
        let frame = im.capture(&scene);
        let mut session = DecodeSession::new();
        session.delta_mode(20, 2);
        let flags: Vec<bool> = (0..5)
            .map(|_| session.push_frame(&frame).unwrap().is_key)
            .collect();
        assert_eq!(flags, vec![true, false, false, true, false]);
    }

    #[test]
    fn session_tracks_quality_of_a_moving_sequence() {
        let im = imager(24, 0x5E9);
        let mut enc = EncodeSession::new(im.clone()).unwrap();
        let mut truths = Vec::new();
        for t in 0..4 {
            let mut scene = Scene::gaussian_blobs(2).render(24, 24, 77);
            for dy in 0..2 {
                for dx in 0..2 {
                    scene.set(3 + t * 3 + dx, 10 + dy, 0.95);
                }
            }
            truths.push(im.ideal_codes(&scene).to_code_f64());
            enc.capture(&scene).unwrap();
        }
        let mut dec = DecodeSession::new();
        dec.delta_mode(40, 0);
        let decoded = dec.push_bytes(&enc.to_bytes()).unwrap();
        for (d, truth) in decoded.iter().zip(&truths) {
            let db = psnr(truth, d.reconstruction.code_image(), 255.0);
            assert!(db > 22.0, "frame {}: {db:.1} dB", d.index);
        }
    }

    fn tiled_imager(seed: u64) -> CompressiveImager {
        use tepics_imaging::tile::{FrameGeometry, TileConfig};
        CompressiveImager::builder_for(FrameGeometry::new(40, 28))
            .tiling(TileConfig::new(16).overlap(4))
            .ratio(0.35)
            .seed(seed)
            .fidelity(Fidelity::Functional)
            .build()
            .unwrap()
    }

    #[test]
    fn tiled_session_roundtrips_stitched_frames() {
        let im = tiled_imager(21);
        let layout = im.tile_layout().unwrap().clone();
        let mut enc = EncodeSession::new(im).unwrap();
        let scenes: Vec<ImageF64> = (0..2)
            .map(|i| Scene::gaussian_blobs(3).render(40, 28, i))
            .collect();
        for scene in &scenes {
            let records = enc.capture(scene).unwrap();
            assert_eq!(records.len(), layout.tiles());
        }
        assert_eq!(enc.frames(), 2);
        assert_eq!(enc.records(), 2 * layout.tiles());

        let mut dec = DecodeSession::new();
        let decoded = dec.push_bytes(&enc.to_bytes()).unwrap();
        assert_eq!(decoded.len(), 2, "six records stitch into one frame each");
        assert_eq!(dec.tile_layout(), Some(&layout));
        for d in &decoded {
            let img = d.reconstruction.code_image();
            assert_eq!((img.width(), img.height()), (40, 28));
            assert!(d.is_key);
        }
        // One operator serves every tile of every frame.
        let stats = dec.cache().stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2 * layout.tiles() as u64 - 1);
    }

    #[test]
    fn tiled_decode_is_bit_identical_across_thread_counts() {
        let im = tiled_imager(0xA11CE);
        let mut enc = EncodeSession::new(im).unwrap();
        enc.capture(&Scene::natural_like().render(40, 28, 3))
            .unwrap();
        let bytes = enc.into_bytes();

        let mut baseline = DecodeSession::new();
        let serial = baseline.push_bytes(&bytes).unwrap();
        for threads in [2, 4, 7] {
            let mut dec = DecodeSession::new();
            dec.threads(threads);
            let parallel = dec.push_bytes(&bytes).unwrap();
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn tiled_decode_quality_tracks_the_scene() {
        let im = tiled_imager(77);
        let scene = Scene::gaussian_blobs(3).render(40, 28, 11);
        let ideal = {
            // Ideal codes of the full frame, from an untiled imager with
            // the same sensor settings.
            let full = CompressiveImager::builder(28, 40)
                .ratio(0.35)
                .fidelity(Fidelity::Functional)
                .build()
                .unwrap();
            full.ideal_codes(&scene).to_code_f64()
        };
        let mut enc = EncodeSession::new(im).unwrap();
        enc.capture(&scene).unwrap();
        let mut dec = DecodeSession::new();
        let decoded = dec.push_bytes(&enc.to_bytes()).unwrap();
        let db = psnr(&ideal, decoded[0].reconstruction.code_image(), 255.0);
        assert!(db > 20.0, "stitched decode too poor: {db:.1} dB");
    }

    #[test]
    fn delta_mode_conflicts_with_tiled_streams() {
        let im = tiled_imager(5);
        let mut enc = EncodeSession::new(im).unwrap();
        enc.capture(&Scene::Uniform(0.4).render(40, 28, 0)).unwrap();
        let mut dec = DecodeSession::new();
        dec.delta_mode(10, 0);
        assert!(matches!(
            dec.push_bytes(&enc.to_bytes()),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn partial_tile_groups_wait_for_the_rest() {
        let im = tiled_imager(8);
        let layout = im.tile_layout().unwrap().clone();
        let mut enc = EncodeSession::new(im).unwrap();
        enc.capture(&Scene::gaussian_blobs(2).render(40, 28, 1))
            .unwrap();
        let bytes = enc.into_bytes();
        let mut dec = DecodeSession::new();
        // Feed everything except the last record's final byte: no frame
        // may surface yet.
        let out = dec.push_bytes(&bytes[..bytes.len() - 1]).unwrap();
        assert!(out.is_empty(), "incomplete tile group must not decode");
        let out = dec.push_bytes(&bytes[bytes.len() - 1..]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(
            dec.tile_layout().map(TileLayout::tiles),
            Some(layout.tiles())
        );
    }

    #[test]
    fn corrupt_stream_surfaces_malformed_frame() {
        let im = imager(16, 3);
        let mut enc = EncodeSession::new(im).unwrap();
        enc.capture(&Scene::Uniform(0.4).render(16, 16, 0)).unwrap();
        let mut bytes = enc.into_bytes();
        bytes[2] ^= 0xFF; // corrupt the magic
        let mut dec = DecodeSession::new();
        assert!(matches!(
            dec.push_bytes(&bytes),
            Err(CoreError::MalformedFrame(_))
        ));
    }

    /// Byte span of resilient record `i` (its sync word excluded) for a
    /// stream whose records all have the same payload size.
    fn record_span(header_len: usize, rec_len: usize, i: usize) -> (usize, usize) {
        let start = header_len + 4 * (i / crate::stream::SYNC_INTERVAL + 1) + i * rec_len;
        (start, start + rec_len)
    }

    fn resilient_record_len(samples: usize, sample_bits: usize) -> usize {
        crate::stream::RESILIENT_RECORD_PREFIX_BYTES + (samples * sample_bits).div_ceil(8) + 1
    }

    #[test]
    fn clean_resilient_session_decodes_identical_to_compact() {
        for tiled in [false, true] {
            let im = if tiled {
                tiled_imager(31)
            } else {
                imager(16, 31)
            };
            let (w, h) = if tiled { (40, 28) } else { (16, 16) };
            let mut compact = EncodeSession::new(im.clone()).unwrap();
            let mut resilient = EncodeSession::with_profile(im, WireProfile::Resilient).unwrap();
            for i in 0..3 {
                let scene = Scene::gaussian_blobs(2).render(w, h, i);
                compact.capture(&scene).unwrap();
                resilient.capture(&scene).unwrap();
            }
            assert_eq!(resilient.wire_version(), STREAM_VERSION_RESILIENT);
            let a = DecodeSession::new()
                .push_bytes(&compact.into_bytes())
                .unwrap();
            let mut dec = DecodeSession::new();
            let mut b = dec.push_bytes(&resilient.into_bytes()).unwrap();
            b.extend(dec.finish().unwrap());
            assert_eq!(a, b, "tiled={tiled}: clean v3 must match v1/v2 decode");
            let report = dec.report();
            assert_eq!(report.frames_recovered, 3);
            assert_eq!(report.frames_degraded + report.frames_lost, 0);
            assert_eq!(report.corrupt_events, 0);
            assert!((report.recovered_fraction() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn erased_tile_degrades_gracefully_per_policy() {
        let im = tiled_imager(77);
        let layout = im.tile_layout().unwrap().clone();
        let mut enc = EncodeSession::with_profile(im, WireProfile::Resilient).unwrap();
        let frames = enc
            .capture(&Scene::gaussian_blobs(3).render(40, 28, 5))
            .unwrap();
        let bytes = enc.into_bytes();
        let rec_len = resilient_record_len(
            frames[0].samples.len(),
            frames[0].header.sample_bits as usize,
        );
        let (start, end) = record_span(crate::stream::RESILIENT_TILED_HEADER_BYTES, rec_len, 2);
        // Damage tile record 2's payload: its CRC fails, the tile is
        // erased, the other five stitch.
        let mut dirty = bytes.clone();
        dirty[start + 15] ^= 0x10;
        assert!(end <= bytes.len());

        for policy in [ErasurePolicy::NeighborBlend, ErasurePolicy::FlaggedZero] {
            let mut dec = DecodeSession::new();
            dec.erasure_policy(policy);
            let mut out = dec.push_bytes(&dirty).unwrap();
            out.extend(dec.finish().unwrap());
            assert_eq!(out.len(), 1, "{policy:?}");
            assert_eq!(out[0].erased_tiles, 1);
            assert_eq!(out[0].index, 0);
            let img = out[0].reconstruction.code_image();
            assert_eq!((img.width(), img.height()), (40, 28));
            assert!(img.as_slice().iter().all(|v| v.is_finite()));
            let report = dec.report();
            assert_eq!(report.frames_degraded, 1);
            assert_eq!(report.tiles_erased, 1);
            assert_eq!(report.tiles_recovered, layout.tiles() - 1);
            assert_eq!(report.corrupt_events, 1);
            assert!(report.bytes_skipped >= rec_len);
        }

        // Strict: the damaged frame is dropped, not stitched.
        let mut dec = DecodeSession::new();
        dec.erasure_policy(ErasurePolicy::Strict);
        let mut out = dec.push_bytes(&dirty).unwrap();
        out.extend(dec.finish().unwrap());
        assert!(out.is_empty());
        assert_eq!(dec.report().frames_lost, 1);
    }

    #[test]
    fn delta_mode_reanchors_after_a_dropped_frame() {
        let im = imager(24, 0xD17A);
        let header = im.frame_header();
        let scenes: Vec<ImageF64> = (0..5)
            .map(|i| Scene::gaussian_blobs(2).render(24, 24, 40 + i as u64))
            .collect();
        let mut enc = EncodeSession::with_profile(im, WireProfile::Resilient).unwrap();
        let mut captured = Vec::new();
        for scene in &scenes {
            captured.extend(enc.capture(scene).unwrap());
        }
        let bytes = enc.into_bytes();
        let rec_len = resilient_record_len(captured[0].samples.len(), header.sample_bits as usize);
        // Excise record 2 completely: a gap, not in-place corruption.
        let (start, end) = record_span(crate::stream::RESILIENT_HEADER_BYTES, rec_len, 2);
        let mut gapped = bytes[..start].to_vec();
        gapped.extend_from_slice(&bytes[end..]);

        let mut dec = DecodeSession::new();
        dec.delta_mode(30, 0);
        let out = dec.push_bytes(&gapped).unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(
            out.iter().map(|d| d.index).collect::<Vec<_>>(),
            vec![0, 1, 3, 4],
            "true stream positions survive the gap"
        );
        assert!(out[2].is_key, "first frame after the gap re-anchors");
        assert!(!out[3].is_key, "chaining resumes after the re-anchor");
        let report = dec.report();
        assert_eq!(report.frames_lost, 1);
        assert_eq!(report.reanchors, 1);
        // The re-anchored frame is a *full* recovery: bit-identical to
        // decoding record 3 fresh in its own session.
        let fresh = DecodeSession::new().push_frame(&captured[3]).unwrap();
        assert_eq!(
            out[2].reconstruction, fresh.reconstruction,
            "re-anchor must not chain across the gap"
        );
    }
}
