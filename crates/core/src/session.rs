//! Stateful codec sessions: the stream-oriented public API.
//!
//! The paper's deployment is a *stream*: a camera node captures frame
//! after frame with one seed, and only compressed samples (plus that
//! 64-bit seed, once) cross the wire. [`EncodeSession`] is the capture
//! side — it owns a [`CompressiveImager`] and appends every captured
//! frame to one contiguous [`stream`](crate::stream) container.
//! [`DecodeSession`] is the receiver — it consumes bytes incrementally
//! ([`DecodeSession::push_bytes`] returns zero or more decoded frames as
//! records complete) and owns an [`OperatorCache`], so the measurement
//! operator, dictionary, and FISTA step size are built once and reused
//! across every frame of the stream (and, when the cache is shared,
//! across batch items with the same seed).
//!
//! Sessions subsume the older single-frame entry points:
//!
//! | frame API (still works)                    | session API                           |
//! |--------------------------------------------|---------------------------------------|
//! | `imager.capture(&scene)` + `to_bytes()`    | `enc.capture(&scene)` + `to_bytes()`  |
//! | `CompressedFrame::from_bytes` + `Decoder`  | `dec.push_bytes(&bytes)`              |
//! | `SequenceDecoder::push` (removed)          | `dec.delta_mode(..)` + `push_bytes`   |
//!
//! # Tiled streams
//!
//! When the imager is tiled (built with
//! [`CompressiveImagerBuilder::tiling`](crate::imager::CompressiveImagerBuilder::tiling)),
//! the session writes a version-2 stream whose header carries the tile
//! layout; each captured scene contributes one record per tile. The
//! decode side detects the layout from the wire, buffers each complete
//! tile group, recovers the tiles independently — in parallel across
//! [`DecodeSession::threads`] workers — and stitches them with overlap
//! blending into one full-frame [`Reconstruction`]. Stitching order is
//! deterministic, so decoded frames are bit-identical at every thread
//! count.
//!
//! # Examples
//!
//! ```
//! use tepics_core::prelude::*;
//! use tepics_core::session::{DecodeSession, EncodeSession};
//!
//! let imager = CompressiveImager::builder(16, 16)
//!     .ratio(0.35)
//!     .seed(9)
//!     .fidelity(Fidelity::Functional)
//!     .build()
//!     .unwrap();
//! let mut enc = EncodeSession::new(imager).unwrap();
//! for i in 0..3 {
//!     let scene = Scene::gaussian_blobs(2).render(16, 16, i);
//!     enc.capture(&scene).unwrap();
//! }
//!
//! let mut dec = DecodeSession::new();
//! let decoded = dec.push_bytes(&enc.to_bytes()).unwrap();
//! assert_eq!(decoded.len(), 3);
//! // Frames 2 and 3 reused the operator built for frame 1.
//! assert_eq!(dec.cache().stats().hits, 2);
//! ```

use std::sync::Arc;

use crate::cache::OperatorCache;
use crate::decoder::{Decoder, DictionaryKind, Reconstruction};
use crate::error::CoreError;
use crate::frame::{CompressedFrame, FrameHeader};
use crate::imager::CompressiveImager;
use crate::solver::{RecoveryParams, SolverKind};
use crate::stream::{StreamParser, StreamWriter};
use tepics_cs::dictionary::IdentityDictionary;
use tepics_cs::ComposedOperator;
use tepics_imaging::tile::{merge_tiles, TileLayout};
use tepics_imaging::ImageF64;
use tepics_recovery::{Iht, SolveStats, SolverWorkspace};
use tepics_sensor::EventStats;
use tepics_util::parallel::par_map;

/// Capture-side session: scenes in, one contiguous wire stream out.
#[derive(Debug, Clone)]
pub struct EncodeSession {
    imager: CompressiveImager,
    writer: StreamWriter,
}

impl EncodeSession {
    /// Opens an encode session around `imager`; the stream header is
    /// written immediately. A tiled imager opens a version-2 (tiled)
    /// stream whose header carries the tile layout.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedFrame`] if the imager's header
    /// cannot be represented by the container (e.g. samples wider than
    /// 32 bits).
    pub fn new(imager: CompressiveImager) -> Result<EncodeSession, CoreError> {
        let writer = match imager.tile_layout() {
            Some(layout) => StreamWriter::new_tiled(imager.frame_header(), layout)?,
            None => StreamWriter::new(imager.frame_header())?,
        };
        Ok(EncodeSession { imager, writer })
    }

    /// The imager driving this session.
    pub fn imager(&self) -> &CompressiveImager {
        &self.imager
    }

    /// The stream header (shared by every frame record of the session;
    /// the **tile** header for a tiled imager).
    pub fn header(&self) -> &FrameHeader {
        self.writer.header()
    }

    /// The tile layout of a tiled session's stream, `None` otherwise.
    pub fn tile_layout(&self) -> Option<&TileLayout> {
        self.writer.tile_layout()
    }

    /// Captures a scene and appends it to the stream; the captured
    /// frame records are returned for local inspection — one per tile
    /// for a tiled imager (row-major tile order), a single record
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Propagates container errors (which cannot occur for frames the
    /// session's own imager produced).
    ///
    /// # Panics
    ///
    /// Panics if the scene dimensions do not match the frame geometry.
    pub fn capture(&mut self, scene: &ImageF64) -> Result<Vec<CompressedFrame>, CoreError> {
        self.capture_with_stats(scene).map(|(frames, _)| frames)
    }

    /// Like [`EncodeSession::capture`], also returning the event-level
    /// statistics of the capture (merged across tiles for a tiled
    /// imager).
    ///
    /// # Errors
    ///
    /// Propagates container errors.
    ///
    /// # Panics
    ///
    /// Panics if the scene dimensions do not match the frame geometry.
    pub fn capture_with_stats(
        &mut self,
        scene: &ImageF64,
    ) -> Result<(Vec<CompressedFrame>, EventStats), CoreError> {
        let (frames, stats) = self.imager.capture_tiles_with_stats(scene);
        for frame in &frames {
            self.writer.push_frame(frame)?;
        }
        Ok((frames, stats))
    }

    /// Appends a pre-captured frame record (it must match the stream
    /// header; for a tiled stream the caller is responsible for pushing
    /// complete row-major tile groups).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FrameMismatch`] on a header mismatch.
    pub fn push_frame(&mut self, frame: &CompressedFrame) -> Result<(), CoreError> {
        self.writer.push_frame(frame)
    }

    /// Number of scenes captured into the stream so far (each scene is
    /// one record untiled, `layout.tiles()` records tiled).
    pub fn frames(&self) -> usize {
        let per_frame = self
            .writer
            .tile_layout()
            .map_or(1, tepics_imaging::tile::TileLayout::tiles);
        self.writer.frames() / per_frame
    }

    /// Number of frame records written to the stream so far (equals
    /// [`EncodeSession::frames`] for untiled sessions).
    pub fn records(&self) -> usize {
        self.writer.frames()
    }

    /// Total wire size of the stream so far, in bits.
    pub fn wire_bits(&self) -> usize {
        self.writer.wire_bits()
    }

    /// The serialized stream so far (header + all frames).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        self.writer.bytes().to_vec()
    }

    /// Consumes the session, returning the serialized stream.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.writer.into_bytes()
    }
}

/// Delta-decoding configuration of a [`DecodeSession`].
#[derive(Debug, Clone, Copy)]
struct DeltaMode {
    sparsity: usize,
    keyframe_interval: usize,
}

/// One decoded frame out of a [`DecodeSession`].
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedFrame {
    /// Position of the frame in the stream (0-based).
    pub index: usize,
    /// Whether this frame ran full sparse recovery (`true`) or delta
    /// recovery against the previous reconstruction (`false`). Always
    /// `true` outside delta mode.
    pub is_key: bool,
    /// The reconstruction.
    pub reconstruction: Reconstruction,
}

/// Receiver-side session: wire bytes in, reconstructed frames out.
///
/// Bytes may arrive in arbitrary chunks; each [`DecodeSession::push_bytes`]
/// call returns the frames completed by that chunk. All decoding state —
/// the rebuilt measurement operator, the dictionary, the per-solver
/// operator-norm estimate, the column-materialized view (for greedy
/// solvers), the solver workspace, and (in delta mode) the previous
/// reconstruction — lives in the session, keyed by the stream header,
/// so a long same-seed sequence pays the operator construction cost
/// exactly once and, once warm, decodes frames with zero heap
/// allocation inside the solver loop (the cached Φ carries its
/// precompiled gather structure; the workspace carries the iterate,
/// greedy, and least-squares buffers). The allocation-free guarantee
/// covers every [`SolverKind`] — including the greedy pursuits and the
/// CGLS debias pass.
#[derive(Debug, Clone, Default)]
pub struct DecodeSession {
    parser: StreamParser,
    cache: Arc<OperatorCache>,
    decoder: Option<Decoder>,
    dictionary: DictionaryKind,
    algorithm: SolverKind,
    delta: Option<DeltaMode>,
    header: Option<FrameHeader>,
    prev_samples: Option<Vec<u32>>,
    prev_codes: Option<ImageF64>,
    last_mean: f64,
    frames_since_key: usize,
    decoded: usize,
    /// Worker threads for tiled decodes (0 and 1 both mean inline).
    threads: usize,
    /// Tile records of the frame currently being assembled (tiled
    /// streams buffer `layout.tiles()` records before decoding).
    pending: Vec<CompressedFrame>,
    /// Reused solver buffers: one allocation for the whole stream.
    workspace: SolverWorkspace,
}

impl DecodeSession {
    /// A session with its own private [`OperatorCache`].
    #[must_use]
    pub fn new() -> DecodeSession {
        DecodeSession::default()
    }

    /// A session sharing `cache` (e.g. with other sessions of a batch,
    /// so same-seed items reuse one operator).
    #[must_use]
    pub fn with_cache(cache: Arc<OperatorCache>) -> DecodeSession {
        DecodeSession {
            cache,
            ..DecodeSession::default()
        }
    }

    /// The operator cache this session decodes through.
    pub fn cache(&self) -> &Arc<OperatorCache> {
        &self.cache
    }

    /// Selects the sparsifying dictionary for key frames.
    pub fn dictionary(&mut self, kind: DictionaryKind) -> &mut Self {
        self.dictionary = kind;
        if let Some(d) = &mut self.decoder {
            d.dictionary(kind);
        }
        self
    }

    /// Selects the recovery algorithm for key frames (any
    /// [`SolverKind`]).
    pub fn algorithm(&mut self, algorithm: SolverKind) -> &mut Self {
        self.algorithm = algorithm;
        if let Some(d) = &mut self.decoder {
            d.algorithm(algorithm);
        }
        self
    }

    /// Applies a bundled [`RecoveryParams`] (solver + dictionary) for
    /// key frames.
    pub fn params(&mut self, params: RecoveryParams) -> &mut Self {
        self.algorithm(params.solver).dictionary(params.dictionary)
    }

    /// Sets the worker-thread count for tiled decodes (default inline).
    /// Tiles of one frame are recovered concurrently and stitched in a
    /// deterministic order, so the result is **bit-identical for every
    /// thread count**; untiled decodes are unaffected.
    pub fn threads(&mut self, threads: usize) -> &mut Self {
        self.threads = threads;
        self
    }

    /// The tile layout of the stream being decoded, once a tiled
    /// (version-2) header has been parsed; `None` for version-1
    /// streams.
    pub fn tile_layout(&self) -> Option<&TileLayout> {
        self.parser.tile_layout()
    }

    /// Switches the session to sequence (delta) decoding: the first
    /// frame (and every `keyframe_interval`-th frame; 0 = never again)
    /// runs full recovery, intermediate frames recover only the
    /// pixel-sparse delta `Φ⁻¹(y_t − y_{t−1})` with an IHT budget of
    /// `sparsity` pixels. Frames must then share header *and* sample
    /// count.
    pub fn delta_mode(&mut self, sparsity: usize, keyframe_interval: usize) -> &mut Self {
        self.delta = Some(DeltaMode {
            sparsity: sparsity.max(1),
            keyframe_interval,
        });
        self
    }

    /// The stream header, once known (from priming or the first parsed
    /// bytes).
    pub fn header(&self) -> Option<&FrameHeader> {
        self.header.as_ref()
    }

    /// Number of frames decoded so far.
    pub fn frames_decoded(&self) -> usize {
        self.decoded
    }

    /// Bytes received but not yet consumed by a complete frame.
    pub fn buffered_bytes(&self) -> usize {
        self.parser.buffered_bytes()
    }

    /// Builds (or returns) the per-frame decoder for `header`, giving
    /// access to its dictionary/algorithm knobs before any frame is
    /// decoded.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedFrame`] for degenerate headers.
    pub fn prime(&mut self, header: &FrameHeader) -> Result<&mut Decoder, CoreError> {
        if self.decoder.is_none() {
            let mut decoder = Decoder::for_header(header)?;
            decoder
                .dictionary(self.dictionary)
                .algorithm(self.algorithm)
                .use_cache(self.cache.clone());
            self.decoder = Some(decoder);
            self.header = Some(*header);
        }
        self.decoder
            .as_mut()
            .ok_or_else(|| CoreError::InvalidConfig("decode session failed to prime".into()))
    }

    /// Direct access to the per-frame decoder, once primed.
    pub fn decoder_mut(&mut self) -> Option<&mut Decoder> {
        self.decoder.as_mut()
    }

    /// Feeds received bytes, returning every frame completed by them
    /// (possibly none).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedFrame`] on a corrupt stream (the
    /// parser error is sticky) plus any recovery error.
    pub fn push_bytes(&mut self, bytes: &[u8]) -> Result<Vec<DecodedFrame>, CoreError> {
        self.parser.push_bytes(bytes);
        let mut out = Vec::new();
        while let Some(frame) = self.parser.next_frame()? {
            match self.parser.tile_layout().cloned() {
                Some(layout) => {
                    if self.delta.is_some() {
                        return Err(CoreError::InvalidConfig(
                            "delta mode is not supported for tiled streams (tiles are \
                             recovered independently)"
                                .into(),
                        ));
                    }
                    self.pending.push(frame);
                    if self.pending.len() == layout.tiles() {
                        let tiles = std::mem::take(&mut self.pending);
                        out.push(self.decode_tiled(&tiles, &layout)?);
                    }
                }
                None => out.push(self.decode(&frame)?),
            }
        }
        Ok(out)
    }

    /// Decodes one frame directly, bypassing the stream container (for
    /// callers that already hold parsed [`CompressedFrame`]s). The
    /// frame is decoded as an untiled capture — tiled decoding needs
    /// the stream's tile layout, which only
    /// [`DecodeSession::push_bytes`] sees.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FrameMismatch`] if the frame does not match
    /// the session, plus any recovery error.
    pub fn push_frame(&mut self, frame: &CompressedFrame) -> Result<DecodedFrame, CoreError> {
        self.decode(frame)
    }

    /// Decodes one complete tiled frame: every tile recovered
    /// independently (in parallel across
    /// [`threads`](DecodeSession::threads) workers), then stitched with
    /// the layout's overlap blending. Recovery order never affects the
    /// result — tiles are solved from independent records and merged in
    /// deterministic row-major order — so the stitched frame is
    /// bit-identical for every thread count.
    fn decode_tiled(
        &mut self,
        tiles: &[CompressedFrame],
        layout: &TileLayout,
    ) -> Result<DecodedFrame, CoreError> {
        self.prime(&tiles[0].header)?;
        let Some(decoder) = self.decoder.as_ref() else {
            return Err(CoreError::InvalidConfig(
                "decode session has no primed decoder".into(),
            ));
        };
        let recons: Vec<Result<Reconstruction, CoreError>> = if self.threads <= 1 {
            // Inline: reuse the session workspace across tiles (the
            // workspace never changes results, only allocations).
            let workspace = &mut self.workspace;
            tiles
                .iter()
                .map(|frame| decoder.reconstruct_with(frame, workspace))
                .collect()
        } else {
            par_map(self.threads, tiles, |_, frame| {
                let mut workspace = SolverWorkspace::default();
                decoder.reconstruct_with(frame, &mut workspace)
            })
        };
        let mut code_tiles = Vec::with_capacity(recons.len());
        let mut stats = SolveStats {
            iterations: 0,
            residual_norm: 0.0,
            converged: true,
        };
        for recon in recons {
            let recon = recon?;
            stats.iterations += recon.stats().iterations;
            // Tiles solve disjoint systems; their concatenated residual
            // has the root-sum-square norm.
            stats.residual_norm = stats.residual_norm.hypot(recon.stats().residual_norm);
            stats.converged &= recon.stats().converged;
            code_tiles.push(recon.code_image().as_slice().to_vec());
        }
        let stitched = merge_tiles(&code_tiles, layout);
        let mean_code = stitched.mean();
        let index = self.decoded;
        self.decoded += 1;
        Ok(DecodedFrame {
            index,
            is_key: true,
            reconstruction: Reconstruction::from_parts(stitched, mean_code, stats),
        })
    }

    fn decode(&mut self, frame: &CompressedFrame) -> Result<DecodedFrame, CoreError> {
        self.prime(&frame.header)?;
        let is_key = match (&self.delta, &self.prev_samples) {
            (Some(delta), Some(prev)) => {
                if self.header.as_ref() != Some(&frame.header) || prev.len() != frame.samples.len()
                {
                    return Err(CoreError::FrameMismatch(
                        "sequence frames must share header and sample count".into(),
                    ));
                }
                delta.keyframe_interval > 0 && self.frames_since_key >= delta.keyframe_interval
            }
            _ => true,
        };
        let reconstruction = if is_key {
            let Some(decoder) = self.decoder.as_ref() else {
                return Err(CoreError::InvalidConfig(
                    "decode session has no primed decoder".into(),
                ));
            };
            let recon = decoder.reconstruct_with(frame, &mut self.workspace)?;
            self.frames_since_key = 0;
            self.last_mean = recon.mean_code();
            recon
        } else {
            self.decode_delta(frame)?
        };
        if self.delta.is_some() {
            if !is_key {
                self.frames_since_key += 1;
            }
            self.prev_samples = Some(frame.samples.clone());
            self.prev_codes = Some(reconstruction.code_image().clone());
        }
        let index = self.decoded;
        self.decoded += 1;
        Ok(DecodedFrame {
            index,
            is_key,
            reconstruction,
        })
    }

    /// Delta recovery: `y_t − y_{t−1} = Φ(x_t − x_{t−1})`, solved
    /// pixel-sparse (IHT, identity dictionary) against the previous
    /// reconstruction. Same seed ⇒ same Φ, so the operator comes warm
    /// from the cache.
    fn decode_delta(&mut self, frame: &CompressedFrame) -> Result<Reconstruction, CoreError> {
        let (Some(prev_samples), Some(prev_codes), Some(delta), Some(decoder)) = (
            self.prev_samples.as_ref(),
            self.prev_codes.as_ref(),
            self.delta,
            self.decoder.as_ref(),
        ) else {
            return Err(CoreError::InvalidConfig(
                "delta decode needs a primed decoder, delta mode, and a previous frame".into(),
            ));
        };
        let dy: Vec<f64> = frame
            .samples
            .iter()
            .zip(prev_samples)
            .map(|(&a, &b)| a as f64 - b as f64)
            .collect();
        let (phi, _) = self
            .cache
            .operator(&decoder.operator_key(frame.samples.len()))?;
        let dict = IdentityDictionary::new(prev_codes.len());
        let a = ComposedOperator::new(phi.as_ref(), &dict);
        let rec =
            Iht::new(delta.sparsity)
                .max_iter(200)
                .solve_with(&a, &dy, &mut self.workspace)?;
        let code_max = ((1u32 << frame.header.code_bits) - 1) as f64;
        let codes = ImageF64::from_vec(
            prev_codes.width(),
            prev_codes.height(),
            prev_codes
                .as_slice()
                .iter()
                .zip(&rec.coefficients)
                .map(|(&p, &d)| (p + d).clamp(0.0, code_max))
                .collect(),
        );
        Ok(Reconstruction::from_parts(codes, self.last_mean, rec.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tepics_imaging::{psnr, Scene};
    use tepics_sensor::Fidelity;

    fn imager(side: usize, seed: u64) -> CompressiveImager {
        CompressiveImager::builder(side, side)
            .ratio(0.35)
            .seed(seed)
            .fidelity(Fidelity::Functional)
            .build()
            .unwrap()
    }

    #[test]
    fn session_roundtrip_matches_per_frame_pipeline() {
        // The acceptance property: a sequence encoded via
        // EncodeSession::to_bytes and decoded via push_bytes round-trips
        // bit-identically to per-frame capture/reconstruct.
        let im = imager(16, 42);
        let scenes: Vec<ImageF64> = (0..4)
            .map(|i| Scene::gaussian_blobs(2).render(16, 16, i))
            .collect();
        let mut enc = EncodeSession::new(im.clone()).unwrap();
        let mut per_frame = Vec::new();
        for scene in &scenes {
            let frame = im.capture(scene);
            let cold = Decoder::for_frame(&frame)
                .unwrap()
                .reconstruct(&frame)
                .unwrap();
            per_frame.push(cold);
            enc.capture(scene).unwrap();
        }
        let mut dec = DecodeSession::new();
        let decoded = dec.push_bytes(&enc.to_bytes()).unwrap();
        assert_eq!(decoded.len(), scenes.len());
        for (d, cold) in decoded.iter().zip(&per_frame) {
            assert_eq!(d.reconstruction, *cold, "frame {}", d.index);
            assert!(d.is_key);
        }
    }

    #[test]
    fn chunked_delivery_decodes_incrementally() {
        let im = imager(16, 7);
        let mut enc = EncodeSession::new(im).unwrap();
        for i in 0..3 {
            enc.capture(&Scene::gaussian_blobs(2).render(16, 16, i))
                .unwrap();
        }
        let bytes = enc.into_bytes();
        let mut dec = DecodeSession::new();
        let mut total = 0;
        for chunk in bytes.chunks(97) {
            total += dec.push_bytes(chunk).unwrap().len();
        }
        assert_eq!(total, 3);
        assert_eq!(dec.frames_decoded(), 3);
        assert_eq!(dec.buffered_bytes(), 0);
    }

    #[test]
    fn operator_cache_hits_across_frames() {
        let im = imager(16, 5);
        let mut enc = EncodeSession::new(im).unwrap();
        for i in 0..4 {
            enc.capture(&Scene::gaussian_blobs(2).render(16, 16, i))
                .unwrap();
        }
        let mut dec = DecodeSession::new();
        dec.push_bytes(&enc.to_bytes()).unwrap();
        let stats = dec.cache().stats();
        assert_eq!(stats.misses, 1, "one cold build");
        assert_eq!(stats.hits, 3, "three warm frames");
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn delta_mode_matches_sequence_decoder_semantics() {
        let im = imager(24, 0xCAFE);
        let scene = Scene::gaussian_blobs(3).render(24, 24, 5);
        let frame = im.capture(&scene);
        let mut session = DecodeSession::new();
        session.delta_mode(20, 0);
        let key = session.push_frame(&frame).unwrap();
        assert!(key.is_key);
        // Identical second frame: zero delta, identical reconstruction.
        let second = session.push_frame(&frame).unwrap();
        assert!(!second.is_key);
        assert_eq!(
            key.reconstruction.code_image(),
            second.reconstruction.code_image()
        );
    }

    #[test]
    fn delta_mode_rejects_mismatched_frames() {
        let im1 = imager(16, 1);
        let im2 = imager(16, 2);
        let scene = Scene::Uniform(0.5).render(16, 16, 0);
        let f1 = im1.capture(&scene);
        let f2 = im2.capture(&scene);
        let mut session = DecodeSession::new();
        session.delta_mode(10, 0);
        session.push_frame(&f1).unwrap();
        assert!(matches!(
            session.push_frame(&f2),
            Err(CoreError::FrameMismatch(_))
        ));
    }

    #[test]
    fn keyframe_interval_refreshes_full_recovery() {
        let im = imager(16, 0xCC);
        let scene = Scene::gaussian_blobs(3).render(16, 16, 9);
        let frame = im.capture(&scene);
        let mut session = DecodeSession::new();
        session.delta_mode(20, 2);
        let flags: Vec<bool> = (0..5)
            .map(|_| session.push_frame(&frame).unwrap().is_key)
            .collect();
        assert_eq!(flags, vec![true, false, false, true, false]);
    }

    #[test]
    fn session_tracks_quality_of_a_moving_sequence() {
        let im = imager(24, 0x5E9);
        let mut enc = EncodeSession::new(im.clone()).unwrap();
        let mut truths = Vec::new();
        for t in 0..4 {
            let mut scene = Scene::gaussian_blobs(2).render(24, 24, 77);
            for dy in 0..2 {
                for dx in 0..2 {
                    scene.set(3 + t * 3 + dx, 10 + dy, 0.95);
                }
            }
            truths.push(im.ideal_codes(&scene).to_code_f64());
            enc.capture(&scene).unwrap();
        }
        let mut dec = DecodeSession::new();
        dec.delta_mode(40, 0);
        let decoded = dec.push_bytes(&enc.to_bytes()).unwrap();
        for (d, truth) in decoded.iter().zip(&truths) {
            let db = psnr(truth, d.reconstruction.code_image(), 255.0);
            assert!(db > 22.0, "frame {}: {db:.1} dB", d.index);
        }
    }

    fn tiled_imager(seed: u64) -> CompressiveImager {
        use tepics_imaging::tile::{FrameGeometry, TileConfig};
        CompressiveImager::builder_for(FrameGeometry::new(40, 28))
            .tiling(TileConfig::new(16).overlap(4))
            .ratio(0.35)
            .seed(seed)
            .fidelity(Fidelity::Functional)
            .build()
            .unwrap()
    }

    #[test]
    fn tiled_session_roundtrips_stitched_frames() {
        let im = tiled_imager(21);
        let layout = im.tile_layout().unwrap().clone();
        let mut enc = EncodeSession::new(im).unwrap();
        let scenes: Vec<ImageF64> = (0..2)
            .map(|i| Scene::gaussian_blobs(3).render(40, 28, i))
            .collect();
        for scene in &scenes {
            let records = enc.capture(scene).unwrap();
            assert_eq!(records.len(), layout.tiles());
        }
        assert_eq!(enc.frames(), 2);
        assert_eq!(enc.records(), 2 * layout.tiles());

        let mut dec = DecodeSession::new();
        let decoded = dec.push_bytes(&enc.to_bytes()).unwrap();
        assert_eq!(decoded.len(), 2, "six records stitch into one frame each");
        assert_eq!(dec.tile_layout(), Some(&layout));
        for d in &decoded {
            let img = d.reconstruction.code_image();
            assert_eq!((img.width(), img.height()), (40, 28));
            assert!(d.is_key);
        }
        // One operator serves every tile of every frame.
        let stats = dec.cache().stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2 * layout.tiles() as u64 - 1);
    }

    #[test]
    fn tiled_decode_is_bit_identical_across_thread_counts() {
        let im = tiled_imager(0xA11CE);
        let mut enc = EncodeSession::new(im).unwrap();
        enc.capture(&Scene::natural_like().render(40, 28, 3))
            .unwrap();
        let bytes = enc.into_bytes();

        let mut baseline = DecodeSession::new();
        let serial = baseline.push_bytes(&bytes).unwrap();
        for threads in [2, 4, 7] {
            let mut dec = DecodeSession::new();
            dec.threads(threads);
            let parallel = dec.push_bytes(&bytes).unwrap();
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn tiled_decode_quality_tracks_the_scene() {
        let im = tiled_imager(77);
        let scene = Scene::gaussian_blobs(3).render(40, 28, 11);
        let ideal = {
            // Ideal codes of the full frame, from an untiled imager with
            // the same sensor settings.
            let full = CompressiveImager::builder(28, 40)
                .ratio(0.35)
                .fidelity(Fidelity::Functional)
                .build()
                .unwrap();
            full.ideal_codes(&scene).to_code_f64()
        };
        let mut enc = EncodeSession::new(im).unwrap();
        enc.capture(&scene).unwrap();
        let mut dec = DecodeSession::new();
        let decoded = dec.push_bytes(&enc.to_bytes()).unwrap();
        let db = psnr(&ideal, decoded[0].reconstruction.code_image(), 255.0);
        assert!(db > 20.0, "stitched decode too poor: {db:.1} dB");
    }

    #[test]
    fn delta_mode_conflicts_with_tiled_streams() {
        let im = tiled_imager(5);
        let mut enc = EncodeSession::new(im).unwrap();
        enc.capture(&Scene::Uniform(0.4).render(40, 28, 0)).unwrap();
        let mut dec = DecodeSession::new();
        dec.delta_mode(10, 0);
        assert!(matches!(
            dec.push_bytes(&enc.to_bytes()),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn partial_tile_groups_wait_for_the_rest() {
        let im = tiled_imager(8);
        let layout = im.tile_layout().unwrap().clone();
        let mut enc = EncodeSession::new(im).unwrap();
        enc.capture(&Scene::gaussian_blobs(2).render(40, 28, 1))
            .unwrap();
        let bytes = enc.into_bytes();
        let mut dec = DecodeSession::new();
        // Feed everything except the last record's final byte: no frame
        // may surface yet.
        let out = dec.push_bytes(&bytes[..bytes.len() - 1]).unwrap();
        assert!(out.is_empty(), "incomplete tile group must not decode");
        let out = dec.push_bytes(&bytes[bytes.len() - 1..]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(
            dec.tile_layout().map(TileLayout::tiles),
            Some(layout.tiles())
        );
    }

    #[test]
    fn corrupt_stream_surfaces_malformed_frame() {
        let im = imager(16, 3);
        let mut enc = EncodeSession::new(im).unwrap();
        enc.capture(&Scene::Uniform(0.4).render(16, 16, 0)).unwrap();
        let mut bytes = enc.into_bytes();
        bytes[2] ^= 0xFF; // corrupt the magic
        let mut dec = DecodeSession::new();
        assert!(matches!(
            dec.push_bytes(&bytes),
            Err(CoreError::MalformedFrame(_))
        ));
    }
}
