//! The receiver-side decoder.
//!
//! The decoder never sees Φ — it *regenerates* it by replaying the
//! strategy generator from the seed in the frame header (the paper's
//! "error-free reconstructed from the initial seed" property). Recovery
//! then runs in two exact stages (DESIGN.md §4):
//!
//! 1. **Mean split.** Rows of Φ are 0/1 masks with known selection
//!    counts `c_k`, so the scene's mean code is estimated by least
//!    squares: `μ̂ = ⟨c, y⟩ / ⟨c, c⟩`. This removes the enormous DC
//!    gain that would otherwise dominate the operator spectrum.
//! 2. **Sparse recovery** of the zero-mean residual through a DC-pinned
//!    dictionary: `ỹ = y − μ̂·c ≈ Φ Ψ₀ β`, solved by any
//!    [`SolverKind`] — debiased FISTA by default — dispatched
//!    dynamically through the [`Solver`] trait.
//!
//! The reconstruction is the code image `x̂ = clamp(μ̂ + Ψ₀ β̂)`;
//! [`Reconstruction::to_intensity`] inverts the pulse-modulation
//! transfer for display.

use std::sync::Arc;

use crate::cache::{OperatorCache, OperatorKey};
use crate::error::CoreError;
use crate::frame::{CompressedFrame, FrameHeader};
use crate::solver::{RecoveryParams, SolverKind};
use crate::strategy::StrategyKind;
use tepics_cs::colview::ColumnMatrix;
use tepics_cs::dictionary::{
    Dct2dDictionary, Dictionary, Haar2dDictionary, IdentityDictionary, ZeroMeanDictionary,
};
use tepics_cs::measurement::SelectionMeasurement;
use tepics_cs::op;
use tepics_cs::{ComposedOperator, StagedDictionary, XorMeasurement};
use tepics_imaging::ImageF64;
use tepics_recovery::{Debias, SolveStats, Solver, SolverWorkspace};
use tepics_sensor::{CodeTransfer, SensorConfig};

/// Sparsifying dictionary families available to the decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum DictionaryKind {
    /// 2-D DCT (default; best for smooth/natural content).
    #[default]
    Dct2d,
    /// 2-D Haar wavelets (piecewise-constant content).
    Haar2d,
    /// Identity — pixel-domain sparsity (star fields).
    Identity,
}

/// Dispatch-friendly dictionary wrapper (DC pinned where meaningful).
#[derive(Debug, Clone)]
pub(crate) enum DictImpl {
    Dct(ZeroMeanDictionary<Dct2dDictionary>),
    Haar(ZeroMeanDictionary<Haar2dDictionary>),
    Id(IdentityDictionary),
}

/// Builds the dictionary for one geometry (row-major `rows × cols`).
pub(crate) fn build_dictionary(kind: DictionaryKind, rows: usize, cols: usize) -> DictImpl {
    match kind {
        DictionaryKind::Dct2d => {
            DictImpl::Dct(ZeroMeanDictionary::new(Dct2dDictionary::new(cols, rows), 0))
        }
        DictionaryKind::Haar2d => DictImpl::Haar(ZeroMeanDictionary::new(
            Haar2dDictionary::new(cols, rows),
            0,
        )),
        DictionaryKind::Identity => DictImpl::Id(IdentityDictionary::new(rows * cols)),
    }
}

impl Dictionary for DictImpl {
    fn dim(&self) -> usize {
        match self {
            DictImpl::Dct(d) => d.dim(),
            DictImpl::Haar(d) => d.dim(),
            DictImpl::Id(d) => d.dim(),
        }
    }

    fn atoms(&self) -> usize {
        match self {
            DictImpl::Dct(d) => d.atoms(),
            DictImpl::Haar(d) => d.atoms(),
            DictImpl::Id(d) => d.atoms(),
        }
    }

    fn synthesize(&self, alpha: &[f64], x: &mut [f64]) {
        match self {
            DictImpl::Dct(d) => d.synthesize(alpha, x),
            DictImpl::Haar(d) => d.synthesize(alpha, x),
            DictImpl::Id(d) => d.synthesize(alpha, x),
        }
    }

    fn analyze(&self, x: &[f64], alpha: &mut [f64]) {
        match self {
            DictImpl::Dct(d) => d.analyze(x, alpha),
            DictImpl::Haar(d) => d.analyze(x, alpha),
            DictImpl::Id(d) => d.analyze(x, alpha),
        }
    }

    fn synthesize_with(&self, alpha: &[f64], x: &mut [f64], scratch: &mut Vec<f64>) {
        match self {
            DictImpl::Dct(d) => d.synthesize_with(alpha, x, scratch),
            DictImpl::Haar(d) => d.synthesize_with(alpha, x, scratch),
            DictImpl::Id(d) => d.synthesize_with(alpha, x, scratch),
        }
    }

    fn analyze_with(&self, x: &[f64], alpha: &mut [f64], scratch: &mut Vec<f64>) {
        match self {
            DictImpl::Dct(d) => d.analyze_with(x, alpha, scratch),
            DictImpl::Haar(d) => d.analyze_with(x, alpha, scratch),
            DictImpl::Id(d) => d.analyze_with(x, alpha, scratch),
        }
    }

    fn row_staged(&self) -> Option<StagedDictionary<'_>> {
        match self {
            DictImpl::Dct(d) => d.row_staged(),
            DictImpl::Haar(d) => d.row_staged(),
            DictImpl::Id(d) => d.row_staged(),
        }
    }
}

/// A reconstructed frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Reconstruction {
    codes: ImageF64,
    mean_code: f64,
    stats: SolveStats,
}

impl Reconstruction {
    /// Assembles a reconstruction from parts (used by the session layer
    /// for delta-decoded frames).
    pub(crate) fn from_parts(codes: ImageF64, mean_code: f64, stats: SolveStats) -> Reconstruction {
        Reconstruction {
            codes,
            mean_code,
            stats,
        }
    }

    /// The reconstructed code image (the domain the sensor measures in).
    pub fn code_image(&self) -> &ImageF64 {
        &self.codes
    }

    /// The mean-split estimate of the scene's mean code.
    pub fn mean_code(&self) -> f64 {
        self.mean_code
    }

    /// Solver diagnostics.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// Inverts the sensor transfer to produce an intensity image in
    /// `[0, 1]` (reciprocal pulse-modulation map or the linearized
    /// control, depending on the configuration).
    pub fn to_intensity(&self, config: &SensorConfig) -> ImageF64 {
        let code_max = config.code_max() as f64;
        match config.transfer() {
            CodeTransfer::Linearized => self.codes.map(|c| (c / code_max).clamp(0.0, 1.0)),
            CodeTransfer::Reciprocal => self.codes.map(|c| {
                let t_arrival = config.initial_delay() + (c + 0.5) * config.t_clk();
                let t_cross = (t_arrival - config.comparator_delay()).max(1e-12);
                crate::decoder::intensity_from_crossing(config, t_cross)
            }),
        }
    }
}

/// Re-export of the photodiode inversion used by
/// [`Reconstruction::to_intensity`].
fn intensity_from_crossing(config: &SensorConfig, t: f64) -> f64 {
    tepics_sensor::photodiode::intensity_from_crossing(config, t)
}

/// Receiver-side decoder bound to a frame's geometry and strategy.
///
/// This is the per-frame recovery engine. For streams, batches, or any
/// sequence of same-seed frames, prefer
/// [`DecodeSession`](crate::session::DecodeSession), which drives this
/// decoder through a shared [`OperatorCache`] so Φ, the dictionary, and
/// the FISTA step size are built once instead of per frame.
#[derive(Debug, Clone)]
pub struct Decoder {
    rows: usize,
    cols: usize,
    strategy: StrategyKind,
    seed: u64,
    code_max: f64,
    dictionary: DictionaryKind,
    algorithm: SolverKind,
    cache: Option<Arc<OperatorCache>>,
}

impl Decoder {
    /// Creates a decoder matching a frame header, with the default
    /// dictionary (DCT) and algorithm (debiased FISTA).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedFrame`] for degenerate headers.
    pub fn for_frame(frame: &CompressedFrame) -> Result<Decoder, CoreError> {
        Decoder::for_header(&frame.header)
    }

    /// Creates a decoder from a header alone (e.g. a stream header,
    /// before any frame payload has arrived).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedFrame`] for degenerate headers.
    pub fn for_header(h: &FrameHeader) -> Result<Decoder, CoreError> {
        h.validate()?;
        Ok(Decoder {
            rows: h.rows as usize,
            cols: h.cols as usize,
            strategy: h.strategy,
            seed: h.seed,
            code_max: ((1u32 << h.code_bits) - 1) as f64,
            dictionary: DictionaryKind::Dct2d,
            algorithm: SolverKind::default(),
            cache: None,
        })
    }

    /// Selects the sparsifying dictionary.
    pub fn dictionary(&mut self, kind: DictionaryKind) -> &mut Self {
        self.dictionary = kind;
        self
    }

    /// Selects the recovery algorithm (any [`SolverKind`]; the solver is
    /// dispatched dynamically through the
    /// [`Solver`] trait).
    pub fn algorithm(&mut self, algorithm: SolverKind) -> &mut Self {
        self.algorithm = algorithm;
        self
    }

    /// Applies a bundled [`RecoveryParams`] (solver + dictionary).
    pub fn params(&mut self, params: RecoveryParams) -> &mut Self {
        self.algorithm(params.solver).dictionary(params.dictionary)
    }

    /// Attaches a shared operator cache: Φ, the selection counts, the
    /// dictionary and the FISTA step size are then looked up (and
    /// memoized) instead of rebuilt per frame. Warm results are
    /// bit-identical to cold ones.
    pub fn use_cache(&mut self, cache: Arc<OperatorCache>) -> &mut Self {
        self.cache = Some(cache);
        self
    }

    /// The cache key for a `k`-measurement frame on this decoder.
    pub(crate) fn operator_key(&self, k: usize) -> OperatorKey {
        OperatorKey {
            rows: self.rows as u16,
            cols: self.cols as u16,
            strategy: self.strategy,
            seed: self.seed,
            k,
        }
    }

    /// Rebuilds the measurement matrix exactly as the sensor generated
    /// it (CA replay from the seed).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the strategy parameters
    /// are invalid.
    pub fn rebuild_measurement(&self, k: usize) -> Result<XorMeasurement, CoreError> {
        let mut source = self
            .strategy
            .build_source(self.rows + self.cols, self.seed)?;
        Ok(XorMeasurement::from_source(
            self.rows,
            self.cols,
            source.as_mut(),
            k,
        ))
    }

    /// Reconstructs the code image from a frame.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FrameMismatch`] if the frame geometry or
    /// strategy differs from this decoder, or [`CoreError::Recovery`]
    /// if the solver rejects the problem.
    pub fn reconstruct(&self, frame: &CompressedFrame) -> Result<Reconstruction, CoreError> {
        self.reconstruct_with(frame, &mut SolverWorkspace::new())
    }

    /// Like [`Decoder::reconstruct`], reusing `workspace` for the
    /// solver buffers. Repeated decodes through one workspace — what
    /// [`DecodeSession`](crate::session::DecodeSession) does per stream
    /// — allocate nothing inside the solver loop for *every*
    /// [`SolverKind`], including the greedy pursuits and the CGLS
    /// debias pass, and the results are bit-identical to
    /// [`Decoder::reconstruct`].
    ///
    /// # Errors
    ///
    /// Same as [`Decoder::reconstruct`].
    pub fn reconstruct_with(
        &self,
        frame: &CompressedFrame,
        workspace: &mut SolverWorkspace,
    ) -> Result<Reconstruction, CoreError> {
        let h = &frame.header;
        if h.rows as usize != self.rows
            || h.cols as usize != self.cols
            || h.strategy != self.strategy
            || h.seed != self.seed
        {
            return Err(CoreError::FrameMismatch(
                "frame header does not match decoder configuration".into(),
            ));
        }
        if frame.samples.is_empty() {
            return Err(CoreError::MalformedFrame("frame has no samples".into()));
        }
        let k = frame.samples.len();
        // Operator + dictionary: from the shared cache when attached
        // (built once per key), cold otherwise. Warm values are
        // bit-identical to a cold rebuild, so the two paths produce the
        // same reconstruction.
        let (phi, counts, dict) = match &self.cache {
            Some(cache) => {
                let (phi, counts) = cache.operator(&self.operator_key(k))?;
                let dict = cache.dictionary(self.dictionary, self.rows as u16, self.cols as u16);
                (phi, counts, dict)
            }
            None => {
                let phi = Arc::new(self.rebuild_measurement(k)?);
                let counts = Arc::new(phi.selection_counts());
                let dict = Arc::new(build_dictionary(self.dictionary, self.rows, self.cols));
                (phi, counts, dict)
            }
        };
        let y: Vec<f64> = frame.samples.iter().map(|&s| s as f64).collect();
        // Stage 1: mean split from the known selection counts.
        let cc = op::dot(&counts, &counts);
        let mean_code = if cc > 0.0 {
            (op::dot(&counts, &y) / cc).clamp(0.0, self.code_max)
        } else {
            0.0
        };
        let resid: Vec<f64> = y
            .iter()
            .zip(counts.iter())
            .map(|(&yi, &ci)| yi - mean_code * ci)
            .collect();
        // Stage 2: sparse recovery of the zero-mean component, through
        // the unified Solver trait (dynamic dispatch; the concrete
        // solver lives on this stack frame).
        let a = ComposedOperator::new(phi.as_ref(), dict.as_ref())
            .with_scratch(workspace.take_composed());
        // Column-hungry solvers (OMP, CoSaMP) get the materialized Φ·Ψ
        // view. With a cache it is built once per key and served warm;
        // without one, the build (cols forward applies) would dominate a
        // one-shot decode, so it is skipped where that cannot change the
        // result: OMP only *reads* columns (view ≡ no-view bit for bit,
        // property-tested), while CoSaMP's restricted least squares
        // takes a different summation path through the view, so it must
        // build cold too to keep warm decodes bit-identical to cold.
        let a = if self.algorithm.column_hungry() {
            match &self.cache {
                Some(cache) => {
                    let view = cache.column_view(&self.operator_key(k), self.dictionary, || {
                        ColumnMatrix::from_operator(&a)
                    });
                    a.with_column_view(view)
                }
                None if self.algorithm.view_changes_results() => {
                    let view = Arc::new(ColumnMatrix::from_operator(&a));
                    a.with_column_view(view)
                }
                None => a,
            }
        } else {
            a
        };
        // Solvers that estimate ‖ΦΨ‖ internally get the estimate
        // precomputed — memoized per (operator, dictionary, solver seed)
        // when a cache is attached, computed identically otherwise. The
        // value mirrors each solver's own seeded derivation exactly, so
        // the override is bit-transparent.
        let norm = self.algorithm.norm_seed().and_then(|seed| {
            let compute = || op::operator_norm_est(&a, 30, seed);
            match &self.cache {
                Some(cache) => {
                    cache.operator_norm(&self.operator_key(k), self.dictionary, seed, compute)
                }
                None => {
                    let norm = compute();
                    (norm > 0.0).then_some(norm)
                }
            }
        });
        let built = self.algorithm.instantiate(norm);
        let base = built.as_solver();
        let debiased;
        let solver: &dyn Solver = if self.algorithm.debias() {
            debiased = Debias::new(base, k / 2);
            &debiased
        } else {
            base
        };
        let recovery = solver.solve_with(&a, &resid, workspace)?;
        let stats = recovery.stats.clone();
        // Final synthesis through the donated scratch, which is then
        // returned to the workspace so the next frame's decode starts
        // with every buffer already warm.
        let mut donated = a.into_scratch();
        let (pixels, dict_scratch) = donated.pixels_and_dict();
        pixels.resize(dict.dim(), 0.0);
        dict.synthesize_with(&recovery.coefficients, pixels, dict_scratch);
        let code_max = self.code_max;
        let codes = ImageF64::from_vec(
            self.cols,
            self.rows,
            pixels
                .iter()
                .map(|&vi| (mean_code + vi).clamp(0.0, code_max))
                .collect(),
        );
        workspace.store_composed(donated);
        Ok(Reconstruction {
            codes,
            mean_code,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imager::CompressiveImager;
    use tepics_imaging::{psnr, Scene};
    use tepics_sensor::Fidelity;

    fn imager(ratio: f64, seed: u64) -> CompressiveImager {
        CompressiveImager::builder(16, 16)
            .ratio(ratio)
            .seed(seed)
            .fidelity(Fidelity::Functional)
            .build()
            .unwrap()
    }

    #[test]
    fn uniform_scene_is_recovered_almost_exactly() {
        // For a constant code image the mean split alone nails it.
        let im = imager(0.2, 3);
        let scene = Scene::Uniform(0.5).render(16, 16, 0);
        let frame = im.capture(&scene);
        let recon = Decoder::for_frame(&frame)
            .unwrap()
            .reconstruct(&frame)
            .unwrap();
        let truth = im.ideal_codes(&scene).to_code_f64();
        let db = psnr(&truth, recon.code_image(), 255.0);
        assert!(db > 45.0, "uniform reconstruction {db} dB");
        let expected = truth.as_slice()[0];
        assert!((recon.mean_code() - expected).abs() < 1.0);
    }

    #[test]
    fn blobs_scene_reconstructs_well_at_forty_percent() {
        let im = imager(0.4, 7);
        let scene = Scene::gaussian_blobs(2).render(16, 16, 11);
        let frame = im.capture(&scene);
        let recon = Decoder::for_frame(&frame)
            .unwrap()
            .reconstruct(&frame)
            .unwrap();
        let truth = im.ideal_codes(&scene).to_code_f64();
        let db = psnr(&truth, recon.code_image(), 255.0);
        assert!(db > 24.0, "blobs reconstruction {db} dB");
    }

    #[test]
    fn quality_improves_with_ratio() {
        let scene = Scene::gaussian_blobs(3).render(16, 16, 2);
        let mut last = 0.0;
        for ratio in [0.1, 0.25, 0.45] {
            let im = imager(ratio, 5);
            let frame = im.capture(&scene);
            let recon = Decoder::for_frame(&frame)
                .unwrap()
                .reconstruct(&frame)
                .unwrap();
            let truth = im.ideal_codes(&scene).to_code_f64();
            let db = psnr(&truth, recon.code_image(), 255.0);
            assert!(
                db > last - 1.0,
                "PSNR should not collapse as ratio grows: {db} after {last}"
            );
            last = last.max(db);
        }
        assert!(last > 22.0);
    }

    #[test]
    fn wrong_seed_frame_is_rejected() {
        let im = imager(0.2, 1);
        let scene = Scene::gaussian_blobs(2).render(16, 16, 1);
        let mut frame = im.capture(&scene);
        let decoder = Decoder::for_frame(&frame).unwrap();
        frame.header.seed = 999; // receiver believes a different seed
        assert!(matches!(
            decoder.reconstruct(&frame),
            Err(CoreError::FrameMismatch(_))
        ));
    }

    #[test]
    fn desynchronized_seed_destroys_reconstruction() {
        // Same geometry, but the decoder replays a different CA seed:
        // reconstruction must be garbage. This is the paper's security/
        // synchronization property in negative form.
        let im = imager(0.4, 42);
        let scene = Scene::gaussian_blobs(2).render(16, 16, 4);
        let frame = im.capture(&scene);
        let mut wrong = frame.clone();
        wrong.header.seed = 43;
        let decoder = Decoder::for_frame(&wrong).unwrap();
        let recon = decoder.reconstruct(&wrong).unwrap();
        let truth = im.ideal_codes(&scene).to_code_f64();
        let db = psnr(&truth, recon.code_image(), 255.0);
        let im_db = {
            let good = Decoder::for_frame(&frame)
                .unwrap()
                .reconstruct(&frame)
                .unwrap();
            psnr(&truth, good.code_image(), 255.0)
        };
        assert!(
            db + 6.0 < im_db,
            "wrong seed should lose ≥6 dB: wrong {db:.1} vs right {im_db:.1}"
        );
    }

    #[test]
    fn all_algorithms_produce_finite_reconstructions() {
        let im = imager(0.4, 9);
        let scene = Scene::star_field(6).render(16, 16, 3);
        let frame = im.capture(&scene);
        for alg in SolverKind::shootout_set(frame.samples.len()) {
            let mut dec = Decoder::for_frame(&frame).unwrap();
            dec.algorithm(alg);
            let recon = dec.reconstruct(&frame).unwrap();
            assert!(
                recon.code_image().as_slice().iter().all(|v| v.is_finite()),
                "{alg:?} produced non-finite codes"
            );
        }
    }

    #[test]
    fn recovery_params_presets_apply() {
        let im = imager(0.4, 15);
        let scene = Scene::star_field(5).render(16, 16, 8);
        let frame = im.capture(&scene);
        let mut dec = Decoder::for_frame(&frame).unwrap();
        dec.params(crate::solver::RecoveryParams::star_field(8));
        let recon = dec.reconstruct(&frame).unwrap();
        assert!(recon.code_image().as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn haar_dictionary_beats_dct_on_piecewise_scenes() {
        let im = imager(0.45, 13);
        let scene = Scene::Checkerboard { tile: 4 }.render(16, 16, 0);
        let frame = im.capture(&scene);
        let truth = im.ideal_codes(&scene).to_code_f64();
        let mut dct = Decoder::for_frame(&frame).unwrap();
        dct.dictionary(DictionaryKind::Dct2d);
        let mut haar = Decoder::for_frame(&frame).unwrap();
        haar.dictionary(DictionaryKind::Haar2d);
        let db_dct = psnr(&truth, dct.reconstruct(&frame).unwrap().code_image(), 255.0);
        let db_haar = psnr(
            &truth,
            haar.reconstruct(&frame).unwrap().code_image(),
            255.0,
        );
        assert!(
            db_haar > db_dct,
            "Haar {db_haar:.1} dB should beat DCT {db_dct:.1} dB on a checkerboard"
        );
    }

    #[test]
    fn intensity_inversion_is_monotone() {
        let im = imager(0.3, 21);
        let scene = Scene::LinearGradient { angle: 0.0 }.render(16, 16, 0);
        let frame = im.capture(&scene);
        let recon = Decoder::for_frame(&frame)
            .unwrap()
            .reconstruct(&frame)
            .unwrap();
        let intensity = recon.to_intensity(im.sensor_config());
        assert!(intensity
            .as_slice()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }
}
