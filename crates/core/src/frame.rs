//! The transmitted frame: header + bit-packed compressed samples.
//!
//! The whole point of the on-chip CA (Sect. I) is that Φ never crosses
//! the channel — only a 64-bit seed does. The wire format reflects
//! that: a 24-byte header followed by `K` samples packed at exactly
//! `sample_bits` bits each (20 bits for the prototype), MSB-first. The
//! bits-on-wire number this codec produces is what the `breakeven`
//! experiment audits against Eq. (1)/(2).

use crate::error::CoreError;
use crate::strategy::StrategyKind;

const MAGIC: [u8; 4] = *b"TEPX";
const VERSION: u8 = 1;

/// Serialized size of the per-frame header (magic + version + geometry
/// + strategy + seed + sample count).
pub(crate) const FRAME_HEADER_BYTES: usize = 27;

/// Frame metadata: everything the decoder needs to rebuild Φ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Array rows (M).
    pub rows: u16,
    /// Array columns (N).
    pub cols: u16,
    /// Pixel code width (bits).
    pub code_bits: u8,
    /// Compressed-sample width (bits).
    pub sample_bits: u8,
    /// Strategy family and parameters.
    pub strategy: StrategyKind,
    /// Strategy seed — the only "matrix" data ever transmitted.
    pub seed: u64,
}

impl FrameHeader {
    /// Validates the fields the decoder depends on (shared by
    /// [`Decoder::for_header`](crate::decoder::Decoder::for_header) and
    /// the stream container, so the two can never diverge on what a
    /// degenerate header is).
    pub(crate) fn validate(&self) -> Result<(), CoreError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(CoreError::MalformedFrame("zero array dimension".into()));
        }
        if self.code_bits == 0 || self.code_bits > 16 {
            return Err(CoreError::MalformedFrame(format!(
                "code width {} outside 1..=16",
                self.code_bits
            )));
        }
        Ok(())
    }
}

/// A captured compressed frame ready for transmission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedFrame {
    /// Metadata.
    pub header: FrameHeader,
    /// The compressed samples, one per selection pattern.
    pub samples: Vec<u32>,
}

impl CompressedFrame {
    /// Number of compressed samples.
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    /// Compression ratio `R = K / (M·N)`.
    pub fn ratio(&self) -> f64 {
        self.samples.len() as f64 / (self.header.rows as f64 * self.header.cols as f64)
    }

    /// Payload size in bits (samples only).
    pub fn payload_bits(&self) -> usize {
        self.samples.len() * self.header.sample_bits as usize
    }

    /// Total wire size in bits (header + payload).
    ///
    /// Computed arithmetically — no serialization is performed. The
    /// count must match [`CompressedFrame::to_bytes`] exactly; the unit
    /// tests pin the two together.
    pub fn wire_bits(&self) -> usize {
        (FRAME_HEADER_BYTES + self.payload_bits().div_ceil(8)) * 8
    }

    /// Serializes to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let h = &self.header;
        let mut out = Vec::with_capacity(28 + self.payload_bits() / 8 + 1);
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.extend_from_slice(&h.rows.to_le_bytes());
        out.extend_from_slice(&h.cols.to_le_bytes());
        out.push(h.code_bits);
        out.push(h.sample_bits);
        out.extend_from_slice(&h.strategy.to_wire());
        out.extend_from_slice(&h.seed.to_le_bytes());
        out.extend_from_slice(&(self.samples.len() as u32).to_le_bytes());
        // Bit-pack samples MSB-first at sample_bits each.
        let mut writer = BitWriter::new();
        for &s in &self.samples {
            writer.write(s, h.sample_bits as u32);
        }
        out.extend_from_slice(&writer.finish());
        out
    }

    /// Parses wire bytes back into a frame.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedFrame`] on bad magic, version,
    /// strategy tag, truncated payload, or inconsistent sizes.
    pub fn from_bytes(bytes: &[u8]) -> Result<CompressedFrame, CoreError> {
        let need = |n: usize| -> Result<(), CoreError> {
            if bytes.len() < n {
                Err(CoreError::MalformedFrame(format!(
                    "truncated frame: {} bytes, need {n}",
                    bytes.len()
                )))
            } else {
                Ok(())
            }
        };
        need(28)?;
        if bytes[0..4] != MAGIC {
            return Err(CoreError::MalformedFrame("bad magic".into()));
        }
        if bytes[4] != VERSION {
            return Err(CoreError::MalformedFrame(format!(
                "unsupported version {}",
                bytes[4]
            )));
        }
        let rows = u16::from_le_bytes([bytes[5], bytes[6]]);
        let cols = u16::from_le_bytes([bytes[7], bytes[8]]);
        let code_bits = bytes[9];
        let sample_bits = bytes[10];
        if rows == 0 || cols == 0 {
            return Err(CoreError::MalformedFrame("zero array dimension".into()));
        }
        if sample_bits == 0 || sample_bits > 32 {
            return Err(CoreError::MalformedFrame(format!(
                "sample width {sample_bits} outside 1..=32"
            )));
        }
        let strategy = StrategyKind::from_wire([bytes[11], bytes[12], bytes[13], bytes[14]])?;
        let seed = u64::from_le_bytes([
            bytes[15], bytes[16], bytes[17], bytes[18], bytes[19], bytes[20], bytes[21], bytes[22],
        ]);
        let count = u32::from_le_bytes([bytes[23], bytes[24], bytes[25], bytes[26]]) as usize;
        let payload = &bytes[27..];
        let needed_bits = count * sample_bits as usize;
        if payload.len() * 8 < needed_bits {
            return Err(CoreError::MalformedFrame(format!(
                "payload holds {} bits, need {needed_bits}",
                payload.len() * 8
            )));
        }
        let mut reader = BitReader::new(payload);
        let samples = (0..count)
            .map(|_| reader.read(sample_bits as u32))
            .collect();
        Ok(CompressedFrame {
            header: FrameHeader {
                rows,
                cols,
                code_bits,
                sample_bits,
                strategy,
                seed,
            },
            samples,
        })
    }
}

/// CRC-8 lookup table for the polynomial `x⁸+x²+x+1` (0x07, the
/// SMBus/ATM-HEC polynomial), built at compile time.
const CRC8_TABLE: [u8; 256] = {
    let mut table = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u8;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ 0x07
            } else {
                crc << 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-8 (polynomial 0x07, init 0x00) over `bytes`.
///
/// This is the integrity check of the resilient (version-3) stream
/// container: one CRC guards each frame-record prefix (so a corrupted
/// length can never stall the parser) and one guards each payload (so
/// corrupt samples are erased instead of decoded). Table-driven and
/// allocation-free — it sits on the per-record hot path.
// tidy:alloc-free
#[must_use]
pub fn crc8(bytes: &[u8]) -> u8 {
    let mut crc = 0u8;
    for &b in bytes {
        crc = CRC8_TABLE[(crc ^ b) as usize];
    }
    crc
}

/// MSB-first bit packer (shared with the stream container codec).
pub(crate) struct BitWriter {
    bytes: Vec<u8>,
    bit_pos: u32,
}

impl BitWriter {
    pub(crate) fn new() -> Self {
        BitWriter {
            bytes: Vec::new(),
            bit_pos: 0,
        }
    }

    pub(crate) fn write(&mut self, value: u32, bits: u32) {
        debug_assert!(bits <= 32);
        for i in (0..bits).rev() {
            if self.bit_pos.is_multiple_of(8) {
                self.bytes.push(0);
            }
            let bit = (value >> i) & 1;
            if let Some(byte) = self.bytes.last_mut() {
                *byte |= (bit as u8) << (7 - (self.bit_pos % 8));
            }
            self.bit_pos += 1;
        }
    }

    pub(crate) fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

/// MSB-first bit unpacker (shared with the stream container codec).
pub(crate) struct BitReader<'a> {
    bytes: &'a [u8],
    bit_pos: usize,
}

impl<'a> BitReader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, bit_pos: 0 }
    }

    pub(crate) fn read(&mut self, bits: u32) -> u32 {
        let mut out = 0u32;
        for _ in 0..bits {
            let byte = self.bytes[self.bit_pos / 8];
            let bit = (byte >> (7 - (self.bit_pos % 8))) & 1;
            out = (out << 1) | bit as u32;
            self.bit_pos += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame(k: usize) -> CompressedFrame {
        let mut rng = tepics_util::SplitMix64::new(9);
        CompressedFrame {
            header: FrameHeader {
                rows: 64,
                cols: 64,
                code_bits: 8,
                sample_bits: 20,
                strategy: StrategyKind::rule30(256),
                seed: 0xDEAD_BEEF_1234_5678,
            },
            samples: (0..k).map(|_| rng.next_below(1 << 20) as u32).collect(),
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        for k in [1usize, 7, 100, 1638] {
            let frame = sample_frame(k);
            let back = CompressedFrame::from_bytes(&frame.to_bytes()).unwrap();
            assert_eq!(back, frame, "k={k}");
        }
    }

    #[test]
    fn payload_is_bit_packed_not_byte_padded() {
        let frame = sample_frame(100);
        // 100 × 20 bits = 2000 bits = 250 bytes payload + 27 header.
        assert_eq!(frame.to_bytes().len(), 27 + 250);
        assert_eq!(frame.payload_bits(), 2000);
    }

    #[test]
    fn ratio_accounts_for_array_size() {
        let frame = sample_frame(1638);
        assert!((frame.ratio() - 1638.0 / 4096.0).abs() < 1e-12);
    }

    #[test]
    fn corrupted_magic_is_rejected() {
        let mut bytes = sample_frame(3).to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            CompressedFrame::from_bytes(&bytes),
            Err(CoreError::MalformedFrame(_))
        ));
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let bytes = sample_frame(50).to_bytes();
        let cut = &bytes[..bytes.len() - 10];
        assert!(CompressedFrame::from_bytes(cut).is_err());
    }

    #[test]
    fn truncated_header_is_rejected() {
        let bytes = sample_frame(3).to_bytes();
        assert!(CompressedFrame::from_bytes(&bytes[..20]).is_err());
    }

    #[test]
    fn bitwriter_reader_roundtrip_odd_widths() {
        let values = [(5u32, 3u32), (1023, 10), (0, 1), (0xFFFFF, 20), (7, 20)];
        let mut w = BitWriter::new();
        for &(v, b) in &values {
            w.write(v, b);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, b) in &values {
            assert_eq!(r.read(b), v);
        }
    }

    #[test]
    fn crc8_matches_reference_vectors() {
        // Standard CRC-8 (poly 0x07, init 0) check value.
        assert_eq!(crc8(b"123456789"), 0xF4);
        assert_eq!(crc8(&[]), 0x00);
        assert_eq!(crc8(&[0x00]), 0x00);
        // Bit-for-bit sensitivity: any single flipped bit changes the CRC.
        let base = crc8(&[0xAB, 0xCD, 0xEF]);
        for byte in 0..3 {
            for bit in 0..8 {
                let mut v = [0xAB, 0xCD, 0xEF];
                v[byte] ^= 1 << bit;
                assert_ne!(crc8(&v), base, "flip {byte}/{bit} undetected");
            }
        }
    }

    #[test]
    fn wire_bits_include_header_overhead() {
        let frame = sample_frame(10);
        assert_eq!(frame.wire_bits(), frame.to_bytes().len() * 8);
        assert!(frame.wire_bits() > frame.payload_bits());
    }
}
