//! The paper's closed-form design equations.
//!
//! * Eq. (1): `N_B = N_b + log2(M·N)` — bits per compressed sample.
//! * Eq. (2): `f_cs = R · M·N · f_s` — compressed-sample rate.
//! * Break-even: compression pays only while `R < N_b / N_B`
//!   (Sect. III.B: 8b pixels / 20b samples ⇒ R < 0.4).

/// Paper constants for the 64×64 prototype (Table II).
pub mod paper {
    /// Array side (pixels).
    pub const ARRAY_SIDE: usize = 64;
    /// Pixel code width (bits).
    pub const PIXEL_BITS: u32 = 8;
    /// Compressed-sample width (bits).
    pub const SAMPLE_BITS: u32 = 20;
    /// Frame rate (fps).
    pub const FRAME_RATE: f64 = 30.0;
    /// Maximum compression ratio before break-even.
    pub const MAX_RATIO: f64 = 0.4;
    /// Maximum compressed-sample rate (Hz) at `MAX_RATIO` and 30 fps…
    /// "≈50 kHz" in the paper (exactly 49.152 kHz).
    pub const MAX_CS_RATE: f64 = 50e3;
    /// TDC clock (Hz).
    pub const CLOCK_HZ: f64 = 24e6;
    /// Event duration used in the overlap discussion (s).
    pub const EVENT_DURATION: f64 = 5e-9;
}

/// Eq. (1): bits needed for a clip-free sum of `m·n` pixel codes of
/// `pixel_bits` bits.
///
/// # Examples
///
/// ```
/// use tepics_core::params::eq1_sample_bits;
/// assert_eq!(eq1_sample_bits(8, 64, 64), 20);
/// assert_eq!(eq1_sample_bits(8, 8, 8), 14); // 8×8 block-based CS
/// ```
pub fn eq1_sample_bits(pixel_bits: u32, m: u32, n: u32) -> u32 {
    tepics_util::fixed::sum_bits(pixel_bits, m, n)
}

/// Eq. (2): compressed-sample rate (Hz) for compression ratio `r`,
/// array `m × n` and frame rate `fs`.
///
/// # Examples
///
/// ```
/// use tepics_core::params::eq2_cs_rate;
/// let rate = eq2_cs_rate(0.4, 64, 64, 30.0);
/// assert!((rate - 49_152.0).abs() < 1e-9); // the paper's "≈50 kHz"
/// ```
pub fn eq2_cs_rate(r: f64, m: u32, n: u32, fs: f64) -> f64 {
    r * m as f64 * n as f64 * fs
}

/// Time available per compressed sample (s) at the Eq. (2) rate.
pub fn sample_slot_seconds(r: f64, m: u32, n: u32, fs: f64) -> f64 {
    1.0 / eq2_cs_rate(r, m, n, fs)
}

/// The break-even compression ratio: below it, `K` samples of
/// `sample_bits` cost fewer wire bits than the raw image.
pub fn breakeven_ratio(pixel_bits: u32, sample_bits: u32) -> f64 {
    pixel_bits as f64 / sample_bits as f64
}

/// Wire bits for the raw (uncompressed) image.
pub fn raw_bits(m: u32, n: u32, pixel_bits: u32) -> u64 {
    m as u64 * n as u64 * pixel_bits as u64
}

/// Wire bits for `k` compressed samples (payload only).
pub fn compressed_bits(k: u32, sample_bits: u32) -> u64 {
    k as u64 * sample_bits as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_matches_sect_ii_examples() {
        // "if each pixel value is encoded in 8b, we would still need 14b"
        // for 8×8 blocks; 20b for the 64×64 full frame.
        assert_eq!(eq1_sample_bits(8, 8, 8), 14);
        assert_eq!(eq1_sample_bits(8, 64, 64), 20);
        // Column sums: 64 pixels → 14b (Sect. III.B).
        assert_eq!(eq1_sample_bits(8, 64, 1), 14);
    }

    #[test]
    fn eq2_reproduces_the_50khz_figure() {
        let rate = eq2_cs_rate(paper::MAX_RATIO, 64, 64, paper::FRAME_RATE);
        // 0.4 · 4096 · 30 = 49152 ≈ 50 kHz; 20.3 µs per sample.
        assert!((rate - 49_152.0).abs() < 1e-9);
        assert!((rate - paper::MAX_CS_RATE).abs() / paper::MAX_CS_RATE < 0.02);
        let slot = sample_slot_seconds(paper::MAX_RATIO, 64, 64, paper::FRAME_RATE);
        assert!((slot - 20.345e-6).abs() < 0.01e-6);
    }

    #[test]
    fn breakeven_is_two_fifths_for_the_prototype() {
        assert!((breakeven_ratio(paper::PIXEL_BITS, paper::SAMPLE_BITS) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn bit_accounting_crosses_at_breakeven() {
        let mn = 4096u32;
        let raw = raw_bits(64, 64, 8);
        // Just below break-even: cheaper.
        let k_low = (0.39 * mn as f64) as u32;
        assert!(compressed_bits(k_low, 20) < raw);
        // Just above: more expensive.
        let k_high = (0.41 * mn as f64) as u32;
        assert!(compressed_bits(k_high, 20) > raw);
    }

    #[test]
    fn eq2_scales_linearly() {
        let base = eq2_cs_rate(0.2, 32, 32, 30.0);
        assert_eq!(eq2_cs_rate(0.4, 32, 32, 30.0), 2.0 * base);
        assert_eq!(eq2_cs_rate(0.2, 32, 32, 60.0), 2.0 * base);
        assert_eq!(eq2_cs_rate(0.2, 64, 32, 30.0), 2.0 * base);
    }
}
