//! Block-based compressive sampling — the literature baseline.
//!
//! The paper positions its full-frame strategy against block-based CS
//! (refs. \[6–8\], \[11\]): split the image into B×B blocks, measure each
//! with an independent small Φ_b, reconstruct per block. Blocks need
//! only `N_b + log2 B²` sample bits (14 for 8×8) and tiny matrices, but
//! "reconstruction departs from ideal and may require additional
//! samples" — exactly the trade-off the `ffvb` experiment measures.
//!
//! The baseline shares the sensor front-end: it operates on the same
//! ideal code image the full-frame pipeline measures, so the comparison
//! isolates the measurement *organization*.

use crate::error::CoreError;
use tepics_cs::dictionary::{Dct2dDictionary, Dictionary, ZeroMeanDictionary};
use tepics_cs::measurement::{DenseBinaryMeasurement, SelectionMeasurement};
use tepics_cs::op;
use tepics_cs::ComposedOperator;
use tepics_imaging::block::{merge_blocks, split_blocks};
use tepics_imaging::{ImageF64, ImageU8};
use tepics_recovery::{debias::debias, Fista};

/// A captured block-based frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockFrame {
    /// Block side length B.
    pub block: usize,
    /// Measurements per block.
    pub k_per_block: usize,
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// Per-block Bernoulli seed base.
    pub seed: u64,
    /// Samples, block-major then measurement-major.
    pub samples: Vec<u32>,
}

impl BlockFrame {
    /// Total compression ratio `K_total / (M·N)`.
    pub fn ratio(&self) -> f64 {
        self.samples.len() as f64 / (self.width * self.height) as f64
    }

    /// Payload bits at the block-based sample width
    /// (`code_bits + log2 B²`).
    pub fn payload_bits(&self, code_bits: u32) -> u64 {
        let sample_bits =
            tepics_util::fixed::sum_bits(code_bits, self.block as u32, self.block as u32);
        self.samples.len() as u64 * sample_bits as u64
    }
}

/// Block-based CS encoder/decoder pair.
///
/// # Examples
///
/// ```
/// use tepics_core::BlockCs;
/// use tepics_imaging::Scene;
///
/// let codes = Scene::gaussian_blobs(2).render(32, 32, 1).map(|v| (v * 255.0).round());
/// let bcs = BlockCs::new(32, 32, 8, 0.4, 7).unwrap();
/// let frame = bcs.capture(&codes);
/// let recon = bcs.reconstruct(&frame).unwrap();
/// assert_eq!(recon.width(), 32);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BlockCs {
    width: usize,
    height: usize,
    block: usize,
    ratio: f64,
    seed: u64,
}

impl BlockCs {
    /// Creates a block-based pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the image is not
    /// divisible into `block × block` tiles, the block is smaller than
    /// the paper's practical minimum of 8, or the ratio is outside
    /// `(0, 1]`.
    pub fn new(
        width: usize,
        height: usize,
        block: usize,
        ratio: f64,
        seed: u64,
    ) -> Result<BlockCs, CoreError> {
        if block < 8 {
            // Sect. II: "blocks ... minimum practical size of 8×8".
            return Err(CoreError::InvalidConfig(format!(
                "block {block} below the practical minimum of 8"
            )));
        }
        if width == 0
            || height == 0
            || !width.is_multiple_of(block)
            || !height.is_multiple_of(block)
        {
            return Err(CoreError::InvalidConfig(format!(
                "{width}×{height} not divisible into {block}×{block} blocks"
            )));
        }
        if !(ratio > 0.0 && ratio <= 1.0) {
            return Err(CoreError::InvalidConfig(format!(
                "ratio {ratio} outside (0,1]"
            )));
        }
        Ok(BlockCs {
            width,
            height,
            block,
            ratio,
            seed,
        })
    }

    /// Measurements per block (`⌈R·B²⌉`, at least 1).
    pub fn k_per_block(&self) -> usize {
        ((self.ratio * (self.block * self.block) as f64).ceil() as usize).max(1)
    }

    /// The per-block measurement for block index `b` (deterministic in
    /// the seed, distinct per block).
    fn block_measurement(&self, b: usize) -> DenseBinaryMeasurement {
        DenseBinaryMeasurement::bernoulli(
            self.k_per_block(),
            self.block * self.block,
            self.seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(b as u64 + 1)),
            0.5,
        )
    }

    /// Captures block-based compressed samples from a code image
    /// (values expected in `[0, 255]`).
    ///
    /// # Panics
    ///
    /// Panics if the image size does not match the pipeline.
    pub fn capture(&self, codes: &ImageF64) -> BlockFrame {
        assert_eq!(
            (codes.width(), codes.height()),
            (self.width, self.height),
            "code image size mismatch"
        );
        let tiles = split_blocks(codes, self.block);
        let mut samples = Vec::with_capacity(tiles.len() * self.k_per_block());
        let mut y = vec![0.0; self.k_per_block()];
        for (b, tile) in tiles.iter().enumerate() {
            let phi = self.block_measurement(b);
            {
                use tepics_cs::LinearOperator;
                phi.apply(tile, &mut y);
            }
            samples.extend(y.iter().map(|&v| v.round().max(0.0) as u32));
        }
        BlockFrame {
            block: self.block,
            k_per_block: self.k_per_block(),
            width: self.width,
            height: self.height,
            seed: self.seed,
            samples,
        }
    }

    /// Convenience: captures directly from an 8-bit code image.
    pub fn capture_codes(&self, codes: &ImageU8) -> BlockFrame {
        self.capture(&codes.to_code_f64())
    }

    /// Reconstructs the code image from a block frame (per-block
    /// mean-split + DC-pinned DCT + debiased FISTA).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FrameMismatch`] if the frame does not match
    /// this pipeline, or recovery errors from the per-block solver.
    pub fn reconstruct(&self, frame: &BlockFrame) -> Result<ImageF64, CoreError> {
        if frame.block != self.block
            || frame.width != self.width
            || frame.height != self.height
            || frame.seed != self.seed
            || frame.k_per_block != self.k_per_block()
        {
            return Err(CoreError::FrameMismatch(
                "block frame does not match pipeline configuration".into(),
            ));
        }
        let n_blocks = (self.width / self.block) * (self.height / self.block);
        if frame.samples.len() != n_blocks * frame.k_per_block {
            return Err(CoreError::MalformedFrame(format!(
                "expected {} samples, got {}",
                n_blocks * frame.k_per_block,
                frame.samples.len()
            )));
        }
        let dict = ZeroMeanDictionary::new(Dct2dDictionary::new(self.block, self.block), 0);
        let mut tiles = Vec::with_capacity(n_blocks);
        let mut pixels = vec![0.0; self.block * self.block];
        let mut dict_scratch = Vec::new();
        for b in 0..n_blocks {
            let phi = self.block_measurement(b);
            let y: Vec<f64> = frame.samples[b * frame.k_per_block..(b + 1) * frame.k_per_block]
                .iter()
                .map(|&v| v as f64)
                .collect();
            // Per-block mean split.
            let counts = phi.selection_counts();
            let cc = op::dot(&counts, &counts);
            let mu = if cc > 0.0 {
                op::dot(&counts, &y) / cc
            } else {
                0.0
            };
            let resid: Vec<f64> = y
                .iter()
                .zip(&counts)
                .map(|(&yi, &ci)| yi - mu * ci)
                .collect();
            let a = ComposedOperator::new(&phi, &dict);
            let rec = Fista::new()
                .lambda_ratio(0.02)
                .max_iter(300)
                .solve(&a, &resid)?;
            let rec = debias(&a, &resid, &rec, frame.k_per_block / 2)?;
            dict.synthesize_with(&rec.coefficients, &mut pixels, &mut dict_scratch);
            tiles.push(
                pixels
                    .iter()
                    .map(|&vi| (mu + vi).clamp(0.0, 255.0))
                    .collect(),
            );
        }
        Ok(merge_blocks(&tiles, self.width, self.height, self.block))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tepics_imaging::{psnr, Scene};

    fn code_image(seed: u64) -> ImageF64 {
        Scene::gaussian_blobs(3)
            .render(32, 32, seed)
            .map(|v| (v * 255.0).round())
    }

    #[test]
    fn roundtrip_reconstruction_is_reasonable() {
        let codes = code_image(4);
        let bcs = BlockCs::new(32, 32, 8, 0.5, 11).unwrap();
        let frame = bcs.capture(&codes);
        let recon = bcs.reconstruct(&frame).unwrap();
        let db = psnr(&codes, &recon, 255.0);
        assert!(db > 20.0, "block CS reconstruction {db} dB");
    }

    #[test]
    fn sample_count_matches_ratio() {
        let bcs = BlockCs::new(32, 32, 8, 0.25, 1).unwrap();
        assert_eq!(bcs.k_per_block(), 16);
        let frame = bcs.capture(&code_image(1));
        assert_eq!(frame.samples.len(), 16 * 16);
        assert!((frame.ratio() - 0.25).abs() < 0.01);
    }

    #[test]
    fn block_samples_fit_fourteen_bits() {
        let codes = ImageF64::new(32, 32, 255.0); // worst case
        let bcs = BlockCs::new(32, 32, 8, 0.3, 2).unwrap();
        let frame = bcs.capture(&codes);
        let max = frame.samples.iter().max().copied().unwrap();
        assert!(max < (1 << 14), "block sample {max} exceeds 14 bits");
        assert_eq!(frame.payload_bits(8), frame.samples.len() as u64 * 14);
    }

    #[test]
    fn blocks_use_independent_matrices() {
        let bcs = BlockCs::new(32, 32, 8, 0.3, 5).unwrap();
        assert_ne!(bcs.block_measurement(0), bcs.block_measurement(1));
    }

    #[test]
    fn mismatched_frame_is_rejected() {
        let bcs = BlockCs::new(32, 32, 8, 0.3, 5).unwrap();
        let other = BlockCs::new(32, 32, 8, 0.3, 6).unwrap();
        let frame = bcs.capture(&code_image(2));
        assert!(matches!(
            other.reconstruct(&frame),
            Err(CoreError::FrameMismatch(_))
        ));
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(BlockCs::new(32, 32, 4, 0.3, 1).is_err()); // block too small
        assert!(BlockCs::new(30, 32, 8, 0.3, 1).is_err()); // not divisible
        assert!(BlockCs::new(32, 32, 8, 0.0, 1).is_err()); // bad ratio
    }
}
