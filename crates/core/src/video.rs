//! Sequence (video) coding on top of the compressive imager.
//!
//! A fixed camera watching a mostly static scene is the paper's
//! motivating deployment (autonomous camera nodes). Because frames
//! captured with the *same seed* share the measurement matrix,
//! differences commute with measurement:
//!
//! ```text
//! y_t − y_{t−1} = Φ(x_t − x_{t−1})
//! ```
//!
//! so the receiver can reconstruct each frame as the previous
//! reconstruction plus a *delta* recovered from the sample difference —
//! and scene deltas are far sparser than scenes, so they survive much
//! lower effective measurement budgets.
//!
//! The implementation lives in [`DecodeSession`] (delta mode), which
//! also consumes the wire stream incrementally and caches the shared
//! operator. [`SequenceDecoder`] remains as a thin frame-at-a-time shim
//! over it for one release.

use crate::decoder::Decoder;
use crate::error::CoreError;
use crate::frame::CompressedFrame;
use crate::session::DecodeSession;
use tepics_imaging::ImageF64;

/// Receiver-side sequence decoder.
///
/// Feed frames in capture order via [`SequenceDecoder::push`]; each call
/// returns the reconstructed code image for that time step.
#[deprecated(
    since = "0.2.0",
    note = "use `session::DecodeSession` with `delta_mode` — it adds incremental \
            byte ingestion and operator caching"
)]
#[derive(Debug, Clone)]
pub struct SequenceDecoder {
    session: DecodeSession,
}

#[allow(deprecated)]
impl SequenceDecoder {
    /// Creates a sequence decoder from the first frame's header.
    ///
    /// * `delta_sparsity` — pixel budget for each delta (IHT target;
    ///   size it to the expected number of changing pixels).
    /// * `keyframe_interval` — every `interval`-th frame is decoded from
    ///   scratch, bounding drift; 0 means "key frame only once".
    ///
    /// # Errors
    ///
    /// Propagates header validation from [`Decoder::for_frame`].
    pub fn new(
        first: &CompressedFrame,
        delta_sparsity: usize,
        keyframe_interval: usize,
    ) -> Result<SequenceDecoder, CoreError> {
        let mut session = DecodeSession::new();
        session.delta_mode(delta_sparsity, keyframe_interval);
        session.prime(&first.header)?;
        Ok(SequenceDecoder { session })
    }

    /// Access to the underlying per-frame decoder (to change dictionary
    /// or algorithm for key frames).
    pub fn decoder_mut(&mut self) -> &mut Decoder {
        self.session.decoder_mut().expect("primed at construction")
    }

    /// Decodes the next frame of the sequence.
    ///
    /// The first frame (and every `keyframe_interval`-th frame) runs the
    /// full sparse recovery; intermediate frames run delta recovery
    /// against the previous reconstruction.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FrameMismatch`] if the frame's header or
    /// sample count differs from the sequence (delta coding requires an
    /// identical Φ), plus any recovery error.
    pub fn push(&mut self, frame: &CompressedFrame) -> Result<ImageF64, CoreError> {
        Ok(self
            .session
            .push_frame(frame)?
            .reconstruction
            .code_image()
            .clone())
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::imager::CompressiveImager;
    use tepics_imaging::{psnr, Scene};
    use tepics_sensor::Fidelity;

    fn make_imager(seed: u64) -> CompressiveImager {
        CompressiveImager::builder(24, 24)
            .ratio(0.35)
            .seed(seed)
            .fidelity(Fidelity::Functional)
            .build()
            .unwrap()
    }

    fn moving_dot_scene(t: usize) -> tepics_imaging::ImageF64 {
        let mut scene = Scene::gaussian_blobs(2).render(24, 24, 77);
        let x = 3 + t * 3;
        for dy in 0..2 {
            for dx in 0..2 {
                scene.set(x + dx, 10 + dy, 0.95);
            }
        }
        scene
    }

    #[test]
    fn delta_decoding_tracks_a_moving_object() {
        let im = make_imager(0x5E9);
        let mut seq: Option<SequenceDecoder> = None;
        for t in 0..4 {
            let scene = moving_dot_scene(t);
            let frame = im.capture(&scene);
            let truth = im.ideal_codes(&scene).to_code_f64();
            if seq.is_none() {
                seq = Some(SequenceDecoder::new(&frame, 40, 0).unwrap());
            }
            let codes = seq.as_mut().expect("initialized").push(&frame).unwrap();
            let db = psnr(&truth, &codes, 255.0);
            assert!(db > 22.0, "frame {t}: {db:.1} dB");
        }
    }

    #[test]
    fn static_scene_deltas_are_nearly_free() {
        let im = make_imager(0xCAFE);
        let scene = Scene::gaussian_blobs(3).render(24, 24, 5);
        let frame = im.capture(&scene);
        let mut seq = SequenceDecoder::new(&frame, 20, 0).unwrap();
        let key = seq.push(&frame).unwrap();
        // Identical second frame: the delta is exactly zero, so the
        // reconstruction must not move at all.
        let second = seq.push(&frame).unwrap();
        assert_eq!(key, second);
    }

    #[test]
    fn keyframe_interval_forces_full_recovery() {
        let im = make_imager(0xCC);
        let scene = Scene::gaussian_blobs(3).render(24, 24, 9);
        let frame = im.capture(&scene);
        let mut seq = SequenceDecoder::new(&frame, 20, 2).unwrap();
        // Frames: key, delta, delta -> key at index 3.
        let a = seq.push(&frame).unwrap();
        let _b = seq.push(&frame).unwrap();
        let _c = seq.push(&frame).unwrap();
        let d = seq.push(&frame).unwrap(); // refreshed key
                                           // All reconstructions of the same static frame agree.
        assert_eq!(a, d);
    }

    #[test]
    fn mismatched_frames_are_rejected() {
        let im = make_imager(1);
        let other = make_imager(2);
        let scene = Scene::Uniform(0.5).render(24, 24, 0);
        let f1 = im.capture(&scene);
        let f2 = other.capture(&scene);
        let mut seq = SequenceDecoder::new(&f1, 10, 0).unwrap();
        seq.push(&f1).unwrap();
        assert!(matches!(seq.push(&f2), Err(CoreError::FrameMismatch(_))));
    }
}
