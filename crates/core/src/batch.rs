//! Parallel batch capture→recover engine.
//!
//! The experiment harness and any service built on TEPICS run the same
//! loop hundreds of times: capture a scene, round-trip the frame
//! through the wire codec, reconstruct, grade. The loops are
//! embarrassingly parallel — each item owns its imager state and scene
//! — so [`BatchRunner`] fans them across worker threads (via
//! [`tepics_util::parallel::par_map`]) and aggregates the per-item
//! [`PipelineReport`]s into batch statistics: mean/percentile PSNR,
//! total bits on the wire, and end-to-end throughput in frames per
//! second.
//!
//! Determinism: results are collected in input order and every per-item
//! computation is seeded, so a batch produces **bit-identical reports
//! for a fixed seed whether it runs on 1 thread or N** — only the
//! wall-clock (and therefore the throughput figure) changes.
//!
//! # Examples
//!
//! ```
//! use tepics_core::batch::BatchRunner;
//! use tepics_core::prelude::*;
//!
//! let imager = CompressiveImager::builder(16, 16)
//!     .ratio(0.35)
//!     .seed(42)
//!     .fidelity(Fidelity::Functional)
//!     .build()
//!     .unwrap();
//! let scenes: Vec<ImageF64> = (0..4)
//!     .map(|i| Scene::gaussian_blobs(3).render(16, 16, i))
//!     .collect();
//! let outcome = BatchRunner::new().run(&imager, &scenes).unwrap();
//! let summary = outcome.summary();
//! assert_eq!(summary.frames, 4);
//! assert!(summary.mean_psnr_db > 10.0);
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::cache::OperatorCache;
use crate::error::CoreError;
use crate::imager::CompressiveImager;
use crate::pipeline::{evaluate_with_cache, PipelineReport};
use crate::session::{DecodeReport, DecodeSession, DecodedFrame, ErasurePolicy};
use tepics_imaging::ImageF64;
use tepics_util::parallel::{default_threads, par_map};
use tepics_util::pool::WorkerPool;

/// Fans independent capture→wire→reconstruct jobs across worker
/// threads and aggregates their [`PipelineReport`]s.
///
/// Every runner owns a shared [`OperatorCache`]: items of a
/// [`BatchRunner::run`] batch share one imager (one seed), so the
/// measurement operator, dictionary, and FISTA step size are built by
/// the first item and served warm to the rest — across worker threads.
/// Warm results are bit-identical to cold ones, so the determinism
/// guarantee is unaffected.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    threads: usize,
    cache: Arc<OperatorCache>,
}

impl Default for BatchRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchRunner {
    /// A runner using all available hardware parallelism.
    #[must_use]
    pub fn new() -> Self {
        Self::with_threads(default_threads())
    }

    /// A runner pinned to `threads` workers (1 = serial, useful for
    /// profiling and for determinism tests).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        BatchRunner {
            threads: threads.max(1),
            cache: OperatorCache::shared(),
        }
    }

    /// The worker-thread count this runner will use.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The operator cache shared by this runner's decodes (inspect its
    /// [`stats`](OperatorCache::stats) for hit rates).
    #[must_use]
    pub fn cache(&self) -> &Arc<OperatorCache> {
        &self.cache
    }

    /// Runs the standard pipeline ([`evaluate_with_cache`] with a
    /// default-configured decoder and the runner's shared cache) over
    /// `scenes` with a shared imager.
    ///
    /// # Errors
    ///
    /// Returns the first per-item error in input order; all items are
    /// still executed (the batch does not short-circuit mid-flight).
    pub fn run(
        &self,
        imager: &CompressiveImager,
        scenes: &[ImageF64],
    ) -> Result<BatchOutcome, CoreError> {
        self.run_with(imager, scenes, |_| {})
    }

    /// Like [`BatchRunner::run`], applying `configure` to every item's
    /// decoder first — the batch-scale entry point for solver and
    /// dictionary selection (e.g.
    /// `runner.run_with(&im, &scenes, |d| { d.algorithm(kind); })`).
    /// The per-solver cache entries (operator norms, column views) are
    /// shared across items exactly like the operator itself, and results
    /// stay bit-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Returns the first per-item error in input order; all items are
    /// still executed.
    pub fn run_with(
        &self,
        imager: &CompressiveImager,
        scenes: &[ImageF64],
        configure: impl Fn(&mut crate::decoder::Decoder) + Sync,
    ) -> Result<BatchOutcome, CoreError> {
        self.run_jobs(scenes, |scene| {
            evaluate_with_cache(&self.cache, imager, &configure, scene)
        })
    }

    /// Decodes many wire streams in parallel, one [`DecodeSession`] per
    /// stream, all sharing the runner's operator cache. Results are in
    /// input order and bit-identical at any thread count.
    ///
    /// Streams are scheduled on the process-wide persistent
    /// [`WorkerPool`], and each stream's
    /// session inherits the runner's thread count, so a batch of few
    /// (even one) tiled streams still parallelizes over its inner
    /// tiles. Oversubscription is impossible by construction: a stream
    /// already running *on* a pool worker decodes its tiles serially on
    /// that worker's warm workspace (the pool's nested-use guard)
    /// rather than fanning out again.
    ///
    /// Per-stream failures are **isolated**: a corrupt stream records
    /// its error (and whatever frames decoded before it) in its own
    /// [`StreamOutcome`] instead of aborting the batch, and the
    /// returned [`StreamBatchOutcome`] counts failed and degraded
    /// streams. Resilient (version-3) streams degrade through the
    /// given erasure policy rather than failing.
    pub fn decode_streams(&self, streams: &[impl AsRef<[u8]> + Sync]) -> StreamBatchOutcome {
        self.decode_streams_with(streams, ErasurePolicy::default())
    }

    /// Like [`BatchRunner::decode_streams`] with an explicit
    /// [`ErasurePolicy`] for resilient tiled streams.
    pub fn decode_streams_with(
        &self,
        streams: &[impl AsRef<[u8]> + Sync],
        policy: ErasurePolicy,
    ) -> StreamBatchOutcome {
        // The pool's owned-item API wants 'static jobs, so each stream's
        // bytes are copied once up front — noise next to the decode.
        let owned: Vec<Vec<u8>> = streams.iter().map(|s| s.as_ref().to_vec()).collect();
        let cache = self.cache.clone();
        let threads = self.threads;
        let outcomes = WorkerPool::global().map(threads, owned, move |_, bytes, _| {
            let mut session = DecodeSession::with_cache(cache.clone());
            session.erasure_policy(policy).threads(threads);
            let mut frames = Vec::new();
            let mut error = None;
            match session.push_bytes(bytes.as_ref()) {
                Ok(mut out) => frames.append(&mut out),
                Err(e) => error = Some(e),
            }
            if error.is_none() {
                match session.finish() {
                    Ok(mut tail) => frames.append(&mut tail),
                    Err(e) => error = Some(e),
                }
            }
            // A mid-chunk error defers so its preceding frames
            // survive; pick it up for the outcome.
            if error.is_none() {
                error = session.error().cloned();
            }
            StreamOutcome {
                frames,
                report: session.report(),
                error,
            }
        });
        StreamBatchOutcome { outcomes }
    }

    /// Runs an arbitrary per-item pipeline over `jobs`.
    ///
    /// This is the generic entry point for sweeps where each item needs
    /// its own imager or sensor configuration (e.g. the noise and
    /// warm-up experiments): `f` receives one job and returns its
    /// [`PipelineReport`].
    ///
    /// # Errors
    ///
    /// Returns the first per-item error in input order; all items are
    /// still executed.
    pub fn run_jobs<T, F>(&self, jobs: &[T], f: F) -> Result<BatchOutcome, CoreError>
    where
        T: Sync,
        F: Fn(&T) -> Result<PipelineReport, CoreError> + Sync,
    {
        #[allow(clippy::disallowed_methods)] // see clippy.toml
        // tidy:allow(wall-clock: batch wall-clock is reporting metadata; reconstructions never depend on it)
        let started = Instant::now();
        let results = par_map(self.threads, jobs, |_, job| f(job));
        let elapsed = started.elapsed();
        let mut reports = Vec::with_capacity(results.len());
        for r in results {
            reports.push(r?);
        }
        Ok(BatchOutcome { reports, elapsed })
    }
}

/// What one stream of a [`BatchRunner::decode_streams`] batch produced.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOutcome {
    /// Frames decoded before any failure, in stream order.
    pub frames: Vec<DecodedFrame>,
    /// The stream's session accounting (degradation counters).
    pub report: DecodeReport,
    /// The error that stopped this stream, if any (`None` = the stream
    /// decoded to completion, possibly degraded).
    pub error: Option<CoreError>,
}

impl StreamOutcome {
    /// Whether the stream failed outright (sticky parse or recovery
    /// error).
    #[must_use]
    pub fn is_failed(&self) -> bool {
        self.error.is_some()
    }

    /// Whether the stream completed but lost something on the way:
    /// corrupt stretches skipped, frames lost, or tiles erased.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.error.is_none()
            && (self.report.corrupt_events > 0
                || self.report.frames_lost > 0
                || self.report.frames_degraded > 0
                || self.report.stale_records > 0)
    }
}

/// The result of one [`BatchRunner::decode_streams`] batch: per-stream
/// outcomes in input order (independent of thread count), with failure
/// and degradation tallies.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamBatchOutcome {
    /// Per-stream outcomes, in input order.
    pub outcomes: Vec<StreamOutcome>,
}

impl StreamBatchOutcome {
    /// Streams that errored out (their partial frames are still in
    /// their outcome).
    #[must_use]
    pub fn failed_streams(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_failed()).count()
    }

    /// Streams that completed with degradation (corruption skipped,
    /// frames lost, or tiles erased).
    #[must_use]
    pub fn degraded_streams(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_degraded()).count()
    }

    /// Streams that decoded completely clean.
    #[must_use]
    pub fn clean_streams(&self) -> usize {
        self.outcomes.len() - self.failed_streams() - self.degraded_streams()
    }

    /// Total frames decoded across every stream (including the partial
    /// prefixes of failed streams).
    #[must_use]
    pub fn total_frames(&self) -> usize {
        self.outcomes.iter().map(|o| o.frames.len()).sum()
    }

    /// Per-stream decoded frames in input order — the pre-isolation
    /// shape, for callers that only need the frames. Failed streams
    /// contribute their partial prefix.
    #[must_use]
    pub fn frames(&self) -> Vec<&[DecodedFrame]> {
        self.outcomes.iter().map(|o| o.frames.as_slice()).collect()
    }
}

/// The result of one batch run: per-item reports in input order plus
/// the batch wall-clock.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-item pipeline reports, in input order (independent of thread
    /// count and scheduling).
    pub reports: Vec<PipelineReport>,
    /// Wall-clock time for the whole batch.
    pub elapsed: Duration,
}

impl BatchOutcome {
    /// Aggregates the per-item reports into batch statistics.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty — an empty batch has no meaningful
    /// percentiles.
    #[must_use]
    pub fn summary(&self) -> BatchSummary {
        assert!(!self.reports.is_empty(), "cannot summarize an empty batch");
        let n = self.reports.len();
        let mut psnrs: Vec<f64> = self.reports.iter().map(|r| r.psnr_code_db).collect();
        psnrs.sort_by(f64::total_cmp);
        let mean_psnr_db = self.reports.iter().map(|r| r.psnr_code_db).sum::<f64>() / n as f64;
        let mean_ssim = self.reports.iter().map(|r| r.ssim_code).sum::<f64>() / n as f64;
        let total_wire_bits: u64 = self.reports.iter().map(|r| r.wire_bits as u64).sum();
        let total_raw_bits: u64 = self.reports.iter().map(|r| r.raw_bits).sum();
        let total_iterations: u64 = self.reports.iter().map(|r| r.iterations as u64).sum();
        let secs = self.elapsed.as_secs_f64();
        BatchSummary {
            frames: n,
            mean_psnr_db,
            min_psnr_db: psnrs[0],
            p50_psnr_db: percentile(&psnrs, 0.50),
            p90_psnr_db: percentile(&psnrs, 0.90),
            max_psnr_db: psnrs[n - 1],
            mean_ssim,
            total_wire_bits,
            total_raw_bits,
            total_iterations,
            elapsed: self.elapsed,
            frames_per_sec: if secs > 0.0 {
                n as f64 / secs
            } else {
                f64::INFINITY
            },
        }
    }
}

/// Aggregate statistics over one batch of pipeline runs.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSummary {
    /// Number of frames in the batch.
    pub frames: usize,
    /// Mean code-domain PSNR (dB).
    pub mean_psnr_db: f64,
    /// Worst frame PSNR (dB).
    pub min_psnr_db: f64,
    /// Median frame PSNR (dB).
    pub p50_psnr_db: f64,
    /// 90th-percentile frame PSNR (dB).
    pub p90_psnr_db: f64,
    /// Best frame PSNR (dB).
    pub max_psnr_db: f64,
    /// Mean code-domain SSIM.
    pub mean_ssim: f64,
    /// Total bits on the wire across the batch.
    pub total_wire_bits: u64,
    /// Total raw-readout bits the batch replaces.
    pub total_raw_bits: u64,
    /// Total solver iterations across the batch.
    pub total_iterations: u64,
    /// Batch wall-clock.
    pub elapsed: Duration,
    /// End-to-end throughput (frames per second of wall-clock).
    pub frames_per_sec: f64,
}

impl BatchSummary {
    /// Wire saving vs raw readout across the batch
    /// (`1 − wire/raw`; negative when compression loses).
    #[must_use]
    pub fn wire_saving(&self) -> f64 {
        1.0 - self.total_wire_bits as f64 / self.total_raw_bits as f64
    }
}

/// Nearest-rank percentile (deterministic, no interpolation):
/// `q` in `[0, 1]` over an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::evaluate;
    use tepics_imaging::Scene;
    use tepics_sensor::{EventStats, Fidelity};

    fn imager(side: usize) -> CompressiveImager {
        CompressiveImager::builder(side, side)
            .ratio(0.35)
            .seed(42)
            .fidelity(Fidelity::Functional)
            .build()
            .unwrap()
    }

    fn scenes(side: usize, count: u64) -> Vec<ImageF64> {
        (0..count)
            .map(|i| Scene::gaussian_blobs(3).render(side, side, i))
            .collect()
    }

    /// The headline guarantee: per-item reports are bit-identical for a
    /// fixed seed whether the batch runs on 1 thread or many.
    #[test]
    fn reports_identical_across_thread_counts() {
        let im = imager(16);
        let batch = scenes(16, 6);
        let serial = BatchRunner::with_threads(1).run(&im, &batch).unwrap();
        for threads in [2, 4, 19] {
            let parallel = BatchRunner::with_threads(threads).run(&im, &batch).unwrap();
            assert_eq!(
                serial.reports, parallel.reports,
                "thread count {threads} changed batch results"
            );
        }
    }

    /// The same guarantee for tiled imagers: a batch of tiled
    /// capture→stitch evaluations is bit-identical at any thread count
    /// (items in parallel, tiles stitched deterministically inside
    /// each).
    #[test]
    fn tiled_reports_identical_across_thread_counts() {
        use tepics_imaging::tile::{FrameGeometry, TileConfig};
        let im = CompressiveImager::builder_for(FrameGeometry::new(40, 28))
            .tiling(TileConfig::new(16).overlap(4))
            .ratio(0.35)
            .seed(42)
            .fidelity(Fidelity::Functional)
            .build()
            .unwrap();
        let batch: Vec<ImageF64> = (0..4)
            .map(|i| Scene::gaussian_blobs(3).render(40, 28, i))
            .collect();
        let serial = BatchRunner::with_threads(1).run(&im, &batch).unwrap();
        for threads in [2, 4] {
            let parallel = BatchRunner::with_threads(threads).run(&im, &batch).unwrap();
            assert_eq!(
                serial.reports, parallel.reports,
                "thread count {threads} changed tiled batch results"
            );
        }
    }

    /// The PR-1 determinism guarantee extended from single frames to
    /// streams: decoding a batch of multi-frame wire streams through
    /// [`BatchRunner::decode_streams`] (shared operator cache, parallel
    /// sessions) is bit-identical at any thread count.
    #[test]
    fn stream_decodes_identical_across_thread_counts() {
        use crate::session::EncodeSession;
        let im = imager(16);
        let streams: Vec<Vec<u8>> = (0..4)
            .map(|s| {
                let mut enc = EncodeSession::new(im.clone()).unwrap();
                for i in 0..3 {
                    enc.capture(&Scene::gaussian_blobs(3).render(16, 16, s * 10 + i))
                        .unwrap();
                }
                enc.into_bytes()
            })
            .collect();
        let serial = BatchRunner::with_threads(1).decode_streams(&streams);
        assert_eq!(serial.outcomes.len(), 4);
        assert!(serial.outcomes.iter().all(|o| o.frames.len() == 3));
        assert_eq!(serial.failed_streams(), 0);
        assert_eq!(serial.degraded_streams(), 0);
        assert_eq!(serial.clean_streams(), 4);
        for threads in [2, 4, 19] {
            let parallel = BatchRunner::with_threads(threads).decode_streams(&streams);
            assert_eq!(
                serial, parallel,
                "thread count {threads} changed stream decodes"
            );
        }
    }

    /// One corrupt stream no longer aborts the batch: its outcome
    /// records the error (and the frames decoded before it), the other
    /// streams decode normally, and the tallies see exactly one
    /// failure.
    #[test]
    fn corrupt_stream_is_isolated_from_the_batch() {
        use crate::session::EncodeSession;
        let im = imager(16);
        let mut streams: Vec<Vec<u8>> = (0..3)
            .map(|s| {
                let mut enc = EncodeSession::new(im.clone()).unwrap();
                for i in 0..2 {
                    enc.capture(&Scene::gaussian_blobs(2).render(16, 16, s * 5 + i))
                        .unwrap();
                }
                enc.into_bytes()
            })
            .collect();
        // Poison stream 1 after its first record: frame 0 decodes, the
        // second record's marker is destroyed.
        let record_start = crate::stream::STREAM_HEADER_BYTES;
        let sample_bits = streams[1][10] as usize;
        let count = u32::from_le_bytes(
            streams[1][record_start + 1..record_start + 5]
                .try_into()
                .unwrap(),
        ) as usize;
        let second = record_start + 5 + (count * sample_bits).div_ceil(8);
        streams[1][second] ^= 0xFF;

        let outcome = BatchRunner::with_threads(2).decode_streams(&streams);
        assert_eq!(outcome.failed_streams(), 1);
        assert_eq!(outcome.clean_streams(), 2);
        assert!(outcome.outcomes[1].is_failed());
        assert_eq!(
            outcome.outcomes[1].frames.len(),
            1,
            "frames before the corruption survive"
        );
        assert_eq!(outcome.outcomes[0].frames.len(), 2);
        assert_eq!(outcome.outcomes[2].frames.len(), 2);
        assert_eq!(outcome.total_frames(), 5);
        // Isolation preserves thread-count determinism too.
        let serial = BatchRunner::with_threads(1).decode_streams(&streams);
        assert_eq!(serial, outcome);
    }

    /// All streams of a batch share one seed, so the runner's cache
    /// builds the operator once and serves every other frame warm.
    #[test]
    fn decode_streams_shares_the_operator_cache() {
        use crate::session::EncodeSession;
        let im = imager(16);
        let streams: Vec<Vec<u8>> = (0..3)
            .map(|s| {
                let mut enc = EncodeSession::new(im.clone()).unwrap();
                enc.capture(&Scene::gaussian_blobs(2).render(16, 16, s))
                    .unwrap();
                enc.into_bytes()
            })
            .collect();
        let runner = BatchRunner::with_threads(1);
        let outcome = runner.decode_streams(&streams);
        assert_eq!(outcome.failed_streams(), 0);
        let stats = runner.cache().stats();
        assert_eq!(stats.misses, 1, "one cold operator build for the batch");
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn summary_aggregation_math() {
        // Hand-built reports with known statistics; summary() must
        // reproduce them exactly.
        let report = |psnr: f64, wire: usize, iters: usize| PipelineReport {
            ratio: 0.35,
            psnr_code_db: psnr,
            ssim_code: 0.5,
            wire_bits: wire,
            raw_bits: 2048,
            iterations: iters,
            event_stats: EventStats::default(),
        };
        let outcome = BatchOutcome {
            reports: vec![
                report(10.0, 100, 3),
                report(30.0, 200, 5),
                report(20.0, 300, 7),
            ],
            elapsed: Duration::from_secs(2),
        };
        let s = outcome.summary();
        assert_eq!(s.frames, 3);
        assert!((s.mean_psnr_db - 20.0).abs() < 1e-12);
        assert_eq!(s.min_psnr_db, 10.0);
        assert_eq!(s.p50_psnr_db, 20.0);
        assert_eq!(s.p90_psnr_db, 30.0);
        assert_eq!(s.max_psnr_db, 30.0);
        assert!((s.mean_ssim - 0.5).abs() < 1e-12);
        assert_eq!(s.total_wire_bits, 600);
        assert_eq!(s.total_raw_bits, 3 * 2048);
        assert_eq!(s.total_iterations, 15);
        assert!((s.frames_per_sec - 1.5).abs() < 1e-12);
        assert!((s.wire_saving() - (1.0 - 600.0 / 6144.0)).abs() < 1e-12);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0); // round(0.5 * 3) = 2
        assert_eq!(percentile(&v, 0.9), 4.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert_eq!(percentile(&[5.0], 0.5), 5.0);
    }

    #[test]
    fn run_jobs_supports_per_item_configs() {
        // Each job builds its own imager (different seeds); the batch
        // must preserve job order in its reports.
        let scene = Scene::gaussian_blobs(2).render(16, 16, 9);
        let seeds = [1u64, 2, 3, 4];
        let outcome = BatchRunner::with_threads(4)
            .run_jobs(&seeds, |&seed| {
                let im = CompressiveImager::builder(16, 16)
                    .ratio(0.3)
                    .seed(seed)
                    .fidelity(Fidelity::Functional)
                    .build()
                    .unwrap();
                evaluate(&im, |_| {}, &scene)
            })
            .unwrap();
        assert_eq!(outcome.reports.len(), seeds.len());
        // Different seeds select different pixels; reports must differ,
        // proving order wasn't scrambled into duplicates.
        let mut distinct = outcome
            .reports
            .iter()
            .map(|r| r.psnr_code_db.to_bits())
            .collect::<Vec<_>>();
        distinct.dedup();
        assert_eq!(distinct.len(), seeds.len());
        // And re-running yields the identical sequence.
        let again = BatchRunner::with_threads(2)
            .run_jobs(&seeds, |&seed| {
                let im = CompressiveImager::builder(16, 16)
                    .ratio(0.3)
                    .seed(seed)
                    .fidelity(Fidelity::Functional)
                    .build()
                    .unwrap();
                evaluate(&im, |_| {}, &scene)
            })
            .unwrap();
        assert_eq!(outcome.reports, again.reports);
    }

    #[test]
    fn errors_surface_but_do_not_poison_order() {
        // Items after a failing one still run; the first error (in
        // input order) is the one returned.
        let jobs = [1usize, 0, 2];
        let err = BatchRunner::with_threads(3)
            .run_jobs(&jobs, |&j| {
                if j == 0 {
                    Err(CoreError::MalformedFrame(format!("job {j} failed")))
                } else {
                    Ok(PipelineReport {
                        ratio: 0.3,
                        psnr_code_db: j as f64,
                        ssim_code: 0.1,
                        wire_bits: 1,
                        raw_bits: 1,
                        iterations: 1,
                        event_stats: EventStats::default(),
                    })
                }
            })
            .unwrap_err();
        assert_eq!(err, CoreError::MalformedFrame("job 0 failed".into()));
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_summary_panics() {
        let outcome = BatchOutcome {
            reports: vec![],
            elapsed: Duration::ZERO,
        };
        let _ = outcome.summary();
    }
}
