//! End-to-end focal-plane compressive sampling — the paper's system.
//!
//! This crate wires the TEPICS substrates into the pipeline of the DATE
//! 2018 paper:
//!
//! ```text
//! scene ──► CompressiveImager ──► CompressedFrame ──► wire bytes
//!              (sensor sim +          (seed + K           │
//!               CA strategy)         20-bit samples)      ▼
//!                                                   Decoder (replays
//!                                                   the CA from the
//!                                                   seed, mean-split +
//!                                                   sparse recovery)
//!                                                        │
//!                                                        ▼
//!                                                 reconstructed image
//! ```
//!
//! * [`CompressiveImager`] — captures compressed samples from a scene
//!   using the event-accurate sensor simulator and an on-chip strategy
//!   generator ([`StrategyKind`]).
//! * [`session`] — the stream-oriented public API: [`EncodeSession`]
//!   captures scene sequences into one contiguous wire stream,
//!   [`DecodeSession`] consumes bytes incrementally and reconstructs
//!   through a shared operator cache — including tiled streams, which
//!   are stitched back into full frames ([`FrameGeometry`] +
//!   [`TileConfig`] on the imager builder).
//!
//! [`FrameGeometry`]: tepics_imaging::tile::FrameGeometry
//! [`TileConfig`]: tepics_imaging::tile::TileConfig
//! * [`stream`] — the versioned stream container those sessions speak:
//!   stream header once, 5-byte per-frame records after.
//! * [`cache`] — the [`OperatorCache`] memoizing Φ, dictionaries, and
//!   FISTA step sizes across frames and batch items sharing a seed.
//! * [`CompressedFrame`] — the single-frame artifact: a tiny header plus
//!   bit-packed 20-bit samples; the measurement matrix itself is never
//!   transmitted (only the seed is), which is the paper's key saving.
//! * [`Decoder`] — the per-frame recovery engine: regenerates Φ from
//!   the seed, estimates the scene mean from the known per-row
//!   selection counts, and runs sparse recovery (FISTA/OMP/CoSaMP/IHT
//!   over DCT/Haar/identity).
//! * [`pipeline`] — capture → wire → reconstruct → quality report.
//! * [`batch`] — fans many capture→recover loops (or stream decodes)
//!   across worker threads and aggregates the reports (mean/percentile
//!   PSNR, wire totals, frames/sec) with bit-identical results at any
//!   thread count.
//! * [`BlockCs`] — the block-based CS baseline of refs. \[6–8\]/\[11\].
//! * [`params`] — Eq. (1)/(2) and the compression break-even point.
//!
//! # Examples
//!
//! ```
//! use tepics_core::prelude::*;
//!
//! let imager = CompressiveImager::builder(32, 32)
//!     .ratio(0.35)
//!     .seed(42)
//!     .build()
//!     .unwrap();
//! let mut enc = EncodeSession::new(imager).unwrap();
//! let scene = Scene::gaussian_blobs(3).render(32, 32, 7);
//! enc.capture(&scene).unwrap();
//!
//! let mut dec = DecodeSession::new();
//! let decoded = dec.push_bytes(&enc.to_bytes()).unwrap();
//! let truth = enc.imager().ideal_codes(&scene);
//! let db = psnr(
//!     &truth.to_code_f64(),
//!     decoded[0].reconstruction.code_image(),
//!     255.0,
//! );
//! assert!(db > 20.0, "PSNR {db} dB unexpectedly low");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod batch;
pub mod cache;
pub mod decoder;
pub mod error;
pub mod faults;
pub mod frame;
pub mod imager;
pub mod params;
pub mod pipeline;
pub mod session;
pub mod solver;
pub mod strategy;
pub mod stream;

pub use baseline::BlockCs;
pub use batch::{BatchOutcome, BatchRunner, BatchSummary, StreamBatchOutcome, StreamOutcome};
pub use cache::{CacheConfig, CacheStats, OperatorCache, OperatorKey, DEFAULT_CACHE_BYTES};
pub use decoder::{Decoder, DictionaryKind, Reconstruction};
pub use error::CoreError;
pub use faults::FaultInjector;
pub use frame::{CompressedFrame, FrameHeader};
pub use imager::{CompressiveImager, CompressiveImagerBuilder};
pub use session::{
    DecodeExecutor, DecodeReport, DecodeSession, DecodedFrame, EncodeSession, ErasurePolicy,
};
pub use solver::{RecoveryParams, SolverKind};
pub use strategy::StrategyKind;
pub use stream::{StreamEvent, WireProfile};

/// One-stop imports for the capture → transmit → reconstruct flow.
pub mod prelude {
    pub use crate::baseline::BlockCs;
    pub use crate::batch::{
        BatchOutcome, BatchRunner, BatchSummary, StreamBatchOutcome, StreamOutcome,
    };
    pub use crate::cache::{CacheConfig, CacheStats, OperatorCache};
    pub use crate::decoder::{Decoder, DictionaryKind, Reconstruction};
    pub use crate::faults::FaultInjector;
    pub use crate::frame::CompressedFrame;
    pub use crate::imager::CompressiveImager;
    pub use crate::pipeline::{evaluate, evaluate_with_cache, PipelineReport};
    pub use crate::session::{
        DecodeExecutor, DecodeReport, DecodeSession, DecodedFrame, EncodeSession, ErasurePolicy,
    };
    pub use crate::solver::{RecoveryParams, SolverKind};
    pub use crate::strategy::StrategyKind;
    pub use crate::stream::{StreamEvent, WireProfile};
    pub use tepics_imaging::tile::{BlendMode, FrameGeometry, TileConfig, TileLayout};
    pub use tepics_imaging::{mae, mse, psnr, ssim, ImageF64, ImageU8, Scene};
    pub use tepics_sensor::{Fidelity, SensorConfig};
}
