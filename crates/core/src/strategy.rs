//! Measurement-strategy selection.
//!
//! The encoder and decoder must build *identical* pattern sources from
//! the frame header alone — [`StrategyKind`] is that header field. The
//! paper's chip uses [`StrategyKind::CellularAutomaton`] with Rule 30;
//! the alternatives are the cited baselines, kept wire-compatible so
//! every experiment can swap strategies without touching the pipeline.

use crate::error::CoreError;
use tepics_ca::{
    BernoulliSource, BitPatternSource, CaSource, ElementaryRule, HadamardSource, LfsrSource,
};

/// The generator family used for row/column selection patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StrategyKind {
    /// 1-D cellular automaton ring (the paper's design).
    CellularAutomaton {
        /// Wolfram rule number (30 for the chip).
        rule: u8,
        /// Warm-up steps before the first pattern.
        warmup: u16,
        /// Automaton steps between patterns.
        steps_per_sample: u8,
    },
    /// Maximal-length LFSR (ref. \[14\]).
    Lfsr {
        /// Register width in bits (2..=32).
        width: u8,
    },
    /// Shuffled Walsh–Hadamard rows (ref. \[13\]).
    Hadamard,
    /// Software i.i.d. balanced Bernoulli (the idealized sub-Gaussian
    /// strategy; not implementable on chip without storing Φ).
    Bernoulli,
}

impl StrategyKind {
    /// The paper's configuration: Rule 30, warm-up `2·(M+N)` is applied
    /// by [`StrategyKind::default_for`].
    pub fn rule30(warmup: u16) -> StrategyKind {
        StrategyKind::CellularAutomaton {
            rule: 30,
            warmup,
            steps_per_sample: 1,
        }
    }

    /// The default strategy for an `m × n` sensor: Rule 30 with a
    /// `2·(m+n)`-step warm-up.
    pub fn default_for(m: usize, n: usize) -> StrategyKind {
        StrategyKind::rule30((2 * (m + n)).min(u16::MAX as usize) as u16)
    }

    /// Builds the pattern source for `pattern_len` bits from `seed`.
    ///
    /// Encoder and decoder both call this; equal inputs give equal
    /// sources, which integration tests verify end-to-end.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for out-of-range parameters
    /// (zero CA step, unsupported LFSR width).
    pub fn build_source(
        &self,
        pattern_len: usize,
        seed: u64,
    ) -> Result<Box<dyn BitPatternSource>, CoreError> {
        match *self {
            StrategyKind::CellularAutomaton {
                rule,
                warmup,
                steps_per_sample,
            } => {
                if steps_per_sample == 0 {
                    return Err(CoreError::InvalidConfig(
                        "steps_per_sample must be positive".into(),
                    ));
                }
                Ok(Box::new(CaSource::new(
                    pattern_len,
                    seed,
                    ElementaryRule::new(rule),
                    warmup as usize,
                    steps_per_sample as usize,
                )))
            }
            StrategyKind::Lfsr { width } => {
                if !(2..=32).contains(&width) {
                    return Err(CoreError::InvalidConfig(format!(
                        "LFSR width {width} outside 2..=32"
                    )));
                }
                Ok(Box::new(LfsrSource::new(pattern_len, width as u32, seed)))
            }
            StrategyKind::Hadamard => Ok(Box::new(HadamardSource::new(pattern_len, seed))),
            StrategyKind::Bernoulli => Ok(Box::new(BernoulliSource::balanced(pattern_len, seed))),
        }
    }

    /// Wire encoding: `(tag, p0, p1, p2)`.
    pub(crate) fn to_wire(self) -> [u8; 4] {
        match self {
            StrategyKind::CellularAutomaton {
                rule,
                warmup,
                steps_per_sample,
            } => {
                let w = warmup.to_le_bytes();
                [0x10 | (steps_per_sample.min(15)), rule, w[0], w[1]]
            }
            StrategyKind::Lfsr { width } => [0x20, width, 0, 0],
            StrategyKind::Hadamard => [0x30, 0, 0, 0],
            StrategyKind::Bernoulli => [0x40, 0, 0, 0],
        }
    }

    /// Wire decoding (inverse of [`StrategyKind::to_wire`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedFrame`] on an unknown tag.
    pub(crate) fn from_wire(bytes: [u8; 4]) -> Result<StrategyKind, CoreError> {
        match bytes[0] & 0xF0 {
            0x10 => Ok(StrategyKind::CellularAutomaton {
                rule: bytes[1],
                warmup: u16::from_le_bytes([bytes[2], bytes[3]]),
                steps_per_sample: bytes[0] & 0x0F,
            }),
            0x20 => Ok(StrategyKind::Lfsr { width: bytes[1] }),
            0x30 => Ok(StrategyKind::Hadamard),
            0x40 => Ok(StrategyKind::Bernoulli),
            other => Err(CoreError::MalformedFrame(format!(
                "unknown strategy tag {other:#x}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds() -> Vec<StrategyKind> {
        vec![
            StrategyKind::rule30(128),
            StrategyKind::CellularAutomaton {
                rule: 90,
                warmup: 7,
                steps_per_sample: 3,
            },
            StrategyKind::Lfsr { width: 16 },
            StrategyKind::Hadamard,
            StrategyKind::Bernoulli,
        ]
    }

    #[test]
    fn wire_roundtrip_preserves_kind() {
        for kind in all_kinds() {
            let back = StrategyKind::from_wire(kind.to_wire()).unwrap();
            assert_eq!(back, kind);
        }
    }

    #[test]
    fn encoder_and_decoder_sources_agree() {
        for kind in all_kinds() {
            let mut enc = kind.build_source(48, 99).unwrap();
            let mut dec = kind.build_source(48, 99).unwrap();
            for i in 0..10 {
                assert_eq!(
                    enc.next_pattern(),
                    dec.next_pattern(),
                    "{kind:?} diverged at pattern {i}"
                );
            }
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let bad_steps = StrategyKind::CellularAutomaton {
            rule: 30,
            warmup: 0,
            steps_per_sample: 0,
        };
        assert!(bad_steps.build_source(16, 1).is_err());
        assert!(StrategyKind::Lfsr { width: 64 }
            .build_source(16, 1)
            .is_err());
    }

    #[test]
    fn unknown_wire_tag_is_malformed() {
        assert!(StrategyKind::from_wire([0xF0, 0, 0, 0]).is_err());
    }

    #[test]
    fn default_strategy_is_rule30() {
        match StrategyKind::default_for(64, 64) {
            StrategyKind::CellularAutomaton { rule, warmup, .. } => {
                assert_eq!(rule, 30);
                assert_eq!(warmup, 256);
            }
            other => panic!("unexpected default {other:?}"),
        }
    }
}
