//! End-to-end evaluation: capture → wire → reconstruct → report.
//!
//! The experiment harness runs hundreds of these loops; this module
//! centralizes the bookkeeping so every experiment reports identical
//! quantities (code-domain PSNR/SSIM against the ideal code image,
//! bits-on-wire against the raw readout, event statistics).

use std::sync::Arc;

use crate::cache::OperatorCache;
use crate::decoder::Decoder;
use crate::error::CoreError;
use crate::frame::CompressedFrame;
use crate::imager::CompressiveImager;
use crate::params;
use crate::session::{DecodeSession, EncodeSession};
use tepics_imaging::{psnr, ssim, ImageF64, Scene};
use tepics_sensor::EventStats;

/// Quality and cost summary of one capture/reconstruct cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Compression ratio `K / (M·N)` actually used.
    pub ratio: f64,
    /// PSNR of the reconstructed code image vs the ideal codes (dB).
    pub psnr_code_db: f64,
    /// SSIM of the reconstruction in the code domain.
    pub ssim_code: f64,
    /// Bits on the wire (header + packed samples).
    pub wire_bits: usize,
    /// Bits of the raw (uncompressed) code readout.
    pub raw_bits: u64,
    /// Solver iterations used.
    pub iterations: usize,
    /// Event statistics from the capture.
    pub event_stats: EventStats,
}

impl PipelineReport {
    /// Wire saving vs raw readout (`1 −  wire/raw`; negative when
    /// compression loses).
    pub fn wire_saving(&self) -> f64 {
        1.0 - self.wire_bits as f64 / self.raw_bits as f64
    }
}

/// Captures `scene`, round-trips the frame through the wire codec, and
/// reconstructs with `decoder_config` applied to a fresh decoder.
///
/// Thin layer over [`evaluate_with_cache`] with a private, single-use
/// cache.
///
/// # Errors
///
/// Propagates frame and recovery errors from the decoder.
///
/// # Panics
///
/// Panics if the scene size does not match the imager.
pub fn evaluate(
    imager: &CompressiveImager,
    configure: impl FnOnce(&mut Decoder),
    scene: &ImageF64,
) -> Result<PipelineReport, CoreError> {
    evaluate_with_cache(&OperatorCache::shared(), imager, configure, scene)
}

/// [`evaluate`] decoding through a shared [`OperatorCache`]: callers
/// evaluating many scenes with one imager (suites, batches) reuse the
/// measurement operator, dictionary, and FISTA step size across calls.
/// Warm results are bit-identical to cold ones.
///
/// The capture is transported through the session layer
/// ([`EncodeSession`] → [`DecodeSession::push_bytes`]), so every
/// evaluation also exercises the wire path end to end — including the
/// tiled path: a tiled imager captures one record per tile, and the
/// report scores the stitched full-frame reconstruction against the
/// full-frame ideal codes. `wire_bits` is reported for the single-frame
/// codec (header + payload, summed over tile records), keeping the wire
/// accounting of every experiment comparable across batch shapes, and
/// `ratio`/`raw_bits` are always *full-frame* quantities.
///
/// # Errors
///
/// Propagates frame and recovery errors from the decoder.
///
/// # Panics
///
/// Panics if the scene size does not match the imager.
pub fn evaluate_with_cache(
    cache: &Arc<OperatorCache>,
    imager: &CompressiveImager,
    configure: impl FnOnce(&mut Decoder),
    scene: &ImageF64,
) -> Result<PipelineReport, CoreError> {
    // Always exercise the wire codec: transmit and re-parse.
    let mut enc = EncodeSession::new(imager.clone())?;
    let (frames, event_stats) = enc.capture_with_stats(scene)?;
    let header = *enc.header();
    let mut session = DecodeSession::with_cache(cache.clone());
    configure(session.prime(&header)?);
    let decoded = session.push_bytes(&enc.to_bytes())?;
    let recon = &decoded
        .last()
        .ok_or_else(|| CoreError::MalformedFrame("stream yielded no frame".into()))?
        .reconstruction;
    let truth = imager.ideal_codes(scene).to_code_f64();
    let code_max = (1u32 << header.code_bits) - 1;
    let geometry = imager.geometry();
    let samples: usize = frames.iter().map(|f| f.samples.len()).sum();
    Ok(PipelineReport {
        ratio: samples as f64 / geometry.pixels() as f64,
        psnr_code_db: psnr(&truth, recon.code_image(), code_max as f64),
        ssim_code: ssim(&truth, recon.code_image(), code_max as f64),
        wire_bits: frames.iter().map(CompressedFrame::wire_bits).sum(),
        raw_bits: params::raw_bits(
            geometry.height() as u32,
            geometry.width() as u32,
            header.code_bits as u32,
        ),
        iterations: recon.stats().iterations,
        event_stats,
    })
}

/// Runs [`evaluate`] over the standard scene suite, returning
/// `(scene_name, report)` pairs. Used by the `ffvb` experiment and the
/// integration tests.
///
/// # Errors
///
/// Propagates the first pipeline error encountered.
pub fn evaluate_suite(
    imager: &CompressiveImager,
    size: usize,
    scene_seed: u64,
) -> Result<Vec<(&'static str, PipelineReport)>, CoreError> {
    // One cache for the whole suite: every scene shares the imager's
    // seed and sample count, so Φ is built exactly once.
    let cache = OperatorCache::shared();
    let mut out = Vec::new();
    for (name, scene) in Scene::evaluation_suite() {
        let img = scene.render(size, size, scene_seed);
        let report = evaluate_with_cache(&cache, imager, |_| {}, &img)?;
        out.push((name, report));
    }
    Ok(out)
}

/// Progressive reconstruction: quality as the first `k` samples arrive.
///
/// Compressed samples are generated (and transmitted) sequentially, one
/// per 20 µs slot — a receiver can reconstruct *at any prefix* of the
/// stream. Returns `(k, psnr_db)` pairs for each checkpoint, a property
/// broadcast/telemetry links exploit: every extra received sample
/// monotonically (in expectation) sharpens the image.
///
/// # Errors
///
/// Propagates decoder errors; checkpoints larger than the frame are
/// clamped to the full sample count. Returns
/// [`CoreError::InvalidConfig`] for tiled imagers — a prefix of a tiled
/// stream truncates whole tiles, not samples, so the progressive curve
/// has no meaning there.
///
/// # Panics
///
/// Panics if the scene size does not match the imager or `checkpoints`
/// is empty.
pub fn progressive_psnr(
    imager: &CompressiveImager,
    scene: &ImageF64,
    checkpoints: &[usize],
) -> Result<Vec<(usize, f64)>, CoreError> {
    assert!(!checkpoints.is_empty(), "need at least one checkpoint");
    if imager.is_tiled() {
        return Err(CoreError::InvalidConfig(
            "progressive reconstruction is sample-prefix based; tiled captures have no \
             single sample stream"
                .into(),
        ));
    }
    let frame = imager.capture(scene);
    let truth = imager.ideal_codes(scene).to_code_f64();
    let code_max = ((1u32 << frame.header.code_bits) - 1) as f64;
    // One session decodes every prefix: the container allows per-frame
    // sample counts, and repeated checkpoints come back warm.
    let mut session = DecodeSession::new();
    let mut out = Vec::with_capacity(checkpoints.len());
    for &k in checkpoints {
        let k = k.clamp(1, frame.samples.len());
        let mut prefix = frame.clone();
        prefix.samples.truncate(k);
        let decoded = session.push_frame(&prefix)?;
        out.push((
            k,
            psnr(&truth, decoded.reconstruction.code_image(), code_max),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tepics_sensor::Fidelity;

    fn imager() -> CompressiveImager {
        CompressiveImager::builder(16, 16)
            .ratio(0.35)
            .seed(5)
            .fidelity(Fidelity::Functional)
            .build()
            .unwrap()
    }

    #[test]
    fn report_fields_are_consistent() {
        let im = imager();
        let scene = Scene::gaussian_blobs(2).render(16, 16, 9);
        let report = evaluate(&im, |_| {}, &scene).unwrap();
        assert!((report.ratio - 90.0 / 256.0).abs() < 1e-9);
        assert!(report.psnr_code_db > 15.0);
        assert!(report.ssim_code > 0.3);
        assert_eq!(report.raw_bits, 256 * 8);
        assert!(report.wire_bits > 0);
        assert!(report.iterations > 0);
    }

    #[test]
    fn wire_saving_positive_below_breakeven() {
        // 16×16 sensor: sample_bits = 16, breakeven at R = 0.5; R = 0.35
        // must save wire bits even with header overhead.
        let im = imager();
        let scene = Scene::natural_like().render(16, 16, 2);
        let report = evaluate(&im, |_| {}, &scene).unwrap();
        assert!(
            report.wire_saving() > 0.0,
            "saving {} should be positive at R=0.35",
            report.wire_saving()
        );
    }

    #[test]
    fn progressive_reconstruction_improves_with_samples() {
        let im = imager();
        let scene = Scene::gaussian_blobs(3).render(16, 16, 4);
        let curve = progressive_psnr(&im, &scene, &[10, 30, 60, 90]).unwrap();
        assert_eq!(curve.len(), 4);
        // The last checkpoint must beat the first by a clear margin; the
        // interior may wiggle slightly (λ is relative to each prefix).
        assert!(
            curve.last().unwrap().1 > curve[0].1 + 3.0,
            "no progressive gain: {curve:?}"
        );
    }

    #[test]
    fn tiled_imagers_evaluate_with_full_frame_accounting() {
        use tepics_imaging::tile::{FrameGeometry, TileConfig};
        let im = CompressiveImager::builder_for(FrameGeometry::new(40, 28))
            .tiling(TileConfig::new(16).overlap(4))
            .ratio(0.35)
            .fidelity(Fidelity::Functional)
            .build()
            .unwrap();
        let scene = Scene::gaussian_blobs(3).render(40, 28, 6);
        let report = evaluate(&im, |_| {}, &scene).unwrap();
        // Full-frame raw accounting (40·28 px at 8-bit codes).
        assert_eq!(report.raw_bits, 40 * 28 * 8);
        // Six tiles at ⌈0.35·256⌉ samples each.
        assert!((report.ratio - (6.0 * 90.0) / 1120.0).abs() < 1e-9);
        assert!(report.psnr_code_db > 18.0, "{:.1} dB", report.psnr_code_db);
        assert!(report.wire_bits > 0);
        assert!(report.event_stats.total_pulses > 0);
        // Progressive curves are sample-prefix based and refuse tiling.
        assert!(matches!(
            progressive_psnr(&im, &scene, &[10, 20]),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn suite_covers_all_scenes() {
        let im = imager();
        let results = evaluate_suite(&im, 16, 3).unwrap();
        assert_eq!(results.len(), Scene::evaluation_suite().len());
        for (name, report) in &results {
            assert!(
                report.psnr_code_db.is_finite(),
                "{name} produced non-finite PSNR"
            );
        }
    }
}
