//! The versioned stream container: many frames, one header.
//!
//! The single-frame wire format ([`CompressedFrame::to_bytes`]) repeats
//! its full 27-byte header on every frame, even though everything but
//! the sample count — geometry, bit widths, strategy, seed — is
//! constant for a camera streaming with one seed. The stream container
//! factors that invariant part out:
//!
//! ```text
//! ┌─────────────────────────────┬──────────────┬──────────────┬───
//! │ stream header (23 B, once)  │ frame record │ frame record │ …
//! │ magic "TEPS" · version      │ marker (1 B) │              │
//! │ rows · cols · code_bits     │ count  (4 B) │              │
//! │ sample_bits · strategy      │ payload      │              │
//! │ seed                        │ (bit-packed) │              │
//! └─────────────────────────────┴──────────────┴──────────────┴───
//! ```
//!
//! Per-frame overhead drops from 27 bytes to 5, so a stream of `n`
//! frames spends `23 + 5n` header bytes against the frame codec's
//! `27n` — smaller for every `n ≥ 2`, and the gap grows with sequence
//! length. Frames in one stream share a header but may differ in sample
//! count (prefix truncation, adaptive budgets).
//!
//! [`StreamWriter`] builds a stream incrementally; [`StreamParser`]
//! consumes one from arbitrary byte chunks (network reads need not align
//! with record boundaries). Both are the substrate of the session API
//! ([`EncodeSession`](crate::session::EncodeSession) /
//! [`DecodeSession`](crate::session::DecodeSession)).

use crate::error::CoreError;
use crate::frame::{BitReader, BitWriter, CompressedFrame, FrameHeader};
use crate::strategy::StrategyKind;

/// Magic bytes opening every stream.
pub const STREAM_MAGIC: [u8; 4] = *b"TEPS";
/// Container version this codec writes and accepts.
pub const STREAM_VERSION: u8 = 1;
/// Serialized size of the stream header.
pub const STREAM_HEADER_BYTES: usize = 23;
/// Serialized overhead of each frame record before its payload.
pub const FRAME_RECORD_BYTES: usize = 5;

/// Marker byte opening each frame record (cheap resynchronization /
/// corruption check).
const FRAME_MARKER: u8 = 0xF5;

/// Validates the header fields the container (and the decoder behind
/// it) can represent: the decoder's shared checks plus the packer's
/// sample-width range.
fn validate_header(h: &FrameHeader) -> Result<(), CoreError> {
    h.validate()?;
    if h.sample_bits == 0 || h.sample_bits > 32 {
        return Err(CoreError::MalformedFrame(format!(
            "sample width {} outside 1..=32",
            h.sample_bits
        )));
    }
    Ok(())
}

/// Serializes a stream header.
fn header_bytes(h: &FrameHeader) -> [u8; STREAM_HEADER_BYTES] {
    let mut out = [0u8; STREAM_HEADER_BYTES];
    out[0..4].copy_from_slice(&STREAM_MAGIC);
    out[4] = STREAM_VERSION;
    out[5..7].copy_from_slice(&h.rows.to_le_bytes());
    out[7..9].copy_from_slice(&h.cols.to_le_bytes());
    out[9] = h.code_bits;
    out[10] = h.sample_bits;
    out[11..15].copy_from_slice(&h.strategy.to_wire());
    out[15..23].copy_from_slice(&h.seed.to_le_bytes());
    out
}

/// Incremental writer producing one contiguous wire stream.
///
/// # Examples
///
/// ```
/// use tepics_core::frame::{CompressedFrame, FrameHeader};
/// use tepics_core::stream::{StreamParser, StreamWriter};
/// use tepics_core::StrategyKind;
///
/// let header = FrameHeader {
///     rows: 8,
///     cols: 8,
///     code_bits: 8,
///     sample_bits: 14,
///     strategy: StrategyKind::rule30(32),
///     seed: 99,
/// };
/// let mut writer = StreamWriter::new(header).unwrap();
/// writer.push_samples(&[1, 2, 3]).unwrap();
/// writer.push_samples(&[4, 5]).unwrap();
///
/// let mut parser = StreamParser::new();
/// parser.push_bytes(writer.bytes());
/// let first = parser.next_frame().unwrap().unwrap();
/// assert_eq!(first.samples, vec![1, 2, 3]);
/// assert_eq!(first.header, header);
/// ```
#[derive(Debug, Clone)]
pub struct StreamWriter {
    header: FrameHeader,
    buf: Vec<u8>,
    frames: usize,
}

impl StreamWriter {
    /// Opens a stream for frames matching `header`, writing the stream
    /// header immediately.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedFrame`] for degenerate headers
    /// (zero dimensions, bit widths outside their ranges).
    pub fn new(header: FrameHeader) -> Result<StreamWriter, CoreError> {
        validate_header(&header)?;
        Ok(StreamWriter {
            header,
            buf: header_bytes(&header).to_vec(),
            frames: 0,
        })
    }

    /// The stream header every frame must match.
    pub fn header(&self) -> &FrameHeader {
        &self.header
    }

    /// Number of frames appended so far.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Appends a captured frame.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FrameMismatch`] if the frame header differs
    /// from the stream header, or the sample-range errors of
    /// [`StreamWriter::push_samples`].
    pub fn push_frame(&mut self, frame: &CompressedFrame) -> Result<(), CoreError> {
        if frame.header != self.header {
            return Err(CoreError::FrameMismatch(
                "frame header does not match stream header".into(),
            ));
        }
        self.push_samples(&frame.samples)
    }

    /// Appends one frame record from raw samples.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the frame is empty, has
    /// more samples than pixels, or contains a sample that does not fit
    /// in the header's `sample_bits`.
    pub fn push_samples(&mut self, samples: &[u32]) -> Result<(), CoreError> {
        let max_count = self.header.rows as u64 * self.header.cols as u64;
        if samples.is_empty() || samples.len() as u64 > max_count {
            return Err(CoreError::InvalidConfig(format!(
                "frame sample count {} outside 1..={max_count}",
                samples.len()
            )));
        }
        let bits = self.header.sample_bits as u32;
        let limit = if bits == 32 {
            u32::MAX
        } else {
            (1 << bits) - 1
        };
        if let Some(&bad) = samples.iter().find(|&&s| s > limit) {
            return Err(CoreError::InvalidConfig(format!(
                "sample {bad} does not fit in {bits} bits"
            )));
        }
        self.buf.push(FRAME_MARKER);
        self.buf
            .extend_from_slice(&(samples.len() as u32).to_le_bytes());
        let mut writer = BitWriter::new();
        for &s in samples {
            writer.write(s, bits);
        }
        self.buf.extend_from_slice(&writer.finish());
        self.frames += 1;
        Ok(())
    }

    /// The serialized stream so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the serialized stream.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Total wire size in bits.
    pub fn wire_bits(&self) -> usize {
        self.buf.len() * 8
    }
}

/// Incremental parser consuming a stream from arbitrary byte chunks.
///
/// Feed bytes with [`StreamParser::push_bytes`] as they arrive, then
/// drain complete frames with [`StreamParser::next_frame`]. A parse
/// error (bad magic, unknown strategy, out-of-range count…) is sticky:
/// the stream is corrupt and every further call reports the same
/// [`CoreError::MalformedFrame`].
#[derive(Debug, Clone, Default)]
pub struct StreamParser {
    buf: Vec<u8>,
    pos: usize,
    header: Option<FrameHeader>,
    frames: usize,
    poisoned: Option<CoreError>,
}

impl StreamParser {
    /// An empty parser awaiting the stream header.
    #[must_use]
    pub fn new() -> StreamParser {
        StreamParser::default()
    }

    /// Appends received bytes (need not align with record boundaries).
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
        // Reclaim consumed prefix once it dominates the buffer.
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// The stream header, once enough bytes have arrived to parse it.
    pub fn header(&self) -> Option<&FrameHeader> {
        self.header.as_ref()
    }

    /// Number of complete frames parsed so far.
    pub fn frames_parsed(&self) -> usize {
        self.frames
    }

    /// Bytes received but not yet consumed by a complete record.
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Parses the next complete frame, if the buffer holds one.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedFrame`] on a corrupt stream; the
    /// error is sticky.
    pub fn next_frame(&mut self) -> Result<Option<CompressedFrame>, CoreError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        match self.try_next() {
            Ok(frame) => Ok(frame),
            Err(e) => {
                self.poisoned = Some(e.clone());
                Err(e)
            }
        }
    }

    fn try_next(&mut self) -> Result<Option<CompressedFrame>, CoreError> {
        if self.header.is_none() {
            if self.buffered_bytes() < STREAM_HEADER_BYTES {
                return Ok(None);
            }
            let b = &self.buf[self.pos..self.pos + STREAM_HEADER_BYTES];
            if b[0..4] != STREAM_MAGIC {
                return Err(CoreError::MalformedFrame("bad stream magic".into()));
            }
            if b[4] != STREAM_VERSION {
                return Err(CoreError::MalformedFrame(format!(
                    "unsupported stream version {}",
                    b[4]
                )));
            }
            let header = FrameHeader {
                rows: u16::from_le_bytes([b[5], b[6]]),
                cols: u16::from_le_bytes([b[7], b[8]]),
                code_bits: b[9],
                sample_bits: b[10],
                strategy: StrategyKind::from_wire([b[11], b[12], b[13], b[14]])?,
                seed: u64::from_le_bytes(b[15..23].try_into().expect("8 bytes")),
            };
            validate_header(&header)?;
            self.header = Some(header);
            self.pos += STREAM_HEADER_BYTES;
        }
        let header = self.header.expect("parsed above");
        if self.buffered_bytes() < FRAME_RECORD_BYTES {
            return Ok(None);
        }
        let b = &self.buf[self.pos..];
        if b[0] != FRAME_MARKER {
            return Err(CoreError::MalformedFrame(format!(
                "bad frame marker {:#04x}",
                b[0]
            )));
        }
        let count = u32::from_le_bytes([b[1], b[2], b[3], b[4]]) as u64;
        let max_count = header.rows as u64 * header.cols as u64;
        if count == 0 || count > max_count {
            return Err(CoreError::MalformedFrame(format!(
                "frame sample count {count} outside 1..={max_count}"
            )));
        }
        // Overflow-safe: count ≤ 2³², sample_bits ≤ 32 → fits in u64;
        // reject (rather than truncate) lengths a 32-bit usize cannot
        // address.
        let payload_len = usize::try_from((count * header.sample_bits as u64).div_ceil(8))
            .map_err(|_| {
                CoreError::MalformedFrame(format!(
                    "frame payload for {count} samples exceeds addressable memory"
                ))
            })?;
        if self.buffered_bytes() < FRAME_RECORD_BYTES + payload_len {
            return Ok(None);
        }
        let payload = &b[FRAME_RECORD_BYTES..FRAME_RECORD_BYTES + payload_len];
        let mut reader = BitReader::new(payload);
        let samples = (0..count)
            .map(|_| reader.read(header.sample_bits as u32))
            .collect();
        self.pos += FRAME_RECORD_BYTES + payload_len;
        self.frames += 1;
        Ok(Some(CompressedFrame { header, samples }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tepics_util::SplitMix64;

    fn header() -> FrameHeader {
        FrameHeader {
            rows: 16,
            cols: 16,
            code_bits: 8,
            sample_bits: 16,
            strategy: StrategyKind::rule30(64),
            seed: 0xDEAD_BEEF,
        }
    }

    fn frames(n: usize, k: usize) -> Vec<CompressedFrame> {
        let mut rng = SplitMix64::new(11);
        (0..n)
            .map(|_| CompressedFrame {
                header: header(),
                samples: (0..k).map(|_| rng.next_below(1 << 16) as u32).collect(),
            })
            .collect()
    }

    #[test]
    fn stream_roundtrips_all_frames() {
        let frames = frames(5, 90);
        let mut writer = StreamWriter::new(header()).unwrap();
        for f in &frames {
            writer.push_frame(f).unwrap();
        }
        let mut parser = StreamParser::new();
        parser.push_bytes(writer.bytes());
        for (i, f) in frames.iter().enumerate() {
            let got = parser
                .next_frame()
                .unwrap()
                .unwrap_or_else(|| panic!("frame {i} missing"));
            assert_eq!(&got, f, "frame {i}");
        }
        assert!(parser.next_frame().unwrap().is_none());
        assert_eq!(parser.frames_parsed(), 5);
        assert_eq!(parser.buffered_bytes(), 0);
    }

    #[test]
    fn parser_handles_arbitrary_chunking() {
        let frames = frames(3, 40);
        let mut writer = StreamWriter::new(header()).unwrap();
        for f in &frames {
            writer.push_frame(f).unwrap();
        }
        let bytes = writer.into_bytes();
        // Feed one byte at a time: frames must pop out exactly when
        // their last byte arrives.
        let mut parser = StreamParser::new();
        let mut got = Vec::new();
        for &b in &bytes {
            parser.push_bytes(&[b]);
            while let Some(f) = parser.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn stream_overhead_beats_repeated_frame_headers() {
        let frames = frames(4, 64);
        let mut writer = StreamWriter::new(header()).unwrap();
        let mut frame_codec_bits = 0usize;
        for f in &frames {
            writer.push_frame(f).unwrap();
            frame_codec_bits += f.wire_bits();
        }
        assert!(
            writer.wire_bits() < frame_codec_bits,
            "stream {} bits must beat {} bits of per-frame headers",
            writer.wire_bits(),
            frame_codec_bits
        );
        // Exact accounting: 23 + n·5 header bytes vs n·27.
        let payload: usize = frames.iter().map(|f| f.payload_bits().div_ceil(8)).sum();
        assert_eq!(
            writer.wire_bits(),
            (STREAM_HEADER_BYTES + 4 * FRAME_RECORD_BYTES + payload) * 8
        );
    }

    #[test]
    fn frames_may_vary_in_sample_count() {
        let mut writer = StreamWriter::new(header()).unwrap();
        writer.push_samples(&[1, 2, 3, 4, 5]).unwrap();
        writer.push_samples(&[6]).unwrap();
        let mut parser = StreamParser::new();
        parser.push_bytes(writer.bytes());
        assert_eq!(parser.next_frame().unwrap().unwrap().samples.len(), 5);
        assert_eq!(parser.next_frame().unwrap().unwrap().samples.len(), 1);
    }

    #[test]
    fn writer_rejects_foreign_and_degenerate_frames() {
        let mut writer = StreamWriter::new(header()).unwrap();
        let mut foreign = frames(1, 10).remove(0);
        foreign.header.seed ^= 1;
        assert!(matches!(
            writer.push_frame(&foreign),
            Err(CoreError::FrameMismatch(_))
        ));
        assert!(writer.push_samples(&[]).is_err());
        assert!(writer.push_samples(&vec![0; 257]).is_err()); // > 16·16
        assert!(writer.push_samples(&[1 << 16]).is_err()); // overflows 16 bits
        assert_eq!(writer.frames(), 0);
    }

    #[test]
    fn corrupt_streams_fail_sticky_and_clean() {
        let mut writer = StreamWriter::new(header()).unwrap();
        writer.push_samples(&[7, 8, 9]).unwrap();
        let good = writer.into_bytes();

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        let mut p = StreamParser::new();
        p.push_bytes(&bad);
        assert!(p.next_frame().is_err());
        // Sticky: the same error again, even after more bytes.
        p.push_bytes(&good);
        assert!(p.next_frame().is_err());

        // Bad frame marker.
        let mut bad = good.clone();
        bad[STREAM_HEADER_BYTES] ^= 0xFF;
        let mut p = StreamParser::new();
        p.push_bytes(&bad);
        assert!(matches!(p.next_frame(), Err(CoreError::MalformedFrame(_))));

        // Insane count.
        let mut bad = good;
        bad[STREAM_HEADER_BYTES + 1..STREAM_HEADER_BYTES + 5]
            .copy_from_slice(&u32::MAX.to_le_bytes());
        let mut p = StreamParser::new();
        p.push_bytes(&bad);
        assert!(matches!(p.next_frame(), Err(CoreError::MalformedFrame(_))));
    }

    #[test]
    fn truncated_stream_waits_instead_of_failing() {
        let mut writer = StreamWriter::new(header()).unwrap();
        writer.push_samples(&[1, 2, 3]).unwrap();
        let bytes = writer.into_bytes();
        let mut parser = StreamParser::new();
        parser.push_bytes(&bytes[..bytes.len() - 1]);
        assert!(parser.next_frame().unwrap().is_none());
        parser.push_bytes(&bytes[bytes.len() - 1..]);
        assert_eq!(parser.next_frame().unwrap().unwrap().samples, vec![1, 2, 3]);
    }
}
