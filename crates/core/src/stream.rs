//! The versioned stream container: many frames, one header.
//!
//! The single-frame wire format ([`CompressedFrame::to_bytes`]) repeats
//! its full 27-byte header on every frame, even though everything but
//! the sample count — geometry, bit widths, strategy, seed — is
//! constant for a camera streaming with one seed. The stream container
//! factors that invariant part out:
//!
//! ```text
//! ┌─────────────────────────────┬──────────────┬──────────────┬───
//! │ stream header (23 B, once)  │ frame record │ frame record │ …
//! │ magic "TEPS" · version      │ marker (1 B) │              │
//! │ rows · cols · code_bits     │ count  (4 B) │              │
//! │ sample_bits · strategy      │ payload      │              │
//! │ seed                        │ (bit-packed) │              │
//! └─────────────────────────────┴──────────────┴──────────────┴───
//! ```
//!
//! Per-frame overhead drops from 27 bytes to 5, so a stream of `n`
//! frames spends `23 + 5n` header bytes against the frame codec's
//! `27n` — smaller for every `n ≥ 2`, and the gap grows with sequence
//! length. Frames in one stream share a header but may differ in sample
//! count (prefix truncation, adaptive budgets).
//!
//! # Tiled streams (version 2)
//!
//! A version-2 stream carries a *tiled* capture: the base header's
//! `rows × cols` describe one **tile** (so every frame record parses
//! exactly as in version 1), and a 7-byte extension carries the full
//! frame geometry and stitching parameters:
//!
//! ```text
//! ┌──────────────────────────┬───────────────────────────┬──────────
//! │ base header (23 B)       │ tile extension (7 B)      │ records …
//! │ version = 2              │ frame_w · frame_h (u16 LE)│ (one per
//! │ rows·cols = TILE geometry│ overlap (u16 LE)          │  tile)
//! │                          │ blend (u8)                │
//! └──────────────────────────┴───────────────────────────┴──────────
//! ```
//!
//! Records arrive in row-major tile order, `layout.tiles()` records per
//! captured frame. Version-1 streams parse unchanged
//! ([`StreamParser::tile_layout`] is simply `None` for them).
//!
//! [`StreamWriter`] builds a stream incrementally; [`StreamParser`]
//! consumes one from arbitrary byte chunks (network reads need not align
//! with record boundaries). Both are the substrate of the session API
//! ([`EncodeSession`](crate::session::EncodeSession) /
//! [`DecodeSession`](crate::session::DecodeSession)).

use crate::error::CoreError;
use crate::frame::{BitReader, BitWriter, CompressedFrame, FrameHeader};
use crate::strategy::StrategyKind;
use tepics_imaging::tile::{BlendMode, FrameGeometry, TileLayout};

/// Magic bytes opening every stream.
pub const STREAM_MAGIC: [u8; 4] = *b"TEPS";
/// Container version of untiled streams.
pub const STREAM_VERSION: u8 = 1;
/// Container version of tiled streams (base header + tile extension).
pub const STREAM_VERSION_TILED: u8 = 2;
/// Serialized size of the stream header.
pub const STREAM_HEADER_BYTES: usize = 23;
/// Serialized size of a tiled (version-2) stream header: the base
/// header plus the 7-byte tile extension.
pub const TILED_HEADER_BYTES: usize = STREAM_HEADER_BYTES + 7;
/// Serialized overhead of each frame record before its payload.
pub const FRAME_RECORD_BYTES: usize = 5;

/// Marker byte opening each frame record (cheap resynchronization /
/// corruption check).
const FRAME_MARKER: u8 = 0xF5;

/// Validates the header fields the container (and the decoder behind
/// it) can represent: the decoder's shared checks plus the packer's
/// sample-width range.
fn validate_header(h: &FrameHeader) -> Result<(), CoreError> {
    h.validate()?;
    if h.sample_bits == 0 || h.sample_bits > 32 {
        return Err(CoreError::MalformedFrame(format!(
            "sample width {} outside 1..=32",
            h.sample_bits
        )));
    }
    Ok(())
}

/// Blend-mode wire encoding (byte 29 of a tiled header).
fn blend_to_wire(blend: BlendMode) -> u8 {
    match blend {
        BlendMode::Average => 0,
        BlendMode::Feather => 1,
    }
}

/// Decodes a blend-mode byte, rejecting unknown values.
fn blend_from_wire(byte: u8) -> Result<BlendMode, CoreError> {
    match byte {
        0 => Ok(BlendMode::Average),
        1 => Ok(BlendMode::Feather),
        other => Err(CoreError::MalformedFrame(format!(
            "unknown blend mode {other}"
        ))),
    }
}

/// Serializes a stream header.
fn header_bytes(h: &FrameHeader) -> [u8; STREAM_HEADER_BYTES] {
    let mut out = [0u8; STREAM_HEADER_BYTES];
    out[0..4].copy_from_slice(&STREAM_MAGIC);
    out[4] = STREAM_VERSION;
    out[5..7].copy_from_slice(&h.rows.to_le_bytes());
    out[7..9].copy_from_slice(&h.cols.to_le_bytes());
    out[9] = h.code_bits;
    out[10] = h.sample_bits;
    out[11..15].copy_from_slice(&h.strategy.to_wire());
    out[15..23].copy_from_slice(&h.seed.to_le_bytes());
    out
}

/// Incremental writer producing one contiguous wire stream.
///
/// # Examples
///
/// ```
/// use tepics_core::frame::{CompressedFrame, FrameHeader};
/// use tepics_core::stream::{StreamParser, StreamWriter};
/// use tepics_core::StrategyKind;
///
/// let header = FrameHeader {
///     rows: 8,
///     cols: 8,
///     code_bits: 8,
///     sample_bits: 14,
///     strategy: StrategyKind::rule30(32),
///     seed: 99,
/// };
/// let mut writer = StreamWriter::new(header).unwrap();
/// writer.push_samples(&[1, 2, 3]).unwrap();
/// writer.push_samples(&[4, 5]).unwrap();
///
/// let mut parser = StreamParser::new();
/// parser.push_bytes(writer.bytes());
/// let first = parser.next_frame().unwrap().unwrap();
/// assert_eq!(first.samples, vec![1, 2, 3]);
/// assert_eq!(first.header, header);
/// ```
#[derive(Debug, Clone)]
pub struct StreamWriter {
    header: FrameHeader,
    buf: Vec<u8>,
    frames: usize,
    layout: Option<TileLayout>,
}

impl StreamWriter {
    /// Opens a version-1 stream for frames matching `header`, writing
    /// the stream header immediately.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedFrame`] for degenerate headers
    /// (zero dimensions, bit widths outside their ranges).
    pub fn new(header: FrameHeader) -> Result<StreamWriter, CoreError> {
        validate_header(&header)?;
        Ok(StreamWriter {
            header,
            buf: header_bytes(&header).to_vec(),
            frames: 0,
            layout: None,
        })
    }

    /// Opens a version-2 (tiled) stream: `header` describes one tile
    /// and must match `layout`'s tile dimensions; the tile extension is
    /// written immediately after the base header. Each captured frame
    /// contributes `layout.tiles()` records, in row-major tile order.
    ///
    /// # Errors
    ///
    /// Returns the header errors of [`StreamWriter::new`], or
    /// [`CoreError::InvalidConfig`] if `header`'s geometry is not the
    /// layout's tile geometry or the frame dimensions exceed the wire
    /// format's `u16` fields.
    pub fn new_tiled(header: FrameHeader, layout: &TileLayout) -> Result<StreamWriter, CoreError> {
        validate_header(&header)?;
        if header.rows as usize != layout.tile_height()
            || header.cols as usize != layout.tile_width()
        {
            return Err(CoreError::InvalidConfig(format!(
                "stream header {}×{} does not match tile {}×{}",
                header.rows,
                header.cols,
                layout.tile_height(),
                layout.tile_width()
            )));
        }
        let frame = layout.frame();
        if frame.width() > u16::MAX as usize || frame.height() > u16::MAX as usize {
            return Err(CoreError::InvalidConfig(format!(
                "frame {}×{} exceeds the wire format's 65535-pixel axis limit",
                frame.width(),
                frame.height()
            )));
        }
        let mut buf = header_bytes(&header).to_vec();
        buf[4] = STREAM_VERSION_TILED;
        buf.extend_from_slice(&(frame.width() as u16).to_le_bytes());
        buf.extend_from_slice(&(frame.height() as u16).to_le_bytes());
        buf.extend_from_slice(&(layout.overlap() as u16).to_le_bytes());
        buf.push(blend_to_wire(layout.blend()));
        Ok(StreamWriter {
            header,
            buf,
            frames: 0,
            layout: Some(layout.clone()),
        })
    }

    /// The stream header every frame must match.
    pub fn header(&self) -> &FrameHeader {
        &self.header
    }

    /// The tile layout of a tiled (version-2) stream, `None` for
    /// version 1.
    pub fn tile_layout(&self) -> Option<&TileLayout> {
        self.layout.as_ref()
    }

    /// Number of frames appended so far.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Appends a captured frame.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FrameMismatch`] if the frame header differs
    /// from the stream header, or the sample-range errors of
    /// [`StreamWriter::push_samples`].
    pub fn push_frame(&mut self, frame: &CompressedFrame) -> Result<(), CoreError> {
        if frame.header != self.header {
            return Err(CoreError::FrameMismatch(
                "frame header does not match stream header".into(),
            ));
        }
        self.push_samples(&frame.samples)
    }

    /// Appends one frame record from raw samples.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the frame is empty, has
    /// more samples than pixels, or contains a sample that does not fit
    /// in the header's `sample_bits`.
    pub fn push_samples(&mut self, samples: &[u32]) -> Result<(), CoreError> {
        let max_count = self.header.rows as u64 * self.header.cols as u64;
        if samples.is_empty() || samples.len() as u64 > max_count {
            return Err(CoreError::InvalidConfig(format!(
                "frame sample count {} outside 1..={max_count}",
                samples.len()
            )));
        }
        let bits = self.header.sample_bits as u32;
        let limit = if bits == 32 {
            u32::MAX
        } else {
            (1 << bits) - 1
        };
        if let Some(&bad) = samples.iter().find(|&&s| s > limit) {
            return Err(CoreError::InvalidConfig(format!(
                "sample {bad} does not fit in {bits} bits"
            )));
        }
        self.buf.push(FRAME_MARKER);
        self.buf
            .extend_from_slice(&(samples.len() as u32).to_le_bytes());
        let mut writer = BitWriter::new();
        for &s in samples {
            writer.write(s, bits);
        }
        self.buf.extend_from_slice(&writer.finish());
        self.frames += 1;
        Ok(())
    }

    /// The serialized stream so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the serialized stream.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Total wire size in bits.
    pub fn wire_bits(&self) -> usize {
        self.buf.len() * 8
    }
}

/// Incremental parser consuming a stream from arbitrary byte chunks.
///
/// Feed bytes with [`StreamParser::push_bytes`] as they arrive, then
/// drain complete frames with [`StreamParser::next_frame`]. A parse
/// error (bad magic, unknown strategy, out-of-range count…) is sticky:
/// the stream is corrupt and every further call reports the same
/// [`CoreError::MalformedFrame`].
#[derive(Debug, Clone, Default)]
pub struct StreamParser {
    buf: Vec<u8>,
    pos: usize,
    header: Option<FrameHeader>,
    layout: Option<TileLayout>,
    frames: usize,
    poisoned: Option<CoreError>,
}

impl StreamParser {
    /// An empty parser awaiting the stream header.
    #[must_use]
    pub fn new() -> StreamParser {
        StreamParser::default()
    }

    /// Appends received bytes (need not align with record boundaries).
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
        // Reclaim consumed prefix once it dominates the buffer.
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// The stream header, once enough bytes have arrived to parse it.
    /// For a tiled stream this is the **tile** geometry (see the module
    /// docs).
    pub fn header(&self) -> Option<&FrameHeader> {
        self.header.as_ref()
    }

    /// The tile layout of a tiled (version-2) stream, once its header
    /// has been parsed; `None` for version-1 streams (and before the
    /// header arrives).
    pub fn tile_layout(&self) -> Option<&TileLayout> {
        self.layout.as_ref()
    }

    /// Number of complete frames parsed so far.
    pub fn frames_parsed(&self) -> usize {
        self.frames
    }

    /// Bytes received but not yet consumed by a complete record.
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Parses the next complete frame, if the buffer holds one.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedFrame`] on a corrupt stream; the
    /// error is sticky.
    pub fn next_frame(&mut self) -> Result<Option<CompressedFrame>, CoreError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        match self.try_next() {
            Ok(frame) => Ok(frame),
            Err(e) => {
                self.poisoned = Some(e.clone());
                Err(e)
            }
        }
    }

    fn try_next(&mut self) -> Result<Option<CompressedFrame>, CoreError> {
        let header = if let Some(h) = self.header {
            h
        } else {
            if self.buffered_bytes() < STREAM_HEADER_BYTES {
                return Ok(None);
            }
            if self.buf[self.pos..self.pos + 4] != STREAM_MAGIC {
                return Err(CoreError::MalformedFrame("bad stream magic".into()));
            }
            let version = self.buf[self.pos + 4];
            let header_len = match version {
                STREAM_VERSION => STREAM_HEADER_BYTES,
                STREAM_VERSION_TILED => TILED_HEADER_BYTES,
                other => {
                    return Err(CoreError::MalformedFrame(format!(
                        "unsupported stream version {other}"
                    )));
                }
            };
            if self.buffered_bytes() < header_len {
                return Ok(None);
            }
            let b = &self.buf[self.pos..self.pos + header_len];
            let header = FrameHeader {
                rows: u16::from_le_bytes([b[5], b[6]]),
                cols: u16::from_le_bytes([b[7], b[8]]),
                code_bits: b[9],
                sample_bits: b[10],
                strategy: StrategyKind::from_wire([b[11], b[12], b[13], b[14]])?,
                seed: u64::from_le_bytes([b[15], b[16], b[17], b[18], b[19], b[20], b[21], b[22]]),
            };
            validate_header(&header)?;
            if version == STREAM_VERSION_TILED {
                let frame_w = u16::from_le_bytes([b[23], b[24]]) as usize;
                let frame_h = u16::from_le_bytes([b[25], b[26]]) as usize;
                let overlap = u16::from_le_bytes([b[27], b[28]]) as usize;
                let blend = blend_from_wire(b[29])?;
                if frame_w == 0 || frame_h == 0 {
                    return Err(CoreError::MalformedFrame(format!(
                        "tiled stream frame {frame_w}×{frame_h} has a zero dimension"
                    )));
                }
                // The base header carries the tile geometry; the layout
                // constructor re-validates tile-vs-frame consistency
                // (tile within frame, overlap below tile).
                let layout = TileLayout::with_tile_dims(
                    FrameGeometry::new(frame_w, frame_h),
                    header.cols as usize,
                    header.rows as usize,
                    overlap,
                    blend,
                )
                .map_err(|e| CoreError::MalformedFrame(e.to_string()))?;
                self.layout = Some(layout);
            }
            self.header = Some(header);
            self.pos += header_len;
            header
        };
        if self.buffered_bytes() < FRAME_RECORD_BYTES {
            return Ok(None);
        }
        let b = &self.buf[self.pos..];
        if b[0] != FRAME_MARKER {
            return Err(CoreError::MalformedFrame(format!(
                "bad frame marker {:#04x}",
                b[0]
            )));
        }
        let count = u32::from_le_bytes([b[1], b[2], b[3], b[4]]) as u64;
        let max_count = header.rows as u64 * header.cols as u64;
        if count == 0 || count > max_count {
            return Err(CoreError::MalformedFrame(format!(
                "frame sample count {count} outside 1..={max_count}"
            )));
        }
        // Overflow-safe: count ≤ 2³², sample_bits ≤ 32 → fits in u64;
        // reject (rather than truncate) lengths a 32-bit usize cannot
        // address.
        let payload_len = usize::try_from((count * header.sample_bits as u64).div_ceil(8))
            .map_err(|_| {
                CoreError::MalformedFrame(format!(
                    "frame payload for {count} samples exceeds addressable memory"
                ))
            })?;
        if self.buffered_bytes() < FRAME_RECORD_BYTES + payload_len {
            return Ok(None);
        }
        let payload = &b[FRAME_RECORD_BYTES..FRAME_RECORD_BYTES + payload_len];
        let mut reader = BitReader::new(payload);
        let samples = (0..count)
            .map(|_| reader.read(header.sample_bits as u32))
            .collect();
        self.pos += FRAME_RECORD_BYTES + payload_len;
        self.frames += 1;
        Ok(Some(CompressedFrame { header, samples }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tepics_imaging::tile::TileConfig;
    use tepics_util::SplitMix64;

    fn header() -> FrameHeader {
        FrameHeader {
            rows: 16,
            cols: 16,
            code_bits: 8,
            sample_bits: 16,
            strategy: StrategyKind::rule30(64),
            seed: 0xDEAD_BEEF,
        }
    }

    fn frames(n: usize, k: usize) -> Vec<CompressedFrame> {
        let mut rng = SplitMix64::new(11);
        (0..n)
            .map(|_| CompressedFrame {
                header: header(),
                samples: (0..k).map(|_| rng.next_below(1 << 16) as u32).collect(),
            })
            .collect()
    }

    #[test]
    fn stream_roundtrips_all_frames() {
        let frames = frames(5, 90);
        let mut writer = StreamWriter::new(header()).unwrap();
        for f in &frames {
            writer.push_frame(f).unwrap();
        }
        let mut parser = StreamParser::new();
        parser.push_bytes(writer.bytes());
        for (i, f) in frames.iter().enumerate() {
            let got = parser
                .next_frame()
                .unwrap()
                .unwrap_or_else(|| panic!("frame {i} missing"));
            assert_eq!(&got, f, "frame {i}");
        }
        assert!(parser.next_frame().unwrap().is_none());
        assert_eq!(parser.frames_parsed(), 5);
        assert_eq!(parser.buffered_bytes(), 0);
    }

    #[test]
    fn parser_handles_arbitrary_chunking() {
        let frames = frames(3, 40);
        let mut writer = StreamWriter::new(header()).unwrap();
        for f in &frames {
            writer.push_frame(f).unwrap();
        }
        let bytes = writer.into_bytes();
        // Feed one byte at a time: frames must pop out exactly when
        // their last byte arrives.
        let mut parser = StreamParser::new();
        let mut got = Vec::new();
        for &b in &bytes {
            parser.push_bytes(&[b]);
            while let Some(f) = parser.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn stream_overhead_beats_repeated_frame_headers() {
        let frames = frames(4, 64);
        let mut writer = StreamWriter::new(header()).unwrap();
        let mut frame_codec_bits = 0usize;
        for f in &frames {
            writer.push_frame(f).unwrap();
            frame_codec_bits += f.wire_bits();
        }
        assert!(
            writer.wire_bits() < frame_codec_bits,
            "stream {} bits must beat {} bits of per-frame headers",
            writer.wire_bits(),
            frame_codec_bits
        );
        // Exact accounting: 23 + n·5 header bytes vs n·27.
        let payload: usize = frames.iter().map(|f| f.payload_bits().div_ceil(8)).sum();
        assert_eq!(
            writer.wire_bits(),
            (STREAM_HEADER_BYTES + 4 * FRAME_RECORD_BYTES + payload) * 8
        );
    }

    #[test]
    fn frames_may_vary_in_sample_count() {
        let mut writer = StreamWriter::new(header()).unwrap();
        writer.push_samples(&[1, 2, 3, 4, 5]).unwrap();
        writer.push_samples(&[6]).unwrap();
        let mut parser = StreamParser::new();
        parser.push_bytes(writer.bytes());
        assert_eq!(parser.next_frame().unwrap().unwrap().samples.len(), 5);
        assert_eq!(parser.next_frame().unwrap().unwrap().samples.len(), 1);
    }

    #[test]
    fn writer_rejects_foreign_and_degenerate_frames() {
        let mut writer = StreamWriter::new(header()).unwrap();
        let mut foreign = frames(1, 10).remove(0);
        foreign.header.seed ^= 1;
        assert!(matches!(
            writer.push_frame(&foreign),
            Err(CoreError::FrameMismatch(_))
        ));
        assert!(writer.push_samples(&[]).is_err());
        assert!(writer.push_samples(&vec![0; 257]).is_err()); // > 16·16
        assert!(writer.push_samples(&[1 << 16]).is_err()); // overflows 16 bits
        assert_eq!(writer.frames(), 0);
    }

    #[test]
    fn corrupt_streams_fail_sticky_and_clean() {
        let mut writer = StreamWriter::new(header()).unwrap();
        writer.push_samples(&[7, 8, 9]).unwrap();
        let good = writer.into_bytes();

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        let mut p = StreamParser::new();
        p.push_bytes(&bad);
        assert!(p.next_frame().is_err());
        // Sticky: the same error again, even after more bytes.
        p.push_bytes(&good);
        assert!(p.next_frame().is_err());

        // Bad frame marker.
        let mut bad = good.clone();
        bad[STREAM_HEADER_BYTES] ^= 0xFF;
        let mut p = StreamParser::new();
        p.push_bytes(&bad);
        assert!(matches!(p.next_frame(), Err(CoreError::MalformedFrame(_))));

        // Insane count.
        let mut bad = good;
        bad[STREAM_HEADER_BYTES + 1..STREAM_HEADER_BYTES + 5]
            .copy_from_slice(&u32::MAX.to_le_bytes());
        let mut p = StreamParser::new();
        p.push_bytes(&bad);
        assert!(matches!(p.next_frame(), Err(CoreError::MalformedFrame(_))));
    }

    fn tiled_layout() -> TileLayout {
        TileLayout::new(FrameGeometry::new(40, 28), &TileConfig::new(16).overlap(4)).unwrap()
    }

    fn tiled_header() -> FrameHeader {
        FrameHeader {
            rows: 16,
            cols: 16,
            code_bits: 8,
            sample_bits: 16,
            strategy: StrategyKind::rule30(64),
            seed: 0xDEAD_BEEF,
        }
    }

    #[test]
    fn tiled_stream_roundtrips_layout_and_records() {
        let layout = tiled_layout();
        let mut writer = StreamWriter::new_tiled(tiled_header(), &layout).unwrap();
        assert_eq!(writer.tile_layout(), Some(&layout));
        for t in 0..layout.tiles() {
            writer.push_samples(&[t as u32 + 1, 2, 3]).unwrap();
        }
        let bytes = writer.into_bytes();
        assert_eq!(bytes[4], STREAM_VERSION_TILED);

        let mut parser = StreamParser::new();
        parser.push_bytes(&bytes);
        let first = parser.next_frame().unwrap().unwrap();
        assert_eq!(first.samples, vec![1, 2, 3]);
        assert_eq!(parser.tile_layout(), Some(&layout));
        assert_eq!(parser.header(), Some(&tiled_header()));
        for _ in 1..layout.tiles() {
            parser.next_frame().unwrap().unwrap();
        }
        assert!(parser.next_frame().unwrap().is_none());
        assert_eq!(parser.frames_parsed(), layout.tiles());
    }

    #[test]
    fn version_one_streams_still_parse_without_a_layout() {
        let mut writer = StreamWriter::new(header()).unwrap();
        writer.push_samples(&[1, 2, 3]).unwrap();
        let bytes = writer.into_bytes();
        assert_eq!(bytes[4], STREAM_VERSION); // explicit wire check
        let mut parser = StreamParser::new();
        parser.push_bytes(&bytes);
        assert_eq!(parser.next_frame().unwrap().unwrap().samples, vec![1, 2, 3]);
        assert!(parser.tile_layout().is_none());
    }

    #[test]
    fn tiled_writer_rejects_header_layout_mismatch() {
        let mut h = tiled_header();
        h.rows = 8; // layout tiles are 16×16
        assert!(matches!(
            StreamWriter::new_tiled(h, &tiled_layout()),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn hostile_tile_extensions_are_malformed_not_panics() {
        let layout = tiled_layout();
        let writer = StreamWriter::new_tiled(tiled_header(), &layout).unwrap();
        let good = writer.into_bytes();
        let corrupt = |mutate: &dyn Fn(&mut Vec<u8>)| {
            let mut bad = good.clone();
            mutate(&mut bad);
            let mut p = StreamParser::new();
            p.push_bytes(&bad);
            p.next_frame()
        };
        // Zero frame width.
        let r = corrupt(&|b| b[23..25].copy_from_slice(&0u16.to_le_bytes()));
        assert!(matches!(r, Err(CoreError::MalformedFrame(_))), "{r:?}");
        // Frame smaller than the tile.
        let r = corrupt(&|b| b[23..25].copy_from_slice(&8u16.to_le_bytes()));
        assert!(matches!(r, Err(CoreError::MalformedFrame(_))), "{r:?}");
        // Overlap not below the tile side.
        let r = corrupt(&|b| b[27..29].copy_from_slice(&16u16.to_le_bytes()));
        assert!(matches!(r, Err(CoreError::MalformedFrame(_))), "{r:?}");
        // Unknown blend byte.
        let r = corrupt(&|b| b[29] = 7);
        assert!(matches!(r, Err(CoreError::MalformedFrame(_))), "{r:?}");
        // Unknown version byte.
        let r = corrupt(&|b| b[4] = 3);
        assert!(matches!(r, Err(CoreError::MalformedFrame(_))), "{r:?}");
    }

    #[test]
    fn truncated_tiled_header_waits_for_the_extension() {
        let layout = tiled_layout();
        let mut writer = StreamWriter::new_tiled(tiled_header(), &layout).unwrap();
        writer.push_samples(&[1]).unwrap();
        let bytes = writer.into_bytes();
        let mut parser = StreamParser::new();
        // Base header alone is not enough for a v2 stream.
        parser.push_bytes(&bytes[..STREAM_HEADER_BYTES + 3]);
        assert!(parser.next_frame().unwrap().is_none());
        assert!(parser.header().is_none());
        parser.push_bytes(&bytes[STREAM_HEADER_BYTES + 3..]);
        assert_eq!(parser.next_frame().unwrap().unwrap().samples, vec![1]);
        assert_eq!(parser.tile_layout(), Some(&layout));
    }

    #[test]
    fn truncated_stream_waits_instead_of_failing() {
        let mut writer = StreamWriter::new(header()).unwrap();
        writer.push_samples(&[1, 2, 3]).unwrap();
        let bytes = writer.into_bytes();
        let mut parser = StreamParser::new();
        parser.push_bytes(&bytes[..bytes.len() - 1]);
        assert!(parser.next_frame().unwrap().is_none());
        parser.push_bytes(&bytes[bytes.len() - 1..]);
        assert_eq!(parser.next_frame().unwrap().unwrap().samples, vec![1, 2, 3]);
    }
}
