//! The versioned stream container: many frames, one header.
//!
//! The single-frame wire format ([`CompressedFrame::to_bytes`]) repeats
//! its full 27-byte header on every frame, even though everything but
//! the sample count — geometry, bit widths, strategy, seed — is
//! constant for a camera streaming with one seed. The stream container
//! factors that invariant part out:
//!
//! ```text
//! ┌─────────────────────────────┬──────────────┬──────────────┬───
//! │ stream header (23 B, once)  │ frame record │ frame record │ …
//! │ magic "TEPS" · version      │ marker (1 B) │              │
//! │ rows · cols · code_bits     │ count  (4 B) │              │
//! │ sample_bits · strategy      │ payload      │              │
//! │ seed                        │ (bit-packed) │              │
//! └─────────────────────────────┴──────────────┴──────────────┴───
//! ```
//!
//! Per-frame overhead drops from 27 bytes to 5, so a stream of `n`
//! frames spends `23 + 5n` header bytes against the frame codec's
//! `27n` — smaller for every `n ≥ 2`, and the gap grows with sequence
//! length. Frames in one stream share a header but may differ in sample
//! count (prefix truncation, adaptive budgets).
//!
//! # Tiled streams (version 2)
//!
//! A version-2 stream carries a *tiled* capture: the base header's
//! `rows × cols` describe one **tile** (so every frame record parses
//! exactly as in version 1), and a 7-byte extension carries the full
//! frame geometry and stitching parameters:
//!
//! ```text
//! ┌──────────────────────────┬───────────────────────────┬──────────
//! │ base header (23 B)       │ tile extension (7 B)      │ records …
//! │ version = 2              │ frame_w · frame_h (u16 LE)│ (one per
//! │ rows·cols = TILE geometry│ overlap (u16 LE)          │  tile)
//! │                          │ blend (u8)                │
//! └──────────────────────────┴───────────────────────────┴──────────
//! ```
//!
//! Records arrive in row-major tile order, `layout.tiles()` records per
//! captured frame. Version-1 streams parse unchanged
//! ([`StreamParser::tile_layout`] is simply `None` for them).
//!
//! # Resilient streams (version 3)
//!
//! Versions 1 and 2 assume a clean transport: one malformed byte
//! poisons the parser forever (the *sticky* contract — appropriate when
//! the bytes come from disk or a checksummed socket). A version-3
//! stream instead assumes a lossy channel and spends a little wire
//! overhead on **self-synchronization**:
//!
//! ```text
//! ┌───────────────────────────┬──────┬───────────────────────────────┬───
//! │ base header · flags · CRC │ SYNC │ record: marker · seq · count  │ …
//! │ (version = 3; tile ext    │ (4 B,│         · prefix-CRC-8        │
//! │  when flags bit 0 is set) │ every│         · payload             │
//! │                           │ 8 th │         · payload-CRC-8       │
//! │                           │ rec.)│                               │
//! └───────────────────────────┴──────┴───────────────────────────────┴───
//! ```
//!
//! * Every record prefix carries a **sequence number** and a CRC-8, so
//!   a corrupted length can never stall or misframe the parser, and the
//!   receiver always knows *which* records a gap swallowed.
//! * Every payload carries its own CRC-8: a record that frames
//!   correctly but fails the payload check is reported as corrupt (and
//!   skipped) instead of being decoded into garbage.
//! * A 4-byte **sync word** precedes every [`SYNC_INTERVAL`]-th record.
//!   After corruption the parser scans forward to the next sync word
//!   *or* the next record prefix that passes its CRC, emits a
//!   structured [`StreamEvent::Corrupt`] with the number of bytes
//!   skipped, and resumes decoding — corruption costs the records it
//!   actually hit, not the stream.
//!
//! [`StreamParser::next_event`] surfaces the full event stream
//! (frames with their sequence numbers, plus corruption reports);
//! [`StreamParser::next_frame`] keeps the frames-only view and skips
//! corrupt stretches transparently on version 3. Only stream-header
//! damage is fatal for a version-3 stream (there is nothing to
//! resynchronize *to* without a header); for versions 1 and 2 every
//! parse error remains sticky — see [`StreamParser::error`].
//!
//! [`StreamWriter`] builds a stream incrementally; [`StreamParser`]
//! consumes one from arbitrary byte chunks (network reads need not align
//! with record boundaries). Both are the substrate of the session API
//! ([`EncodeSession`](crate::session::EncodeSession) /
//! [`DecodeSession`](crate::session::DecodeSession)).

use crate::error::CoreError;
use crate::frame::{crc8, BitReader, BitWriter, CompressedFrame, FrameHeader};
use crate::strategy::StrategyKind;
use tepics_imaging::tile::{BlendMode, FrameGeometry, TileLayout};

/// Magic bytes opening every stream.
pub const STREAM_MAGIC: [u8; 4] = *b"TEPS";
/// Container version of untiled streams.
pub const STREAM_VERSION: u8 = 1;
/// Container version of tiled streams (base header + tile extension).
pub const STREAM_VERSION_TILED: u8 = 2;
/// Container version of resilient streams (CRC-8-guarded records with
/// sequence numbers and periodic sync markers; tiled or untiled via the
/// header's flags byte).
pub const STREAM_VERSION_RESILIENT: u8 = 3;
/// Serialized size of the stream header.
pub const STREAM_HEADER_BYTES: usize = 23;
/// Serialized size of a tiled (version-2) stream header: the base
/// header plus the 7-byte tile extension.
pub const TILED_HEADER_BYTES: usize = STREAM_HEADER_BYTES + 7;
/// Serialized size of an untiled resilient (version-3) header: the base
/// header plus a flags byte and a CRC-8.
pub const RESILIENT_HEADER_BYTES: usize = STREAM_HEADER_BYTES + 2;
/// Serialized size of a tiled resilient header (flags bit 0 set): the
/// untiled resilient header plus the 7-byte tile extension.
pub const RESILIENT_TILED_HEADER_BYTES: usize = RESILIENT_HEADER_BYTES + 7;
/// Serialized overhead of each frame record before its payload.
pub const FRAME_RECORD_BYTES: usize = 5;
/// Serialized prefix of a resilient frame record (marker, sequence
/// number, sample count, prefix CRC-8); the payload CRC-8 adds one more
/// byte after the payload.
pub const RESILIENT_RECORD_PREFIX_BYTES: usize = 10;
/// The resynchronization word of resilient streams, written before
/// every [`SYNC_INTERVAL`]-th record. Chosen to collide with neither
/// the stream magic nor the record marker.
pub const SYNC_WORD: [u8; 4] = [0x5A, 0xC3, 0x96, 0x69];
/// A sync word precedes every `SYNC_INTERVAL`-th record of a resilient
/// stream (records whose sequence number is a multiple of this).
pub const SYNC_INTERVAL: usize = 8;

/// Marker byte opening each frame record (cheap resynchronization /
/// corruption check).
const FRAME_MARKER: u8 = 0xF5;

/// Header flag bit: the resilient stream is tiled (tile extension
/// present).
const RESILIENT_FLAG_TILED: u8 = 0b1;

/// How far ahead of the last accepted sequence number a resilient
/// record may claim to be before the parser treats it as corruption
/// (a lucky-CRC forgery or a wildly damaged prefix).
const SEQ_WINDOW: u32 = 1 << 20;

/// Which stream container an [`EncodeSession`](crate::session::EncodeSession)
/// (or [`StreamWriter`]) speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireProfile {
    /// Minimal overhead (versions 1/2): 5-byte records, no integrity
    /// data. A corrupt byte poisons the whole stream — use on clean
    /// transports.
    #[default]
    Compact,
    /// Resilient (version 3): CRC-8-guarded, sequence-numbered records
    /// with periodic sync markers. Corruption is detected, skipped, and
    /// reported; decoding resumes at the next intact record.
    Resilient,
}

/// Validates the header fields the container (and the decoder behind
/// it) can represent: the decoder's shared checks plus the packer's
/// sample-width range.
fn validate_header(h: &FrameHeader) -> Result<(), CoreError> {
    h.validate()?;
    if h.sample_bits == 0 || h.sample_bits > 32 {
        return Err(CoreError::MalformedFrame(format!(
            "sample width {} outside 1..=32",
            h.sample_bits
        )));
    }
    Ok(())
}

/// Blend-mode wire encoding (byte 29 of a tiled header).
fn blend_to_wire(blend: BlendMode) -> u8 {
    match blend {
        BlendMode::Average => 0,
        BlendMode::Feather => 1,
    }
}

/// Decodes a blend-mode byte, rejecting unknown values.
fn blend_from_wire(byte: u8) -> Result<BlendMode, CoreError> {
    match byte {
        0 => Ok(BlendMode::Average),
        1 => Ok(BlendMode::Feather),
        other => Err(CoreError::MalformedFrame(format!(
            "unknown blend mode {other}"
        ))),
    }
}

/// Serializes a stream header.
fn header_bytes(h: &FrameHeader) -> [u8; STREAM_HEADER_BYTES] {
    let mut out = [0u8; STREAM_HEADER_BYTES];
    out[0..4].copy_from_slice(&STREAM_MAGIC);
    out[4] = STREAM_VERSION;
    out[5..7].copy_from_slice(&h.rows.to_le_bytes());
    out[7..9].copy_from_slice(&h.cols.to_le_bytes());
    out[9] = h.code_bits;
    out[10] = h.sample_bits;
    out[11..15].copy_from_slice(&h.strategy.to_wire());
    out[15..23].copy_from_slice(&h.seed.to_le_bytes());
    out
}

/// Incremental writer producing one contiguous wire stream.
///
/// # Examples
///
/// ```
/// use tepics_core::frame::{CompressedFrame, FrameHeader};
/// use tepics_core::stream::{StreamParser, StreamWriter};
/// use tepics_core::StrategyKind;
///
/// let header = FrameHeader {
///     rows: 8,
///     cols: 8,
///     code_bits: 8,
///     sample_bits: 14,
///     strategy: StrategyKind::rule30(32),
///     seed: 99,
/// };
/// let mut writer = StreamWriter::new(header).unwrap();
/// writer.push_samples(&[1, 2, 3]).unwrap();
/// writer.push_samples(&[4, 5]).unwrap();
///
/// let mut parser = StreamParser::new();
/// parser.push_bytes(writer.bytes());
/// let first = parser.next_frame().unwrap().unwrap();
/// assert_eq!(first.samples, vec![1, 2, 3]);
/// assert_eq!(first.header, header);
/// ```
#[derive(Debug, Clone)]
pub struct StreamWriter {
    header: FrameHeader,
    buf: Vec<u8>,
    frames: usize,
    layout: Option<TileLayout>,
    version: u8,
}

impl StreamWriter {
    /// Opens a version-1 stream for frames matching `header`, writing
    /// the stream header immediately.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedFrame`] for degenerate headers
    /// (zero dimensions, bit widths outside their ranges).
    pub fn new(header: FrameHeader) -> Result<StreamWriter, CoreError> {
        validate_header(&header)?;
        Ok(StreamWriter {
            header,
            buf: header_bytes(&header).to_vec(),
            frames: 0,
            layout: None,
            version: STREAM_VERSION,
        })
    }

    /// Opens a resilient (version-3) untiled stream: every record is
    /// CRC-8-guarded and sequence-numbered, and a [`SYNC_WORD`]
    /// precedes every [`SYNC_INTERVAL`]-th record so a parser can
    /// recover from corruption mid-stream.
    ///
    /// # Errors
    ///
    /// Returns the header errors of [`StreamWriter::new`].
    pub fn new_resilient(header: FrameHeader) -> Result<StreamWriter, CoreError> {
        validate_header(&header)?;
        let mut buf = header_bytes(&header).to_vec();
        buf[4] = STREAM_VERSION_RESILIENT;
        buf.push(0); // flags: untiled
        buf.push(crc8(&buf));
        Ok(StreamWriter {
            header,
            buf,
            frames: 0,
            layout: None,
            version: STREAM_VERSION_RESILIENT,
        })
    }

    /// Opens a resilient (version-3) **tiled** stream: the record
    /// protection of [`StreamWriter::new_resilient`] plus the tile
    /// extension of [`StreamWriter::new_tiled`]. Record sequence
    /// numbers map to tiles as `seq = frame × layout.tiles() + tile`,
    /// so a receiver can attribute every gap to specific tiles.
    ///
    /// # Errors
    ///
    /// Returns the errors of [`StreamWriter::new_tiled`].
    pub fn new_resilient_tiled(
        header: FrameHeader,
        layout: &TileLayout,
    ) -> Result<StreamWriter, CoreError> {
        let mut writer = StreamWriter::new_tiled(header, layout)?;
        writer.buf[4] = STREAM_VERSION_RESILIENT;
        // Rebuild the tail as flags + ext + CRC: new_tiled laid out
        // [base 23 | ext 7]; the resilient layout is
        // [base 23 | flags 1 | ext 7 | crc 1].
        let ext: [u8; 7] = writer.buf[STREAM_HEADER_BYTES..STREAM_HEADER_BYTES + 7]
            .try_into()
            .map_err(|_| CoreError::InvalidConfig("tile extension layout".into()))?;
        writer.buf.truncate(STREAM_HEADER_BYTES);
        writer.buf.push(RESILIENT_FLAG_TILED);
        writer.buf.extend_from_slice(&ext);
        writer.buf.push(crc8(&writer.buf));
        writer.version = STREAM_VERSION_RESILIENT;
        Ok(writer)
    }

    /// Opens a stream for `profile`: [`WireProfile::Compact`] maps to
    /// [`StreamWriter::new`]/[`new_tiled`](StreamWriter::new_tiled)
    /// (version 1 or 2 by tiling), [`WireProfile::Resilient`] to the
    /// version-3 constructors.
    ///
    /// # Errors
    ///
    /// Returns the errors of the underlying constructor.
    pub fn for_profile(
        header: FrameHeader,
        layout: Option<&TileLayout>,
        profile: WireProfile,
    ) -> Result<StreamWriter, CoreError> {
        match (profile, layout) {
            (WireProfile::Compact, None) => StreamWriter::new(header),
            (WireProfile::Compact, Some(l)) => StreamWriter::new_tiled(header, l),
            (WireProfile::Resilient, None) => StreamWriter::new_resilient(header),
            (WireProfile::Resilient, Some(l)) => StreamWriter::new_resilient_tiled(header, l),
        }
    }

    /// Opens a version-2 (tiled) stream: `header` describes one tile
    /// and must match `layout`'s tile dimensions; the tile extension is
    /// written immediately after the base header. Each captured frame
    /// contributes `layout.tiles()` records, in row-major tile order.
    ///
    /// # Errors
    ///
    /// Returns the header errors of [`StreamWriter::new`], or
    /// [`CoreError::InvalidConfig`] if `header`'s geometry is not the
    /// layout's tile geometry or the frame dimensions exceed the wire
    /// format's `u16` fields.
    pub fn new_tiled(header: FrameHeader, layout: &TileLayout) -> Result<StreamWriter, CoreError> {
        validate_header(&header)?;
        if header.rows as usize != layout.tile_height()
            || header.cols as usize != layout.tile_width()
        {
            return Err(CoreError::InvalidConfig(format!(
                "stream header {}×{} does not match tile {}×{}",
                header.rows,
                header.cols,
                layout.tile_height(),
                layout.tile_width()
            )));
        }
        let frame = layout.frame();
        if frame.width() > u16::MAX as usize || frame.height() > u16::MAX as usize {
            return Err(CoreError::InvalidConfig(format!(
                "frame {}×{} exceeds the wire format's 65535-pixel axis limit",
                frame.width(),
                frame.height()
            )));
        }
        let mut buf = header_bytes(&header).to_vec();
        buf[4] = STREAM_VERSION_TILED;
        buf.extend_from_slice(&(frame.width() as u16).to_le_bytes());
        buf.extend_from_slice(&(frame.height() as u16).to_le_bytes());
        buf.extend_from_slice(&(layout.overlap() as u16).to_le_bytes());
        buf.push(blend_to_wire(layout.blend()));
        Ok(StreamWriter {
            header,
            buf,
            frames: 0,
            layout: Some(layout.clone()),
            version: STREAM_VERSION_TILED,
        })
    }

    /// The stream header every frame must match.
    pub fn header(&self) -> &FrameHeader {
        &self.header
    }

    /// The container version this writer emits (1, 2, or 3).
    pub fn wire_version(&self) -> u8 {
        self.version
    }

    /// The tile layout of a tiled (version-2) stream, `None` for
    /// version 1.
    pub fn tile_layout(&self) -> Option<&TileLayout> {
        self.layout.as_ref()
    }

    /// Number of frames appended so far.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Appends a captured frame.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::FrameMismatch`] if the frame header differs
    /// from the stream header, or the sample-range errors of
    /// [`StreamWriter::push_samples`].
    pub fn push_frame(&mut self, frame: &CompressedFrame) -> Result<(), CoreError> {
        if frame.header != self.header {
            return Err(CoreError::FrameMismatch(
                "frame header does not match stream header".into(),
            ));
        }
        self.push_samples(&frame.samples)
    }

    /// Appends one frame record from raw samples.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the frame is empty, has
    /// more samples than pixels, or contains a sample that does not fit
    /// in the header's `sample_bits`.
    pub fn push_samples(&mut self, samples: &[u32]) -> Result<(), CoreError> {
        let max_count = self.header.rows as u64 * self.header.cols as u64;
        if samples.is_empty() || samples.len() as u64 > max_count {
            return Err(CoreError::InvalidConfig(format!(
                "frame sample count {} outside 1..={max_count}",
                samples.len()
            )));
        }
        let bits = self.header.sample_bits as u32;
        let limit = if bits == 32 {
            u32::MAX
        } else {
            (1 << bits) - 1
        };
        if let Some(&bad) = samples.iter().find(|&&s| s > limit) {
            return Err(CoreError::InvalidConfig(format!(
                "sample {bad} does not fit in {bits} bits"
            )));
        }
        if self.version == STREAM_VERSION_RESILIENT {
            let seq = self.frames as u32; // wraps with the stream's 2³²-record horizon
            if (seq as usize).is_multiple_of(SYNC_INTERVAL) {
                self.buf.extend_from_slice(&SYNC_WORD);
            }
            let prefix_start = self.buf.len();
            self.buf.push(FRAME_MARKER);
            self.buf.extend_from_slice(&seq.to_le_bytes());
            self.buf
                .extend_from_slice(&(samples.len() as u32).to_le_bytes());
            let prefix_crc = crc8(&self.buf[prefix_start..]);
            self.buf.push(prefix_crc);
            let mut writer = BitWriter::new();
            for &s in samples {
                writer.write(s, bits);
            }
            let payload = writer.finish();
            self.buf.extend_from_slice(&payload);
            self.buf.push(crc8(&payload));
        } else {
            self.buf.push(FRAME_MARKER);
            self.buf
                .extend_from_slice(&(samples.len() as u32).to_le_bytes());
            let mut writer = BitWriter::new();
            for &s in samples {
                writer.write(s, bits);
            }
            self.buf.extend_from_slice(&writer.finish());
        }
        self.frames += 1;
        Ok(())
    }

    /// The serialized stream so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the serialized stream.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Total wire size in bits.
    pub fn wire_bits(&self) -> usize {
        self.buf.len() * 8
    }
}

/// One event out of a [`StreamParser`].
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// A complete, integrity-checked frame record.
    Frame {
        /// The record's position in the stream. Versions 1/2 number
        /// records implicitly (parse order); version 3 carries the
        /// number on the wire, so gaps are visible as jumps.
        seq: u64,
        /// The decoded record.
        frame: CompressedFrame,
    },
    /// A corrupt stretch of a resilient (version-3) stream was detected
    /// and skipped; parsing resumes at the next intact record or sync
    /// word. Versions 1/2 never emit this — they fail sticky instead.
    Corrupt {
        /// Bytes consumed without yielding a frame (damaged record
        /// bytes plus any garbage scanned over).
        bytes_skipped: usize,
    },
}

/// Incremental parser consuming a stream from arbitrary byte chunks.
///
/// Feed bytes with [`StreamParser::push_bytes`] as they arrive, then
/// drain complete records with [`StreamParser::next_event`] (or the
/// frames-only convenience [`StreamParser::next_frame`]).
///
/// # Error contract: sticky (v1/v2) vs resync (v3)
///
/// For version-1/2 streams a parse error (bad magic, unknown strategy,
/// out-of-range count…) is **sticky**: the stream is corrupt and every
/// further call reports the same [`CoreError::MalformedFrame`] —
/// inspect it with [`StreamParser::error`] /
/// [`StreamParser::is_malformed`].
///
/// A version-3 (resilient) stream only fails sticky on stream-*header*
/// damage. Once the header has parsed, record-level corruption is
/// reported as [`StreamEvent::Corrupt`] and the parser resynchronizes:
/// it scans forward for the next [`SYNC_WORD`] or the next record
/// prefix whose CRC-8 verifies, and resumes from there.
/// [`StreamParser::next_frame`] skips the corrupt events transparently.
#[derive(Debug, Clone, Default)]
pub struct StreamParser {
    buf: Vec<u8>,
    pos: usize,
    header: Option<FrameHeader>,
    layout: Option<TileLayout>,
    frames: usize,
    poisoned: Option<CoreError>,
    /// Container version (0 until the header has parsed).
    version: u8,
    /// Resilient mode: currently scanning for a resync point.
    scanning: bool,
    /// Resilient mode: bytes consumed since corruption was detected,
    /// not yet reported in a [`StreamEvent::Corrupt`].
    pending_skip: usize,
    /// Resilient mode: lowest sequence number a record may carry and
    /// still advance the stream (last accepted + 1).
    seq_floor: u32,
    /// Total bytes skipped over all corrupt stretches so far.
    skipped_total: usize,
    /// Total [`StreamEvent::Corrupt`] events emitted so far.
    corrupt_events: usize,
}

impl StreamParser {
    /// An empty parser awaiting the stream header.
    #[must_use]
    pub fn new() -> StreamParser {
        StreamParser::default()
    }

    /// Appends received bytes (need not align with record boundaries).
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
        // Reclaim consumed prefix once it dominates the buffer.
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// The stream header, once enough bytes have arrived to parse it.
    /// For a tiled stream this is the **tile** geometry (see the module
    /// docs).
    pub fn header(&self) -> Option<&FrameHeader> {
        self.header.as_ref()
    }

    /// The tile layout of a tiled (version-2) stream, once its header
    /// has been parsed; `None` for version-1 streams (and before the
    /// header arrives).
    pub fn tile_layout(&self) -> Option<&TileLayout> {
        self.layout.as_ref()
    }

    /// Number of complete frames parsed so far.
    pub fn frames_parsed(&self) -> usize {
        self.frames
    }

    /// Bytes received but not yet consumed by a complete record.
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The sticky parse error, if the stream is poisoned. Version-1/2
    /// streams poison on any parse error; version-3 streams only on
    /// stream-header damage (see the type-level docs for the two
    /// contracts).
    pub fn error(&self) -> Option<&CoreError> {
        self.poisoned.as_ref()
    }

    /// Whether the parser is poisoned — every further
    /// [`next_frame`](StreamParser::next_frame) /
    /// [`next_event`](StreamParser::next_event) call will return the
    /// same error ([`StreamParser::error`]).
    pub fn is_malformed(&self) -> bool {
        self.poisoned.is_some()
    }

    /// Container version of the stream (once the header has parsed).
    pub fn wire_version(&self) -> Option<u8> {
        (self.version != 0).then_some(self.version)
    }

    /// Total bytes skipped over corrupt stretches so far (version-3
    /// resynchronization; always 0 for versions 1/2).
    pub fn bytes_skipped(&self) -> usize {
        self.skipped_total
    }

    /// Number of [`StreamEvent::Corrupt`] events emitted so far.
    pub fn corrupt_events(&self) -> usize {
        self.corrupt_events
    }

    /// Parses the next complete frame, if the buffer holds one,
    /// transparently skipping corrupt stretches of a resilient stream.
    /// Use [`StreamParser::next_event`] to observe the skips.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedFrame`] on a corrupt version-1/2
    /// stream (sticky) or a version-3 stream whose *header* is corrupt.
    pub fn next_frame(&mut self) -> Result<Option<CompressedFrame>, CoreError> {
        loop {
            match self.next_event()? {
                None => return Ok(None),
                Some(StreamEvent::Frame { frame, .. }) => return Ok(Some(frame)),
                Some(StreamEvent::Corrupt { .. }) => {}
            }
        }
    }

    /// Parses the next stream event: a frame record, or (version 3
    /// only) a report of skipped corrupt bytes.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedFrame`] under the sticky contract
    /// (see the type-level docs).
    pub fn next_event(&mut self) -> Result<Option<StreamEvent>, CoreError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        match self.advance() {
            Ok(ev) => Ok(ev),
            Err(e) => {
                self.poisoned = Some(e.clone());
                Err(e)
            }
        }
    }

    fn advance(&mut self) -> Result<Option<StreamEvent>, CoreError> {
        if self.header.is_none() && !self.parse_header()? {
            return Ok(None);
        }
        if self.version == STREAM_VERSION_RESILIENT {
            return Ok(self.next_resilient());
        }
        let seq = self.frames as u64;
        Ok(self
            .try_next_compact()?
            .map(|frame| StreamEvent::Frame { seq, frame }))
    }

    /// Parses the stream header once enough bytes are buffered.
    /// `Ok(true)` = header parsed, `Ok(false)` = need more bytes.
    fn parse_header(&mut self) -> Result<bool, CoreError> {
        if self.buffered_bytes() < STREAM_HEADER_BYTES {
            return Ok(false);
        }
        if self.buf[self.pos..self.pos + 4] != STREAM_MAGIC {
            return Err(CoreError::MalformedFrame("bad stream magic".into()));
        }
        let version = self.buf[self.pos + 4];
        let header_len = match version {
            STREAM_VERSION => STREAM_HEADER_BYTES,
            STREAM_VERSION_TILED => TILED_HEADER_BYTES,
            STREAM_VERSION_RESILIENT => {
                // Need the flags byte to know the header length.
                if self.buffered_bytes() < STREAM_HEADER_BYTES + 1 {
                    return Ok(false);
                }
                let flags = self.buf[self.pos + STREAM_HEADER_BYTES];
                if flags & !RESILIENT_FLAG_TILED != 0 {
                    return Err(CoreError::MalformedFrame(format!(
                        "unknown resilient header flags {flags:#04x}"
                    )));
                }
                if flags & RESILIENT_FLAG_TILED != 0 {
                    RESILIENT_TILED_HEADER_BYTES
                } else {
                    RESILIENT_HEADER_BYTES
                }
            }
            other => {
                return Err(CoreError::MalformedFrame(format!(
                    "unsupported stream version {other}"
                )));
            }
        };
        if self.buffered_bytes() < header_len {
            return Ok(false);
        }
        let b = &self.buf[self.pos..self.pos + header_len];
        if version == STREAM_VERSION_RESILIENT && crc8(&b[..header_len - 1]) != b[header_len - 1] {
            return Err(CoreError::MalformedFrame(
                "resilient stream header fails its CRC".into(),
            ));
        }
        let header = FrameHeader {
            rows: u16::from_le_bytes([b[5], b[6]]),
            cols: u16::from_le_bytes([b[7], b[8]]),
            code_bits: b[9],
            sample_bits: b[10],
            strategy: StrategyKind::from_wire([b[11], b[12], b[13], b[14]])?,
            seed: u64::from_le_bytes([b[15], b[16], b[17], b[18], b[19], b[20], b[21], b[22]]),
        };
        validate_header(&header)?;
        // The tile extension sits right after the base header (v2) or
        // after the flags byte (v3 tiled).
        let ext_at = match version {
            STREAM_VERSION_TILED => Some(STREAM_HEADER_BYTES),
            STREAM_VERSION_RESILIENT if header_len == RESILIENT_TILED_HEADER_BYTES => {
                Some(STREAM_HEADER_BYTES + 1)
            }
            _ => None,
        };
        if let Some(at) = ext_at {
            let e = &b[at..at + 7];
            let frame_w = u16::from_le_bytes([e[0], e[1]]) as usize;
            let frame_h = u16::from_le_bytes([e[2], e[3]]) as usize;
            let overlap = u16::from_le_bytes([e[4], e[5]]) as usize;
            let blend = blend_from_wire(e[6])?;
            if frame_w == 0 || frame_h == 0 {
                return Err(CoreError::MalformedFrame(format!(
                    "tiled stream frame {frame_w}×{frame_h} has a zero dimension"
                )));
            }
            // The base header carries the tile geometry; the layout
            // constructor re-validates tile-vs-frame consistency
            // (tile within frame, overlap below tile).
            let layout = TileLayout::with_tile_dims(
                FrameGeometry::new(frame_w, frame_h),
                header.cols as usize,
                header.rows as usize,
                overlap,
                blend,
            )
            .map_err(|e| CoreError::MalformedFrame(e.to_string()))?;
            self.layout = Some(layout);
        }
        self.header = Some(header);
        self.version = version;
        self.pos += header_len;
        Ok(true)
    }

    /// The version-1/2 record parser (sticky contract).
    fn try_next_compact(&mut self) -> Result<Option<CompressedFrame>, CoreError> {
        let Some(header) = self.header else {
            return Ok(None);
        };
        if self.buffered_bytes() < FRAME_RECORD_BYTES {
            return Ok(None);
        }
        let b = &self.buf[self.pos..];
        if b[0] != FRAME_MARKER {
            return Err(CoreError::MalformedFrame(format!(
                "bad frame marker {:#04x}",
                b[0]
            )));
        }
        let count = u32::from_le_bytes([b[1], b[2], b[3], b[4]]) as u64;
        let max_count = header.rows as u64 * header.cols as u64;
        if count == 0 || count > max_count {
            return Err(CoreError::MalformedFrame(format!(
                "frame sample count {count} outside 1..={max_count}"
            )));
        }
        // Overflow-safe: count ≤ 2³², sample_bits ≤ 32 → fits in u64;
        // reject (rather than truncate) lengths a 32-bit usize cannot
        // address.
        let payload_len = usize::try_from((count * header.sample_bits as u64).div_ceil(8))
            .map_err(|_| {
                CoreError::MalformedFrame(format!(
                    "frame payload for {count} samples exceeds addressable memory"
                ))
            })?;
        if self.buffered_bytes() < FRAME_RECORD_BYTES + payload_len {
            return Ok(None);
        }
        let payload = &b[FRAME_RECORD_BYTES..FRAME_RECORD_BYTES + payload_len];
        let mut reader = BitReader::new(payload);
        let samples = (0..count)
            .map(|_| reader.read(header.sample_bits as u32))
            .collect();
        self.pos += FRAME_RECORD_BYTES + payload_len;
        self.frames += 1;
        Ok(Some(CompressedFrame { header, samples }))
    }

    /// The version-3 record parser: never errors — corruption becomes
    /// [`StreamEvent::Corrupt`] and the parser resynchronizes.
    ///
    /// Progress guarantee: every loop iteration either returns or
    /// consumes at least one buffered byte, so a call always terminates
    /// within `buffered_bytes()` iterations.
    fn next_resilient(&mut self) -> Option<StreamEvent> {
        let header = self.header?;
        let max_count = header.rows as u64 * header.cols as u64;
        loop {
            if self.scanning {
                match self.scan_for_resync(max_count) {
                    ScanOutcome::NeedBytes => return None,
                    ScanOutcome::Resynced => {
                        self.scanning = false;
                        let bytes_skipped = std::mem::take(&mut self.pending_skip);
                        self.skipped_total += bytes_skipped;
                        self.corrupt_events += 1;
                        return Some(StreamEvent::Corrupt { bytes_skipped });
                    }
                }
            }
            let avail = self.buffered_bytes();
            if avail == 0 {
                return None;
            }
            let first = self.buf[self.pos];
            if first == SYNC_WORD[0] {
                // A sync word (or the corrupted start of one).
                if avail < SYNC_WORD.len() {
                    return None;
                }
                if self.buf[self.pos..self.pos + SYNC_WORD.len()] == SYNC_WORD {
                    self.pos += SYNC_WORD.len();
                    continue;
                }
                self.enter_scan();
                continue;
            }
            if first != FRAME_MARKER {
                self.enter_scan();
                continue;
            }
            if avail < RESILIENT_RECORD_PREFIX_BYTES {
                return None;
            }
            let b = &self.buf[self.pos..];
            match validate_resilient_prefix(b, max_count, self.seq_floor) {
                None => {
                    self.enter_scan();
                    continue;
                }
                Some((seq, count)) => {
                    let payload_len =
                        ((count * u64::from(header.sample_bits)).div_ceil(8)) as usize;
                    let record_len = RESILIENT_RECORD_PREFIX_BYTES + payload_len + 1;
                    if avail < record_len {
                        return None;
                    }
                    let payload = &b[RESILIENT_RECORD_PREFIX_BYTES
                        ..RESILIENT_RECORD_PREFIX_BYTES + payload_len];
                    if crc8(payload) != b[RESILIENT_RECORD_PREFIX_BYTES + payload_len] {
                        // Correctly framed but damaged payload: erase
                        // exactly this record and move on.
                        self.pos += record_len;
                        self.skipped_total += record_len;
                        self.corrupt_events += 1;
                        self.seq_floor = self.seq_floor.max(seq.wrapping_add(1));
                        return Some(StreamEvent::Corrupt {
                            bytes_skipped: record_len,
                        });
                    }
                    let mut reader = BitReader::new(payload);
                    let samples = (0..count)
                        .map(|_| reader.read(u32::from(header.sample_bits)))
                        .collect();
                    self.pos += record_len;
                    self.frames += 1;
                    self.seq_floor = self.seq_floor.max(seq.wrapping_add(1));
                    return Some(StreamEvent::Frame {
                        seq: u64::from(seq),
                        frame: CompressedFrame { header, samples },
                    });
                }
            }
        }
    }

    /// Enters scan mode, consuming the known-bad byte at `pos`.
    fn enter_scan(&mut self) {
        self.scanning = true;
        self.pos += 1;
        self.pending_skip += 1;
    }

    /// Scans forward for a resync point: the next [`SYNC_WORD`] or the
    /// next record prefix whose CRC-8 (and count/sequence sanity)
    /// verifies. Consumes everything conclusively garbage; keeps
    /// inconclusive tails (partial sync words / prefixes) buffered for
    /// the next call.
    // tidy:alloc-free
    fn scan_for_resync(&mut self, max_count: u64) -> ScanOutcome {
        let mut i = self.pos;
        loop {
            let avail = self.buf.len() - i;
            if avail == 0 {
                break;
            }
            let first = self.buf[i];
            if first == SYNC_WORD[0] {
                if avail < SYNC_WORD.len() {
                    break; // inconclusive: might be a partial sync word
                }
                if self.buf[i..i + SYNC_WORD.len()] == SYNC_WORD {
                    self.pending_skip += i - self.pos;
                    self.pos = i;
                    return ScanOutcome::Resynced;
                }
            } else if first == FRAME_MARKER {
                if avail < RESILIENT_RECORD_PREFIX_BYTES {
                    break; // inconclusive: might be a partial prefix
                }
                if validate_resilient_prefix(&self.buf[i..], max_count, self.seq_floor).is_some() {
                    self.pending_skip += i - self.pos;
                    self.pos = i;
                    return ScanOutcome::Resynced;
                }
            }
            i += 1;
        }
        // Everything up to `i` is conclusively garbage.
        self.pending_skip += i - self.pos;
        self.pos = i;
        ScanOutcome::NeedBytes
    }
}

/// Result of one resync scan pass.
enum ScanOutcome {
    /// Found a plausible record or sync word at the current position.
    Resynced,
    /// Buffer exhausted (up to an inconclusive tail); wait for bytes.
    NeedBytes,
}

/// Checks a resilient record prefix (`marker · seq · count · crc`):
/// marker byte, CRC-8, count in `1..=max_count`, and sequence number
/// within [`SEQ_WINDOW`] of the expected floor (guards against
/// lucky-CRC forgeries mid-garbage). Returns `(seq, count)` when valid.
///
/// The slice must hold at least [`RESILIENT_RECORD_PREFIX_BYTES`].
// tidy:alloc-free
fn validate_resilient_prefix(b: &[u8], max_count: u64, seq_floor: u32) -> Option<(u32, u64)> {
    if b[0] != FRAME_MARKER {
        return None;
    }
    if crc8(&b[..RESILIENT_RECORD_PREFIX_BYTES - 1]) != b[RESILIENT_RECORD_PREFIX_BYTES - 1] {
        return None;
    }
    let seq = u32::from_le_bytes([b[1], b[2], b[3], b[4]]);
    let count = u64::from(u32::from_le_bytes([b[5], b[6], b[7], b[8]]));
    if count == 0 || count > max_count {
        return None;
    }
    // Accept replays (seq below the floor — the session discards them)
    // but reject absurd forward jumps.
    if seq > seq_floor.saturating_add(SEQ_WINDOW) {
        return None;
    }
    Some((seq, count))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tepics_imaging::tile::TileConfig;
    use tepics_util::SplitMix64;

    fn header() -> FrameHeader {
        FrameHeader {
            rows: 16,
            cols: 16,
            code_bits: 8,
            sample_bits: 16,
            strategy: StrategyKind::rule30(64),
            seed: 0xDEAD_BEEF,
        }
    }

    fn frames(n: usize, k: usize) -> Vec<CompressedFrame> {
        let mut rng = SplitMix64::new(11);
        (0..n)
            .map(|_| CompressedFrame {
                header: header(),
                samples: (0..k).map(|_| rng.next_below(1 << 16) as u32).collect(),
            })
            .collect()
    }

    #[test]
    fn stream_roundtrips_all_frames() {
        let frames = frames(5, 90);
        let mut writer = StreamWriter::new(header()).unwrap();
        for f in &frames {
            writer.push_frame(f).unwrap();
        }
        let mut parser = StreamParser::new();
        parser.push_bytes(writer.bytes());
        for (i, f) in frames.iter().enumerate() {
            let got = parser
                .next_frame()
                .unwrap()
                .unwrap_or_else(|| panic!("frame {i} missing"));
            assert_eq!(&got, f, "frame {i}");
        }
        assert!(parser.next_frame().unwrap().is_none());
        assert_eq!(parser.frames_parsed(), 5);
        assert_eq!(parser.buffered_bytes(), 0);
    }

    #[test]
    fn parser_handles_arbitrary_chunking() {
        let frames = frames(3, 40);
        let mut writer = StreamWriter::new(header()).unwrap();
        for f in &frames {
            writer.push_frame(f).unwrap();
        }
        let bytes = writer.into_bytes();
        // Feed one byte at a time: frames must pop out exactly when
        // their last byte arrives.
        let mut parser = StreamParser::new();
        let mut got = Vec::new();
        for &b in &bytes {
            parser.push_bytes(&[b]);
            while let Some(f) = parser.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn stream_overhead_beats_repeated_frame_headers() {
        let frames = frames(4, 64);
        let mut writer = StreamWriter::new(header()).unwrap();
        let mut frame_codec_bits = 0usize;
        for f in &frames {
            writer.push_frame(f).unwrap();
            frame_codec_bits += f.wire_bits();
        }
        assert!(
            writer.wire_bits() < frame_codec_bits,
            "stream {} bits must beat {} bits of per-frame headers",
            writer.wire_bits(),
            frame_codec_bits
        );
        // Exact accounting: 23 + n·5 header bytes vs n·27.
        let payload: usize = frames.iter().map(|f| f.payload_bits().div_ceil(8)).sum();
        assert_eq!(
            writer.wire_bits(),
            (STREAM_HEADER_BYTES + 4 * FRAME_RECORD_BYTES + payload) * 8
        );
    }

    #[test]
    fn frames_may_vary_in_sample_count() {
        let mut writer = StreamWriter::new(header()).unwrap();
        writer.push_samples(&[1, 2, 3, 4, 5]).unwrap();
        writer.push_samples(&[6]).unwrap();
        let mut parser = StreamParser::new();
        parser.push_bytes(writer.bytes());
        assert_eq!(parser.next_frame().unwrap().unwrap().samples.len(), 5);
        assert_eq!(parser.next_frame().unwrap().unwrap().samples.len(), 1);
    }

    #[test]
    fn writer_rejects_foreign_and_degenerate_frames() {
        let mut writer = StreamWriter::new(header()).unwrap();
        let mut foreign = frames(1, 10).remove(0);
        foreign.header.seed ^= 1;
        assert!(matches!(
            writer.push_frame(&foreign),
            Err(CoreError::FrameMismatch(_))
        ));
        assert!(writer.push_samples(&[]).is_err());
        assert!(writer.push_samples(&vec![0; 257]).is_err()); // > 16·16
        assert!(writer.push_samples(&[1 << 16]).is_err()); // overflows 16 bits
        assert_eq!(writer.frames(), 0);
    }

    #[test]
    fn corrupt_streams_fail_sticky_and_clean() {
        let mut writer = StreamWriter::new(header()).unwrap();
        writer.push_samples(&[7, 8, 9]).unwrap();
        let good = writer.into_bytes();

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        let mut p = StreamParser::new();
        p.push_bytes(&bad);
        assert!(p.next_frame().is_err());
        // Sticky: the same error again, even after more bytes.
        p.push_bytes(&good);
        assert!(p.next_frame().is_err());

        // Bad frame marker.
        let mut bad = good.clone();
        bad[STREAM_HEADER_BYTES] ^= 0xFF;
        let mut p = StreamParser::new();
        p.push_bytes(&bad);
        assert!(matches!(p.next_frame(), Err(CoreError::MalformedFrame(_))));

        // Insane count.
        let mut bad = good;
        bad[STREAM_HEADER_BYTES + 1..STREAM_HEADER_BYTES + 5]
            .copy_from_slice(&u32::MAX.to_le_bytes());
        let mut p = StreamParser::new();
        p.push_bytes(&bad);
        assert!(matches!(p.next_frame(), Err(CoreError::MalformedFrame(_))));
    }

    fn tiled_layout() -> TileLayout {
        TileLayout::new(FrameGeometry::new(40, 28), &TileConfig::new(16).overlap(4)).unwrap()
    }

    fn tiled_header() -> FrameHeader {
        FrameHeader {
            rows: 16,
            cols: 16,
            code_bits: 8,
            sample_bits: 16,
            strategy: StrategyKind::rule30(64),
            seed: 0xDEAD_BEEF,
        }
    }

    #[test]
    fn tiled_stream_roundtrips_layout_and_records() {
        let layout = tiled_layout();
        let mut writer = StreamWriter::new_tiled(tiled_header(), &layout).unwrap();
        assert_eq!(writer.tile_layout(), Some(&layout));
        for t in 0..layout.tiles() {
            writer.push_samples(&[t as u32 + 1, 2, 3]).unwrap();
        }
        let bytes = writer.into_bytes();
        assert_eq!(bytes[4], STREAM_VERSION_TILED);

        let mut parser = StreamParser::new();
        parser.push_bytes(&bytes);
        let first = parser.next_frame().unwrap().unwrap();
        assert_eq!(first.samples, vec![1, 2, 3]);
        assert_eq!(parser.tile_layout(), Some(&layout));
        assert_eq!(parser.header(), Some(&tiled_header()));
        for _ in 1..layout.tiles() {
            parser.next_frame().unwrap().unwrap();
        }
        assert!(parser.next_frame().unwrap().is_none());
        assert_eq!(parser.frames_parsed(), layout.tiles());
    }

    #[test]
    fn version_one_streams_still_parse_without_a_layout() {
        let mut writer = StreamWriter::new(header()).unwrap();
        writer.push_samples(&[1, 2, 3]).unwrap();
        let bytes = writer.into_bytes();
        assert_eq!(bytes[4], STREAM_VERSION); // explicit wire check
        let mut parser = StreamParser::new();
        parser.push_bytes(&bytes);
        assert_eq!(parser.next_frame().unwrap().unwrap().samples, vec![1, 2, 3]);
        assert!(parser.tile_layout().is_none());
    }

    #[test]
    fn tiled_writer_rejects_header_layout_mismatch() {
        let mut h = tiled_header();
        h.rows = 8; // layout tiles are 16×16
        assert!(matches!(
            StreamWriter::new_tiled(h, &tiled_layout()),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn hostile_tile_extensions_are_malformed_not_panics() {
        let layout = tiled_layout();
        let writer = StreamWriter::new_tiled(tiled_header(), &layout).unwrap();
        let good = writer.into_bytes();
        let corrupt = |mutate: &dyn Fn(&mut Vec<u8>)| {
            let mut bad = good.clone();
            mutate(&mut bad);
            let mut p = StreamParser::new();
            p.push_bytes(&bad);
            p.next_frame()
        };
        // Zero frame width.
        let r = corrupt(&|b| b[23..25].copy_from_slice(&0u16.to_le_bytes()));
        assert!(matches!(r, Err(CoreError::MalformedFrame(_))), "{r:?}");
        // Frame smaller than the tile.
        let r = corrupt(&|b| b[23..25].copy_from_slice(&8u16.to_le_bytes()));
        assert!(matches!(r, Err(CoreError::MalformedFrame(_))), "{r:?}");
        // Overlap not below the tile side.
        let r = corrupt(&|b| b[27..29].copy_from_slice(&16u16.to_le_bytes()));
        assert!(matches!(r, Err(CoreError::MalformedFrame(_))), "{r:?}");
        // Unknown blend byte.
        let r = corrupt(&|b| b[29] = 7);
        assert!(matches!(r, Err(CoreError::MalformedFrame(_))), "{r:?}");
        // Unknown version byte.
        let r = corrupt(&|b| b[4] = 9);
        assert!(matches!(r, Err(CoreError::MalformedFrame(_))), "{r:?}");
        // Version byte flipped to 3: reinterpreted as a resilient
        // header whose flags byte/CRC cannot both verify.
        let r = corrupt(&|b| b[4] = STREAM_VERSION_RESILIENT);
        assert!(matches!(r, Err(CoreError::MalformedFrame(_))), "{r:?}");
    }

    #[test]
    fn truncated_tiled_header_waits_for_the_extension() {
        let layout = tiled_layout();
        let mut writer = StreamWriter::new_tiled(tiled_header(), &layout).unwrap();
        writer.push_samples(&[1]).unwrap();
        let bytes = writer.into_bytes();
        let mut parser = StreamParser::new();
        // Base header alone is not enough for a v2 stream.
        parser.push_bytes(&bytes[..STREAM_HEADER_BYTES + 3]);
        assert!(parser.next_frame().unwrap().is_none());
        assert!(parser.header().is_none());
        parser.push_bytes(&bytes[STREAM_HEADER_BYTES + 3..]);
        assert_eq!(parser.next_frame().unwrap().unwrap().samples, vec![1]);
        assert_eq!(parser.tile_layout(), Some(&layout));
    }

    #[test]
    fn truncated_stream_waits_instead_of_failing() {
        let mut writer = StreamWriter::new(header()).unwrap();
        writer.push_samples(&[1, 2, 3]).unwrap();
        let bytes = writer.into_bytes();
        let mut parser = StreamParser::new();
        parser.push_bytes(&bytes[..bytes.len() - 1]);
        assert!(parser.next_frame().unwrap().is_none());
        parser.push_bytes(&bytes[bytes.len() - 1..]);
        assert_eq!(parser.next_frame().unwrap().unwrap().samples, vec![1, 2, 3]);
    }

    // ──────────────────────── resilient (v3) ────────────────────────

    fn resilient_bytes(n: usize, k: usize) -> (Vec<CompressedFrame>, Vec<u8>) {
        let frames = frames(n, k);
        let mut writer = StreamWriter::new_resilient(header()).unwrap();
        for f in &frames {
            writer.push_frame(f).unwrap();
        }
        (frames, writer.into_bytes())
    }

    #[test]
    fn resilient_stream_roundtrips_with_sequence_numbers() {
        let (frames, bytes) = resilient_bytes(20, 30);
        assert_eq!(bytes[4], STREAM_VERSION_RESILIENT);
        // Sync word right after the 25-byte header (record 0).
        assert_eq!(
            bytes[RESILIENT_HEADER_BYTES..RESILIENT_HEADER_BYTES + 4],
            SYNC_WORD
        );
        let mut parser = StreamParser::new();
        parser.push_bytes(&bytes);
        for (i, f) in frames.iter().enumerate() {
            match parser.next_event().unwrap().unwrap() {
                StreamEvent::Frame { seq, frame } => {
                    assert_eq!(seq, i as u64);
                    assert_eq!(&frame, f, "frame {i}");
                }
                StreamEvent::Corrupt { .. } => panic!("clean stream reported corruption"),
            }
        }
        assert!(parser.next_event().unwrap().is_none());
        assert_eq!(parser.wire_version(), Some(STREAM_VERSION_RESILIENT));
        assert_eq!(parser.bytes_skipped(), 0);
        assert_eq!(parser.corrupt_events(), 0);
        assert_eq!(parser.frames_parsed(), 20);
    }

    #[test]
    fn resilient_clean_stream_decodes_identical_to_compact() {
        let frames = frames(10, 44);
        let mut compact = StreamWriter::new(header()).unwrap();
        let mut resilient = StreamWriter::new_resilient(header()).unwrap();
        for f in &frames {
            compact.push_frame(f).unwrap();
            resilient.push_frame(f).unwrap();
        }
        let decode = |bytes: &[u8]| {
            let mut p = StreamParser::new();
            p.push_bytes(bytes);
            let mut out = Vec::new();
            while let Some(f) = p.next_frame().unwrap() {
                out.push(f);
            }
            out
        };
        assert_eq!(decode(compact.bytes()), decode(resilient.bytes()));
    }

    #[test]
    fn resilient_tiled_roundtrips_layout() {
        let layout = tiled_layout();
        let mut writer = StreamWriter::new_resilient_tiled(tiled_header(), &layout).unwrap();
        for t in 0..layout.tiles() {
            writer.push_samples(&[t as u32 + 1, 9]).unwrap();
        }
        let bytes = writer.into_bytes();
        assert_eq!(bytes[4], STREAM_VERSION_RESILIENT);
        let mut parser = StreamParser::new();
        parser.push_bytes(&bytes);
        let first = parser.next_frame().unwrap().unwrap();
        assert_eq!(first.samples, vec![1, 9]);
        assert_eq!(parser.tile_layout(), Some(&layout));
        for _ in 1..layout.tiles() {
            parser.next_frame().unwrap().unwrap();
        }
        assert!(parser.next_frame().unwrap().is_none());
    }

    #[test]
    fn resilient_parser_skips_corrupt_payload_and_resumes() {
        let (frames, mut bytes) = resilient_bytes(12, 30);
        // Flip a byte in the middle of record 5's payload: header 25 B,
        // sync every 8 records, record = 10 B prefix + 60 B payload + 1.
        let rec = |i: usize| RESILIENT_HEADER_BYTES + (i / SYNC_INTERVAL + 1) * 4 + i * 71;
        bytes[rec(5) + 30] ^= 0x40;
        let mut parser = StreamParser::new();
        parser.push_bytes(&bytes);
        let mut got = Vec::new();
        let mut corrupt = 0;
        while let Some(ev) = parser.next_event().unwrap() {
            match ev {
                StreamEvent::Frame { seq, frame } => got.push((seq, frame)),
                StreamEvent::Corrupt { bytes_skipped } => {
                    corrupt += 1;
                    assert_eq!(bytes_skipped, 71, "exactly one record erased");
                }
            }
        }
        assert_eq!(corrupt, 1);
        assert_eq!(got.len(), 11);
        for (seq, frame) in got {
            assert_ne!(seq, 5, "the damaged record must not decode");
            assert_eq!(frame, frames[seq as usize]);
        }
        assert!(!parser.is_malformed());
    }

    #[test]
    fn resilient_parser_resyncs_through_garbage_burst() {
        let (frames, mut bytes) = resilient_bytes(20, 30);
        // Obliterate a stretch starting in record 3's prefix: the parser
        // must scan forward and pick decoding back up at a later record.
        let start = RESILIENT_HEADER_BYTES + 4 + 3 * 71 + 2;
        for b in &mut bytes[start..start + 150] {
            *b = 0xAA;
        }
        let mut parser = StreamParser::new();
        parser.push_bytes(&bytes);
        let mut seqs = Vec::new();
        let mut skipped = 0;
        while let Some(ev) = parser.next_event().unwrap() {
            match ev {
                StreamEvent::Frame { seq, frame } => {
                    assert_eq!(frame, frames[seq as usize]);
                    seqs.push(seq);
                }
                StreamEvent::Corrupt { bytes_skipped } => skipped += bytes_skipped,
            }
        }
        assert!(skipped >= 150, "at least the burst is reported skipped");
        assert_eq!(parser.bytes_skipped(), skipped);
        assert_eq!(seqs[..3], [0, 1, 2]);
        // Everything after the burst must be recovered.
        assert!(seqs.len() >= 14, "recovered only {seqs:?}");
        assert_eq!(seqs.last(), Some(&19));
    }

    #[test]
    fn resilient_header_damage_stays_sticky() {
        let (_, mut bytes) = resilient_bytes(3, 10);
        bytes[9] ^= 0xFF; // code_bits, guarded by the header CRC
        let mut parser = StreamParser::new();
        parser.push_bytes(&bytes);
        assert!(matches!(
            parser.next_event(),
            Err(CoreError::MalformedFrame(_))
        ));
        assert!(parser.is_malformed());
        assert!(parser.error().is_some());
        // Sticky even after more (clean) bytes arrive.
        let (_, clean) = resilient_bytes(3, 10);
        parser.push_bytes(&clean);
        assert!(parser.next_frame().is_err());
    }

    #[test]
    fn resilient_parser_handles_byte_at_a_time_chunking() {
        let (frames, bytes) = resilient_bytes(9, 25);
        let mut parser = StreamParser::new();
        let mut got = Vec::new();
        for &b in &bytes {
            parser.push_bytes(&[b]);
            while let Some(ev) = parser.next_event().unwrap() {
                if let StreamEvent::Frame { frame, .. } = ev {
                    got.push(frame);
                }
            }
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn resilient_truncated_stream_yields_prefix_without_error() {
        let (frames, bytes) = resilient_bytes(6, 30);
        let mut parser = StreamParser::new();
        parser.push_bytes(&bytes[..bytes.len() - 40]);
        let mut got = 0;
        while let Some(ev) = parser.next_event().unwrap() {
            if matches!(ev, StreamEvent::Frame { .. }) {
                got += 1;
            }
        }
        assert_eq!(got, frames.len() - 1, "only the cut record is lost");
        assert!(!parser.is_malformed());
    }
}
