//! The compressive imager: scene in, compressed frame out.
//!
//! [`CompressiveImager`] binds a sensor configuration, a strategy
//! generator and a compression ratio into the capture side of the
//! paper's system. Each call to [`CompressiveImager::capture`] simulates
//! `K = R·M·N` compressed-sample slots through the event-accurate
//! readout (or the functional model, when configured) and packages the
//! result as a transmittable [`CompressedFrame`].
//!
//! # Tiled capture
//!
//! Recovery cost grows super-linearly in the pixel count, so large
//! frames are captured and decoded as independent uniform tiles:
//! configure the builder with [`CompressiveImagerBuilder::tiling`] (and
//! start from any [`FrameGeometry`] via
//! [`CompressiveImager::builder_for`] — no square or power-of-two
//! assumption). A tiled imager captures one [`CompressedFrame`] **per
//! tile** ([`CompressiveImager::capture_tiles`], row-major tile order);
//! the tiles share a single small measurement geometry, so one
//! operator-cache entry serves the whole frame, and the decode side
//! ([`DecodeSession`](crate::session::DecodeSession)) recovers them in
//! parallel and stitches with overlap blending.

use crate::error::CoreError;
use crate::frame::{CompressedFrame, FrameHeader};
use crate::strategy::StrategyKind;
use tepics_imaging::tile::{FrameGeometry, TileConfig, TileLayout};
use tepics_imaging::{ImageF64, ImageU8};
use tepics_sensor::{CapturedFrame, EventStats, Fidelity, FrameReadout, SensorConfig};

/// Capture engine configured for one sensor + strategy + ratio.
///
/// # Examples
///
/// ```
/// use tepics_core::CompressiveImager;
/// use tepics_imaging::Scene;
///
/// let imager = CompressiveImager::builder(32, 32)
///     .ratio(0.3)
///     .seed(7)
///     .build()
///     .unwrap();
/// let scene = Scene::gaussian_blobs(2).render(32, 32, 1);
/// let frame = imager.capture(&scene);
/// assert_eq!(frame.sample_count(), (0.3f64 * 1024.0).ceil() as usize);
/// ```
#[derive(Debug, Clone)]
pub struct CompressiveImager {
    config: SensorConfig,
    strategy: StrategyKind,
    seed: u64,
    ratio: f64,
    fidelity: Fidelity,
    tiling: Option<TileEngine>,
}

/// The tiled-capture machinery of a tiled [`CompressiveImager`]: the
/// resolved layout plus the per-tile imager every tile is captured
/// with.
#[derive(Debug, Clone)]
struct TileEngine {
    config: TileConfig,
    layout: TileLayout,
    imager: Box<CompressiveImager>,
}

impl CompressiveImager {
    /// Starts a builder for an `rows × cols` imager.
    pub fn builder(rows: usize, cols: usize) -> CompressiveImagerBuilder {
        CompressiveImagerBuilder {
            rows,
            cols,
            config: None,
            strategy: None,
            seed: 0x7E91C5,
            ratio: 0.35,
            fidelity: Fidelity::EventAccurate,
            tiling: None,
        }
    }

    /// Starts a builder for a frame of the given geometry — the
    /// geometry-first spelling of [`CompressiveImager::builder`]
    /// (`width` maps to columns, `height` to rows; no square or
    /// power-of-two assumption).
    ///
    /// # Examples
    ///
    /// ```
    /// use tepics_core::CompressiveImager;
    /// use tepics_imaging::{FrameGeometry, TileConfig};
    ///
    /// let imager = CompressiveImager::builder_for(FrameGeometry::new(40, 28))
    ///     .tiling(TileConfig::new(16).overlap(4))
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(imager.tile_layout().unwrap().tiles(), 6);
    /// ```
    pub fn builder_for(geometry: FrameGeometry) -> CompressiveImagerBuilder {
        CompressiveImager::builder(geometry.height(), geometry.width())
    }

    /// The sensor configuration in use.
    pub fn sensor_config(&self) -> &SensorConfig {
        &self.config
    }

    /// The strategy generator.
    pub fn strategy(&self) -> StrategyKind {
        self.strategy
    }

    /// The strategy seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured compression ratio `R`.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// The full-frame geometry (`width = cols`, `height = rows`).
    pub fn geometry(&self) -> FrameGeometry {
        FrameGeometry::new(self.config.cols(), self.config.rows())
    }

    /// Whether this imager captures tiled frames.
    pub fn is_tiled(&self) -> bool {
        self.tiling.is_some()
    }

    /// The resolved tile layout, for a tiled imager.
    pub fn tile_layout(&self) -> Option<&TileLayout> {
        self.tiling.as_ref().map(|t| &t.layout)
    }

    /// The tile configuration this imager was built with, for a tiled
    /// imager.
    pub fn tile_config(&self) -> Option<&TileConfig> {
        self.tiling.as_ref().map(|t| &t.config)
    }

    /// The per-tile imager a tiled imager captures each tile with.
    pub fn tile_imager(&self) -> Option<&CompressiveImager> {
        self.tiling.as_ref().map(|t| t.imager.as_ref())
    }

    /// Number of compressed samples per captured frame record — per
    /// **tile** for a tiled imager (`⌈R·tile_h·tile_w⌉`), per frame
    /// otherwise.
    pub fn sample_count(&self) -> usize {
        match &self.tiling {
            Some(t) => t.imager.sample_count(),
            None => ((self.ratio * self.config.pixel_count() as f64).ceil() as usize).max(1),
        }
    }

    /// The header every frame record captured by this imager carries
    /// (also the stream header of an
    /// [`EncodeSession`](crate::session::EncodeSession) built on it).
    /// For a tiled imager this is the **tile** header — the wire format
    /// carries the full-frame geometry in the stream's tile extension
    /// instead.
    pub fn frame_header(&self) -> FrameHeader {
        match &self.tiling {
            Some(t) => t.imager.frame_header(),
            None => FrameHeader {
                rows: self.config.rows() as u16,
                cols: self.config.cols() as u16,
                code_bits: self.config.counter_bits() as u8,
                sample_bits: tepics_util::fixed::sum_bits(
                    self.config.counter_bits(),
                    self.config.rows() as u32,
                    self.config.cols() as u32,
                ) as u8,
                strategy: self.strategy,
                seed: self.seed,
            },
        }
    }

    /// Captures a frame.
    ///
    /// # Panics
    ///
    /// Panics if the scene dimensions do not match the sensor (the
    /// builder validated everything else), or if the imager is tiled —
    /// a tiled capture produces one frame per tile; use
    /// [`CompressiveImager::capture_tiles`].
    pub fn capture(&self, scene: &ImageF64) -> CompressedFrame {
        self.capture_with_stats(scene).0
    }

    /// Captures a frame and returns the event-level statistics next to
    /// it (queueing, missed pulses, LSB errors).
    ///
    /// # Panics
    ///
    /// Panics if the scene dimensions do not match the sensor, or if
    /// the imager is tiled (see [`CompressiveImager::capture`]).
    pub fn capture_with_stats(&self, scene: &ImageF64) -> (CompressedFrame, EventStats) {
        assert!(
            !self.is_tiled(),
            "tiled imagers capture one frame per tile; use capture_tiles"
        );
        let readout = FrameReadout::new(self.config.clone(), self.fidelity);
        let mut source = self
            .strategy
            .build_source(self.config.rows() + self.config.cols(), self.seed)
            // tidy:allow(panic: strategy parameters were validated by CompressiveImagerBuilder::build)
            .expect("strategy validated at build time");
        let captured: CapturedFrame = readout.capture(scene, source.as_mut(), self.sample_count());
        let header = self.frame_header();
        (
            CompressedFrame {
                header,
                samples: captured.samples,
            },
            captured.stats,
        )
    }

    /// Captures a scene as a sequence of frame records: one per tile
    /// (row-major tile order) for a tiled imager, a single frame
    /// otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the scene dimensions do not match the frame geometry.
    pub fn capture_tiles(&self, scene: &ImageF64) -> Vec<CompressedFrame> {
        self.capture_tiles_with_stats(scene).0
    }

    /// Like [`CompressiveImager::capture_tiles`], also returning the
    /// event statistics of all tile captures merged into one
    /// ([`EventStats::merge`]).
    ///
    /// # Panics
    ///
    /// Panics if the scene dimensions do not match the frame geometry.
    pub fn capture_tiles_with_stats(&self, scene: &ImageF64) -> (Vec<CompressedFrame>, EventStats) {
        let Some(engine) = &self.tiling else {
            let (frame, stats) = self.capture_with_stats(scene);
            return (vec![frame], stats);
        };
        let layout = &engine.layout;
        let tiles = tepics_imaging::tile::split_tiles(scene, layout);
        let mut frames = Vec::with_capacity(tiles.len());
        let mut stats = EventStats::default();
        for tile in tiles {
            let tile_img = ImageF64::from_vec(layout.tile_width(), layout.tile_height(), tile);
            let (frame, tile_stats) = engine.imager.capture_with_stats(&tile_img);
            stats.merge(&tile_stats);
            frames.push(frame);
        }
        (frames, stats)
    }

    /// The ideal (noise/arbitration-free) code image the decoder aims to
    /// reconstruct.
    ///
    /// # Panics
    ///
    /// Panics if the scene dimensions do not match the sensor.
    pub fn ideal_codes(&self, scene: &ImageF64) -> ImageU8 {
        FrameReadout::new(self.config.clone(), Fidelity::Functional).code_image(scene)
    }
}

/// Non-consuming builder for [`CompressiveImager`].
#[derive(Debug, Clone)]
pub struct CompressiveImagerBuilder {
    rows: usize,
    cols: usize,
    config: Option<SensorConfig>,
    strategy: Option<StrategyKind>,
    seed: u64,
    ratio: f64,
    fidelity: Fidelity,
    tiling: Option<TileConfig>,
}

impl CompressiveImagerBuilder {
    /// Uses an explicit sensor configuration (must match the builder's
    /// dimensions; incompatible with [`CompressiveImagerBuilder::tiling`],
    /// whose per-tile sensors are derived).
    pub fn sensor_config(&mut self, config: SensorConfig) -> &mut Self {
        self.config = Some(config);
        self
    }

    /// Captures the frame as overlapping uniform tiles instead of one
    /// monolithic measurement (see the module docs). The strategy,
    /// seed, ratio and fidelity settings apply to each tile; when no
    /// strategy is set explicitly, the default is chosen for the
    /// **tile** geometry.
    pub fn tiling(&mut self, config: TileConfig) -> &mut Self {
        self.tiling = Some(config);
        self
    }

    /// Sets the strategy generator (default: Rule-30 CA with `2(M+N)`
    /// warm-up).
    pub fn strategy(&mut self, strategy: StrategyKind) -> &mut Self {
        self.strategy = Some(strategy);
        self
    }

    /// Sets the strategy seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the compression ratio `R ∈ (0, 1]` (default 0.35; the paper
    /// argues `R < 0.4`).
    pub fn ratio(&mut self, ratio: f64) -> &mut Self {
        self.ratio = ratio;
        self
    }

    /// Sets the simulation fidelity (default event-accurate).
    pub fn fidelity(&mut self, fidelity: Fidelity) -> &mut Self {
        self.fidelity = fidelity;
        self
    }

    /// Validates and builds the imager.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] on a bad ratio, mismatched
    /// sensor dimensions, an invalid strategy or tile configuration,
    /// arrays too large for the 16-bit header fields, or an explicit
    /// sensor config combined with tiling.
    pub fn build(&self) -> Result<CompressiveImager, CoreError> {
        if !(self.ratio > 0.0 && self.ratio <= 1.0) {
            return Err(CoreError::InvalidConfig(format!(
                "ratio {} outside (0, 1]",
                self.ratio
            )));
        }
        if self.rows > u16::MAX as usize || self.cols > u16::MAX as usize {
            return Err(CoreError::InvalidConfig(
                "array exceeds 65535 per side".into(),
            ));
        }
        let config = match &self.config {
            Some(c) => {
                if c.rows() != self.rows || c.cols() != self.cols {
                    return Err(CoreError::InvalidConfig(format!(
                        "sensor config is {}×{}, builder is {}×{}",
                        c.rows(),
                        c.cols(),
                        self.rows,
                        self.cols
                    )));
                }
                c.clone()
            }
            None => SensorConfig::builder(self.rows, self.cols)
                .build()
                .map_err(|e| CoreError::InvalidConfig(e.to_string()))?,
        };
        if let Some(tile_config) = self.tiling {
            if self.config.is_some() {
                return Err(CoreError::InvalidConfig(
                    "explicit sensor configs describe the full frame; tiled imagers derive \
                     per-tile sensors"
                        .into(),
                ));
            }
            if self.rows == 0 || self.cols == 0 {
                return Err(CoreError::InvalidConfig(
                    "frame dimensions must be positive".into(),
                ));
            }
            let frame = FrameGeometry::new(self.cols, self.rows);
            let layout = TileLayout::new(frame, &tile_config)
                .map_err(|e| CoreError::InvalidConfig(e.to_string()))?;
            // Every tile is captured with its own small imager; the
            // defaulted strategy therefore follows the tile geometry,
            // not the frame's.
            let mut tile_builder =
                CompressiveImager::builder(layout.tile_height(), layout.tile_width());
            if let Some(strategy) = self.strategy {
                tile_builder.strategy(strategy);
            }
            let tile_imager = tile_builder
                .seed(self.seed)
                .ratio(self.ratio)
                .fidelity(self.fidelity)
                .build()?;
            return Ok(CompressiveImager {
                config,
                strategy: tile_imager.strategy(),
                seed: self.seed,
                ratio: self.ratio,
                fidelity: self.fidelity,
                tiling: Some(TileEngine {
                    config: tile_config,
                    layout,
                    imager: Box::new(tile_imager),
                }),
            });
        }
        let strategy = self
            .strategy
            .unwrap_or_else(|| StrategyKind::default_for(self.rows, self.cols));
        // Validate the strategy parameters eagerly.
        strategy.build_source(self.rows + self.cols, self.seed)?;
        Ok(CompressiveImager {
            config,
            strategy,
            seed: self.seed,
            ratio: self.ratio,
            fidelity: self.fidelity,
            tiling: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tepics_imaging::Scene;

    #[test]
    fn sample_count_follows_ratio() {
        let imager = CompressiveImager::builder(16, 16)
            .ratio(0.25)
            .build()
            .unwrap();
        assert_eq!(imager.sample_count(), 64);
        let imager = CompressiveImager::builder(16, 16)
            .ratio(1.0)
            .build()
            .unwrap();
        assert_eq!(imager.sample_count(), 256);
    }

    #[test]
    fn header_matches_configuration() {
        let imager = CompressiveImager::builder(16, 16)
            .ratio(0.3)
            .seed(123)
            .build()
            .unwrap();
        let scene = Scene::Uniform(0.5).render(16, 16, 0);
        let frame = imager.capture(&scene);
        assert_eq!(frame.header.rows, 16);
        assert_eq!(frame.header.cols, 16);
        assert_eq!(frame.header.code_bits, 8);
        assert_eq!(frame.header.sample_bits, 16); // 8 + log2(256)
        assert_eq!(frame.header.seed, 123);
        assert_eq!(frame.sample_count(), imager.sample_count());
    }

    #[test]
    fn capture_roundtrips_through_wire_format() {
        let imager = CompressiveImager::builder(16, 16)
            .ratio(0.2)
            .build()
            .unwrap();
        let scene = Scene::gaussian_blobs(2).render(16, 16, 5);
        let frame = imager.capture(&scene);
        let back = CompressedFrame::from_bytes(&frame.to_bytes()).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn functional_and_event_fidelity_differ_under_contention() {
        let scene = Scene::Uniform(0.5).render(16, 16, 0); // max contention
        let make = |fidelity| {
            CompressiveImager::builder(16, 16)
                .ratio(0.2)
                .fidelity(fidelity)
                .build()
                .unwrap()
                .capture(&scene)
        };
        let f = make(Fidelity::Functional);
        let e = make(Fidelity::EventAccurate);
        assert_ne!(
            f.samples, e.samples,
            "serialization delays must perturb a max-contention capture"
        );
    }

    #[test]
    fn invalid_ratio_is_rejected() {
        assert!(CompressiveImager::builder(8, 8).ratio(0.0).build().is_err());
        assert!(CompressiveImager::builder(8, 8).ratio(1.5).build().is_err());
    }

    #[test]
    fn mismatched_sensor_config_is_rejected() {
        let cfg = SensorConfig::builder(8, 8).build().unwrap();
        let err = CompressiveImager::builder(16, 16)
            .sensor_config(cfg)
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig(_)));
    }

    #[test]
    fn tiled_builder_resolves_layout_and_tile_imager() {
        let imager = CompressiveImager::builder_for(FrameGeometry::new(40, 28))
            .tiling(TileConfig::new(16).overlap(4))
            .ratio(0.3)
            .seed(9)
            .build()
            .unwrap();
        assert!(imager.is_tiled());
        let layout = imager.tile_layout().unwrap();
        assert_eq!((layout.tiles_x(), layout.tiles_y()), (3, 2));
        assert_eq!(imager.geometry(), FrameGeometry::new(40, 28));
        // The stream header describes one tile.
        let h = imager.frame_header();
        assert_eq!((h.rows, h.cols), (16, 16));
        assert_eq!(h.seed, 9);
        // Sample count is per tile.
        assert_eq!(imager.sample_count(), (0.3f64 * 256.0).ceil() as usize);
        // The per-tile imager agrees with the outer settings.
        let tile = imager.tile_imager().unwrap();
        assert_eq!(tile.seed(), 9);
        assert_eq!(tile.ratio(), 0.3);
        assert!(!tile.is_tiled());
    }

    #[test]
    fn tiled_capture_produces_one_frame_per_tile() {
        let imager = CompressiveImager::builder_for(FrameGeometry::new(40, 28))
            .tiling(TileConfig::new(16).overlap(4))
            .ratio(0.2)
            .build()
            .unwrap();
        let scene = Scene::gaussian_blobs(3).render(40, 28, 7);
        let (frames, stats) = imager.capture_tiles_with_stats(&scene);
        assert_eq!(frames.len(), 6);
        for f in &frames {
            assert_eq!(f.header, imager.frame_header());
            assert_eq!(f.sample_count(), imager.sample_count());
        }
        assert!(stats.total_pulses > 0, "merged stats must accumulate");
        // Tiles are captured independently: tile 0 of the full capture
        // equals a standalone capture of the same region.
        let layout = imager.tile_layout().unwrap().clone();
        let tiles = tepics_imaging::tile::split_tiles(&scene, &layout);
        let tile0 = ImageF64::from_vec(16, 16, tiles[0].clone());
        let standalone = imager.tile_imager().unwrap().capture(&tile0);
        assert_eq!(frames[0], standalone);
    }

    #[test]
    fn untiled_capture_tiles_is_a_single_frame() {
        let imager = CompressiveImager::builder(16, 16)
            .ratio(0.2)
            .build()
            .unwrap();
        let scene = Scene::gaussian_blobs(2).render(16, 16, 5);
        let frames = imager.capture_tiles(&scene);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0], imager.capture(&scene));
    }

    #[test]
    #[should_panic(expected = "capture_tiles")]
    fn plain_capture_panics_for_tiled_imagers() {
        let imager = CompressiveImager::builder_for(FrameGeometry::new(32, 32))
            .tiling(TileConfig::new(16))
            .build()
            .unwrap();
        let scene = Scene::Uniform(0.5).render(32, 32, 0);
        let _ = imager.capture(&scene);
    }

    #[test]
    fn tiling_rejects_explicit_sensor_config_and_bad_tiles() {
        let cfg = SensorConfig::builder(32, 32).build().unwrap();
        let err = CompressiveImager::builder(32, 32)
            .sensor_config(cfg)
            .tiling(TileConfig::new(16))
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig(_)));
        let err = CompressiveImager::builder(32, 32)
            .tiling(TileConfig::new(8).overlap(8))
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig(_)));
    }

    #[test]
    fn stats_are_populated_in_event_mode() {
        let imager = CompressiveImager::builder(16, 16)
            .ratio(0.1)
            .build()
            .unwrap();
        let scene = Scene::Uniform(0.4).render(16, 16, 0);
        let (_, stats) = imager.capture_with_stats(&scene);
        assert!(stats.total_pulses > 0);
        assert!(stats.queued_pulses > 0, "uniform scene must queue");
    }
}
