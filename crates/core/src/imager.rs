//! The compressive imager: scene in, compressed frame out.
//!
//! [`CompressiveImager`] binds a sensor configuration, a strategy
//! generator and a compression ratio into the capture side of the
//! paper's system. Each call to [`CompressiveImager::capture`] simulates
//! `K = R·M·N` compressed-sample slots through the event-accurate
//! readout (or the functional model, when configured) and packages the
//! result as a transmittable [`CompressedFrame`].

use crate::error::CoreError;
use crate::frame::{CompressedFrame, FrameHeader};
use crate::strategy::StrategyKind;
use tepics_imaging::{ImageF64, ImageU8};
use tepics_sensor::{CapturedFrame, EventStats, Fidelity, FrameReadout, SensorConfig};

/// Capture engine configured for one sensor + strategy + ratio.
///
/// # Examples
///
/// ```
/// use tepics_core::CompressiveImager;
/// use tepics_imaging::Scene;
///
/// let imager = CompressiveImager::builder(32, 32)
///     .ratio(0.3)
///     .seed(7)
///     .build()
///     .unwrap();
/// let scene = Scene::gaussian_blobs(2).render(32, 32, 1);
/// let frame = imager.capture(&scene);
/// assert_eq!(frame.sample_count(), (0.3f64 * 1024.0).ceil() as usize);
/// ```
#[derive(Debug, Clone)]
pub struct CompressiveImager {
    config: SensorConfig,
    strategy: StrategyKind,
    seed: u64,
    ratio: f64,
    fidelity: Fidelity,
}

impl CompressiveImager {
    /// Starts a builder for an `rows × cols` imager.
    pub fn builder(rows: usize, cols: usize) -> CompressiveImagerBuilder {
        CompressiveImagerBuilder {
            rows,
            cols,
            config: None,
            strategy: None,
            seed: 0x7E91C5,
            ratio: 0.35,
            fidelity: Fidelity::EventAccurate,
        }
    }

    /// The sensor configuration in use.
    pub fn sensor_config(&self) -> &SensorConfig {
        &self.config
    }

    /// The strategy generator.
    pub fn strategy(&self) -> StrategyKind {
        self.strategy
    }

    /// The strategy seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured compression ratio `R`.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// Number of compressed samples per frame (`⌈R·M·N⌉`).
    pub fn sample_count(&self) -> usize {
        ((self.ratio * self.config.pixel_count() as f64).ceil() as usize).max(1)
    }

    /// The header every frame captured by this imager carries (also the
    /// stream header of an [`EncodeSession`](crate::session::EncodeSession)
    /// built on it).
    pub fn frame_header(&self) -> FrameHeader {
        FrameHeader {
            rows: self.config.rows() as u16,
            cols: self.config.cols() as u16,
            code_bits: self.config.counter_bits() as u8,
            sample_bits: tepics_util::fixed::sum_bits(
                self.config.counter_bits(),
                self.config.rows() as u32,
                self.config.cols() as u32,
            ) as u8,
            strategy: self.strategy,
            seed: self.seed,
        }
    }

    /// Captures a frame.
    ///
    /// # Panics
    ///
    /// Panics if the scene dimensions do not match the sensor (the
    /// builder validated everything else).
    pub fn capture(&self, scene: &ImageF64) -> CompressedFrame {
        self.capture_with_stats(scene).0
    }

    /// Captures a frame and returns the event-level statistics next to
    /// it (queueing, missed pulses, LSB errors).
    ///
    /// # Panics
    ///
    /// Panics if the scene dimensions do not match the sensor.
    pub fn capture_with_stats(&self, scene: &ImageF64) -> (CompressedFrame, EventStats) {
        let readout = FrameReadout::new(self.config.clone(), self.fidelity);
        let mut source = self
            .strategy
            .build_source(self.config.rows() + self.config.cols(), self.seed)
            .expect("strategy validated at build time");
        let captured: CapturedFrame = readout.capture(scene, source.as_mut(), self.sample_count());
        let header = self.frame_header();
        (
            CompressedFrame {
                header,
                samples: captured.samples,
            },
            captured.stats,
        )
    }

    /// The ideal (noise/arbitration-free) code image the decoder aims to
    /// reconstruct.
    ///
    /// # Panics
    ///
    /// Panics if the scene dimensions do not match the sensor.
    pub fn ideal_codes(&self, scene: &ImageF64) -> ImageU8 {
        FrameReadout::new(self.config.clone(), Fidelity::Functional).code_image(scene)
    }
}

/// Non-consuming builder for [`CompressiveImager`].
#[derive(Debug, Clone)]
pub struct CompressiveImagerBuilder {
    rows: usize,
    cols: usize,
    config: Option<SensorConfig>,
    strategy: Option<StrategyKind>,
    seed: u64,
    ratio: f64,
    fidelity: Fidelity,
}

impl CompressiveImagerBuilder {
    /// Uses an explicit sensor configuration (must match the builder's
    /// dimensions).
    pub fn sensor_config(&mut self, config: SensorConfig) -> &mut Self {
        self.config = Some(config);
        self
    }

    /// Sets the strategy generator (default: Rule-30 CA with `2(M+N)`
    /// warm-up).
    pub fn strategy(&mut self, strategy: StrategyKind) -> &mut Self {
        self.strategy = Some(strategy);
        self
    }

    /// Sets the strategy seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the compression ratio `R ∈ (0, 1]` (default 0.35; the paper
    /// argues `R < 0.4`).
    pub fn ratio(&mut self, ratio: f64) -> &mut Self {
        self.ratio = ratio;
        self
    }

    /// Sets the simulation fidelity (default event-accurate).
    pub fn fidelity(&mut self, fidelity: Fidelity) -> &mut Self {
        self.fidelity = fidelity;
        self
    }

    /// Validates and builds the imager.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] on a bad ratio, mismatched
    /// sensor dimensions, an invalid strategy, or arrays too large for
    /// the 16-bit header fields.
    pub fn build(&self) -> Result<CompressiveImager, CoreError> {
        if !(self.ratio > 0.0 && self.ratio <= 1.0) {
            return Err(CoreError::InvalidConfig(format!(
                "ratio {} outside (0, 1]",
                self.ratio
            )));
        }
        if self.rows > u16::MAX as usize || self.cols > u16::MAX as usize {
            return Err(CoreError::InvalidConfig(
                "array exceeds 65535 per side".into(),
            ));
        }
        let config = match &self.config {
            Some(c) => {
                if c.rows() != self.rows || c.cols() != self.cols {
                    return Err(CoreError::InvalidConfig(format!(
                        "sensor config is {}×{}, builder is {}×{}",
                        c.rows(),
                        c.cols(),
                        self.rows,
                        self.cols
                    )));
                }
                c.clone()
            }
            None => SensorConfig::builder(self.rows, self.cols)
                .build()
                .map_err(|e| CoreError::InvalidConfig(e.to_string()))?,
        };
        let strategy = self
            .strategy
            .unwrap_or_else(|| StrategyKind::default_for(self.rows, self.cols));
        // Validate the strategy parameters eagerly.
        strategy.build_source(self.rows + self.cols, self.seed)?;
        Ok(CompressiveImager {
            config,
            strategy,
            seed: self.seed,
            ratio: self.ratio,
            fidelity: self.fidelity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tepics_imaging::Scene;

    #[test]
    fn sample_count_follows_ratio() {
        let imager = CompressiveImager::builder(16, 16)
            .ratio(0.25)
            .build()
            .unwrap();
        assert_eq!(imager.sample_count(), 64);
        let imager = CompressiveImager::builder(16, 16)
            .ratio(1.0)
            .build()
            .unwrap();
        assert_eq!(imager.sample_count(), 256);
    }

    #[test]
    fn header_matches_configuration() {
        let imager = CompressiveImager::builder(16, 16)
            .ratio(0.3)
            .seed(123)
            .build()
            .unwrap();
        let scene = Scene::Uniform(0.5).render(16, 16, 0);
        let frame = imager.capture(&scene);
        assert_eq!(frame.header.rows, 16);
        assert_eq!(frame.header.cols, 16);
        assert_eq!(frame.header.code_bits, 8);
        assert_eq!(frame.header.sample_bits, 16); // 8 + log2(256)
        assert_eq!(frame.header.seed, 123);
        assert_eq!(frame.sample_count(), imager.sample_count());
    }

    #[test]
    fn capture_roundtrips_through_wire_format() {
        let imager = CompressiveImager::builder(16, 16)
            .ratio(0.2)
            .build()
            .unwrap();
        let scene = Scene::gaussian_blobs(2).render(16, 16, 5);
        let frame = imager.capture(&scene);
        let back = CompressedFrame::from_bytes(&frame.to_bytes()).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn functional_and_event_fidelity_differ_under_contention() {
        let scene = Scene::Uniform(0.5).render(16, 16, 0); // max contention
        let make = |fidelity| {
            CompressiveImager::builder(16, 16)
                .ratio(0.2)
                .fidelity(fidelity)
                .build()
                .unwrap()
                .capture(&scene)
        };
        let f = make(Fidelity::Functional);
        let e = make(Fidelity::EventAccurate);
        assert_ne!(
            f.samples, e.samples,
            "serialization delays must perturb a max-contention capture"
        );
    }

    #[test]
    fn invalid_ratio_is_rejected() {
        assert!(CompressiveImager::builder(8, 8).ratio(0.0).build().is_err());
        assert!(CompressiveImager::builder(8, 8).ratio(1.5).build().is_err());
    }

    #[test]
    fn mismatched_sensor_config_is_rejected() {
        let cfg = SensorConfig::builder(8, 8).build().unwrap();
        let err = CompressiveImager::builder(16, 16)
            .sensor_config(cfg)
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig(_)));
    }

    #[test]
    fn stats_are_populated_in_event_mode() {
        let imager = CompressiveImager::builder(16, 16)
            .ratio(0.1)
            .build()
            .unwrap();
        let scene = Scene::Uniform(0.4).render(16, 16, 0);
        let (_, stats) = imager.capture_with_stats(&scene);
        assert!(stats.total_pulses > 0);
        assert!(stats.queued_pulses > 0, "uniform scene must queue");
    }
}
