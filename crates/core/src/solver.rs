//! Solver selection: the decoder-side recovery configuration.
//!
//! The paper's recovery step is solver-agnostic — any sparse-recovery
//! algorithm can consume the XOR/selection measurements. [`SolverKind`]
//! makes that a first-class decoder knob: all eight algorithms of
//! `tepics-recovery` (FISTA, ISTA, AMP, IHT, OMP, CoSaMP, CGLS, and the
//! CGLS debias wrapper around the ℓ1 family) are selectable through
//! [`Decoder`](crate::Decoder), [`DecodeSession`](crate::DecodeSession),
//! the [`pipeline`](crate::pipeline) helpers, and
//! [`BatchRunner`](crate::batch::BatchRunner), all dispatching
//! dynamically through the [`Solver`] trait.
//!
//! [`RecoveryParams`] bundles the solver with the sparsifying
//! dictionary, plus named presets for the common workloads; it is a
//! decoder-side setting only and never crosses the wire.

use crate::decoder::DictionaryKind;
use tepics_recovery::solver::norm_seeds;
use tepics_recovery::{Amp, Cgls, CoSaMp, Fista, Iht, Ista, Omp, Solver};

/// Recovery algorithms available to the decoder — every solver of
/// `tepics-recovery` behind one configuration enum.
///
/// The ℓ1/AMP variants carry a `debias` flag: when set, the solver is
/// wrapped in the CGLS support re-fit
/// ([`Debias`](tepics_recovery::Debias)), the paper pipeline's default
/// final step. `SolverKind` is pure configuration (`Copy`, comparable);
/// the decoder instantiates the actual solver per frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolverKind {
    /// FISTA ℓ1 solver (default), optionally debiased on its support.
    Fista {
        /// λ as a fraction of `‖Aᵀỹ‖∞`.
        lambda_ratio: f64,
        /// Iteration cap.
        max_iter: usize,
        /// Debias the support by least squares afterwards.
        debias: bool,
    },
    /// ISTA — FISTA without momentum (the ablation baseline).
    Ista {
        /// λ as a fraction of `‖Aᵀỹ‖∞`.
        lambda_ratio: f64,
        /// Iteration cap.
        max_iter: usize,
        /// Debias the support by least squares afterwards.
        debias: bool,
    },
    /// Approximate message passing (heuristic on the structured CA
    /// ensemble; fast when it works).
    Amp {
        /// Iteration cap.
        max_iter: usize,
        /// Debias the support by least squares afterwards.
        debias: bool,
    },
    /// Normalized iterative hard thresholding with a target sparsity.
    Iht {
        /// Target sparsity.
        sparsity: usize,
    },
    /// Orthogonal matching pursuit with an atom budget.
    Omp {
        /// Maximum atoms to select.
        atoms: usize,
    },
    /// CoSaMP with a target sparsity.
    CoSamp {
        /// Target sparsity.
        sparsity: usize,
    },
    /// Plain CGLS least squares — no sparsity prior; the sanity
    /// baseline every sparse solver must beat.
    Cgls {
        /// Iteration cap.
        max_iter: usize,
    },
}

impl Default for SolverKind {
    /// The paper pipeline's default: debiased FISTA.
    fn default() -> Self {
        SolverKind::Fista {
            lambda_ratio: 0.02,
            max_iter: 400,
            debias: true,
        }
    }
}

impl SolverKind {
    /// Short stable name (matches the underlying solver's
    /// [`caps().name`](tepics_recovery::SolverCaps)), for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SolverKind::Fista { .. } => "fista",
            SolverKind::Ista { .. } => "ista",
            SolverKind::Amp { .. } => "amp",
            SolverKind::Iht { .. } => "iht",
            SolverKind::Omp { .. } => "omp",
            SolverKind::CoSamp { .. } => "cosamp",
            SolverKind::Cgls { .. } => "cgls",
        }
    }

    /// Whether the CGLS debias pass wraps this solver.
    pub fn debias(&self) -> bool {
        matches!(
            self,
            SolverKind::Fista { debias: true, .. }
                | SolverKind::Ista { debias: true, .. }
                | SolverKind::Amp { debias: true, .. }
        )
    }

    /// Seed of the solver's internal operator-norm power iteration, when
    /// it runs one (the cache memoizes the estimate per seed so solvers
    /// never see each other's step sizes).
    pub(crate) fn norm_seed(&self) -> Option<u64> {
        match self {
            SolverKind::Fista { .. } => Some(norm_seeds::FISTA),
            SolverKind::Ista { .. } => Some(norm_seeds::ISTA),
            SolverKind::Iht { .. } => Some(norm_seeds::IHT),
            SolverKind::Amp { .. } => Some(norm_seeds::AMP),
            _ => None,
        }
    }

    /// Whether the solver works column-wise and should be served a
    /// column-materialized operator view.
    pub(crate) fn column_hungry(&self) -> bool {
        matches!(self, SolverKind::Omp { .. } | SolverKind::CoSamp { .. })
    }

    /// Whether decoding through a column view takes a different
    /// floating-point path than decoding without one. OMP only reads
    /// columns (values are identical either way); CoSaMP's restricted
    /// least squares reassociates sums through the view, so cacheless
    /// decodes must still build it to stay bit-identical to warm ones.
    pub(crate) fn view_changes_results(&self) -> bool {
        matches!(self, SolverKind::CoSamp { .. })
    }

    /// One default configuration per algorithm, sized for a
    /// `k`-measurement frame — the set the solver shootout (bench
    /// `solvers` experiment) and the identity tests iterate. Order is
    /// stable: debiased FISTA first, then the plain ℓ1/AMP family, then
    /// the sparsity-targeted and least-squares solvers.
    #[must_use]
    pub fn shootout_set(k: usize) -> Vec<SolverKind> {
        vec![
            SolverKind::default(),
            SolverKind::Fista {
                lambda_ratio: 0.02,
                max_iter: 400,
                debias: false,
            },
            SolverKind::Ista {
                lambda_ratio: 0.02,
                max_iter: 400,
                debias: false,
            },
            SolverKind::Amp {
                max_iter: 60,
                debias: false,
            },
            SolverKind::Iht {
                sparsity: (k / 4).max(1),
            },
            SolverKind::Omp {
                atoms: (k / 8).max(1),
            },
            SolverKind::CoSamp {
                sparsity: (k / 8).max(1),
            },
            SolverKind::Cgls { max_iter: 200 },
        ]
    }

    /// Instantiates the configured solver, applying a memoized
    /// operator-norm estimate when one is supplied (`norm > 0`); the
    /// storage keeps the concrete solver on the caller's stack so
    /// dynamic dispatch needs no heap allocation.
    pub(crate) fn instantiate(&self, norm: Option<f64>) -> BuiltSolver {
        // Each solver derives its step exactly as it would internally
        // (1/L with L = ‖A‖²·1.05), so overriding is bit-transparent.
        let step = norm.map(|n| 1.0 / (n * n * 1.05));
        match *self {
            SolverKind::Fista {
                lambda_ratio,
                max_iter,
                ..
            } => {
                let mut s = Fista::new();
                s.lambda_ratio(lambda_ratio).max_iter(max_iter);
                if let Some(step) = step {
                    s.step(step);
                }
                BuiltSolver::Fista(s)
            }
            SolverKind::Ista {
                lambda_ratio,
                max_iter,
                ..
            } => {
                let mut s = Ista::new();
                s.lambda_ratio(lambda_ratio).max_iter(max_iter);
                if let Some(step) = step {
                    s.step(step);
                }
                BuiltSolver::Ista(s)
            }
            SolverKind::Amp { max_iter, .. } => {
                let mut s = Amp::new();
                s.max_iter(max_iter);
                if let Some(norm) = norm {
                    s.operator_norm(norm);
                }
                BuiltSolver::Amp(s)
            }
            SolverKind::Iht { sparsity } => {
                let mut s = Iht::new(sparsity.max(1));
                if let Some(step) = step {
                    s.step(step);
                }
                BuiltSolver::Iht(s)
            }
            SolverKind::Omp { atoms } => BuiltSolver::Omp(Omp::new(atoms.max(1))),
            SolverKind::CoSamp { sparsity } => BuiltSolver::CoSamp(CoSaMp::new(sparsity.max(1))),
            SolverKind::Cgls { max_iter } => BuiltSolver::Cgls(Cgls::new(max_iter.max(1), 1e-12)),
        }
    }
}

/// Stack storage for an instantiated solver (see
/// [`SolverKind::instantiate`]); `as_solver` hands out the trait object.
#[derive(Debug, Clone)]
pub(crate) enum BuiltSolver {
    Fista(Fista),
    Ista(Ista),
    Amp(Amp),
    Iht(Iht),
    Omp(Omp),
    CoSamp(CoSaMp),
    Cgls(Cgls),
}

impl BuiltSolver {
    pub(crate) fn as_solver(&self) -> &dyn Solver {
        match self {
            BuiltSolver::Fista(s) => s,
            BuiltSolver::Ista(s) => s,
            BuiltSolver::Amp(s) => s,
            BuiltSolver::Iht(s) => s,
            BuiltSolver::Omp(s) => s,
            BuiltSolver::CoSamp(s) => s,
            BuiltSolver::Cgls(s) => s,
        }
    }
}

/// The decoder-side recovery configuration: solver plus dictionary.
///
/// # Examples
///
/// ```
/// use tepics_core::solver::{RecoveryParams, SolverKind};
/// use tepics_core::DictionaryKind;
///
/// let params = RecoveryParams::star_field(12);
/// assert_eq!(params.dictionary, DictionaryKind::Identity);
/// assert!(matches!(params.solver, SolverKind::Iht { sparsity: 12 }));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RecoveryParams {
    /// The recovery algorithm.
    pub solver: SolverKind,
    /// The sparsifying dictionary.
    pub dictionary: DictionaryKind,
}

impl RecoveryParams {
    /// The paper pipeline's default: debiased FISTA over the 2-D DCT.
    #[must_use]
    pub fn natural() -> Self {
        RecoveryParams::default()
    }

    /// Piecewise-constant content (documents, cartoons): FISTA over
    /// Haar wavelets.
    #[must_use]
    pub fn piecewise() -> Self {
        RecoveryParams {
            solver: SolverKind::default(),
            dictionary: DictionaryKind::Haar2d,
        }
    }

    /// Star fields / point sources with a known count: IHT in the pixel
    /// domain.
    #[must_use]
    pub fn star_field(sources: usize) -> Self {
        RecoveryParams {
            solver: SolverKind::Iht {
                sparsity: sources.max(1),
            },
            dictionary: DictionaryKind::Identity,
        }
    }

    /// Latency-critical decoding: AMP (tens of iterations) over the DCT,
    /// no debias pass.
    #[must_use]
    pub fn low_latency() -> Self {
        RecoveryParams {
            solver: SolverKind::Amp {
                max_iter: 60,
                debias: false,
            },
            dictionary: DictionaryKind::Dct2d,
        }
    }

    /// Exactly-sparse coefficient recovery with a known budget: OMP over
    /// the DCT.
    #[must_use]
    pub fn exact_sparse(atoms: usize) -> Self {
        RecoveryParams {
            solver: SolverKind::Omp {
                atoms: atoms.max(1),
            },
            dictionary: DictionaryKind::Dct2d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds(k: usize) -> Vec<SolverKind> {
        SolverKind::shootout_set(k)
    }

    #[test]
    fn names_cover_all_seven_kinds() {
        let mut names: Vec<&str> = all_kinds(64).iter().map(|k| k.name()).collect();
        names.dedup();
        assert_eq!(
            names,
            vec!["fista", "ista", "amp", "iht", "omp", "cosamp", "cgls"]
        );
    }

    #[test]
    fn default_is_debiased_fista() {
        let kind = SolverKind::default();
        assert_eq!(kind.name(), "fista");
        assert!(kind.debias());
        assert!(!SolverKind::Cgls { max_iter: 10 }.debias());
    }

    #[test]
    fn only_greedy_kinds_are_column_hungry() {
        for kind in all_kinds(64) {
            assert_eq!(
                kind.column_hungry(),
                matches!(kind, SolverKind::Omp { .. } | SolverKind::CoSamp { .. }),
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn instantiate_matches_trait_caps() {
        for kind in all_kinds(64) {
            let built = kind.instantiate(None);
            let caps = built.as_solver().caps();
            assert_eq!(caps.name, kind.name());
            assert_eq!(caps.norm_seed, kind.norm_seed(), "{}", kind.name());
            assert_eq!(caps.column_hungry, kind.column_hungry(), "{}", kind.name());
        }
    }

    #[test]
    fn presets_pick_sane_dictionaries() {
        assert_eq!(RecoveryParams::natural().dictionary, DictionaryKind::Dct2d);
        assert_eq!(
            RecoveryParams::piecewise().dictionary,
            DictionaryKind::Haar2d
        );
        assert_eq!(
            RecoveryParams::star_field(0).solver,
            SolverKind::Iht { sparsity: 1 }
        );
        assert!(!RecoveryParams::low_latency().solver.debias());
        assert_eq!(RecoveryParams::exact_sparse(9).solver.name(), "omp");
    }
}
