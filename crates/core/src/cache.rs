//! Shared operator/dictionary cache for the decode hot path.
//!
//! Rebuilding the measurement operator is pure function of the frame
//! header: `(rows, cols, strategy, seed, k)` fully determines the CA
//! replay, the selection patterns, and therefore Φ. The same goes for
//! the sparsifying dictionary (`(kind, rows, cols)`), for the
//! column-materialized `Φ·Ψ` view the greedy solvers consume, and for
//! every solver's operator-norm estimate `‖ΦΨ‖` (a *seeded* power
//! iteration, so it too is deterministic). A decoder that processes a
//! stream of same-seed frames — the paper's video deployment — or a
//! batch of same-seed items therefore rebuilds identical state over and
//! over.
//!
//! [`OperatorCache`] memoizes all four. It is `Sync`: one cache can be
//! shared across the worker threads of a [`BatchRunner`] run, and
//! because every cached value is bit-identical to what a cold build
//! would produce, warm and cold decodes yield *exactly* the same
//! reconstructions — the batch engine's determinism guarantee survives
//! caching.
//!
//! # Key disciplines
//!
//! Every entry family carries the full set of inputs its value depends
//! on — nothing less, or two configurations could silently share state:
//!
//! * operators: [`OperatorKey`] `(rows, cols, strategy, seed, k)`;
//! * dictionaries: `(DictionaryKind, rows, cols)`;
//! * column views: `(OperatorKey, DictionaryKind)` — the view
//!   materializes `Φ·Ψ`, so both factors key it;
//! * norm estimates: `(OperatorKey, DictionaryKind, norm_seed)` — the
//!   **per-solver** power-iteration seed is part of the key because
//!   every solver runs its estimate with its own seed
//!   ([`norm_seeds`](tepics_recovery::solver::norm_seeds)); collapsing
//!   the seed out of the key would hand one solver another's step size
//!   and silently change reconstructions (pinned by a test below).
//!
//! The cached Φ is stored in its precompiled fast-path form:
//! [`XorMeasurement`] compiles its selected-row/column index lists and
//! group masks at construction, so every warm lookup hands decoders an
//! operator whose `apply`/`apply_adjoint` are pure gather-sums — the
//! per-frame cost of a warm streaming decode is the solver loop alone.
//!
//! [`BatchRunner`]: crate::batch::BatchRunner

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::decoder::{build_dictionary, DictImpl, DictionaryKind};
use crate::error::CoreError;
use crate::strategy::StrategyKind;
use tepics_cs::colview::ColumnMatrix;
use tepics_cs::measurement::SelectionMeasurement;
use tepics_cs::XorMeasurement;

/// Everything that determines a measurement operator — the cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OperatorKey {
    /// Array rows (M).
    pub rows: u16,
    /// Array columns (N).
    pub cols: u16,
    /// Strategy family and parameters.
    pub strategy: StrategyKind,
    /// Strategy seed.
    pub seed: u64,
    /// Number of measurements (rows of Φ).
    pub k: usize,
}

/// Hit/miss counters of an [`OperatorCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Operator lookups served from the cache.
    pub hits: u64,
    /// Operator lookups that had to build Φ.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served warm (`0.0` for an unused cache).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A cached measurement operator plus its precomputed selection counts.
#[derive(Debug, Clone)]
pub(crate) struct CachedOperator {
    pub(crate) phi: Arc<XorMeasurement>,
    pub(crate) counts: Arc<Vec<f64>>,
}

/// Memoizes measurement operators, dictionaries, column-materialized
/// views, and per-solver operator-norm estimates across frames,
/// streams, and batch items.
///
/// Cheap to share: wrap in an [`Arc`] (or use [`OperatorCache::shared`])
/// and clone the handle into every decoder/session that should reuse
/// the same state.
/// The map `Mutex`es guard only the entry lookup; the expensive builds
/// (CA replay, power iteration, column materialization) run outside
/// them behind per-key [`OnceLock`]s, so distinct-key work in a
/// parallel batch stays parallel while same-key racers still converge
/// on one value.
#[derive(Debug, Default)]
pub struct OperatorCache {
    ops: SharedMap<OperatorKey, CachedOperator>,
    dicts: Mutex<HashMap<(DictionaryKind, u16, u16), Arc<DictImpl>>>,
    /// Operator-norm estimates `‖ΦΨ‖` per (operator, dictionary,
    /// power-iteration seed); the seed is the *solver's* (each solver
    /// estimates with its own), so entries can never cross solvers.
    /// `0.0` marks a zero operator (no override — the solver handles it).
    norms: SharedMap<(OperatorKey, DictionaryKind, u64), f64>,
    /// Column-materialized `Φ·Ψ` views per (operator, dictionary).
    columns: SharedMap<(OperatorKey, DictionaryKind), Arc<ColumnMatrix>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A map of lazily-initialized entries: the `Mutex` guards only the
/// entry lookup, each value initializes behind its own [`OnceLock`].
type SharedMap<K, V> = Mutex<HashMap<K, Arc<OnceLock<V>>>>;

impl OperatorCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache behind an [`Arc`], ready to share.
    #[must_use]
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Hit/miss counters so far (operator lookups only).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// The measurement operator and selection counts for `key`,
    /// building and memoizing them on first use.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the strategy parameters
    /// in `key` are invalid.
    pub(crate) fn operator(
        &self,
        key: &OperatorKey,
    ) -> Result<(Arc<XorMeasurement>, Arc<Vec<f64>>), CoreError> {
        let cell = {
            let mut ops = self.ops.lock().expect("operator cache poisoned");
            ops.entry(*key).or_default().clone()
        };
        if let Some(cached) = cell.get() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((cached.phi.clone(), cached.counts.clone()));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Build outside every lock so distinct keys proceed in
        // parallel. Same-key racers may build twice; the builds are
        // deterministic and the OnceLock keeps one, so the returned
        // value is unaffected. An invalid strategy caches nothing and
        // errors on every call.
        let (rows, cols) = (key.rows as usize, key.cols as usize);
        let mut source = key.strategy.build_source(rows + cols, key.seed)?;
        let phi = Arc::new(XorMeasurement::from_source(
            rows,
            cols,
            source.as_mut(),
            key.k,
        ));
        let counts = Arc::new(phi.selection_counts());
        let cached = cell.get_or_init(|| CachedOperator { phi, counts });
        Ok((cached.phi.clone(), cached.counts.clone()))
    }

    /// The dictionary for `(kind, rows, cols)`, built on first use.
    pub(crate) fn dictionary(&self, kind: DictionaryKind, rows: u16, cols: u16) -> Arc<DictImpl> {
        let mut dicts = self.dicts.lock().expect("dictionary cache poisoned");
        dicts
            .entry((kind, rows, cols))
            .or_insert_with(|| Arc::new(build_dictionary(kind, rows as usize, cols as usize)))
            .clone()
    }

    /// The memoized operator-norm estimate `‖ΦΨ‖` for
    /// `(key, kind, norm_seed)`, computing it with `compute` on first
    /// use. `norm_seed` must be the requesting solver's own
    /// power-iteration seed — it is part of the key precisely so two
    /// solvers can never be served each other's estimate. Returns `None`
    /// when the composed operator is (numerically) zero, in which case
    /// the caller must let the solver take its own zero-operator path.
    pub(crate) fn operator_norm(
        &self,
        key: &OperatorKey,
        kind: DictionaryKind,
        norm_seed: u64,
        compute: impl FnOnce() -> f64,
    ) -> Option<f64> {
        let cell = {
            let mut norms = self.norms.lock().expect("norm cache poisoned");
            norms.entry((*key, kind, norm_seed)).or_default().clone()
        };
        // The power iteration runs outside the map lock (it is the
        // expensive part); the OnceLock still guarantees one stored
        // value per key.
        let norm = *cell.get_or_init(compute);
        (norm > 0.0).then_some(norm)
    }

    /// The memoized column-materialized `Φ·Ψ` view for `(key, kind)`,
    /// building it with `build` on first use. Greedy decodes attach the
    /// returned view to their composed operator; the build is
    /// deterministic, so warm views equal a cold materialization bit for
    /// bit.
    pub(crate) fn column_view(
        &self,
        key: &OperatorKey,
        kind: DictionaryKind,
        build: impl FnOnce() -> ColumnMatrix,
    ) -> Arc<ColumnMatrix> {
        let cell = {
            let mut columns = self.columns.lock().expect("column cache poisoned");
            columns.entry((*key, kind)).or_default().clone()
        };
        // Materialization (cols forward applies) runs outside the map
        // lock; the OnceLock keeps one view per key.
        cell.get_or_init(|| Arc::new(build())).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64, k: usize) -> OperatorKey {
        OperatorKey {
            rows: 16,
            cols: 16,
            strategy: StrategyKind::rule30(64),
            seed,
            k,
        }
    }

    #[test]
    fn operator_is_built_once_per_key() {
        let cache = OperatorCache::new();
        let (phi1, counts1) = cache.operator(&key(7, 40)).unwrap();
        let (phi2, counts2) = cache.operator(&key(7, 40)).unwrap();
        assert!(Arc::ptr_eq(&phi1, &phi2), "second lookup must be warm");
        assert!(Arc::ptr_eq(&counts1, &counts2));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn distinct_keys_miss_independently() {
        let cache = OperatorCache::new();
        cache.operator(&key(1, 40)).unwrap();
        cache.operator(&key(2, 40)).unwrap(); // different seed
        cache.operator(&key(1, 50)).unwrap(); // different k
        cache.operator(&key(1, 40)).unwrap(); // warm
        let stats = cache.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 1);
        assert!((stats.hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn cached_operator_equals_cold_rebuild() {
        let cache = OperatorCache::new();
        let k = key(0xFEED, 32);
        let (phi, counts) = cache.operator(&k).unwrap();
        let mut source = k.strategy.build_source(32, k.seed).unwrap();
        let cold = XorMeasurement::from_source(16, 16, source.as_mut(), 32);
        assert_eq!(*phi, cold);
        assert_eq!(*counts, cold.selection_counts());
    }

    #[test]
    fn invalid_strategy_surfaces_config_error() {
        let cache = OperatorCache::new();
        let bad = OperatorKey {
            rows: 8,
            cols: 8,
            strategy: StrategyKind::Lfsr { width: 64 },
            seed: 1,
            k: 4,
        };
        assert!(matches!(
            cache.operator(&bad),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn operator_norm_is_computed_once_per_solver_seed() {
        use tepics_recovery::solver::norm_seeds;
        let cache = OperatorCache::new();
        let k = key(3, 10);
        let seed = norm_seeds::FISTA;
        let first = cache.operator_norm(&k, DictionaryKind::Dct2d, seed, || 0.25);
        let second = cache.operator_norm(&k, DictionaryKind::Dct2d, seed, || {
            panic!("must be memoized")
        });
        assert_eq!(first, Some(0.25));
        assert_eq!(second, Some(0.25));
        // A zero norm is remembered as "no override".
        let zero = cache.operator_norm(&k, DictionaryKind::Haar2d, seed, || 0.0);
        assert_eq!(zero, None);
    }

    /// The regression this key shape exists to prevent: two solvers
    /// asking for the norm of the *same* operator/dictionary must get
    /// independent entries (their power iterations run with different
    /// seeds, so their estimates legitimately differ). A key collision
    /// here would silently hand one solver the other's step size.
    #[test]
    fn norm_entries_never_cross_solver_seeds() {
        use tepics_recovery::solver::norm_seeds;
        let cache = OperatorCache::new();
        let k = key(7, 12);
        let fista = cache.operator_norm(&k, DictionaryKind::Dct2d, norm_seeds::FISTA, || 1.25);
        let ista = cache.operator_norm(&k, DictionaryKind::Dct2d, norm_seeds::ISTA, || 1.50);
        let iht = cache.operator_norm(&k, DictionaryKind::Dct2d, norm_seeds::IHT, || 1.75);
        let amp = cache.operator_norm(&k, DictionaryKind::Dct2d, norm_seeds::AMP, || 2.00);
        assert_eq!(fista, Some(1.25));
        assert_eq!(ista, Some(1.50));
        assert_eq!(iht, Some(1.75));
        assert_eq!(amp, Some(2.00));
        // And each stays what its own solver computed.
        let again = cache.operator_norm(&k, DictionaryKind::Dct2d, norm_seeds::FISTA, || {
            panic!("must be memoized")
        });
        assert_eq!(again, Some(1.25));
    }

    #[test]
    fn column_views_are_memoized_per_operator_and_dictionary() {
        use tepics_cs::colview::ColumnMatrix;
        use tepics_cs::DenseMatrix;
        let cache = OperatorCache::new();
        let k1 = key(1, 6);
        let build = || ColumnMatrix::from_operator(&DenseMatrix::identity(4));
        let a = cache.column_view(&k1, DictionaryKind::Dct2d, build);
        let b = cache.column_view(&k1, DictionaryKind::Dct2d, || panic!("must be memoized"));
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be warm");
        // A different dictionary (or operator key) is a different view.
        let c = cache.column_view(&k1, DictionaryKind::Identity, build);
        assert!(!Arc::ptr_eq(&a, &c));
        let d = cache.column_view(&key(2, 6), DictionaryKind::Dct2d, build);
        assert!(!Arc::ptr_eq(&a, &d));
    }

    #[test]
    fn dictionaries_are_shared_per_geometry() {
        let cache = OperatorCache::new();
        let a = cache.dictionary(DictionaryKind::Dct2d, 16, 16);
        let b = cache.dictionary(DictionaryKind::Dct2d, 16, 16);
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.dictionary(DictionaryKind::Dct2d, 8, 8);
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
