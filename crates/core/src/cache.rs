//! Shared operator/dictionary cache for the decode hot path.
//!
//! Rebuilding the measurement operator is pure function of the frame
//! header: `(rows, cols, strategy, seed, k)` fully determines the CA
//! replay, the selection patterns, and therefore Φ. The same goes for
//! the sparsifying dictionary (`(kind, rows, cols)`), for the
//! column-materialized `Φ·Ψ` view the greedy solvers consume, and for
//! every solver's operator-norm estimate `‖ΦΨ‖` (a *seeded* power
//! iteration, so it too is deterministic). A decoder that processes a
//! stream of same-seed frames — the paper's video deployment — or a
//! batch of same-seed items therefore rebuilds identical state over and
//! over.
//!
//! [`OperatorCache`] memoizes all four. It is `Sync`: one cache can be
//! shared across the worker threads of a [`BatchRunner`] run, and
//! because every cached value is bit-identical to what a cold build
//! would produce, warm and cold decodes yield *exactly* the same
//! reconstructions — the batch engine's determinism guarantee survives
//! caching.
//!
//! # Size bounding
//!
//! Every entry family is byte-accounted (via [`XorMeasurement::bytes`],
//! [`ColumnMatrix::bytes`], and a dictionary size estimate) against a
//! configurable budget ([`CacheConfig`], default
//! [`DEFAULT_CACHE_BYTES`]). When a newly built entry would push the
//! resident total past the budget, least-recently-used entries are
//! evicted until it fits; an entry larger than the whole budget is
//! returned to the caller but never retained, so **the resident total
//! never exceeds the budget**. Tiled decodes make this matter: every
//! tile geometry of every stream is a distinct key, so a long-lived
//! shared cache would otherwise grow without bound. Eviction only
//! discards memoized values — a later lookup rebuilds the same bytes —
//! so warm, cold, and evicted-then-rebuilt decodes all stay
//! bit-identical. The unbounded behavior of earlier releases remains
//! available through the explicit [`CacheConfig::unbounded`] escape
//! hatch.
//!
//! # Key disciplines
//!
//! Every entry family carries the full set of inputs its value depends
//! on — nothing less, or two configurations could silently share state:
//!
//! * operators: [`OperatorKey`] `(rows, cols, strategy, seed, k)`;
//! * dictionaries: `(DictionaryKind, rows, cols)`;
//! * column views: `(OperatorKey, DictionaryKind)` — the view
//!   materializes `Φ·Ψ`, so both factors key it;
//! * norm estimates: `(OperatorKey, DictionaryKind, norm_seed)` — the
//!   **per-solver** power-iteration seed is part of the key because
//!   every solver runs its estimate with its own seed
//!   ([`norm_seeds`](tepics_recovery::solver::norm_seeds)); collapsing
//!   the seed out of the key would hand one solver another's step size
//!   and silently change reconstructions (pinned by a test below).
//!
//! The cached Φ is stored in its precompiled fast-path form:
//! [`XorMeasurement`] compiles its selected-row/column index lists and
//! group masks at construction, so every warm lookup hands decoders an
//! operator whose `apply`/`apply_adjoint` are pure gather-sums — the
//! per-frame cost of a warm streaming decode is the solver loop alone.
//!
//! [`BatchRunner`]: crate::batch::BatchRunner

#[allow(clippy::disallowed_types)] // see clippy.toml: keyed lookup only
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use crate::decoder::{build_dictionary, DictImpl, DictionaryKind};
use crate::error::CoreError;
use crate::strategy::StrategyKind;
use tepics_cs::colview::ColumnMatrix;
use tepics_cs::measurement::SelectionMeasurement;
use tepics_cs::XorMeasurement;

/// Default byte budget of a bounded cache (512 MiB).
pub const DEFAULT_CACHE_BYTES: usize = 512 << 20;

/// Fixed per-entry accounting overhead (key, slot bookkeeping, map
/// slack) added to every entry's payload bytes.
const ENTRY_OVERHEAD: usize = 64;

/// Size policy of an [`OperatorCache`].
///
/// The default is a budget of [`DEFAULT_CACHE_BYTES`] with LRU
/// eviction; [`CacheConfig::byte_budget`] tightens or widens it, and
/// [`CacheConfig::unbounded`] is the explicit escape hatch restoring
/// the grow-forever behavior of earlier releases.
///
/// # Examples
///
/// ```
/// use tepics_core::cache::{CacheConfig, OperatorCache};
///
/// let small = OperatorCache::with_config(CacheConfig::new().byte_budget(1 << 20));
/// assert_eq!(small.byte_budget(), Some(1 << 20));
/// let wild = OperatorCache::with_config(CacheConfig::unbounded());
/// assert_eq!(wild.byte_budget(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    budget: Option<usize>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            budget: Some(DEFAULT_CACHE_BYTES),
        }
    }
}

impl CacheConfig {
    /// The default policy: bounded at [`DEFAULT_CACHE_BYTES`].
    #[must_use]
    pub fn new() -> CacheConfig {
        CacheConfig::default()
    }

    /// Sets the byte budget.
    #[must_use]
    pub fn byte_budget(mut self, bytes: usize) -> CacheConfig {
        self.budget = Some(bytes);
        self
    }

    /// No byte budget: entries are never evicted. Opting out of the
    /// bound is deliberate and explicit — long-lived caches fed many
    /// geometries (tiled workloads, multi-stream services) should keep
    /// the default instead.
    #[must_use]
    pub fn unbounded() -> CacheConfig {
        CacheConfig { budget: None }
    }

    /// The configured budget (`None` = unbounded).
    #[must_use]
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }
}

/// Everything that determines a measurement operator — the cache key.
///
/// The `Ord` derive gives cache keys a stable total order, used as the
/// deterministic eviction tie-break (field order: geometry, strategy,
/// seed, measurement count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OperatorKey {
    /// Array rows (M).
    pub rows: u16,
    /// Array columns (N).
    pub cols: u16,
    /// Strategy family and parameters.
    pub strategy: StrategyKind,
    /// Strategy seed.
    pub seed: u64,
    /// Number of measurements (rows of Φ).
    pub k: usize,
}

/// Counters of an [`OperatorCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Operator lookups served from the cache.
    pub hits: u64,
    /// Operator lookups that had to build Φ.
    pub misses: u64,
    /// Entries discarded to respect the byte budget (all families).
    pub evictions: u64,
    /// Bytes currently retained across all entry families.
    pub resident_bytes: usize,
}

impl CacheStats {
    /// Fraction of lookups served warm (`0.0` for an unused cache).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A cached measurement operator plus its precomputed selection counts.
#[derive(Debug, Clone)]
pub(crate) struct CachedOperator {
    pub(crate) phi: Arc<XorMeasurement>,
    pub(crate) counts: Arc<Vec<f64>>,
}

type DictKey = (DictionaryKind, u16, u16);
type NormKey = (OperatorKey, DictionaryKind, u64);
type ColumnKey = (OperatorKey, DictionaryKind);

/// A lazily initialized entry: the value builds behind its own
/// [`OnceLock`] (outside the cache lock); `bytes` stays `0` until the
/// builder commits the entry's accounted size, and uncommitted entries
/// are never evicted.
#[derive(Debug)]
struct Slot<V> {
    cell: Arc<OnceLock<V>>,
    bytes: usize,
    tick: u64,
}

/// Identifies one entry across the four families (eviction
/// bookkeeping). The derived total order is the deterministic
/// tie-break of [`Inner::lru_victim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum AnyKey {
    Op(OperatorKey),
    Dict(DictKey),
    Norm(NormKey),
    Column(ColumnKey),
}

/// Everything behind the cache lock: the four entry maps, the LRU
/// clock, and the byte accounting.
///
/// The maps are `HashMap`s for O(1) keyed lookup; the only place that
/// *iterates* them is [`Inner::lru_victim`], which reduces to a
/// min-by-`(tick, key)` — a total order independent of iteration
/// order — so hash randomization can never reach a result.
#[derive(Debug, Default)]
#[allow(clippy::disallowed_types)] // see clippy.toml + the hash-iter markers below
struct Inner {
    // tidy:allow(hash-iter: keyed lookup only; the lru_victim scan tie-breaks on a total order)
    ops: HashMap<OperatorKey, Slot<CachedOperator>>,
    // tidy:allow(hash-iter: keyed lookup only; the lru_victim scan tie-breaks on a total order)
    dicts: HashMap<DictKey, Slot<Arc<DictImpl>>>,
    // tidy:allow(hash-iter: keyed lookup only; the lru_victim scan tie-breaks on a total order)
    norms: HashMap<NormKey, Slot<f64>>,
    // tidy:allow(hash-iter: keyed lookup only; the lru_victim scan tie-breaks on a total order)
    columns: HashMap<ColumnKey, Slot<Arc<ColumnMatrix>>>,
    tick: u64,
    resident: usize,
    evictions: u64,
}

/// Bumps the LRU clock, touches (or creates) `key`'s slot, and returns
/// its build cell. Ticks are unique: every touch increments the shared
/// clock and stamps the slot with the fresh value, so no two slots ever
/// carry the same tick (the key tie-break in [`Inner::lru_victim`] is
/// pure belt-and-suspenders).
#[allow(clippy::disallowed_types)] // see clippy.toml
fn touch<K: Eq + Hash + Copy, V>(
    // tidy:allow(hash-iter: generic over the four keyed slot maps; never iterated here)
    map: &mut HashMap<K, Slot<V>>,
    tick: &mut u64,
    key: K,
) -> Arc<OnceLock<V>> {
    *tick += 1;
    let slot = map.entry(key).or_insert_with(|| Slot {
        cell: Arc::new(OnceLock::new()),
        bytes: 0,
        tick: 0,
    });
    slot.tick = *tick;
    slot.cell.clone()
}

/// Records `bytes` for the entry the caller just initialized, provided
/// its slot still holds the same cell and no racer committed first.
/// Returns whether this call committed (and therefore whether the
/// budget needs enforcing).
#[allow(clippy::disallowed_types)] // see clippy.toml
fn commit<K: Eq + Hash + Copy, V>(
    // tidy:allow(hash-iter: generic over the four keyed slot maps; never iterated here)
    map: &mut HashMap<K, Slot<V>>,
    resident: &mut usize,
    key: K,
    cell: &Arc<OnceLock<V>>,
    bytes: usize,
) -> bool {
    match map.get_mut(&key) {
        Some(slot) if Arc::ptr_eq(&slot.cell, cell) && slot.bytes == 0 => {
            slot.bytes = bytes;
            *resident += bytes;
            true
        }
        _ => false,
    }
}

impl Inner {
    /// The committed byte size of `key`, if the entry is resident.
    fn bytes_of(&self, key: AnyKey) -> Option<usize> {
        let b = match key {
            AnyKey::Op(k) => self.ops.get(&k)?.bytes,
            AnyKey::Dict(k) => self.dicts.get(&k)?.bytes,
            AnyKey::Norm(k) => self.norms.get(&k)?.bytes,
            AnyKey::Column(k) => self.columns.get(&k)?.bytes,
        };
        (b > 0).then_some(b)
    }

    /// Removes a committed entry, releasing its bytes.
    fn remove(&mut self, key: AnyKey) {
        let bytes = match key {
            AnyKey::Op(k) => self.ops.remove(&k).map(|s| s.bytes),
            AnyKey::Dict(k) => self.dicts.remove(&k).map(|s| s.bytes),
            AnyKey::Norm(k) => self.norms.remove(&k).map(|s| s.bytes),
            AnyKey::Column(k) => self.columns.remove(&k).map(|s| s.bytes),
        };
        if let Some(bytes) = bytes {
            self.resident -= bytes;
            self.evictions += 1;
        }
    }

    /// The least-recently-touched committed entry other than `protect`.
    ///
    /// Selection is min-by-`(tick, key)`. Ticks are unique by
    /// construction (see [`touch`]), but the key tie-break makes the
    /// choice *provably* independent of `HashMap` iteration order, so
    /// the eviction sequence is deterministic even if tick uniqueness
    /// were ever broken by a future refactor.
    fn lru_victim(&self, protect: AnyKey) -> Option<AnyKey> {
        let mut best: Option<(u64, AnyKey)> = None;
        let mut consider = |tick: u64, bytes: usize, key: AnyKey| {
            if bytes == 0 || key == protect {
                return;
            }
            if best.is_none_or(|(t, k)| (tick, key) < (t, k)) {
                best = Some((tick, key));
            }
        };
        for (k, s) in &self.ops {
            consider(s.tick, s.bytes, AnyKey::Op(*k));
        }
        for (k, s) in &self.dicts {
            consider(s.tick, s.bytes, AnyKey::Dict(*k));
        }
        for (k, s) in &self.norms {
            consider(s.tick, s.bytes, AnyKey::Norm(*k));
        }
        for (k, s) in &self.columns {
            consider(s.tick, s.bytes, AnyKey::Column(*k));
        }
        best.map(|(_, k)| k)
    }

    /// Evicts LRU entries until the resident total fits `budget`,
    /// protecting the just-committed entry — unless that entry alone
    /// exceeds the budget, in which case it is dropped immediately (its
    /// value was already handed to the caller; it is just not
    /// retained).
    fn enforce(&mut self, budget: usize, protect: AnyKey) {
        if self.bytes_of(protect).is_some_and(|b| b > budget) {
            self.remove(protect);
            return;
        }
        while self.resident > budget {
            match self.lru_victim(protect) {
                Some(victim) => self.remove(victim),
                // Only the protected entry remains; it fits (checked
                // above), so the accounting says we are done.
                None => break,
            }
        }
    }
}

/// Memoizes measurement operators, dictionaries, column-materialized
/// views, and per-solver operator-norm estimates across frames,
/// streams, and batch items — within a configurable byte budget
/// ([`CacheConfig`], LRU eviction; see the module docs).
///
/// Cheap to share: wrap in an [`Arc`] (or use [`OperatorCache::shared`])
/// and clone the handle into every decoder/session that should reuse
/// the same state.
/// The inner `Mutex` guards only entry lookup and byte accounting; the
/// expensive builds (CA replay, power iteration, column
/// materialization) run outside it behind per-key [`OnceLock`]s, so
/// distinct-key work in a parallel batch stays parallel while same-key
/// racers still converge on one value.
#[derive(Debug)]
pub struct OperatorCache {
    inner: Mutex<Inner>,
    budget: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for OperatorCache {
    fn default() -> Self {
        Self::new()
    }
}

impl OperatorCache {
    /// An empty cache with the default size policy
    /// ([`DEFAULT_CACHE_BYTES`] budget, LRU eviction).
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(CacheConfig::default())
    }

    /// An empty cache with an explicit size policy.
    #[must_use]
    pub fn with_config(config: CacheConfig) -> Self {
        OperatorCache {
            inner: Mutex::new(Inner::default()),
            budget: config.budget(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// An empty default-policy cache behind an [`Arc`], ready to share.
    #[must_use]
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// An empty cache with an explicit size policy, behind an [`Arc`].
    #[must_use]
    pub fn shared_with(config: CacheConfig) -> Arc<Self> {
        Arc::new(Self::with_config(config))
    }

    /// The byte budget this cache enforces (`None` = unbounded).
    #[must_use]
    pub fn byte_budget(&self) -> Option<usize> {
        self.budget
    }

    /// Acquires the cache lock, recovering from poisoning. A poisoned
    /// lock means another thread panicked while holding the guard; every
    /// mutation under this lock is a single-field write or a complete
    /// map operation, so the inner state stays structurally sound (at
    /// worst the byte accounting is conservative) and the cache keeps
    /// serving rather than cascading the panic.
    fn locked(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Bytes currently retained across all entry families (always at
    /// most the budget, when one is set).
    pub fn resident_bytes(&self) -> usize {
        self.locked().resident
    }

    /// Counters so far: operator hit/miss counts, evictions across all
    /// families, and the resident byte total.
    pub fn stats(&self) -> CacheStats {
        let inner = self.locked();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: inner.evictions,
            resident_bytes: inner.resident,
        }
    }

    /// Runs `commit` + budget enforcement for a just-built entry.
    fn retain(&self, committed: bool, protect: AnyKey) {
        if !committed {
            return;
        }
        if let Some(budget) = self.budget {
            let mut guard = self.locked();
            guard.enforce(budget, protect);
        }
    }

    /// The measurement operator and selection counts for `key`,
    /// building and memoizing them on first use.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the strategy parameters
    /// in `key` are invalid.
    pub(crate) fn operator(
        &self,
        key: &OperatorKey,
    ) -> Result<(Arc<XorMeasurement>, Arc<Vec<f64>>), CoreError> {
        let cell = {
            let mut guard = self.locked();
            let inner = &mut *guard;
            touch(&mut inner.ops, &mut inner.tick, *key)
        };
        if let Some(cached) = cell.get() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((cached.phi.clone(), cached.counts.clone()));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Build outside every lock so distinct keys proceed in
        // parallel. Same-key racers may build twice; the builds are
        // deterministic and the OnceLock keeps one, so the returned
        // value is unaffected. An invalid strategy caches nothing and
        // errors on every call.
        let (rows, cols) = (key.rows as usize, key.cols as usize);
        let mut source = key.strategy.build_source(rows + cols, key.seed)?;
        let phi = Arc::new(XorMeasurement::from_source(
            rows,
            cols,
            source.as_mut(),
            key.k,
        ));
        let counts = Arc::new(phi.selection_counts());
        let cached = cell.get_or_init(|| CachedOperator { phi, counts });
        let result = (cached.phi.clone(), cached.counts.clone());
        let bytes = ENTRY_OVERHEAD + result.0.bytes() + result.1.len() * std::mem::size_of::<f64>();
        let committed = {
            let mut guard = self.locked();
            let inner = &mut *guard;
            commit(&mut inner.ops, &mut inner.resident, *key, &cell, bytes)
        };
        self.retain(committed, AnyKey::Op(*key));
        Ok(result)
    }

    /// The dictionary for `(kind, rows, cols)`, built on first use.
    pub(crate) fn dictionary(&self, kind: DictionaryKind, rows: u16, cols: u16) -> Arc<DictImpl> {
        let key = (kind, rows, cols);
        let cell = {
            let mut guard = self.locked();
            let inner = &mut *guard;
            touch(&mut inner.dicts, &mut inner.tick, key)
        };
        if let Some(dict) = cell.get() {
            return dict.clone();
        }
        let dict = cell
            .get_or_init(|| Arc::new(build_dictionary(kind, rows as usize, cols as usize)))
            .clone();
        let bytes = ENTRY_OVERHEAD + dict_bytes_estimate(kind, rows as usize, cols as usize);
        let committed = {
            let mut guard = self.locked();
            let inner = &mut *guard;
            commit(&mut inner.dicts, &mut inner.resident, key, &cell, bytes)
        };
        self.retain(committed, AnyKey::Dict(key));
        dict
    }

    /// The memoized operator-norm estimate `‖ΦΨ‖` for
    /// `(key, kind, norm_seed)`, computing it with `compute` on first
    /// use. `norm_seed` must be the requesting solver's own
    /// power-iteration seed — it is part of the key precisely so two
    /// solvers can never be served each other's estimate. Returns `None`
    /// when the composed operator is (numerically) zero, in which case
    /// the caller must let the solver take its own zero-operator path.
    pub(crate) fn operator_norm(
        &self,
        key: &OperatorKey,
        kind: DictionaryKind,
        norm_seed: u64,
        compute: impl FnOnce() -> f64,
    ) -> Option<f64> {
        let nkey = (*key, kind, norm_seed);
        let cell = {
            let mut guard = self.locked();
            let inner = &mut *guard;
            touch(&mut inner.norms, &mut inner.tick, nkey)
        };
        // The power iteration runs outside the map lock (it is the
        // expensive part); the OnceLock still guarantees one stored
        // value per key.
        let warm = cell.get().is_some();
        let norm = *cell.get_or_init(compute);
        if !warm {
            let bytes = ENTRY_OVERHEAD + std::mem::size_of::<f64>();
            let committed = {
                let mut guard = self.locked();
                let inner = &mut *guard;
                commit(&mut inner.norms, &mut inner.resident, nkey, &cell, bytes)
            };
            self.retain(committed, AnyKey::Norm(nkey));
        }
        (norm > 0.0).then_some(norm)
    }

    /// The memoized column-materialized `Φ·Ψ` view for `(key, kind)`,
    /// building it with `build` on first use. Greedy decodes attach the
    /// returned view to their composed operator; the build is
    /// deterministic, so warm views equal a cold materialization bit for
    /// bit.
    pub(crate) fn column_view(
        &self,
        key: &OperatorKey,
        kind: DictionaryKind,
        build: impl FnOnce() -> ColumnMatrix,
    ) -> Arc<ColumnMatrix> {
        let ckey = (*key, kind);
        let cell = {
            let mut guard = self.locked();
            let inner = &mut *guard;
            touch(&mut inner.columns, &mut inner.tick, ckey)
        };
        if let Some(view) = cell.get() {
            return view.clone();
        }
        // Materialization (cols forward applies) runs outside the map
        // lock; the OnceLock keeps one view per key.
        let view = cell.get_or_init(|| Arc::new(build())).clone();
        let bytes = ENTRY_OVERHEAD + view.bytes();
        let committed = {
            let mut guard = self.locked();
            let inner = &mut *guard;
            commit(&mut inner.columns, &mut inner.resident, ckey, &cell, bytes)
        };
        self.retain(committed, AnyKey::Column(ckey));
        view
    }
}

/// Approximate heap footprint of a built dictionary (cache
/// accounting): the DCT's 1-D transforms fall back to an `n × n` basis
/// matrix per axis for non-power-of-two lengths, Haar keeps O(pixels)
/// of level scratch, identity stores nothing.
fn dict_bytes_estimate(kind: DictionaryKind, rows: usize, cols: usize) -> usize {
    let dct1d = |n: usize| {
        if n.is_power_of_two() {
            32 * n
        } else {
            8 * n * n
        }
    };
    match kind {
        DictionaryKind::Dct2d => dct1d(rows) + dct1d(cols),
        DictionaryKind::Haar2d => 8 * rows * cols,
        DictionaryKind::Identity => std::mem::size_of::<usize>(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64, k: usize) -> OperatorKey {
        OperatorKey {
            rows: 16,
            cols: 16,
            strategy: StrategyKind::rule30(64),
            seed,
            k,
        }
    }

    #[test]
    fn operator_is_built_once_per_key() {
        let cache = OperatorCache::new();
        let (phi1, counts1) = cache.operator(&key(7, 40)).unwrap();
        let (phi2, counts2) = cache.operator(&key(7, 40)).unwrap();
        assert!(Arc::ptr_eq(&phi1, &phi2), "second lookup must be warm");
        assert!(Arc::ptr_eq(&counts1, &counts2));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 0));
        assert!(stats.resident_bytes > 0);
    }

    #[test]
    fn distinct_keys_miss_independently() {
        let cache = OperatorCache::new();
        cache.operator(&key(1, 40)).unwrap();
        cache.operator(&key(2, 40)).unwrap(); // different seed
        cache.operator(&key(1, 50)).unwrap(); // different k
        cache.operator(&key(1, 40)).unwrap(); // warm
        let stats = cache.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 1);
        assert!((stats.hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn cached_operator_equals_cold_rebuild() {
        let cache = OperatorCache::new();
        let k = key(0xFEED, 32);
        let (phi, counts) = cache.operator(&k).unwrap();
        let mut source = k.strategy.build_source(32, k.seed).unwrap();
        let cold = XorMeasurement::from_source(16, 16, source.as_mut(), 32);
        assert_eq!(*phi, cold);
        assert_eq!(*counts, cold.selection_counts());
    }

    #[test]
    fn invalid_strategy_surfaces_config_error() {
        let cache = OperatorCache::new();
        let bad = OperatorKey {
            rows: 8,
            cols: 8,
            strategy: StrategyKind::Lfsr { width: 64 },
            seed: 1,
            k: 4,
        };
        assert!(matches!(
            cache.operator(&bad),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn operator_norm_is_computed_once_per_solver_seed() {
        use tepics_recovery::solver::norm_seeds;
        let cache = OperatorCache::new();
        let k = key(3, 10);
        let seed = norm_seeds::FISTA;
        let first = cache.operator_norm(&k, DictionaryKind::Dct2d, seed, || 0.25);
        let second = cache.operator_norm(&k, DictionaryKind::Dct2d, seed, || {
            panic!("must be memoized")
        });
        assert_eq!(first, Some(0.25));
        assert_eq!(second, Some(0.25));
        // A zero norm is remembered as "no override".
        let zero = cache.operator_norm(&k, DictionaryKind::Haar2d, seed, || 0.0);
        assert_eq!(zero, None);
    }

    /// The regression this key shape exists to prevent: two solvers
    /// asking for the norm of the *same* operator/dictionary must get
    /// independent entries (their power iterations run with different
    /// seeds, so their estimates legitimately differ). A key collision
    /// here would silently hand one solver the other's step size.
    #[test]
    fn norm_entries_never_cross_solver_seeds() {
        use tepics_recovery::solver::norm_seeds;
        let cache = OperatorCache::new();
        let k = key(7, 12);
        let fista = cache.operator_norm(&k, DictionaryKind::Dct2d, norm_seeds::FISTA, || 1.25);
        let ista = cache.operator_norm(&k, DictionaryKind::Dct2d, norm_seeds::ISTA, || 1.50);
        let iht = cache.operator_norm(&k, DictionaryKind::Dct2d, norm_seeds::IHT, || 1.75);
        let amp = cache.operator_norm(&k, DictionaryKind::Dct2d, norm_seeds::AMP, || 2.00);
        assert_eq!(fista, Some(1.25));
        assert_eq!(ista, Some(1.50));
        assert_eq!(iht, Some(1.75));
        assert_eq!(amp, Some(2.00));
        // And each stays what its own solver computed.
        let again = cache.operator_norm(&k, DictionaryKind::Dct2d, norm_seeds::FISTA, || {
            panic!("must be memoized")
        });
        assert_eq!(again, Some(1.25));
    }

    #[test]
    fn column_views_are_memoized_per_operator_and_dictionary() {
        use tepics_cs::colview::ColumnMatrix;
        use tepics_cs::DenseMatrix;
        let cache = OperatorCache::new();
        let k1 = key(1, 6);
        let build = || ColumnMatrix::from_operator(&DenseMatrix::identity(4));
        let a = cache.column_view(&k1, DictionaryKind::Dct2d, build);
        let b = cache.column_view(&k1, DictionaryKind::Dct2d, || panic!("must be memoized"));
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be warm");
        // A different dictionary (or operator key) is a different view.
        let c = cache.column_view(&k1, DictionaryKind::Identity, build);
        assert!(!Arc::ptr_eq(&a, &c));
        let d = cache.column_view(&key(2, 6), DictionaryKind::Dct2d, build);
        assert!(!Arc::ptr_eq(&a, &d));
    }

    #[test]
    fn dictionaries_are_shared_per_geometry() {
        let cache = OperatorCache::new();
        let a = cache.dictionary(DictionaryKind::Dct2d, 16, 16);
        let b = cache.dictionary(DictionaryKind::Dct2d, 16, 16);
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.dictionary(DictionaryKind::Dct2d, 8, 8);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    /// The headline bound: a many-geometry workload (every key
    /// distinct) never pushes the resident total past the budget, and
    /// eviction actually fires.
    #[test]
    fn byte_budget_is_never_exceeded_under_many_geometries() {
        let probe = OperatorCache::with_config(CacheConfig::unbounded());
        probe.operator(&key(0, 40)).unwrap();
        let one = probe.resident_bytes();
        assert!(one > 0);

        let budget = one * 3 + one / 2; // room for ~3 operators
        let cache = OperatorCache::with_config(CacheConfig::new().byte_budget(budget));
        for seed in 0..12 {
            cache.operator(&key(seed, 40)).unwrap();
            assert!(
                cache.resident_bytes() <= budget,
                "resident {} exceeds budget {budget} after seed {seed}",
                cache.resident_bytes()
            );
        }
        let stats = cache.stats();
        assert!(
            stats.evictions >= 8,
            "evictions {} too few",
            stats.evictions
        );
        assert_eq!(stats.misses, 12);
    }

    /// Eviction follows recency: touching an entry protects it while
    /// the oldest other entry is discarded.
    #[test]
    fn eviction_is_least_recently_used() {
        let probe = OperatorCache::with_config(CacheConfig::unbounded());
        probe.operator(&key(0, 40)).unwrap();
        let one = probe.resident_bytes();

        let cache = OperatorCache::with_config(CacheConfig::new().byte_budget(one * 2 + one / 2));
        cache.operator(&key(1, 40)).unwrap(); // A
        cache.operator(&key(2, 40)).unwrap(); // B
        cache.operator(&key(1, 40)).unwrap(); // touch A → B is LRU
        cache.operator(&key(3, 40)).unwrap(); // C evicts B
        let warm_before = cache.stats().hits;
        cache.operator(&key(1, 40)).unwrap(); // A survived
        assert_eq!(cache.stats().hits, warm_before + 1, "A must still be warm");
        cache.operator(&key(2, 40)).unwrap(); // B was evicted → rebuild
        assert_eq!(cache.stats().misses, 4, "B must have been evicted");
    }

    /// Pins the full eviction *sequence*: victims fall strictly in
    /// touch order, run after run, machine after machine. Ticks are
    /// unique (every touch stamps a fresh clock value), and the
    /// `(tick, key)` tie-break keeps the choice independent of
    /// `HashMap` iteration order even in principle.
    #[test]
    fn eviction_sequence_is_deterministic() {
        let probe = OperatorCache::with_config(CacheConfig::unbounded());
        probe.operator(&key(0, 40)).unwrap();
        let one = probe.resident_bytes();

        // Room for exactly three same-size entries.
        let cache = OperatorCache::with_config(CacheConfig::new().byte_budget(3 * one + one / 2));
        cache.operator(&key(1, 40)).unwrap(); // A
        cache.operator(&key(2, 40)).unwrap(); // B
        cache.operator(&key(3, 40)).unwrap(); // C
        cache.operator(&key(2, 40)).unwrap(); // touch B
        cache.operator(&key(1, 40)).unwrap(); // touch A → LRU order: C, B, A
        cache.operator(&key(4, 40)).unwrap(); // D must evict C
        cache.operator(&key(5, 40)).unwrap(); // E must evict B
        assert_eq!(cache.stats().evictions, 2);

        // Survivors (A, D, E) are warm; victims (B, C) rebuild, in
        // exactly that order and no other.
        let misses_before = cache.stats().misses;
        for seed in [1, 4, 5] {
            cache.operator(&key(seed, 40)).unwrap();
        }
        assert_eq!(cache.stats().misses, misses_before, "A/D/E must be warm");
        cache.operator(&key(2, 40)).unwrap();
        cache.operator(&key(3, 40)).unwrap();
        assert_eq!(
            cache.stats().misses,
            misses_before + 2,
            "B and C must have been the victims"
        );
    }

    /// Exercises the tie-break directly: with ticks forced equal, the
    /// victim is the smallest key in the derived total order — a choice
    /// no `HashMap` iteration order can influence.
    #[test]
    fn lru_tie_break_is_key_ordered() {
        let mut inner = Inner::default();
        for seed in [9u64, 3, 7, 1, 5] {
            inner.ops.insert(
                key(seed, 8),
                Slot {
                    cell: Arc::new(OnceLock::new()),
                    bytes: 1,
                    tick: 42,
                },
            );
        }
        assert_eq!(
            inner.lru_victim(AnyKey::Op(key(1, 8))),
            Some(AnyKey::Op(key(3, 8)))
        );
        assert_eq!(
            inner.lru_victim(AnyKey::Op(key(3, 8))),
            Some(AnyKey::Op(key(1, 8)))
        );
    }

    /// An entry larger than the whole budget is served but not
    /// retained — the bound holds even then.
    #[test]
    fn oversized_entries_are_served_but_not_retained() {
        let cache = OperatorCache::with_config(CacheConfig::new().byte_budget(64));
        let (phi, _) = cache.operator(&key(5, 40)).unwrap();
        assert_eq!(phi.array_rows(), 16);
        assert_eq!(cache.resident_bytes(), 0, "oversized entry must not stay");
        // Every repeat is a rebuild, never a budget violation.
        cache.operator(&key(5, 40)).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert!(stats.resident_bytes <= 64);
    }

    /// The explicit escape hatch: an unbounded cache never evicts.
    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = OperatorCache::with_config(CacheConfig::unbounded());
        assert_eq!(cache.byte_budget(), None);
        for seed in 0..10 {
            cache.operator(&key(seed, 40)).unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.misses, 10);
        assert!(stats.resident_bytes > 0);
    }

    /// Rebuilt-after-eviction values equal the originals bit for bit
    /// (eviction only discards memoization, never changes results).
    #[test]
    fn evicted_entries_rebuild_identically() {
        let probe = OperatorCache::with_config(CacheConfig::unbounded());
        let k = key(9, 40);
        let (cold_phi, cold_counts) = probe.operator(&k).unwrap();
        let one = probe.resident_bytes();

        let cache = OperatorCache::with_config(CacheConfig::new().byte_budget(one + one / 2));
        cache.operator(&k).unwrap();
        cache.operator(&key(10, 40)).unwrap(); // evicts k
        let (again_phi, again_counts) = cache.operator(&k).unwrap();
        assert!(cache.stats().evictions >= 1);
        assert_eq!(*again_phi, *cold_phi);
        assert_eq!(*again_counts, *cold_counts);
    }
}
