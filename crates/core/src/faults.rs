//! Deterministic fault injection for wire streams.
//!
//! A readout channel between the focal-plane sensor and the decoder
//! drops and flips bits; the resilient (version-3) stream container
//! exists to survive that. [`FaultInjector`] models the channel so the
//! survival claim is *testable*: every corruption it applies is driven
//! by a seeded [`SplitMix64`], so a failing case replays exactly from
//! its seed — in unit tests, in the hostile-input fuzz loop, and in the
//! `resilience` bench experiment that sweeps corruption rate against
//! reconstruction quality.
//!
//! The faults cover the failure modes of a real link:
//!
//! * [`flip_bits`](FaultInjector::flip_bits) — independent random bit
//!   errors (noise-limited links);
//! * [`burst_erase`](FaultInjector::burst_erase) — a contiguous stretch
//!   overwritten (interference bursts, buffer tears);
//! * [`truncate`](FaultInjector::truncate) — the tail never arrives
//!   (connection loss);
//! * [`duplicate_range`](FaultInjector::duplicate_range) — a stretch
//!   replayed (retransmission bugs);
//! * [`rechunk`](FaultInjector::rechunk) — delivery re-segmented into
//!   arbitrary chunks (any packetized transport; corrupts nothing by
//!   itself, but exercises every buffer boundary in the parser).
//!
//! # Examples
//!
//! ```
//! use tepics_core::FaultInjector;
//!
//! let clean: Vec<u8> = (0..200).map(|i| i as u8).collect();
//! let mut faults = FaultInjector::new(7);
//! let mut dirty = clean.clone();
//! faults.flip_bits(&mut dirty, 0.01);
//! assert_ne!(dirty, clean);
//! // Same seed ⇒ same faults, byte for byte.
//! let mut replay = clean.clone();
//! FaultInjector::new(7).flip_bits(&mut replay, 0.01);
//! assert_eq!(dirty, replay);
//! ```

use tepics_util::SplitMix64;

/// Deterministic, seeded corruption of byte streams (see the module
/// docs for the fault menu).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: SplitMix64,
}

impl FaultInjector {
    /// An injector whose entire fault sequence is determined by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector {
            rng: SplitMix64::new(seed),
        }
    }

    /// Flips each bit of `bytes` independently with probability `rate`
    /// (clamped to `[0, 1]`). Returns the number of bits flipped.
    pub fn flip_bits(&mut self, bytes: &mut [u8], rate: f64) -> usize {
        self.flip_bits_after(bytes, 0, rate)
    }

    /// Like [`FaultInjector::flip_bits`], but leaves the first `skip`
    /// bytes untouched — models a channel whose session setup (the
    /// stream header) is handshake-protected while the long record
    /// stretch is not.
    pub fn flip_bits_after(&mut self, bytes: &mut [u8], skip: usize, rate: f64) -> usize {
        let rate = rate.clamp(0.0, 1.0);
        let mut flipped = 0;
        for b in bytes.iter_mut().skip(skip) {
            for bit in 0..8 {
                if self.rng.next_f64() < rate {
                    *b ^= 1 << bit;
                    flipped += 1;
                }
            }
        }
        flipped
    }

    /// Overwrites a random contiguous stretch of up to `max_len` bytes
    /// with random garbage (a burst erasure). Returns the `(start,
    /// len)` of the burst, or `None` for an empty input.
    pub fn burst_erase(&mut self, bytes: &mut [u8], max_len: usize) -> Option<(usize, usize)> {
        if bytes.is_empty() || max_len == 0 {
            return None;
        }
        let len = 1 + self.rng.next_below(max_len as u64) as usize;
        let start = self.rng.next_below(bytes.len() as u64) as usize;
        let end = (start + len).min(bytes.len());
        for b in &mut bytes[start..end] {
            *b = (self.rng.next_u64() & 0xFF) as u8;
        }
        Some((start, end - start))
    }

    /// Truncates the stream at a random point in `keep_min..len`
    /// (connection loss mid-record). Returns the new length.
    pub fn truncate(&mut self, bytes: &mut Vec<u8>, keep_min: usize) -> usize {
        let keep_min = keep_min.min(bytes.len());
        let span = (bytes.len() - keep_min) as u64;
        let cut = keep_min
            + if span == 0 {
                0
            } else {
                self.rng.next_below(span + 1) as usize
            };
        bytes.truncate(cut);
        bytes.len()
    }

    /// Re-inserts a random already-sent stretch of up to `max_len`
    /// bytes at a random later position (a replayed retransmission).
    /// Returns the `(source_start, len)` duplicated, or `None` for an
    /// empty input.
    pub fn duplicate_range(
        &mut self,
        bytes: &mut Vec<u8>,
        max_len: usize,
    ) -> Option<(usize, usize)> {
        if bytes.is_empty() || max_len == 0 {
            return None;
        }
        let len = 1 + self.rng.next_below(max_len as u64) as usize;
        let start = self.rng.next_below(bytes.len() as u64) as usize;
        let end = (start + len).min(bytes.len());
        let chunk: Vec<u8> = bytes[start..end].to_vec();
        let at = end + self.rng.next_below((bytes.len() - end + 1) as u64) as usize;
        bytes.splice(at..at, chunk.iter().copied());
        Some((start, end - start))
    }

    /// Splits `bytes` into random-size delivery chunks (each between 1
    /// and `max_chunk` bytes). The concatenation equals the input —
    /// this corrupts nothing, it re-segments delivery to exercise every
    /// partial-record path in a parser.
    #[must_use]
    pub fn rechunk(&mut self, bytes: &[u8], max_chunk: usize) -> Vec<Vec<u8>> {
        let max_chunk = max_chunk.max(1);
        let mut chunks = Vec::new();
        let mut pos = 0;
        while pos < bytes.len() {
            let len = (1 + self.rng.next_below(max_chunk as u64) as usize).min(bytes.len() - pos);
            chunks.push(bytes[pos..pos + len].to_vec());
            pos += len;
        }
        chunks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 + 7) as u8).collect()
    }

    #[test]
    fn same_seed_replays_identical_faults() {
        let clean = payload(500);
        let run = |seed: u64| {
            let mut f = FaultInjector::new(seed);
            let mut b = clean.clone();
            f.flip_bits(&mut b, 0.02);
            f.burst_erase(&mut b, 40);
            f.truncate(&mut b, 100);
            f.duplicate_range(&mut b, 30);
            (b.clone(), f.rechunk(&b, 17))
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0);
    }

    #[test]
    fn flip_rate_scales_with_probability() {
        let mut f = FaultInjector::new(1);
        let mut b = payload(10_000);
        let flipped = f.flip_bits(&mut b, 0.01);
        // 80 000 bits at 1%: expect ~800, allow wide slack.
        assert!((400..1600).contains(&flipped), "{flipped} flips");
        let mut b2 = payload(10_000);
        assert_eq!(f.flip_bits(&mut b2, 0.0), 0);
        assert_eq!(b2, payload(10_000));
    }

    #[test]
    fn flip_bits_after_protects_the_prefix() {
        let clean = payload(300);
        let mut f = FaultInjector::new(9);
        let mut b = clean.clone();
        f.flip_bits_after(&mut b, 64, 0.05);
        assert_eq!(b[..64], clean[..64], "protected prefix untouched");
        assert_ne!(b[64..], clean[64..]);
    }

    #[test]
    fn burst_stays_in_bounds_and_truncate_respects_minimum() {
        let mut f = FaultInjector::new(3);
        for n in [1usize, 5, 100] {
            let mut b = payload(n);
            let hit = f.burst_erase(&mut b, 200);
            assert_eq!(b.len(), n, "burst never resizes");
            let (start, len) = hit.unwrap();
            assert!(start + len <= n);
        }
        let mut b = payload(50);
        let kept = f.truncate(&mut b, 20);
        assert!((20..=50).contains(&kept));
        assert!(f.burst_erase(&mut [], 8).is_none());
    }

    #[test]
    fn duplicate_grows_and_rechunk_preserves_content() {
        let mut f = FaultInjector::new(8);
        let clean = payload(120);
        let mut b = clean.clone();
        let (_, len) = f.duplicate_range(&mut b, 16).unwrap();
        assert_eq!(b.len(), clean.len() + len);
        let chunks = f.rechunk(&clean, 13);
        assert!(chunks.iter().all(|c| !c.is_empty() && c.len() <= 13));
        let glued: Vec<u8> = chunks.concat();
        assert_eq!(glued, clean);
    }
}
