//! Error type of the end-to-end pipeline.

use std::fmt;

/// Errors surfaced by the imager, frame codec and decoder.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A configuration value is outside its valid range.
    InvalidConfig(String),
    /// Wire bytes could not be parsed into a frame.
    MalformedFrame(String),
    /// The decoder configuration does not match the frame header.
    FrameMismatch(String),
    /// Sparse recovery failed.
    Recovery(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::MalformedFrame(msg) => write!(f, "malformed frame: {msg}"),
            CoreError::FrameMismatch(msg) => write!(f, "frame mismatch: {msg}"),
            CoreError::Recovery(msg) => write!(f, "recovery failed: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<tepics_recovery::RecoveryError> for CoreError {
    fn from(e: tepics_recovery::RecoveryError) -> Self {
        CoreError::Recovery(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::MalformedFrame("truncated".into());
        assert!(e.to_string().contains("truncated"));
        let boxed: Box<dyn std::error::Error> = Box::new(e);
        assert!(!boxed.to_string().is_empty());
    }
}
