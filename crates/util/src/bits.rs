//! Word-packed bit vectors.
//!
//! [`BitVec`] stores bits in `u64` words, least-significant bit first.
//! It is the carrier type for cellular-automaton states and pixel
//! selection masks throughout TEPICS, so it favors predictable layout and
//! cheap bulk operations (XOR, popcount, shifted-neighbor extraction)
//! over feature breadth.

use std::fmt;

/// A fixed-length, word-packed vector of bits.
///
/// Bits are indexed `0..len`. Bit `i` lives in word `i / 64` at position
/// `i % 64`. Trailing bits of the last word beyond `len` are kept at zero
/// as an internal invariant so that [`BitVec::count_ones`] and equality
/// work on whole words.
///
/// # Examples
///
/// ```
/// use tepics_util::BitVec;
///
/// let mut v = BitVec::zeros(10);
/// v.set(9, true);
/// assert_eq!(v.count_ones(), 1);
/// assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![9]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates a bit vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Creates a bit vector of `len` one bits.
    pub fn ones(len: usize) -> Self {
        let mut v = BitVec {
            len,
            words: vec![!0u64; len.div_ceil(64)],
        };
        v.mask_tail();
        v
    }

    /// Builds a bit vector from an iterator of booleans.
    ///
    /// # Examples
    ///
    /// ```
    /// use tepics_util::BitVec;
    /// let v = BitVec::from_bools([true, false, true]);
    /// assert_eq!(v.len(), 3);
    /// assert_eq!(v.count_ones(), 2);
    /// ```
    pub fn from_bools<I: IntoIterator<Item = bool>>(bools: I) -> Self {
        let mut words = Vec::new();
        let mut len = 0usize;
        let mut cur = 0u64;
        for b in bools {
            if b {
                cur |= 1u64 << (len % 64);
            }
            len += 1;
            if len.is_multiple_of(64) {
                words.push(cur);
                cur = 0;
            }
        }
        if !len.is_multiple_of(64) {
            words.push(cur);
        }
        BitVec { len, words }
    }

    /// Builds a bit vector from pre-packed words (LSB-first), masking any
    /// bits beyond `len`.
    ///
    /// # Panics
    ///
    /// Panics if `words` is shorter than `len` requires.
    pub fn from_words(len: usize, words: Vec<u64>) -> Self {
        assert!(
            words.len() >= len.div_ceil(64),
            "need {} words for {len} bits, got {}",
            len.div_ceil(64),
            words.len()
        );
        let mut v = BitVec { len, words };
        v.words.truncate(len.div_ceil(64));
        v.mask_tail();
        v
    }

    /// Builds a `len`-bit vector by repeating the 64 bits of `seed`.
    ///
    /// Useful for expanding a compact seed into a full automaton state.
    pub fn from_seed_word(len: usize, seed: u64) -> Self {
        let mut v = BitVec {
            len,
            words: vec![seed; len.div_ceil(64)],
        };
        v.mask_tail();
        v
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range 0..{}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range 0..{}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips bit `i`, returning the new value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn toggle(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range 0..{}", self.len);
        self.words[i / 64] ^= 1u64 << (i % 64);
        self.get(i)
    }

    /// Sets every bit to zero, keeping the length.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of set bits, in `[0, 1]`. Returns 0 for an empty vector.
    pub fn balance(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// In-place XOR with another vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "BitVec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Hamming distance to another vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming(&self, other: &BitVec) -> usize {
        assert_eq!(self.len, other.len, "BitVec length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            bits: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Iterator over all bits as booleans, ascending by index.
    pub fn iter(&self) -> Iter<'_> {
        Iter { bits: self, idx: 0 }
    }

    /// Copies the bits into a `Vec<bool>`.
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter().collect()
    }

    /// Borrows the backing words (LSB-first packing).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Returns a sub-range `[start, start+len)` as a new vector.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the vector.
    pub fn slice(&self, start: usize, len: usize) -> BitVec {
        assert!(
            start + len <= self.len,
            "slice {start}..{} out of range 0..{}",
            start + len,
            self.len
        );
        BitVec::from_bools((start..start + len).map(|i| self.get(i)))
    }

    /// Concatenates two vectors.
    pub fn concat(&self, other: &BitVec) -> BitVec {
        BitVec::from_bools(self.iter().chain(other.iter()))
    }

    /// Rotates the vector left by `n` positions (bit 0 moves toward the end).
    pub fn rotate_left(&self, n: usize) -> BitVec {
        if self.len == 0 {
            return self.clone();
        }
        let n = n % self.len;
        BitVec::from_bools((0..self.len).map(|i| self.get((i + n) % self.len)))
    }

    /// Zeroes any bits beyond `len` in the last word (internal invariant).
    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        for i in 0..self.len.min(128) {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > 128 {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitVec::from_bools(iter)
    }
}

/// Iterator over indices of set bits. Created by [`BitVec::iter_ones`].
#[derive(Debug, Clone)]
pub struct IterOnes<'a> {
    bits: &'a BitVec,
    word_idx: usize,
    current: u64,
}

impl<'a> Iterator for IterOnes<'a> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let tz = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + tz);
            }
            self.word_idx += 1;
            if self.word_idx >= self.bits.words.len() {
                return None;
            }
            self.current = self.bits.words[self.word_idx];
        }
    }
}

/// Iterator over all bits as booleans. Created by [`BitVec::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    bits: &'a BitVec,
    idx: usize,
}

impl<'a> Iterator for Iter<'a> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        if self.idx < self.bits.len {
            let b = self.bits.get(self.idx);
            self.idx += 1;
            Some(b)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.bits.len - self.idx;
        (rem, Some(rem))
    }
}

impl<'a> ExactSizeIterator for Iter<'a> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones_have_expected_counts() {
        assert_eq!(BitVec::zeros(130).count_ones(), 0);
        assert_eq!(BitVec::ones(130).count_ones(), 130);
        assert_eq!(BitVec::ones(64).count_ones(), 64);
        assert_eq!(BitVec::ones(0).count_ones(), 0);
    }

    #[test]
    fn set_get_roundtrip_across_word_boundaries() {
        let mut v = BitVec::zeros(200);
        for i in [0, 1, 63, 64, 65, 127, 128, 199] {
            v.set(i, true);
            assert!(v.get(i), "bit {i} should be set");
        }
        assert_eq!(v.count_ones(), 8);
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 7);
    }

    #[test]
    fn from_bools_matches_manual_sets() {
        let pattern = [true, false, false, true, true, false, true];
        let v = BitVec::from_bools(pattern);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(v.get(i), b);
        }
    }

    #[test]
    fn iter_ones_yields_sorted_indices() {
        let mut v = BitVec::zeros(300);
        let idxs = [2usize, 63, 64, 130, 299];
        for &i in &idxs {
            v.set(i, true);
        }
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), idxs);
    }

    #[test]
    fn xor_assign_is_involutive() {
        let a = BitVec::from_seed_word(100, 0xDEAD_BEEF_CAFE_F00D);
        let b = BitVec::from_seed_word(100, 0x0123_4567_89AB_CDEF);
        let mut c = a.clone();
        c.xor_assign(&b);
        c.xor_assign(&b);
        assert_eq!(a, c);
    }

    #[test]
    fn hamming_distance_counts_differences() {
        let a = BitVec::from_bools([true, true, false, false]);
        let b = BitVec::from_bools([true, false, true, false]);
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    fn rotate_left_shifts_indices() {
        let v = BitVec::from_bools([true, false, false, false, false]);
        let r = v.rotate_left(1);
        // Bit 0 of the rotated vector is old bit 1.
        assert!(!r.get(0));
        assert!(r.get(4));
        assert_eq!(r.count_ones(), 1);
        // Full rotation is identity.
        assert_eq!(v.rotate_left(5), v);
    }

    #[test]
    fn slice_and_concat_are_inverse() {
        let v = BitVec::from_seed_word(90, 0xABCD_EF01_2345_6789);
        let left = v.slice(0, 40);
        let right = v.slice(40, 50);
        assert_eq!(left.concat(&right), v);
    }

    #[test]
    fn tail_bits_stay_masked() {
        let v = BitVec::ones(70);
        // Last word must only have 6 bits set.
        assert_eq!(v.as_words()[1].count_ones(), 6);
        let r = v.rotate_left(3);
        assert_eq!(r.count_ones(), 70);
    }

    #[test]
    fn balance_of_alternating_pattern_is_half() {
        let v = BitVec::from_bools((0..100).map(|i| i % 2 == 0));
        assert!((v.balance() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(8).get(8);
    }

    #[test]
    fn display_renders_bits() {
        let v = BitVec::from_bools([true, false, true]);
        assert_eq!(v.to_string(), "101");
        assert!(!format!("{v:?}").is_empty());
    }
}
