//! Persistent worker pool with sticky per-worker scratch and
//! deterministic, input-ordered results.
//!
//! [`parallel::par_map`] spawns fresh OS
//! threads on every call, which is fine for one-shot sweeps but wasteful
//! for streaming decodes that fan out per *frame*: a long stream pays a
//! spawn (and a cold scratch build) per frame per worker. [`WorkerPool`]
//! amortizes both. Workers are spawned once — on first demand, up to the
//! pool's cap — then park on a condvar work queue; each worker keeps a
//! [`WorkerScratch`] of sticky, type-keyed slots (e.g. a warm solver
//! workspace keyed by tile geometry) that survives across tasks, maps,
//! and frames, so the steady state allocates nothing and spawns nothing.
//!
//! The determinism contract matches `par_map`: results are assembled by
//! input index, so [`WorkerPool::map`] output is **bit-identical at any
//! thread count** whenever the task function is itself deterministic.
//! Panics inside tasks are caught on the worker, re-raised on the
//! caller after the map drains, and never kill pool workers.
//!
//! Because workers are long-lived, tasks must be `'static`: callers
//! hand the pool owned items and owned (or `Arc`-shared) captures.
//! Borrowed-closure sweeps stay on `par_map`, which remains the scoped
//! fallback.
//!
//! Nesting is safe by construction: a `map` issued *from a pool worker*
//! runs inline on that worker (no new tickets, no oversubscription, no
//! deadlock — workers never block on the pool; only root callers wait,
//! and they work down their own task set while waiting).
//!
//! # Examples
//!
//! ```
//! use tepics_util::pool::WorkerPool;
//!
//! let squares = WorkerPool::global().map(4, (0u64..5).collect(), |_, x, _| x * x);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16]);
//! ```

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

use crate::parallel;

/// A queued unit of pool work (a whole-map ticket or a broadcast
/// rendezvous, never a single item).
type Job = Box<dyn FnOnce() + Send>;

/// Environment variable capping the global pool's helper workers (the
/// caller always participates on top). Unset or unparsable means
/// [`DEFAULT_MAX_WORKERS`].
pub const POOL_THREADS_ENV: &str = "TEPICS_POOL_THREADS";

/// Worker cap of the global pool when [`POOL_THREADS_ENV`] is unset.
/// Generous on purpose: workers only spawn on demand, so an 8-core host
/// asking for `threads(4)` creates 3, not 64.
pub const DEFAULT_MAX_WORKERS: usize = 64;

thread_local! {
    /// Set once, permanently, on pool worker threads.
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
    /// This thread's sticky scratch, parked here between tasks.
    static SCRATCH: Cell<Option<Box<WorkerScratch>>> = const { Cell::new(None) };
    /// True while the sticky scratch is lent out to a running task
    /// (reentrant users get a throwaway scratch instead).
    static SCRATCH_BUSY: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is a pool worker. Callers that hold warm
/// per-call state of their own (e.g. a decode session's workspace) can
/// use this to prefer their serial path over a nested — inline anyway —
/// pool map.
#[must_use]
pub fn is_worker_thread() -> bool {
    IS_WORKER.with(Cell::get)
}

/// Locks `m`, recovering the guard from a poisoned mutex: pool state
/// stays usable even if a task panicked while a lock was held (the
/// panic itself is still reported to the map's caller).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Restores the thread's sticky scratch (and clears the busy flag) when
/// the borrow ends — including by unwind, so a panicking task does not
/// strand the thread without scratch.
struct ScratchLease(Option<Box<WorkerScratch>>);

impl Drop for ScratchLease {
    fn drop(&mut self) {
        SCRATCH.with(|slot| slot.set(self.0.take()));
        SCRATCH_BUSY.with(|busy| busy.set(false));
    }
}

/// Runs `f` with this thread's sticky scratch. Reentrant calls (a
/// nested map running inline inside an outer task, which already
/// borrows the sticky scratch) get a throwaway scratch instead.
fn with_scratch<R>(f: impl FnOnce(&mut WorkerScratch) -> R) -> R {
    if SCRATCH_BUSY.with(Cell::get) {
        let mut temp = WorkerScratch::default();
        return f(&mut temp);
    }
    SCRATCH_BUSY.with(|busy| busy.set(true));
    let taken = SCRATCH.with(Cell::take).unwrap_or_default();
    let mut lease = ScratchLease(Some(taken));
    f(lease
        .0
        .as_mut()
        // tidy:allow(panic: the lease was constructed with Some two lines up)
        .expect("scratch lease holds the taken scratch"))
}

/// Sticky per-worker storage: type-and-key-addressed slots that survive
/// across tasks, maps, and frames.
///
/// Slots hold whatever warm state a task family wants to reuse — the
/// decode stack parks a solver workspace per tile geometry — and are
/// bounded (least-recently-used slot evicted beyond
/// [`WorkerScratch::MAX_SLOTS`]), so a worker serving many geometries
/// cannot grow without limit.
#[derive(Default)]
pub struct WorkerScratch {
    /// Most-recently-used first; each entry is `(key, state)`.
    slots: Vec<(u64, Box<dyn Any + Send>)>,
}

impl WorkerScratch {
    /// Maximum retained slots per worker (LRU beyond this).
    pub const MAX_SLOTS: usize = 8;

    /// Returns the slot for `(key, S)`, creating it with `init` on
    /// first use. A key can back distinct types without collision; the
    /// slot moves to most-recently-used position on every access.
    pub fn slot<S: Any + Send, F: FnOnce() -> S>(&mut self, key: u64, init: F) -> &mut S {
        match self
            .slots
            .iter()
            .position(|(k, state)| *k == key && state.is::<S>())
        {
            Some(pos) => self.slots[..=pos].rotate_right(1),
            None => {
                if self.slots.len() == Self::MAX_SLOTS {
                    self.slots.pop();
                }
                self.slots.insert(0, (key, Box::new(init())));
            }
        }
        self.slots[0]
            .1
            .downcast_mut::<S>()
            // tidy:allow(panic: slot 0 was just matched or inserted as type S)
            .expect("front scratch slot has the requested type")
    }

    /// Number of live slots.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots.len()
    }
}

impl std::fmt::Debug for WorkerScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerScratch")
            .field("slots", &self.slots.len())
            .finish()
    }
}

/// Shared queue + worker accounting of one pool.
struct PoolState {
    jobs: VecDeque<Job>,
    /// Live worker threads (spawned, not shut down).
    workers: usize,
    /// Set by [`WorkerPool`]'s `Drop`: workers drain the queue and exit.
    shutdown: bool,
}

struct PoolInner {
    state: Mutex<PoolState>,
    /// Signals queued work (and shutdown) to parked workers.
    work_ready: Condvar,
    /// Serializes [`WorkerPool::broadcast`] rendezvous: two concurrent
    /// broadcasts could each hold half the workers forever.
    broadcast_gate: Mutex<()>,
    max_workers: usize,
}

/// A persistent worker pool. See the [module docs](self) for the
/// execution and determinism model; most callers want the process-wide
/// [`WorkerPool::global`] instance.
pub struct WorkerPool {
    inner: Arc<PoolInner>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.worker_count())
            .field("max_workers", &self.inner.max_workers)
            .finish()
    }
}

/// One `map` call's shared task state: an index-enumerated item queue,
/// an input-ordered result table, and completion/panic plumbing.
struct TaskSet<T, R, F> {
    f: F,
    items: Mutex<std::iter::Enumerate<std::vec::IntoIter<T>>>,
    results: Mutex<Vec<Option<R>>>,
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// Claims and runs items from `set` until the queue is empty. Runs on
/// every participating executor — the root caller and each ticketed
/// worker — with that executor's sticky scratch. Results land at their
/// input index, so *which* executor ran an item never shows in the
/// output. A panicking item is recorded (first payload wins) and the
/// claim loop continues, matching the batch engine's
/// "every item still executes" contract.
// tidy:alloc-free
fn run_tasks<T, R, F>(set: &TaskSet<T, R, F>)
where
    F: Fn(usize, T, &mut WorkerScratch) -> R,
{
    with_scratch(|scratch| loop {
        let claimed = lock(&set.items).next();
        let Some((index, item)) = claimed else {
            break;
        };
        match catch_unwind(AssertUnwindSafe(|| (set.f)(index, item, scratch))) {
            Ok(result) => {
                if let Some(slot) = lock(&set.results).get_mut(index) {
                    *slot = Some(result);
                }
            }
            Err(payload) => {
                let mut first = lock(&set.panic);
                if first.is_none() {
                    *first = Some(payload);
                }
            }
        }
        let mut remaining = lock(&set.remaining);
        *remaining -= 1;
        if *remaining == 0 {
            set.done.notify_all();
        }
    });
}

/// One `broadcast` call's shared state: a rendezvous barrier that pins
/// each ticket to a distinct worker, plus completion/panic plumbing.
struct BroadcastSet<F> {
    f: F,
    /// Tickets that must all be claimed before any runs (forces
    /// distinct workers).
    needed: usize,
    arrived: Mutex<usize>,
    all_arrived: Condvar,
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// Runs one broadcast ticket: rendezvous with the other tickets (so
/// `needed` *distinct* workers hold one each), then run `f` on this
/// worker's sticky scratch.
fn run_broadcast<F: Fn(&mut WorkerScratch)>(set: &BroadcastSet<F>) {
    {
        let mut arrived = lock(&set.arrived);
        *arrived += 1;
        if *arrived == set.needed {
            set.all_arrived.notify_all();
        }
        while *arrived < set.needed {
            arrived = set
                .all_arrived
                .wait(arrived)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| with_scratch(|s| (set.f)(s)))) {
        let mut first = lock(&set.panic);
        if first.is_none() {
            *first = Some(payload);
        }
    }
    let mut remaining = lock(&set.remaining);
    *remaining -= 1;
    if *remaining == 0 {
        set.done.notify_all();
    }
}

/// A worker's life: claim a job or park on the condvar; exit only at
/// pool shutdown, after the queue drains. Job panics are caught here as
/// a last resort (map/broadcast tickets catch their own), so a worker
/// thread is never lost to a panicking task.
// tidy:alloc-free
fn worker_loop(inner: &PoolInner) {
    IS_WORKER.with(|w| w.set(true));
    let mut state = lock(&inner.state);
    loop {
        if let Some(job) = state.jobs.pop_front() {
            drop(state);
            let _ = catch_unwind(AssertUnwindSafe(job));
            state = lock(&inner.state);
        } else if state.shutdown {
            state.workers -= 1;
            return;
        } else {
            state = inner
                .work_ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl WorkerPool {
    /// A private pool capped at `max_workers` helper threads (floored
    /// at 1). Workers spawn on demand, not up front.
    #[must_use]
    pub fn new(max_workers: usize) -> WorkerPool {
        WorkerPool {
            inner: Arc::new(PoolInner {
                state: Mutex::new(PoolState {
                    jobs: VecDeque::new(),
                    workers: 0,
                    shutdown: false,
                }),
                work_ready: Condvar::new(),
                broadcast_gate: Mutex::new(()),
                max_workers: max_workers.max(1),
            }),
        }
    }

    /// The process-wide shared pool, created lazily on first use and
    /// capped by the [`POOL_THREADS_ENV`] environment variable
    /// (helper-worker count; unset/unparsable ⇒
    /// [`DEFAULT_MAX_WORKERS`]). All decode sessions and batch runners
    /// share this instance, so a service decoding many streams warms
    /// one set of workers.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cap = std::env::var(POOL_THREADS_ENV)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or(DEFAULT_MAX_WORKERS);
            WorkerPool::new(cap)
        })
    }

    /// Live worker threads (0 until first demand).
    #[must_use]
    pub fn worker_count(&self) -> usize {
        lock(&self.inner.state).workers
    }

    /// The pool's helper-worker cap.
    #[must_use]
    pub fn max_workers(&self) -> usize {
        self.inner.max_workers
    }

    /// Spawns workers until `wanted` exist (capped by `max_workers`),
    /// returning the live count. Spawn failures are tolerated: the
    /// caller participates in every map, so progress never depends on a
    /// successful spawn.
    fn ensure_workers(&self, wanted: usize) -> usize {
        let target = wanted.min(self.inner.max_workers);
        let mut state = lock(&self.inner.state);
        while state.workers < target {
            let inner = Arc::clone(&self.inner);
            let spawned = std::thread::Builder::new()
                .name("tepics-pool".into())
                .spawn(move || worker_loop(&inner));
            if spawned.is_err() {
                break;
            }
            state.workers += 1;
            parallel::record_spawns(1);
        }
        state.workers
    }

    /// Maps `f` over `items` on up to `threads` executors (this thread
    /// plus up to `threads − 1` pool workers), returning results in
    /// input order — bit-identical at any thread count for a
    /// deterministic `f`.
    ///
    /// `f` receives `(index, item, scratch)`; the scratch is the
    /// executor's sticky [`WorkerScratch`], warm from previous maps.
    /// With `threads <= 1`, a single item, or when called from a pool
    /// worker (nested use), the whole map runs inline on the calling
    /// thread.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic observed among the items (after every
    /// item has executed), matching
    /// [`par_map`](crate::parallel::par_map). Workers survive.
    pub fn map<T, R, F>(&self, threads: usize, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T, &mut WorkerScratch) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let want = threads.max(1).min(n);
        if want <= 1 || is_worker_thread() {
            return with_scratch(|scratch| {
                items
                    .into_iter()
                    .enumerate()
                    .map(|(i, item)| f(i, item, scratch))
                    .collect()
            });
        }
        let mut results = Vec::with_capacity(n);
        results.resize_with(n, || None);
        let set = Arc::new(TaskSet {
            f,
            items: Mutex::new(items.into_iter().enumerate()),
            results: Mutex::new(results),
            remaining: Mutex::new(n),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        let helpers = self.ensure_workers(want - 1).min(want - 1);
        {
            let mut state = lock(&self.inner.state);
            for _ in 0..helpers {
                let ticket = Arc::clone(&set);
                state.jobs.push_back(Box::new(move || run_tasks(&ticket)));
            }
        }
        self.inner.work_ready.notify_all();
        // The caller is executor #0: it works the same queue instead of
        // blocking, so the map completes even with zero live workers.
        run_tasks(&set);
        let mut remaining = lock(&set.remaining);
        while *remaining > 0 {
            remaining = set
                .done
                .wait(remaining)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(remaining);
        let panicked = lock(&set.panic).take();
        if let Some(payload) = panicked {
            resume_unwind(payload);
        }
        let results = std::mem::take(&mut *lock(&set.results));
        results
            .into_iter()
            // tidy:allow(panic: the enumerate queue hands every index to exactly one executor)
            .map(|slot| slot.expect("every index ran exactly once"))
            .collect()
    }

    /// Runs `f` once on the calling thread and once on each of
    /// `executors − 1` distinct pool workers (spawning up to the cap),
    /// returning after all have finished. A rendezvous barrier pins
    /// each ticket to a different worker, so this deterministically
    /// touches `executors` distinct sticky scratches — the warm-up
    /// primitive behind `DecodeSession::prewarm`.
    ///
    /// Inline (a plain single call) when `executors <= 1` or when
    /// called from a pool worker.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic `f` produced on any executor.
    pub fn broadcast<F>(&self, executors: usize, f: F)
    where
        F: Fn(&mut WorkerScratch) + Send + Sync + 'static,
    {
        if executors <= 1 || is_worker_thread() {
            with_scratch(|scratch| f(scratch));
            return;
        }
        // One rendezvous at a time: two interleaved broadcasts could
        // each capture half the workers and wait forever.
        let _gate = lock(&self.inner.broadcast_gate);
        let workers = self.ensure_workers(executors - 1).min(executors - 1);
        let set = Arc::new(BroadcastSet {
            f,
            needed: workers,
            arrived: Mutex::new(0),
            all_arrived: Condvar::new(),
            remaining: Mutex::new(workers),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        {
            let mut state = lock(&self.inner.state);
            for _ in 0..workers {
                let ticket = Arc::clone(&set);
                state
                    .jobs
                    .push_back(Box::new(move || run_broadcast(&ticket)));
            }
        }
        self.inner.work_ready.notify_all();
        // The caller warms its own scratch while the workers rendezvous.
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| with_scratch(|s| (set.f)(s)))) {
            let mut first = lock(&set.panic);
            if first.is_none() {
                *first = Some(payload);
            }
        }
        let mut remaining = lock(&set.remaining);
        while *remaining > 0 {
            remaining = set
                .done
                .wait(remaining)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(remaining);
        let panicked = lock(&set.panic).take();
        if let Some(payload) = panicked {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    /// Signals workers to drain the queue and exit. The global pool is
    /// never dropped; this keeps test-private pools from leaking parked
    /// threads.
    fn drop(&mut self) {
        lock(&self.inner.state).shutdown = true;
        self.inner.work_ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Deterministic per-item busy-spin: skews task durations without
    /// sleeping, so scheduling order varies adversarially across runs
    /// while the work stays CPU-bound.
    fn spin(index: usize) -> u64 {
        let rounds = (index as u64).wrapping_mul(2_654_435_761) % 4_096;
        let mut acc = index as u64 | 1;
        for _ in 0..rounds {
            acc = acc.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        }
        acc
    }

    #[test]
    fn map_preserves_input_order() {
        let pool = WorkerPool::new(4);
        let out = pool.map(4, (0usize..257).collect(), |i, x, _| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, (0..257).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn map_is_deterministic_under_adversarial_skew() {
        let pool = WorkerPool::new(8);
        let task = |i: usize, x: u64, _: &mut WorkerScratch| x.wrapping_add(spin(i));
        let serial = pool.map(1, (0u64..300).collect(), task);
        for threads in [2, 3, 8, 64] {
            let parallel = pool.map(threads, (0u64..300).collect(), task);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let pool = WorkerPool::new(2);
        let empty: Vec<u8> = Vec::new();
        assert!(pool.map(4, empty, |_, x: u8, _| x).is_empty());
        assert_eq!(pool.map(4, vec![7u8], |_, x, _| x + 1), vec![8]);
    }

    #[test]
    fn workers_spawn_on_demand_and_only_once() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.worker_count(), 0, "no demand yet");
        pool.map(3, (0..32).collect(), |i, _: i32, _| spin(i));
        assert_eq!(pool.worker_count(), 2, "threads(3) = caller + 2 workers");
        // Warm maps reuse the live workers: the pool's spawn count (==
        // worker count, workers never exit while the pool lives) stays
        // put. (The *global* spawn counter is asserted in the bench
        // smoke, where no sibling tests spawn concurrently.)
        for _ in 0..5 {
            pool.map(3, (0..32).collect(), |i, _: i32, _| spin(i));
        }
        assert_eq!(pool.worker_count(), 2, "warm maps must not spawn");
    }

    #[test]
    fn thread_cap_is_enforced() {
        let pool = WorkerPool::new(2);
        pool.map(64, (0..256).collect(), |i, _: i32, _| spin(i));
        assert_eq!(pool.worker_count(), 2, "cap of 2 helpers");
    }

    #[test]
    fn panics_propagate_and_workers_survive() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map(3, (0..64).collect(), |_, x: i32, _| {
                assert!(x != 13, "boom at 13");
                x
            })
        }));
        let payload = result.expect_err("panic must re-raise on the caller");
        let message = payload
            .downcast_ref::<&str>()
            .map(ToString::to_string)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(message.contains("boom at 13"), "payload: {message}");
        // The pool stays fully usable afterwards.
        let out = pool.map(3, (0..64).collect(), |_, x: i32, _| x * 2);
        assert_eq!(out, (0..64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn nested_map_runs_inline_without_deadlock() {
        // Each outer item issues an inner map on the same global pool;
        // on workers those run inline, on the caller they re-enter the
        // queue. Either way the math must come out identical.
        let out = WorkerPool::global().map(3, (0u64..12).collect(), |_, x, _| {
            let inner = WorkerPool::global().map(4, (0u64..8).collect(), move |_, y, _| x * 10 + y);
            assert!(
                !inner.is_empty() && inner[7] == x * 10 + 7,
                "nested map wrong"
            );
            inner.iter().sum::<u64>()
        });
        let expected: Vec<u64> = (0u64..12)
            .map(|x| (0..8).map(|y| x * 10 + y).sum())
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn scratch_slots_stick_across_maps() {
        let pool = WorkerPool::new(3);
        let inits = Arc::new(AtomicUsize::new(0));
        let task = {
            let inits = Arc::clone(&inits);
            move |i: usize, x: u64, scratch: &mut WorkerScratch| {
                let buf = scratch.slot::<Vec<u64>, _>(0xBEEF, || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    vec![0; 16]
                });
                buf[i % 16] = x;
                spin(i).wrapping_add(buf[i % 16])
            }
        };
        let first = pool.map(4, (0u64..64).collect(), task.clone());
        let after_first = inits.load(Ordering::Relaxed);
        assert!(
            after_first <= 4,
            "at most one init per executor, saw {after_first}"
        );
        let second = pool.map(4, (0u64..64).collect(), task);
        assert_eq!(first, second, "sticky scratch must not change results");
        assert!(
            inits.load(Ordering::Relaxed) <= 4,
            "warm executors must reuse their slot"
        );
    }

    #[test]
    fn scratch_slot_eviction_is_bounded_and_typed() {
        let mut scratch = WorkerScratch::default();
        for key in 0..(WorkerScratch::MAX_SLOTS as u64 + 4) {
            let v = scratch.slot::<u64, _>(key, || key * 100);
            assert_eq!(*v, key * 100);
        }
        assert_eq!(scratch.slots(), WorkerScratch::MAX_SLOTS);
        // Key 0 was evicted (LRU); re-creating it works.
        assert_eq!(*scratch.slot::<u64, _>(0, || 777), 777);
        // Same key, different type: distinct slot, no collision.
        assert_eq!(*scratch.slot::<i32, _>(0, || -5), -5);
    }

    #[test]
    fn broadcast_touches_every_executor_exactly_once() {
        let pool = WorkerPool::new(3);
        let touched = Arc::new(AtomicUsize::new(0));
        let t = Arc::clone(&touched);
        pool.broadcast(4, move |scratch| {
            scratch.slot::<u64, _>(0xCAFE, || 1);
            t.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(
            touched.load(Ordering::Relaxed),
            4,
            "caller + 3 workers, each once"
        );
        // A following map finds every scratch warm: zero slot inits.
        let inits = Arc::new(AtomicUsize::new(0));
        let i2 = Arc::clone(&inits);
        pool.map(4, (0u64..64).collect(), move |i, _, scratch| {
            scratch.slot::<u64, _>(0xCAFE, || {
                i2.fetch_add(1, Ordering::Relaxed);
                1
            });
            spin(i)
        });
        assert_eq!(
            inits.load(Ordering::Relaxed),
            0,
            "broadcast must have warmed every executor"
        );
    }

    #[test]
    fn global_pool_is_shared_and_env_capped() {
        let a = WorkerPool::global();
        let b = WorkerPool::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.max_workers() >= 1);
    }
}
