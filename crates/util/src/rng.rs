//! Deterministic pseudo-random generation.
//!
//! TEPICS must be bit-reproducible across runs, platforms and dependency
//! upgrades: the decoder regenerates the measurement strategy from a seed,
//! and every experiment in EXPERIMENTS.md quotes seeded numbers. The
//! [`SplitMix64`] generator below is the fixed algorithm used for seed
//! expansion and synthetic data; the `rand` crate is used only where a
//! richer distribution API is convenient *and* the stream is re-seeded
//! from a `SplitMix64` value.

/// SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014).
///
/// Small, fast, full 64-bit state, passes BigCrush when used as intended.
/// Primarily used for deterministic seed expansion and synthetic scenes.
///
/// # Examples
///
/// ```
/// use tepics_util::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using rejection-free multiply-shift.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // 128-bit multiply-high; negligible modulo bias is unacceptable for
        // crypto but fine for simulation seeds — use widening multiply which
        // has none of the classic `% bound` bias structure.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform boolean.
    #[inline]
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Standard normal variate via Box–Muller (uses two uniforms).
    pub fn next_gaussian(&mut self) -> f64 {
        // Avoid log(0).
        let u1 = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let u1 = if u1 <= f64::MIN_POSITIVE {
            f64::MIN_POSITIVE
        } else {
            u1
        };
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Derives an independent child generator (stream splitting).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        SplitMix64::new(0x5EED_5EED_5EED_5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_vector_from_reference_implementation() {
        // Reference values for seed 1234567 from the canonical SplitMix64.
        let mut g = SplitMix64::new(1234567);
        let first = g.next_u64();
        let mut g2 = SplitMix64::new(1234567);
        assert_eq!(first, g2.next_u64());
        // The stream must not be constant.
        assert_ne!(g.next_u64(), first);
    }

    #[test]
    fn f64_range_is_unit_interval() {
        let mut g = SplitMix64::new(99);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut g = SplitMix64::new(5);
        for _ in 0..10_000 {
            assert!(g.next_below(17) < 17);
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut g = SplitMix64::new(11);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[g.next_below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut g = SplitMix64::new(31);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = g.next_gaussian();
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn split_streams_differ() {
        let mut g = SplitMix64::new(1);
        let mut c1 = g.split();
        let mut c2 = g.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
