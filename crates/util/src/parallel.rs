//! Scoped-thread parallel map with deterministic output ordering.
//!
//! The TEPICS workloads that want parallelism (batch capture→recover
//! loops, experiment sweeps) are embarrassingly parallel over
//! independent items, so a dependency-free work queue over
//! [`std::thread::scope`] covers them: results land at the index of
//! their input item, so the output is **bit-identical regardless of
//! thread count or scheduling** as long as the per-item function is
//! itself deterministic.
//!
//! # Examples
//!
//! ```
//! use tepics_util::parallel::par_map;
//!
//! let squares = par_map(4, &[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Returns the number of worker threads to use by default: the
/// machine's available parallelism, floored at 1.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// OS threads spawned by the TEPICS parallel primitives so far — every
/// scoped [`par_map`] worker and every [`pool`](crate::pool) worker,
/// process-wide and monotone.
static THREAD_SPAWNS: AtomicU64 = AtomicU64::new(0);

/// Total worker threads spawned by [`par_map`] and the
/// [`pool`](crate::pool) since process start. Benchmarks diff this
/// around a workload to prove the steady state spawns nothing (a warm
/// pool decode's delta is 0; every `par_map` call's delta is its worker
/// count).
#[must_use]
pub fn thread_spawn_count() -> u64 {
    THREAD_SPAWNS.load(Ordering::Relaxed)
}

/// Records `n` worker spawns (shared with the persistent pool).
pub(crate) fn record_spawns(n: u64) {
    THREAD_SPAWNS.fetch_add(n, Ordering::Relaxed);
}

/// Maps `f` over `items` on up to `threads` worker threads, returning
/// the results in input order.
///
/// `f` receives `(index, &item)`. Items are claimed from a shared
/// atomic counter, so scheduling is dynamic (long and short items mix
/// freely), while the result vector is ordered by input index — output
/// does not depend on which thread ran which item.
///
/// With `threads <= 1` (or a single item) the map runs inline on the
/// caller's thread with no synchronization, which keeps single-threaded
/// runs easy to profile and trace.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    record_spawns(workers as u64);
    let next = AtomicUsize::new(0);
    // Each worker claims ≥ items/workers items only when scheduling is
    // perfectly even; reserve that much and let the rare uneven worker
    // grow once or twice.
    let per_worker = items.len().div_ceil(workers);
    let collected: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::with_capacity(per_worker);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(i, item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            // tidy:allow(panic: re-raises a worker's panic on the caller; swallowing it would fabricate results)
            .map(|h| h.join().expect("parallel map worker panicked"))
            .collect()
    });

    // Reassemble in input order directly: indices are a permutation of
    // 0..n (each claimed exactly once), so a sort by index restores
    // input order without the former `Vec<Option<R>>` staging pass and
    // its per-item double move.
    let mut flat: Vec<(usize, R)> = collected.into_iter().flatten().collect();
    flat.sort_unstable_by_key(|&(i, _)| i);
    flat.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(8, &items, |i, &x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let items: Vec<u64> = (0..100).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        let serial = par_map(1, &items, f);
        for threads in [2, 3, 8, 64] {
            assert_eq!(par_map(threads, &items, f), serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u8> = vec![];
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[7u8], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn zero_threads_runs_inline() {
        assert_eq!(par_map(0, &[1, 2, 3], |_, &x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
