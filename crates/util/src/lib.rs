//! Foundation utilities for the TEPICS workspace.
//!
//! This crate hosts the small, dependency-free building blocks shared by
//! every other TEPICS crate:
//!
//! * [`BitVec`] — a compact, word-packed bit vector used for selection
//!   masks and cellular-automaton states.
//! * [`SplitMix64`] — a tiny, deterministic pseudo-random generator used
//!   wherever reproducibility across runs and platforms matters more than
//!   statistical sophistication (seed expansion, synthetic scenes).
//! * [`RunningStats`] / [`Histogram`] — streaming statistics used by the
//!   experiment harness.
//! * [`fixed`] — fixed-width integer helpers that model the saturating
//!   hardware accumulators of the sensor's Sample & Add stage.
//! * [`parallel`] — a scoped-thread parallel map with deterministic,
//!   input-ordered results, used by the batch capture engine.
//! * [`pool`] — a persistent worker pool with sticky per-worker scratch
//!   slots and the same determinism contract; the streaming decode
//!   paths run on it so the warm steady state spawns no threads.
//! * [`simd`] — explicit-width chunked f64 kernels (`dot4`, `axpy4`,
//!   `sum4`, Lee butterfly pairs) shared by every hot numeric loop.
//!
//! # Examples
//!
//! ```
//! use tepics_util::BitVec;
//!
//! let mut bits = BitVec::zeros(128);
//! bits.set(3, true);
//! bits.set(64, true);
//! assert_eq!(bits.count_ones(), 2);
//! assert!(bits.get(64));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod fixed;
pub mod parallel;
pub mod pool;
pub mod rng;
pub mod simd;
pub mod stats;

pub use bits::BitVec;
pub use rng::SplitMix64;
pub use stats::{Histogram, RunningStats};
