//! Explicit-width chunked f64 kernels shared by every hot loop.
//!
//! Rust with `forbid(unsafe_code)` and no external crates cannot name
//! `f64x4` directly, but LLVM reliably vectorizes a loop whose body is
//! four *independent* lane accumulators over `chunks_exact(4)` — the
//! dependence chains are explicit, the trip count is known, and no lane
//! reads another lane's partial. Every kernel here is written in that
//! style so the whole workspace shares one audited implementation (and
//! one reassociation order) for dot products, AXPY updates, horizontal
//! sums, and the Lee DCT butterfly passes.
//!
//! # Determinism contract
//!
//! Each kernel fixes one summation order that does not depend on thread
//! count, warm/cold state, or call site: lane partials are accumulated
//! in slice order and reduced in the fixed order `(s0 + s1) + (s2 + s3)`.
//! Results are therefore bit-identical run to run, although they may
//! differ from a naive sequential sum in the last bits (bounded well
//! below 1e-10 relative for the workspace's problem sizes; see the
//! property tests in `tepics-cs`).

/// Sum of a slice using four independent lane accumulators.
///
/// Deterministic: lanes are reduced as `(s0 + s1) + (s2 + s3)`, then the
/// up-to-three tail elements are added in slice order.
///
/// # Examples
///
/// ```
/// use tepics_util::simd::sum4;
///
/// let v: Vec<f64> = (0..10).map(|i| i as f64).collect();
/// assert_eq!(sum4(&v), 45.0);
/// ```
// tidy:alloc-free
#[inline]
pub fn sum4(v: &[f64]) -> f64 {
    let mut s = [0.0f64; 4];
    let mut chunks = v.chunks_exact(4);
    for c in &mut chunks {
        s[0] += c[0];
        s[1] += c[1];
        s[2] += c[2];
        s[3] += c[3];
    }
    let mut acc = (s[0] + s[1]) + (s[2] + s[3]);
    for &x in chunks.remainder() {
        acc += x;
    }
    acc
}

/// Dot product `Σ a[i]·b[i]` using four independent lane accumulators.
///
/// Deterministic: same reduction order as [`sum4`]. Only the first
/// `min(a.len(), b.len())` elements participate, matching
/// `zip`-semantics at the call sites.
///
/// # Examples
///
/// ```
/// use tepics_util::simd::dot4;
///
/// assert_eq!(dot4(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
/// ```
// tidy:alloc-free
#[inline]
pub fn dot4(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut s = [0.0f64; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (x, y) in (&mut ca).zip(&mut cb) {
        s[0] += x[0] * y[0];
        s[1] += x[1] * y[1];
        s[2] += x[2] * y[2];
        s[3] += x[3] * y[3];
    }
    let mut acc = (s[0] + s[1]) + (s[2] + s[3]);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        acc += x * y;
    }
    acc
}

/// AXPY update `y[i] += alpha · x[i]`, four lanes per iteration.
///
/// Element-wise (no cross-lane reduction), so the result is exactly the
/// same as the scalar loop — only the instruction schedule changes.
///
/// # Panics
///
/// Panics if `y.len() != x.len()`.
///
/// # Examples
///
/// ```
/// use tepics_util::simd::axpy4;
///
/// let mut y = vec![1.0; 5];
/// axpy4(2.0, &[1.0, 2.0, 3.0, 4.0, 5.0], &mut y);
/// assert_eq!(y, vec![3.0, 5.0, 7.0, 9.0, 11.0]);
/// ```
// tidy:alloc-free
#[inline]
pub fn axpy4(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(y.len(), x.len(), "axpy4 length mismatch");
    let mut cy = y.chunks_exact_mut(4);
    let mut cx = x.chunks_exact(4);
    for (yd, xs) in (&mut cy).zip(&mut cx) {
        yd[0] += alpha * xs[0];
        yd[1] += alpha * xs[1];
        yd[2] += alpha * xs[2];
        yd[3] += alpha * xs[3];
    }
    for (yd, xs) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *yd += alpha * xs;
    }
}

/// Forward Lee butterfly split: for a length-`2·half` signal `x`, writes
/// `a[i] = x[i] + x[n-1-i]` and `b[i] = (x[i] - x[n-1-i]) · t[i]`.
///
/// The loop walks `x`'s front half forward and its back half backward;
/// lanes stay independent, so the result is exactly the scalar loop's.
///
/// # Panics
///
/// Panics if `a`, `b`, or `t` are shorter than `x.len() / 2`.
// tidy:alloc-free
#[inline]
pub fn butterfly_split(x: &[f64], t: &[f64], a: &mut [f64], b: &mut [f64]) {
    let n = x.len();
    let half = n / 2;
    let (front, back) = x.split_at(half);
    let back = &back[n % 2..];
    for i in 0..half {
        let (p, q) = (front[i], back[half - 1 - i]);
        a[i] = p + q;
        b[i] = (p - q) * t[i];
    }
}

/// Inverse Lee butterfly merge: given even-part `a` and twiddled odd
/// part `b`, writes `v[i] = a[i] + b[i]·t[i]` and
/// `v[n-1-i] = a[i] - b[i]·t[i]` for a length-`2·half` output `v`.
///
/// # Panics
///
/// Panics if `a`, `b`, or `t` are shorter than `v.len() / 2`.
// tidy:alloc-free
#[inline]
pub fn butterfly_merge(a: &[f64], b: &[f64], t: &[f64], v: &mut [f64]) {
    let n = v.len();
    let half = n / 2;
    let (front, back) = v.split_at_mut(half);
    let back = &mut back[n % 2..];
    for i in 0..half {
        let y = b[i] * t[i];
        front[i] = a[i] + y;
        back[half - 1 - i] = a[i] - y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = crate::SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() * 2.0 - 1.0).collect()
    }

    #[test]
    fn sum4_matches_sequential_to_tolerance() {
        for n in [0usize, 1, 3, 4, 5, 8, 17, 64, 1000] {
            let v = pseudo(n, n as u64 + 1);
            let seq: f64 = v.iter().sum();
            assert!(
                (sum4(&v) - seq).abs() <= 1e-12 * seq.abs().max(1.0),
                "n={n}"
            );
        }
    }

    #[test]
    fn sum4_is_deterministic() {
        let v = pseudo(123, 9);
        let a = sum4(&v);
        for _ in 0..10 {
            assert_eq!(sum4(&v).to_bits(), a.to_bits());
        }
    }

    #[test]
    fn dot4_matches_sequential_to_tolerance() {
        for n in [0usize, 1, 2, 4, 7, 16, 63, 500] {
            let a = pseudo(n, 2 * n as u64 + 1);
            let b = pseudo(n, 3 * n as u64 + 5);
            let seq: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!(
                (dot4(&a, &b) - seq).abs() <= 1e-12 * seq.abs().max(1.0),
                "n={n}"
            );
        }
    }

    #[test]
    fn dot4_truncates_to_shorter_slice() {
        assert_eq!(dot4(&[1.0, 2.0, 3.0], &[10.0, 10.0]), 30.0);
        assert_eq!(dot4(&[2.0], &[1.0, 99.0, 99.0]), 2.0);
    }

    #[test]
    fn axpy4_is_exactly_the_scalar_loop() {
        for n in [0usize, 1, 4, 6, 33] {
            let x = pseudo(n, 11 + n as u64);
            let y0 = pseudo(n, 17 + n as u64);
            let mut fast = y0.clone();
            axpy4(0.37, &x, &mut fast);
            let mut slow = y0;
            for (yd, xs) in slow.iter_mut().zip(&x) {
                *yd += 0.37 * xs;
            }
            assert_eq!(fast, slow, "n={n}");
        }
    }

    #[test]
    fn butterflies_round_trip() {
        for half in [1usize, 2, 4, 8, 16] {
            let n = 2 * half;
            let x = pseudo(n, half as u64);
            let t: Vec<f64> = (0..half).map(|i| 1.0 + 0.1 * i as f64).collect();
            let mut a = vec![0.0; half];
            let mut b = vec![0.0; half];
            butterfly_split(&x, &t, &mut a, &mut b);
            // Invert the split by hand: b holds (p-q)·t, so q = p - b/t.
            let inv_t: Vec<f64> = t.iter().map(|v| 1.0 / v).collect();
            let halved: Vec<f64> = b.iter().zip(&inv_t).map(|(v, it)| v * it * 0.5).collect();
            let mut v = vec![0.0; n];
            let ones = vec![1.0; half];
            let even: Vec<f64> = a.iter().map(|v| v * 0.5).collect();
            butterfly_merge(&even, &halved, &ones, &mut v);
            for (i, (orig, got)) in x.iter().zip(&v).enumerate() {
                assert!((orig - got).abs() < 1e-12, "half={half} i={i}");
            }
        }
    }

    #[test]
    fn butterfly_split_matches_direct_formula() {
        let x = pseudo(12, 3);
        let t = pseudo(6, 4);
        let mut a = vec![0.0; 6];
        let mut b = vec![0.0; 6];
        butterfly_split(&x, &t, &mut a, &mut b);
        for i in 0..6 {
            assert_eq!(a[i], x[i] + x[11 - i]);
            assert_eq!(b[i], (x[i] - x[11 - i]) * t[i]);
        }
    }
}
