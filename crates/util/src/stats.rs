//! Streaming statistics for experiments and benches.
//!
//! The experiment harness accumulates large Monte-Carlo populations
//! (event overlaps, code errors, reconstruction PSNRs); [`RunningStats`]
//! provides numerically stable single-pass moments (Welford) and
//! [`Histogram`] fixed-bin counting with percentile queries.

use std::fmt;

/// Single-pass mean/variance/extrema accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use tepics_util::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds every observation from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.push(x);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.6} sd={:.6} min={:.6} max={:.6}",
            self.n,
            self.mean(),
            self.std_dev(),
            self.min(),
            self.max()
        )
    }
}

/// Fixed-bin histogram over a closed range, with saturating edge bins.
///
/// Observations below the range land in the first bin, above in the last,
/// so no sample is ever dropped (important when measuring error tails).
///
/// # Examples
///
/// ```
/// use tepics_util::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// h.push(0.5);
/// h.push(9.5);
/// assert_eq!(h.total(), 2);
/// assert_eq!(h.counts()[0], 1);
/// assert_eq!(h.counts()[9], 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram of `bins` equal-width bins spanning `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Adds one observation (clamped into the edge bins).
    pub fn push(&mut self, x: f64) {
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Approximate `p`-quantile (0 ≤ p ≤ 1) from the binned data.
    ///
    /// Returns the center of the bin where the cumulative count crosses
    /// `p * total`, or `lo` when empty.
    pub fn quantile(&self, p: f64) -> f64 {
        if self.total == 0 {
            return self.lo;
        }
        let target = (p.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return self.bin_center(i);
            }
        }
        self.bin_center(self.counts.len() - 1)
    }

    /// Renders a compact ASCII bar chart, one line per bin.
    pub fn to_ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat((c as usize * width) / max as usize);
            out.push_str(&format!(
                "{:>10.3} | {:<width$} {}\n",
                self.bin_center(i),
                bar,
                c
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive_moments() {
        let xs = [1.5, -2.0, 0.25, 8.0, 3.5, 3.5];
        let mut s = RunningStats::new();
        s.extend(xs.iter().copied());
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() as f64 - 1.0);
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), -2.0);
        assert_eq!(s.max(), 8.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0).collect();
        let mut whole = RunningStats::new();
        whole.extend(xs.iter().copied());
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        left.extend(xs[..37].iter().copied());
        right.extend(xs[37..].iter().copied());
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn histogram_bins_and_saturates() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for x in [-5.0, 0.1, 0.3, 0.6, 0.9, 42.0] {
            h.push(x);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts(), &[2, 1, 1, 2]);
    }

    #[test]
    fn histogram_quantile_is_monotone() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..1000 {
            h.push(i as f64 / 10.0);
        }
        let q25 = h.quantile(0.25);
        let q50 = h.quantile(0.5);
        let q75 = h.quantile(0.75);
        assert!(q25 <= q50 && q50 <= q75);
        assert!((q50 - 50.0).abs() < 2.0, "median {q50} off");
    }

    #[test]
    fn ascii_render_contains_all_bins() {
        let mut h = Histogram::new(0.0, 1.0, 3);
        h.push(0.5);
        let art = h.to_ascii(20);
        assert_eq!(art.lines().count(), 3);
    }
}
