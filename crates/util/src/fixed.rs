//! Fixed-width integer helpers modeling hardware accumulators.
//!
//! The sensor's readout path is built from width-limited registers: an
//! 8-bit time counter, 14-bit per-column Sample & Add words, and a 20-bit
//! compressed-sample accumulator (Eq. (1) of the paper:
//! `N_B = N_b + log2(M·N)`). [`SaturatingAccumulator`] reproduces that
//! arithmetic including sticky overflow detection, so a configuration
//! that would clip in silicon is caught rather than silently wrapped.

/// Number of bits needed to represent values `0..=n`.
///
/// This is `ceil(log2(n+1))`; `bits_for(0) == 0`.
///
/// # Examples
///
/// ```
/// use tepics_util::fixed::bits_for;
/// assert_eq!(bits_for(255), 8);
/// assert_eq!(bits_for(256), 9);
/// assert_eq!(bits_for(0), 0);
/// ```
pub fn bits_for(n: u64) -> u32 {
    64 - n.leading_zeros()
}

/// Paper Eq. (1): bits needed for a sum of `m * n` pixel values of
/// `pixel_bits` bits each, `N_B = N_b + log2(M·N)`.
///
/// `m * n` must be a power of two for the equation to be exact (as in the
/// paper's 64×64 array); otherwise the ceiling is used.
///
/// # Examples
///
/// ```
/// use tepics_util::fixed::sum_bits;
/// assert_eq!(sum_bits(8, 64, 64), 20); // the paper's 20-bit samples
/// assert_eq!(sum_bits(8, 8, 8), 14);   // 8×8 block-based CS
/// ```
pub fn sum_bits(pixel_bits: u32, m: u32, n: u32) -> u32 {
    let cells = (m as u64) * (n as u64);
    assert!(cells > 0, "array must be non-empty");
    pixel_bits + (cells as f64).log2().ceil() as u32
}

/// Maximum value representable in `bits` bits.
///
/// # Panics
///
/// Panics if `bits > 63`.
pub fn max_value(bits: u32) -> u64 {
    assert!(bits <= 63, "width {bits} exceeds supported range");
    (1u64 << bits) - 1
}

/// A width-limited accumulator with sticky saturation, mirroring the
/// behavior of a hardware adder that clips at full scale.
///
/// # Examples
///
/// ```
/// use tepics_util::fixed::SaturatingAccumulator;
///
/// let mut acc = SaturatingAccumulator::new(4); // 4-bit: max 15
/// acc.add(9);
/// acc.add(9);
/// assert_eq!(acc.value(), 15);
/// assert!(acc.overflowed());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SaturatingAccumulator {
    bits: u32,
    value: u64,
    overflowed: bool,
}

impl SaturatingAccumulator {
    /// Creates an accumulator of the given bit width, starting at zero.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `bits > 63`.
    pub fn new(bits: u32) -> Self {
        assert!(
            bits > 0 && bits <= 63,
            "unsupported accumulator width {bits}"
        );
        SaturatingAccumulator {
            bits,
            value: 0,
            overflowed: false,
        }
    }

    /// Adds `x`, clipping at full scale and latching the overflow flag.
    pub fn add(&mut self, x: u64) {
        let max = max_value(self.bits);
        let sum = self.value.saturating_add(x);
        if sum > max {
            self.value = max;
            self.overflowed = true;
        } else {
            self.value = sum;
        }
    }

    /// Current accumulated value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Configured width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// `true` if any addition has ever clipped (sticky).
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Resets value and overflow flag, keeping the width.
    pub fn reset(&mut self) {
        self.value = 0;
        self.overflowed = false;
    }
}

/// A free-running wrap-around counter of `bits` width, modeling the
/// sensor's global time counter sampled by the TDC.
///
/// # Examples
///
/// ```
/// use tepics_util::fixed::WrappingCounter;
///
/// let c = WrappingCounter::new(8);
/// assert_eq!(c.value_at(255), 255);
/// assert_eq!(c.value_at(256), 0); // 8-bit wrap
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WrappingCounter {
    bits: u32,
}

impl WrappingCounter {
    /// Creates a counter of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `bits > 63`.
    pub fn new(bits: u32) -> Self {
        assert!(bits > 0 && bits <= 63, "unsupported counter width {bits}");
        WrappingCounter { bits }
    }

    /// Counter value after `ticks` clock edges since reset.
    pub fn value_at(&self, ticks: u64) -> u64 {
        ticks & max_value(self.bits)
    }

    /// Number of representable states (`2^bits`).
    pub fn states(&self) -> u64 {
        1u64 << self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_powers_of_two() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(u64::MAX), 64);
    }

    #[test]
    fn eq1_reproduces_paper_values() {
        // Sect. II: 8b pixels, 64×64 full frame -> 20b samples.
        assert_eq!(sum_bits(8, 64, 64), 20);
        // Sect. II: 8×8 blocks -> 14b. Also the per-column width:
        // 64 pixels × 8b = 14b column sums (Sect. III.B).
        assert_eq!(sum_bits(8, 8, 8), 14);
        assert_eq!(sum_bits(8, 64, 1), 14);
    }

    #[test]
    fn saturating_accumulator_clips_and_latches() {
        let mut acc = SaturatingAccumulator::new(14);
        for _ in 0..64 {
            acc.add(255);
        }
        assert_eq!(acc.value(), 64 * 255);
        assert!(!acc.overflowed(), "64×255 must fit in 14 bits");
        acc.add(200);
        assert!(acc.overflowed());
        assert_eq!(acc.value(), max_value(14));
        acc.reset();
        assert!(!acc.overflowed());
        assert_eq!(acc.value(), 0);
    }

    #[test]
    fn twenty_bit_sample_fits_full_frame_worst_case() {
        // Worst case compressed sample: all 4096 pixels selected at code 255.
        let mut acc = SaturatingAccumulator::new(20);
        for _ in 0..4096 {
            acc.add(255);
        }
        assert!(
            !acc.overflowed(),
            "Eq. (1) guarantees no clipping at 20 bits"
        );
        assert_eq!(acc.value(), 4096 * 255);
    }

    #[test]
    fn wrapping_counter_wraps() {
        let c = WrappingCounter::new(8);
        assert_eq!(c.states(), 256);
        assert_eq!(c.value_at(0), 0);
        assert_eq!(c.value_at(257), 1);
    }

    #[test]
    #[should_panic(expected = "unsupported accumulator width")]
    fn zero_width_accumulator_panics() {
        SaturatingAccumulator::new(0);
    }
}
