//! Chip geometry, area and power accounting (Sect. IV).
//!
//! The silicon artifacts of the paper — die layout (Fig. 4), pixel
//! layout (Fig. 5), conceptual floorplan (Fig. 2) and the Table II
//! feature summary — are reproduced by an accounting model: every
//! published geometric number is a parameter, derived quantities (array
//! extent, fill factor, periphery budget, power) are computed, and the
//! `table2`/`fig2`/`fig45` experiments print paper-vs-model tables.
//!
//! Power is a first-order CMOS model (static bias of 4096 comparators +
//! dynamic `C·V²·f·activity` of the digital blocks) parameterized by
//! published quantities only; it exists to check *consistency* with the
//! "<100 mW" bound of Table II, not to predict silicon.

use crate::config::SensorConfig;

/// Micrometer-denominated geometry of the prototype.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipModel {
    config: SensorConfig,
    /// Pixel pitch (µm) — Table II: 22 µm.
    pixel_pitch_um: f64,
    /// Die width including pads (µm) — Table II: 3174 µm.
    die_width_um: f64,
    /// Die height including pads (µm) — Table II: 2227 µm.
    die_height_um: f64,
    /// Photodiode fill factor — Table II: 9.2 %.
    fill_factor: f64,
    /// Pad count — Sect. IV: 84 pads, one third power/ground.
    pad_count: usize,
    /// Pad-ring depth (µm), a typical 0.18 µm value.
    pad_ring_um: f64,
}

/// One row of an area or feature report.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportRow {
    /// Quantity name.
    pub name: String,
    /// Value as reported by the paper (empty when the paper gives none).
    pub paper: String,
    /// Value derived by the model.
    pub model: String,
}

impl ChipModel {
    /// Builds the accounting model for a configuration, using the
    /// paper's published geometry.
    pub fn new(config: SensorConfig) -> Self {
        ChipModel {
            config,
            pixel_pitch_um: 22.0,
            die_width_um: 3174.0,
            die_height_um: 2227.0,
            fill_factor: 0.092,
            pad_count: 84,
            pad_ring_um: 90.0,
        }
    }

    /// The paper's 64×64 prototype.
    pub fn paper_prototype() -> Self {
        ChipModel::new(SensorConfig::paper_prototype())
    }

    /// Pixel pitch (µm).
    pub fn pixel_pitch_um(&self) -> f64 {
        self.pixel_pitch_um
    }

    /// Pixel area (µm²).
    pub fn pixel_area_um2(&self) -> f64 {
        self.pixel_pitch_um * self.pixel_pitch_um
    }

    /// Photodiode area from the fill factor (µm²) — Fig. 5's dominant
    /// block: 9.2 % of 22×22 µm² ≈ 44.5 µm².
    pub fn photodiode_area_um2(&self) -> f64 {
        self.pixel_area_um2() * self.fill_factor
    }

    /// Pixel-array extent (µm × µm).
    pub fn array_extent_um(&self) -> (f64, f64) {
        (
            self.config.cols() as f64 * self.pixel_pitch_um,
            self.config.rows() as f64 * self.pixel_pitch_um,
        )
    }

    /// Die area including pads (mm²).
    pub fn die_area_mm2(&self) -> f64 {
        self.die_width_um * self.die_height_um / 1e6
    }

    /// Core area inside the pad ring (mm²).
    pub fn core_area_mm2(&self) -> f64 {
        let w = self.die_width_um - 2.0 * self.pad_ring_um;
        let h = self.die_height_um - 2.0 * self.pad_ring_um;
        w * h / 1e6
    }

    /// Pixel-array area (mm²).
    pub fn array_area_mm2(&self) -> f64 {
        let (w, h) = self.array_extent_um();
        w * h / 1e6
    }

    /// Fraction of the core occupied by the array.
    pub fn array_core_fraction(&self) -> f64 {
        self.array_area_mm2() / self.core_area_mm2()
    }

    /// CA ring cell count: one per row plus one per column (Fig. 2).
    pub fn ca_cell_count(&self) -> usize {
        self.config.rows() + self.config.cols()
    }

    /// Number of pads dedicated to supply/ground (one third per
    /// Sect. IV).
    pub fn supply_pad_count(&self) -> usize {
        self.pad_count / 3
    }

    /// First-order power budget, block by block, in mW.
    ///
    /// * comparators: 4096 × 150 nA bias at 3.3 V analog supply;
    /// * column drivers + buses: dynamic on event activity;
    /// * TDC counter + Sample & Add + CA: dynamic at `f_clk`, 1.8 V;
    /// * pads/IO: one 20-bit word per sample period.
    pub fn power_budget_mw(&self) -> Vec<(String, f64)> {
        let pixels = self.config.pixel_count() as f64;
        let v_analog = 3.3;
        let v_dig = 1.8;
        let f_clk = self.config.clk_hz();
        let f_cs = 1.0 / self.config.sample_period();
        // Static comparator bias.
        let comparator_mw = pixels * 150e-9 * v_analog * 1e3;
        // Digital node switching: effective capacitance per block.
        let dyn_mw = |cap_f: f64, freq: f64, activity: f64| -> f64 {
            cap_f * v_dig * v_dig * freq * activity * 1e3
        };
        // Column buses: half the pixels fire per sample, bus cap ~300 fF.
        let bus_mw = dyn_mw(
            300e-15 * self.config.cols() as f64,
            f_cs,
            pixels / 2.0 / self.config.cols() as f64,
        );
        // Counter + distribution: ~10 pF equivalent at f_clk.
        let counter_mw = dyn_mw(10e-12, f_clk, 0.5);
        // Sample & Add adders: 14-bit per column at pulse rate.
        let sadd_mw = dyn_mw(2e-12 * self.config.cols() as f64, f_cs, 8.0);
        // CA ring: M+N cells toggling once per sample.
        let ca_mw = dyn_mw(50e-15 * self.ca_cell_count() as f64, f_cs, 1.0);
        // IO: 20 bits at f_cs into ~5 pF pads at 3.3 V.
        let io_mw = 20.0 * 5e-12 * v_analog * v_analog * f_cs * 0.5 * 1e3;
        vec![
            ("pixel comparators (static)".into(), comparator_mw),
            ("column buses".into(), bus_mw),
            ("global counter".into(), counter_mw),
            ("sample & add".into(), sadd_mw),
            ("cellular automaton ring".into(), ca_mw),
            ("pad I/O".into(), io_mw),
        ]
    }

    /// Total modeled power (mW).
    pub fn total_power_mw(&self) -> f64 {
        self.power_budget_mw().iter().map(|(_, p)| p).sum()
    }

    /// The Table II feature summary: paper value vs model value.
    pub fn table_ii(&self) -> Vec<ReportRow> {
        let (aw, ah) = self.array_extent_um();
        let row = |name: &str, paper: &str, model: String| ReportRow {
            name: name.into(),
            paper: paper.into(),
            model,
        };
        vec![
            row(
                "Technology",
                "CMOS 0.18um 1P6M",
                "CMOS 0.18um 1P6M (assumed)".into(),
            ),
            row(
                "Die size (w. pads)",
                "3174um x 2227um",
                format!(
                    "{:.0}um x {:.0}um (array {aw:.0}x{ah:.0})",
                    self.die_width_um, self.die_height_um
                ),
            ),
            row(
                "Pixel size",
                "22um x 22um",
                format!(
                    "{:.0}um x {:.0}um",
                    self.pixel_pitch_um, self.pixel_pitch_um
                ),
            ),
            row(
                "Fill factor",
                "9.2%",
                format!(
                    "{:.1}% (PD {:.1} um^2)",
                    self.fill_factor * 100.0,
                    self.photodiode_area_um2()
                ),
            ),
            row(
                "Resolution",
                "64 x 64",
                format!("{} x {}", self.config.rows(), self.config.cols()),
            ),
            row(
                "Photodiode type",
                "n-well/p-substrate",
                "n-well/p-substrate (assumed)".into(),
            ),
            row(
                "Power supply",
                "3.3V-1.8V",
                "3.3V analog / 1.8V digital".into(),
            ),
            row(
                "Predicted power consumption",
                "<100mW",
                format!("{:.1} mW (first-order model)", self.total_power_mw()),
            ),
            row("Frame rate", "30fps", "30 fps (Eq. 2 with R=0.4)".into()),
            row(
                "Max. compressed sample rate",
                "50kHz",
                format!("{:.1} kHz", 1.0 / self.config.sample_period() / 1e3),
            ),
            row(
                "Clock Freq.",
                "24MHz",
                format!("{:.0} MHz", self.config.clk_hz() / 1e6),
            ),
        ]
    }

    /// ASCII conceptual floorplan in the spirit of Fig. 2: the pixel
    /// array surrounded by the CA ring, row drivers, and the Sample &
    /// Add / counter strip at the bottom.
    pub fn floorplan_ascii(&self) -> String {
        let m = self.config.rows();
        let n = self.config.cols();
        let mut out = String::new();
        out.push_str(&format!(
            "+----------------- CA ring: {} cells -----------------+\n",
            self.ca_cell_count()
        ));
        out.push_str(&format!(
            "| [col CA cells x{n}]                                   |\n"
        ));
        out.push_str(&format!(
            "| [row CA x{m}] [ pixel array {m}x{n}, pitch {:.0} um ]      |\n",
            self.pixel_pitch_um
        ));
        out.push_str("|             [ column buses + event termination ]    |\n");
        out.push_str(&format!(
            "|             [ Sample & Add x{n}, 14b ] [ counter 8b ] |\n"
        ));
        out.push_str("|             [ 20b sample adder -> output ]          |\n");
        out.push_str(&format!(
            "+--------- {} pads ({} supply/ground) ----------------+\n",
            self.pad_count,
            self.supply_pad_count()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn photodiode_area_matches_fill_factor() {
        let chip = ChipModel::paper_prototype();
        // 9.2% of 484 µm² ≈ 44.5 µm².
        assert!((chip.photodiode_area_um2() - 44.528).abs() < 0.01);
    }

    #[test]
    fn array_fits_inside_core() {
        let chip = ChipModel::paper_prototype();
        let (w, h) = chip.array_extent_um();
        assert_eq!(w, 1408.0);
        assert_eq!(h, 1408.0);
        assert!(chip.array_area_mm2() < chip.core_area_mm2());
        let frac = chip.array_core_fraction();
        assert!(
            (0.2..0.8).contains(&frac),
            "array/core fraction {frac} implausible"
        );
    }

    #[test]
    fn die_area_matches_paper() {
        let chip = ChipModel::paper_prototype();
        assert!((chip.die_area_mm2() - 3.174 * 2.227).abs() < 1e-9);
    }

    #[test]
    fn power_model_respects_table_ii_bound() {
        let chip = ChipModel::paper_prototype();
        let total = chip.total_power_mw();
        assert!(
            total < 100.0,
            "modeled power {total} mW exceeds Table II bound"
        );
        assert!(total > 1.0, "modeled power {total} mW implausibly small");
        // Comparators dominate in this class of sensor.
        let budget = chip.power_budget_mw();
        let comparators = budget
            .iter()
            .find(|(n, _)| n.contains("comparator"))
            .expect("comparator entry")
            .1;
        assert!(comparators > 0.3 * total);
    }

    #[test]
    fn ca_ring_has_128_cells_for_the_prototype() {
        assert_eq!(ChipModel::paper_prototype().ca_cell_count(), 128);
    }

    #[test]
    fn table_ii_covers_all_eleven_features() {
        let rows = ChipModel::paper_prototype().table_ii();
        assert_eq!(rows.len(), 11);
        assert!(rows.iter().all(|r| !r.model.is_empty()));
    }

    #[test]
    fn floorplan_mentions_every_block() {
        let art = ChipModel::paper_prototype().floorplan_ascii();
        for needle in ["CA ring", "pixel array", "Sample & Add", "counter", "pads"] {
            assert!(art.contains(needle), "floorplan missing {needle}");
        }
    }
}
