//! VCD (Value Change Dump) export of simulation waveforms.
//!
//! The paper's own verification flow is waveform-based ("formal
//! verification of the chip performance has been realized with
//! post-layout simulation"); TEPICS meets it in the same medium: any
//! [`NodeTrace`] or column arbitration outcome
//! exports to IEEE-1364 VCD, loadable in GTKWave or any EDA waveform
//! viewer next to real post-layout dumps.

use crate::column::ColumnOutcome;
use crate::pixel::NodeTrace;
use std::fmt::Write as _;

/// Timescale used by all TEPICS dumps (1 ps resolution covers the 5 ns
/// events comfortably).
const TIMESCALE_PS: f64 = 1e-12;

/// A VCD writer over named single-bit signals.
///
/// # Examples
///
/// ```
/// use tepics_sensor::vcd::VcdBuilder;
///
/// let mut vcd = VcdBuilder::new("tepics");
/// let clk = vcd.add_signal("clk");
/// vcd.change(0.0, clk, true);
/// vcd.change(5e-9, clk, false);
/// let text = vcd.finish(10e-9);
/// assert!(text.contains("$var wire 1"));
/// ```
#[derive(Debug, Clone)]
pub struct VcdBuilder {
    module: String,
    names: Vec<String>,
    /// `(time_seconds, signal, value)` in insertion order.
    changes: Vec<(f64, usize, bool)>,
}

/// Handle to a declared VCD signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignalId(usize);

impl VcdBuilder {
    /// Creates a builder with the given module (scope) name.
    pub fn new(module: &str) -> Self {
        VcdBuilder {
            module: module.to_string(),
            names: Vec::new(),
            changes: Vec::new(),
        }
    }

    /// Declares a 1-bit wire; returns its handle.
    pub fn add_signal(&mut self, name: &str) -> SignalId {
        self.names.push(name.to_string());
        SignalId(self.names.len() - 1)
    }

    /// Records a value change at `t` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative or NaN.
    pub fn change(&mut self, t: f64, signal: SignalId, value: bool) {
        assert!(t >= 0.0 && !t.is_nan(), "invalid change time {t}");
        self.changes.push((t, signal.0, value));
    }

    /// VCD identifier code for signal index `i` (printable ASCII).
    fn code(i: usize) -> String {
        // Base-94 over '!'..='~'.
        let mut i = i;
        let mut out = String::new();
        loop {
            out.push((b'!' + (i % 94) as u8) as char);
            i /= 94;
            if i == 0 {
                break;
            }
        }
        out
    }

    /// Renders the dump, closing the timeline at `end` seconds.
    ///
    /// Signals without an explicit initial change start at `x`
    /// (unknown), per VCD convention.
    pub fn finish(mut self, end: f64) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$date TEPICS simulation $end");
        let _ = writeln!(out, "$version tepics-sensor $end");
        let _ = writeln!(out, "$timescale 1ps $end");
        let _ = writeln!(out, "$scope module {} $end", self.module);
        for (i, name) in self.names.iter().enumerate() {
            let _ = writeln!(out, "$var wire 1 {} {} $end", Self::code(i), name);
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        let _ = writeln!(out, "$dumpvars");
        let _ = writeln!(out, "$end");
        // Stable sort keeps same-time changes in insertion order.
        self.changes.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut last_ts: Option<u64> = None;
        let mut last_value: Vec<Option<bool>> = vec![None; self.names.len()];
        for (t, sig, value) in self.changes {
            if last_value[sig] == Some(value) {
                continue; // drop redundant changes
            }
            let ts = (t / TIMESCALE_PS).round() as u64;
            if last_ts != Some(ts) {
                let _ = writeln!(out, "#{ts}");
                last_ts = Some(ts);
            }
            let _ = writeln!(out, "{}{}", u8::from(value), Self::code(sig));
            last_value[sig] = Some(value);
        }
        let end_ts = (end.max(0.0) / TIMESCALE_PS).round() as u64;
        let _ = writeln!(out, "#{end_ts}");
        out
    }
}

/// Exports a single-pixel [`NodeTrace`] as VCD (all Fig. 1 nodes).
pub fn node_trace_to_vcd(trace: &NodeTrace) -> String {
    let mut vcd = VcdBuilder::new("pixel");
    let v1 = vcd.add_signal("V1");
    let v2 = vcd.add_signal("V2");
    let v3 = vcd.add_signal("V3");
    let v4 = vcd.add_signal("V4");
    let v5 = vcd.add_signal("V5");
    let q = vcd.add_signal("Q_prime");
    let vo = vcd.add_signal("Vo");
    let co = vcd.add_signal("C_out");
    let mut end = 0.0f64;
    for s in &trace.samples {
        vcd.change(s.t, v1, s.v1);
        vcd.change(s.t, v2, s.v2);
        vcd.change(s.t, v3, s.v3);
        vcd.change(s.t, v4, s.v4);
        vcd.change(s.t, v5, s.v5);
        vcd.change(s.t, q, s.q_prime);
        vcd.change(s.t, vo, s.v_o);
        vcd.change(s.t, co, s.c_out);
        end = end.max(s.t);
    }
    vcd.finish(end)
}

/// Exports a column arbitration outcome as VCD: one `pulse_rowNN` wire
/// per emitting pixel plus the shared bus level.
pub fn column_outcome_to_vcd(outcome: &ColumnOutcome, event_duration: f64) -> String {
    let mut vcd = VcdBuilder::new("column");
    let bus = vcd.add_signal("Vo_bus");
    let mut end = 0.0f64;
    vcd.change(0.0, bus, true);
    let mut signals = Vec::new();
    for e in &outcome.events {
        let sig = vcd.add_signal(&format!("pulse_row{:02}", e.row));
        signals.push((sig, e));
    }
    for (sig, e) in signals {
        vcd.change(0.0, sig, false);
        vcd.change(e.t_grant, sig, true);
        vcd.change(e.t_grant, bus, false);
        let t_end = e.t_grant + event_duration;
        vcd.change(t_end, sig, false);
        vcd.change(t_end, bus, true);
        end = end.max(t_end);
    }
    vcd.finish(end * 1.05)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnArbiter;
    use crate::config::SensorConfig;

    #[test]
    fn builder_emits_well_formed_header_and_changes() {
        let mut vcd = VcdBuilder::new("t");
        let a = vcd.add_signal("a");
        let b = vcd.add_signal("b");
        vcd.change(0.0, a, true);
        vcd.change(1e-9, b, true);
        vcd.change(2e-9, a, false);
        let text = vcd.finish(3e-9);
        assert!(text.contains("$timescale 1ps $end"));
        assert!(text.contains("$var wire 1 ! a $end"));
        assert!(text.contains("$var wire 1 \" b $end"));
        // 1 ns = 1000 ps.
        assert!(text.contains("#1000"));
        assert!(text.contains("#2000"));
        assert!(text.ends_with("#3000\n"));
    }

    #[test]
    fn redundant_changes_are_dropped() {
        let mut vcd = VcdBuilder::new("t");
        let a = vcd.add_signal("a");
        vcd.change(0.0, a, true);
        vcd.change(1e-9, a, true); // no-op
        vcd.change(2e-9, a, false);
        let text = vcd.finish(3e-9);
        let ones = text.matches("\n1!").count();
        assert_eq!(ones, 1, "duplicate change not deduped:\n{text}");
    }

    #[test]
    fn out_of_order_changes_are_sorted() {
        let mut vcd = VcdBuilder::new("t");
        let a = vcd.add_signal("a");
        vcd.change(5e-9, a, false);
        vcd.change(1e-9, a, true);
        let text = vcd.finish(6e-9);
        let p1 = text.find("#1000").unwrap();
        let p5 = text.find("#5000").unwrap();
        assert!(p1 < p5);
    }

    #[test]
    fn node_trace_export_contains_all_signals() {
        let config = SensorConfig::paper_prototype();
        let trace = crate::pixel::NodeTrace::simulate(&config, 0.4, true, 1e-6, 500);
        let text = node_trace_to_vcd(&trace);
        for name in ["V1", "V2", "V3", "V4", "V5", "Q_prime", "Vo", "C_out"] {
            assert!(text.contains(&format!(" {name} $end")), "missing {name}");
        }
    }

    #[test]
    fn column_export_shows_serialized_pulses() {
        let config = SensorConfig::paper_prototype();
        let arbiter = ColumnArbiter::new(&config);
        let outcome = arbiter.arbitrate(&[(3, 1e-6), (7, 1.000002e-6)]);
        let text = column_outcome_to_vcd(&outcome, config.event_duration());
        assert!(text.contains("pulse_row03"));
        assert!(text.contains("pulse_row07"));
        assert!(text.contains("Vo_bus"));
    }

    #[test]
    fn signal_codes_stay_printable_beyond_94_signals() {
        let mut vcd = VcdBuilder::new("wide");
        for i in 0..200 {
            vcd.add_signal(&format!("s{i}"));
        }
        let text = vcd.finish(1e-9);
        for line in text.lines().filter(|l| l.starts_with("$var")) {
            assert!(line.is_ascii(), "non-ascii identifier: {line}");
        }
    }
}
