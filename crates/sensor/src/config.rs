//! Sensor configuration.
//!
//! Defaults reproduce the prototype of Sect. IV (Table II): 64×64
//! pixels, 24 MHz clock, 8-bit time codes, 20 µs per compressed sample
//! (50 kHz at R = 0.4 and 30 fps), 5 ns events. Electrical values are
//! chosen so the full intensity range maps inside the conversion window
//! (see `DESIGN.md` §4 — the paper's `V_rst`/`V_ref` tuning knobs exist
//! here as plain fields, exercised by the adaptive-exposure example).

use std::fmt;

/// How scene intensity maps to the digital pixel code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeTransfer {
    /// The physical pulse-modulation map: crossing time `t = Q/I_ph` is
    /// reciprocal in intensity, then quantized by the TDC. Bright pixels
    /// get small codes.
    Reciprocal,
    /// Idealized control for algorithm-only experiments: code is linear
    /// in intensity (`code = round(E · code_max)`), bypassing the
    /// reciprocal compression of the time axis. Clearly non-physical;
    /// used by ablations to separate CS behavior from transfer-curve
    /// effects.
    Linearized,
}

/// Error returned by [`SensorConfigBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError(String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid sensor configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Complete parameter set of the simulated sensor.
///
/// Construct through [`SensorConfig::builder`]; all getters are simple
/// field reads plus a few derived quantities.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorConfig {
    rows: usize,
    cols: usize,
    // Electrical (photodiode + comparator).
    v_rst: f64,
    v_ref: f64,
    cap_farads: f64,
    i_dark: f64,
    i_scale: f64,
    comparator_delay: f64,
    // Timing.
    sample_period: f64,
    clk_hz: f64,
    counter_bits: u32,
    initial_delay: f64,
    // Event protocol.
    event_duration: f64,
    release_delay: f64,
    // Noise (0 disables each term).
    offset_sigma_volts: f64,
    jitter_sigma: f64,
    fpn_gain_sigma: f64,
    noise_seed: u64,
    transfer: CodeTransfer,
}

impl SensorConfig {
    /// Starts a builder for an array of the given size.
    pub fn builder(rows: usize, cols: usize) -> SensorConfigBuilder {
        SensorConfigBuilder::new(rows, cols)
    }

    /// The paper's 64×64 prototype configuration.
    pub fn paper_prototype() -> SensorConfig {
        SensorConfig::builder(64, 64)
            .build()
            // tidy:allow(panic: constant builder input; validity pinned by the config tests)
            .expect("paper defaults are valid")
    }

    /// Array height (M).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array width (N).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Pixel count (M·N).
    pub fn pixel_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Reset voltage `V_rst` (V).
    pub fn v_rst(&self) -> f64 {
        self.v_rst
    }

    /// Comparator reference `V_ref` (V).
    pub fn v_ref(&self) -> f64 {
        self.v_ref
    }

    /// Integration capacitance (F).
    pub fn cap_farads(&self) -> f64 {
        self.cap_farads
    }

    /// Dark/background current (A).
    pub fn i_dark(&self) -> f64 {
        self.i_dark
    }

    /// Photocurrent at full-scale intensity (A).
    pub fn i_scale(&self) -> f64 {
        self.i_scale
    }

    /// Comparator propagation delay (s).
    pub fn comparator_delay(&self) -> f64 {
        self.comparator_delay
    }

    /// Charge swept between reset and threshold: `C · (V_rst − V_ref)`.
    pub fn integration_charge(&self) -> f64 {
        self.cap_farads * (self.v_rst - self.v_ref)
    }

    /// Compressed-sample period (s): reset → integrate → convert.
    pub fn sample_period(&self) -> f64 {
        self.sample_period
    }

    /// TDC clock (Hz).
    pub fn clk_hz(&self) -> f64 {
        self.clk_hz
    }

    /// TDC clock period (s).
    pub fn t_clk(&self) -> f64 {
        1.0 / self.clk_hz
    }

    /// Counter width (bits).
    pub fn counter_bits(&self) -> u32 {
        self.counter_bits
    }

    /// Largest code value (`2^bits − 1`).
    pub fn code_max(&self) -> u32 {
        (1u32 << self.counter_bits) - 1
    }

    /// Delay between pixel reset and counter start (s) — the paper's
    /// allowance for pulses to reach the bottom of the array.
    pub fn initial_delay(&self) -> f64 {
        self.initial_delay
    }

    /// Duration of the conversion window (s): `2^bits` clock periods.
    pub fn conversion_window(&self) -> f64 {
        (1u64 << self.counter_bits) as f64 * self.t_clk()
    }

    /// Latest pulse arrival that still converts (s, relative to reset).
    pub fn window_end(&self) -> f64 {
        self.initial_delay + self.conversion_window()
    }

    /// Bus-busy time per event (s) — the paper's example uses 5 ns.
    pub fn event_duration(&self) -> f64 {
        self.event_duration
    }

    /// Token-chain release propagation delay (s).
    pub fn release_delay(&self) -> f64 {
        self.release_delay
    }

    /// Comparator offset σ after auto-zeroing (V).
    pub fn offset_sigma_volts(&self) -> f64 {
        self.offset_sigma_volts
    }

    /// Temporal jitter σ on the flip time (s).
    pub fn jitter_sigma(&self) -> f64 {
        self.jitter_sigma
    }

    /// Photoresponse non-uniformity σ (relative gain).
    pub fn fpn_gain_sigma(&self) -> f64 {
        self.fpn_gain_sigma
    }

    /// Seed for all noise generation.
    pub fn noise_seed(&self) -> u64 {
        self.noise_seed
    }

    /// Intensity → code transfer mode.
    pub fn transfer(&self) -> CodeTransfer {
        self.transfer
    }

    /// `true` when every noise term is disabled.
    pub fn is_noiseless(&self) -> bool {
        self.offset_sigma_volts == 0.0 && self.jitter_sigma == 0.0 && self.fpn_gain_sigma == 0.0
    }
}

/// Non-consuming builder for [`SensorConfig`].
///
/// # Examples
///
/// ```
/// use tepics_sensor::SensorConfig;
///
/// // A 12.8 MHz clock makes 256 ticks span the full 20 µs slot, so the
/// // counter must start immediately at reset.
/// let config = SensorConfig::builder(32, 32)
///     .clk_hz(12.8e6)
///     .initial_delay(0.0)
///     .event_duration(5e-9)
///     .build()
///     .unwrap();
/// assert_eq!(config.code_max(), 255);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SensorConfigBuilder {
    config: SensorConfig,
}

impl SensorConfigBuilder {
    /// Creates a builder pre-loaded with the paper-prototype defaults
    /// scaled to the requested array size.
    pub fn new(rows: usize, cols: usize) -> Self {
        SensorConfigBuilder {
            config: SensorConfig {
                rows,
                cols,
                v_rst: 2.8,
                v_ref: 1.3,
                cap_farads: 15e-15,
                // Chosen so E∈[0,1] spans the 24 MHz / 8-bit window:
                // t(1) ≈ 0.5 µs (code ≈ 9), t(0) ≈ 10.5 µs (code ≈ 249).
                i_dark: 2.14e-9,
                i_scale: 42.9e-9,
                comparator_delay: 20e-9,
                sample_period: 20e-6,
                clk_hz: 24e6,
                counter_bits: 8,
                initial_delay: 100e-9,
                event_duration: 5e-9,
                release_delay: 1e-9,
                offset_sigma_volts: 0.0,
                jitter_sigma: 0.0,
                fpn_gain_sigma: 0.0,
                noise_seed: 0x7EFC5,
                transfer: CodeTransfer::Reciprocal,
            },
        }
    }

    /// Sets `V_rst` (V).
    pub fn v_rst(&mut self, v: f64) -> &mut Self {
        self.config.v_rst = v;
        self
    }

    /// Sets `V_ref` (V).
    pub fn v_ref(&mut self, v: f64) -> &mut Self {
        self.config.v_ref = v;
        self
    }

    /// Sets the integration capacitance (F).
    pub fn cap_farads(&mut self, c: f64) -> &mut Self {
        self.config.cap_farads = c;
        self
    }

    /// Sets the dark/background current (A).
    pub fn i_dark(&mut self, i: f64) -> &mut Self {
        self.config.i_dark = i;
        self
    }

    /// Sets the full-scale photocurrent (A).
    pub fn i_scale(&mut self, i: f64) -> &mut Self {
        self.config.i_scale = i;
        self
    }

    /// Sets the comparator delay (s).
    pub fn comparator_delay(&mut self, d: f64) -> &mut Self {
        self.config.comparator_delay = d;
        self
    }

    /// Sets the compressed-sample period (s).
    pub fn sample_period(&mut self, t: f64) -> &mut Self {
        self.config.sample_period = t;
        self
    }

    /// Sets the TDC clock (Hz).
    pub fn clk_hz(&mut self, f: f64) -> &mut Self {
        self.config.clk_hz = f;
        self
    }

    /// Sets the counter width (bits).
    pub fn counter_bits(&mut self, b: u32) -> &mut Self {
        self.config.counter_bits = b;
        self
    }

    /// Sets the delay before the counter starts (s).
    pub fn initial_delay(&mut self, t: f64) -> &mut Self {
        self.config.initial_delay = t;
        self
    }

    /// Sets the per-event bus-busy duration (s).
    pub fn event_duration(&mut self, t: f64) -> &mut Self {
        self.config.event_duration = t;
        self
    }

    /// Sets the token-chain release delay (s).
    pub fn release_delay(&mut self, t: f64) -> &mut Self {
        self.config.release_delay = t;
        self
    }

    /// Sets the residual comparator offset σ (V).
    pub fn offset_sigma_volts(&mut self, s: f64) -> &mut Self {
        self.config.offset_sigma_volts = s;
        self
    }

    /// Sets the flip-time jitter σ (s).
    pub fn jitter_sigma(&mut self, s: f64) -> &mut Self {
        self.config.jitter_sigma = s;
        self
    }

    /// Sets the photoresponse non-uniformity σ.
    pub fn fpn_gain_sigma(&mut self, s: f64) -> &mut Self {
        self.config.fpn_gain_sigma = s;
        self
    }

    /// Sets the noise seed.
    pub fn noise_seed(&mut self, seed: u64) -> &mut Self {
        self.config.noise_seed = seed;
        self
    }

    /// Sets the intensity → code transfer mode.
    pub fn transfer(&mut self, t: CodeTransfer) -> &mut Self {
        self.config.transfer = t;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when any physical constraint is violated
    /// (empty array, non-positive currents or clock, `V_rst ≤ V_ref`,
    /// conversion window longer than the sample period, oversized
    /// counter, negative noise σ).
    pub fn build(&self) -> Result<SensorConfig, ConfigError> {
        let c = &self.config;
        if c.rows == 0 || c.cols == 0 {
            return Err(ConfigError("array dimensions must be positive".into()));
        }
        if c.v_rst <= c.v_ref {
            return Err(ConfigError(format!(
                "V_rst {} must exceed V_ref {}",
                c.v_rst, c.v_ref
            )));
        }
        if c.cap_farads <= 0.0 || c.i_dark <= 0.0 || c.i_scale <= 0.0 {
            return Err(ConfigError(
                "capacitance and currents must be positive".into(),
            ));
        }
        if c.clk_hz <= 0.0 || c.sample_period <= 0.0 {
            return Err(ConfigError(
                "clock and sample period must be positive".into(),
            ));
        }
        if c.counter_bits == 0 || c.counter_bits > 16 {
            return Err(ConfigError(format!(
                "counter width {} outside 1..=16",
                c.counter_bits
            )));
        }
        if c.initial_delay < 0.0 {
            return Err(ConfigError("initial delay must be non-negative".into()));
        }
        if c.window_end() > c.sample_period {
            return Err(ConfigError(format!(
                "conversion window end {:.3e}s exceeds sample period {:.3e}s",
                c.window_end(),
                c.sample_period
            )));
        }
        if c.event_duration <= 0.0 || c.release_delay < 0.0 {
            return Err(ConfigError("event timing must be positive".into()));
        }
        if c.offset_sigma_volts < 0.0 || c.jitter_sigma < 0.0 || c.fpn_gain_sigma < 0.0 {
            return Err(ConfigError("noise sigmas must be non-negative".into()));
        }
        Ok(c.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_prototype_matches_table_ii_values() {
        let c = SensorConfig::paper_prototype();
        assert_eq!(c.rows(), 64);
        assert_eq!(c.cols(), 64);
        assert_eq!(c.counter_bits(), 8);
        assert_eq!(c.code_max(), 255);
        assert!((c.clk_hz() - 24e6).abs() < 1.0);
        assert!((c.sample_period() - 20e-6).abs() < 1e-12); // 50 kHz
        assert!((c.event_duration() - 5e-9).abs() < 1e-15);
    }

    #[test]
    fn derived_quantities_are_consistent() {
        let c = SensorConfig::paper_prototype();
        // 256 ticks at 24 MHz ≈ 10.67 µs, inside the 20 µs slot.
        assert!((c.conversion_window() - 256.0 / 24e6).abs() < 1e-12);
        assert!(c.window_end() < c.sample_period());
        assert!((c.integration_charge() - 22.5e-15).abs() < 1e-18);
    }

    #[test]
    fn full_intensity_range_fits_in_window() {
        let c = SensorConfig::paper_prototype();
        let t_bright = c.integration_charge() / (c.i_dark() + c.i_scale());
        let t_dark = c.integration_charge() / c.i_dark();
        assert!(
            t_bright > c.initial_delay(),
            "bright pixels must not hit code 0 region"
        );
        assert!(
            t_dark < c.window_end(),
            "dark pixels must convert before the window ends"
        );
    }

    #[test]
    fn builder_overrides_apply() {
        let c = SensorConfig::builder(8, 16)
            .clk_hz(12.8e6)
            .counter_bits(8)
            .initial_delay(0.0)
            .build()
            .unwrap();
        // 256 ticks at 12.8 MHz = exactly 20 µs.
        assert!((c.conversion_window() - 20e-6).abs() < 1e-12);
        assert_eq!(c.rows(), 8);
        assert_eq!(c.cols(), 16);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(SensorConfig::builder(0, 8).build().is_err());
        assert!(SensorConfig::builder(8, 8)
            .v_ref(3.0)
            .v_rst(2.0)
            .build()
            .is_err());
        assert!(SensorConfig::builder(8, 8).clk_hz(-1.0).build().is_err());
        assert!(SensorConfig::builder(8, 8)
            .counter_bits(17)
            .build()
            .is_err());
        // Window longer than the sample slot.
        assert!(SensorConfig::builder(8, 8).clk_hz(1e6).build().is_err());
        assert!(SensorConfig::builder(8, 8)
            .jitter_sigma(-1e-9)
            .build()
            .is_err());
    }

    #[test]
    fn noiseless_detection() {
        assert!(SensorConfig::paper_prototype().is_noiseless());
        let noisy = SensorConfig::builder(8, 8)
            .jitter_sigma(1e-9)
            .build()
            .unwrap();
        assert!(!noisy.is_noiseless());
    }
}
