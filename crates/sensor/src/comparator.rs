//! Comparator model with auto-zeroing.
//!
//! The prototype auto-zeroes each comparator with a MiM capacitor
//! (Sect. IV), leaving a small residual offset. The offset shifts the
//! effective threshold, which shifts the crossing time by
//! `Δt = C · V_os / I_ph`; a propagation delay and optional Gaussian
//! jitter complete the model.

use crate::config::SensorConfig;
use crate::photodiode::photocurrent;

/// Per-pixel comparator instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparator {
    /// Residual input-referred offset after auto-zeroing (V).
    offset_volts: f64,
}

impl Comparator {
    /// Creates a comparator with the given residual offset.
    pub fn new(offset_volts: f64) -> Self {
        Comparator { offset_volts }
    }

    /// An ideal (zero-offset) comparator.
    pub fn ideal() -> Self {
        Comparator::new(0.0)
    }

    /// Residual offset (V).
    pub fn offset_volts(&self) -> f64 {
        self.offset_volts
    }

    /// Flip time (s since reset) for a pixel at `intensity`, including
    /// offset shift and propagation delay; `jitter` (s) is added by the
    /// caller's noise model (pass 0 for none).
    ///
    /// The offset moves the effective threshold from `V_ref` to
    /// `V_ref + V_os`, so the swept charge changes by `−C·V_os`.
    pub fn flip_time(&self, config: &SensorConfig, intensity: f64, jitter: f64) -> f64 {
        let charge = config.cap_farads() * (config.v_rst() - config.v_ref() - self.offset_volts);
        let t = charge.max(0.0) / photocurrent(config, intensity);
        (t + config.comparator_delay() + jitter).max(0.0)
    }
}

impl Default for Comparator {
    fn default() -> Self {
        Comparator::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SensorConfig {
        SensorConfig::paper_prototype()
    }

    #[test]
    fn ideal_flip_time_is_crossing_plus_delay() {
        let c = config();
        let t = Comparator::ideal().flip_time(&c, 0.5, 0.0);
        let expected = crate::photodiode::crossing_time(&c, 0.5) + c.comparator_delay();
        assert!((t - expected).abs() < 1e-15);
    }

    #[test]
    fn positive_offset_raises_threshold_and_speeds_flip() {
        let c = config();
        // Threshold closer to V_rst ⇒ less charge to sweep ⇒ earlier flip.
        let fast = Comparator::new(0.05).flip_time(&c, 0.5, 0.0);
        let slow = Comparator::new(-0.05).flip_time(&c, 0.5, 0.0);
        let mid = Comparator::ideal().flip_time(&c, 0.5, 0.0);
        assert!(fast < mid && mid < slow);
    }

    #[test]
    fn jitter_shifts_linearly() {
        let c = config();
        let base = Comparator::ideal().flip_time(&c, 0.5, 0.0);
        let shifted = Comparator::ideal().flip_time(&c, 0.5, 3e-9);
        assert!((shifted - base - 3e-9).abs() < 1e-15);
    }

    #[test]
    fn flip_time_never_negative() {
        let c = config();
        let t = Comparator::new(10.0).flip_time(&c, 1.0, -1.0);
        assert!(t >= 0.0);
    }
}
