//! Whole-frame capture orchestration.
//!
//! One compressed sample = one 20 µs slot: the array is reset, the CA
//! advances, selected pixels integrate and fire, column buses arbitrate,
//! the TDC samples the global counter, Sample & Add accumulates, and a
//! 20-bit word leaves the chip. [`FrameReadout::capture`] runs `K` such
//! slots and returns the samples plus event-level statistics.
//!
//! Two fidelities:
//!
//! * [`Fidelity::Functional`] — pulses are converted at their ideal flip
//!   times (no bus contention). This is the linear model `y = Φ x`.
//! * [`Fidelity::EventAccurate`] — pulses go through the column token
//!   protocol; queued pulses are delayed (possibly crossing clock edges
//!   → the paper's 1 LSB error), pulses past the window are lost.

use crate::column::ColumnArbiter;
use crate::comparator::Comparator;
use crate::config::{CodeTransfer, SensorConfig};
use crate::noise::NoiseModel;
use crate::tdc::{Conversion, GlobalCounter, SampleAdd};
use tepics_ca::BitPatternSource;
use tepics_imaging::{ImageF64, ImageU8};
use tepics_util::BitVec;

/// Simulation fidelity of the readout path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Ideal linear measurement (no arbitration effects).
    Functional,
    /// Full column-bus token protocol with serialization delays.
    EventAccurate,
}

/// Aggregate event statistics for one captured frame.
#[derive(Debug, Clone, PartialEq)]
pub struct EventStats {
    /// Pulses emitted by selected pixels across all samples.
    pub total_pulses: u64,
    /// Pulses that had to wait for their column bus.
    pub queued_pulses: u64,
    /// Pulses lost because they arrived after the conversion window.
    pub missed_pulses: u64,
    /// Histogram of per-pulse code error `|code(grant) − code(flip)|`;
    /// index = error in LSB, last bin aggregates larger errors.
    pub code_error_lsb: Vec<u64>,
    /// Largest serialization delay observed (s).
    pub max_delay: f64,
    /// Number of samples whose column accumulator clipped.
    pub column_overflows: u64,
    /// Number of samples whose 20-bit adder clipped.
    pub sample_overflows: u64,
}

impl Default for EventStats {
    fn default() -> Self {
        EventStats::new()
    }
}

impl EventStats {
    fn new() -> Self {
        EventStats {
            total_pulses: 0,
            queued_pulses: 0,
            missed_pulses: 0,
            code_error_lsb: vec![0; 9],
            max_delay: 0.0,
            column_overflows: 0,
            sample_overflows: 0,
        }
    }

    /// Fraction of pulses with nonzero code error.
    pub fn error_fraction(&self) -> f64 {
        if self.total_pulses == 0 {
            return 0.0;
        }
        let errored: u64 = self.code_error_lsb.iter().skip(1).sum();
        errored as f64 / self.total_pulses as f64
    }

    /// Mean absolute code error in LSB (larger-than-8 errors counted as 8).
    pub fn mean_error_lsb(&self) -> f64 {
        if self.total_pulses == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .code_error_lsb
            .iter()
            .enumerate()
            .map(|(e, &c)| e as u64 * c)
            .sum();
        sum as f64 / self.total_pulses as f64
    }

    /// Folds another capture's statistics into this one: counters add,
    /// the error histograms add bin-wise (growing to the longer one),
    /// and `max_delay` keeps the maximum. Used to aggregate per-tile
    /// captures into whole-frame statistics.
    pub fn merge(&mut self, other: &EventStats) {
        self.total_pulses += other.total_pulses;
        self.queued_pulses += other.queued_pulses;
        self.missed_pulses += other.missed_pulses;
        self.column_overflows += other.column_overflows;
        self.sample_overflows += other.sample_overflows;
        self.max_delay = self.max_delay.max(other.max_delay);
        if self.code_error_lsb.len() < other.code_error_lsb.len() {
            self.code_error_lsb.resize(other.code_error_lsb.len(), 0);
        }
        for (bin, &count) in other.code_error_lsb.iter().enumerate() {
            self.code_error_lsb[bin] += count;
        }
    }
}

/// The output of one frame capture.
#[derive(Debug, Clone, PartialEq)]
pub struct CapturedFrame {
    /// Compressed samples, one per selection pattern.
    pub samples: Vec<u32>,
    /// The `(M+N)`-bit selection patterns used (rows ++ columns).
    pub patterns: Vec<BitVec>,
    /// Event statistics (all zero in functional mode except totals).
    pub stats: EventStats,
}

/// Frame-capture engine.
#[derive(Debug, Clone)]
pub struct FrameReadout {
    config: SensorConfig,
    fidelity: Fidelity,
}

impl FrameReadout {
    /// Creates a readout engine.
    pub fn new(config: SensorConfig, fidelity: Fidelity) -> Self {
        FrameReadout { config, fidelity }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SensorConfig {
        &self.config
    }

    /// The fidelity in use.
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// Base flip time (s since reset) of pixel `(row, col)` for the
    /// scene, including fixed-pattern noise but not per-sample jitter.
    fn base_flip_time(&self, noise: &NoiseModel, scene: &ImageF64, row: usize, col: usize) -> f64 {
        let e = scene.get(col, row);
        match self.config.transfer() {
            CodeTransfer::Reciprocal => {
                let comparator = Comparator::new(noise.offset(row, col));
                comparator.flip_time(&self.config, e * noise.gain(row, col), 0.0)
            }
            CodeTransfer::Linearized => {
                // Place the flip mid-tick of the linear code.
                let code = (e.clamp(0.0, 1.0) * self.config.code_max() as f64).round();
                self.config.initial_delay() + (code + 0.5) * self.config.t_clk()
            }
        }
    }

    /// The ideal (functional, jitter-free) code image for a scene — the
    /// ground truth the decoder tries to reconstruct. Pixels whose pulse
    /// falls outside the window read 0 (they contribute nothing).
    ///
    /// # Panics
    ///
    /// Panics if the scene size does not match the configuration.
    pub fn code_image(&self, scene: &ImageF64) -> ImageU8 {
        self.check_scene(scene);
        let noise = NoiseModel::new(&self.config);
        let counter = GlobalCounter::new(&self.config);
        ImageU8::from_fn(
            self.config.cols(),
            self.config.rows(),
            |col, row| match counter.convert(self.base_flip_time(&noise, scene, row, col)) {
                Conversion::Code(c) => c as u8,
                Conversion::Missed => 0,
            },
        )
    }

    /// Captures `k` compressed samples of `scene` using selection
    /// patterns from `source`.
    ///
    /// # Panics
    ///
    /// Panics if the scene size or the source pattern length do not
    /// match the configuration, or `k == 0`.
    pub fn capture(
        &self,
        scene: &ImageF64,
        source: &mut dyn BitPatternSource,
        k: usize,
    ) -> CapturedFrame {
        self.check_scene(scene);
        assert!(k > 0, "need at least one compressed sample");
        let (m, n) = (self.config.rows(), self.config.cols());
        assert_eq!(
            source.pattern_len(),
            m + n,
            "source pattern length {} != M+N = {}",
            source.pattern_len(),
            m + n
        );
        let noise = NoiseModel::new(&self.config);
        let counter = GlobalCounter::new(&self.config);
        let arbiter = ColumnArbiter::new(&self.config);
        let mut sample_add = SampleAdd::for_config(&self.config);
        let mut stats = EventStats::new();
        let mut samples = Vec::with_capacity(k);
        let mut patterns = Vec::with_capacity(k);
        // Base flip times are scene-dependent only; jitter is per sample.
        let base: Vec<f64> = (0..m * n)
            .map(|px| self.base_flip_time(&noise, scene, px / n, px % n))
            .collect();
        let jitter_free = self.config.jitter_sigma() == 0.0;
        let mut column_pulses: Vec<(usize, f64)> = Vec::with_capacity(m);
        for sample_idx in 0..k {
            let pattern = source.next_pattern();
            for col in 0..n {
                let col_selected = pattern.get(m + col);
                column_pulses.clear();
                for row in 0..m {
                    if pattern.get(row) != col_selected {
                        let mut t = base[row * n + col];
                        if !jitter_free {
                            t = (t + noise.jitter(row, col, sample_idx)).max(0.0);
                        }
                        column_pulses.push((row, t));
                    }
                }
                stats.total_pulses += column_pulses.len() as u64;
                match self.fidelity {
                    Fidelity::Functional => {
                        for &(_, t) in &column_pulses {
                            let conv = counter.convert(t);
                            if conv == Conversion::Missed {
                                stats.missed_pulses += 1;
                            }
                            sample_add.add(col, conv);
                        }
                    }
                    Fidelity::EventAccurate => {
                        let outcome = arbiter.arbitrate(&column_pulses);
                        for e in &outcome.events {
                            if e.queued {
                                stats.queued_pulses += 1;
                                stats.max_delay = stats.max_delay.max(e.delay());
                            }
                            let conv = counter.convert(e.t_grant);
                            match (counter.ideal_code(e.t_flip), conv) {
                                (Conversion::Code(a), Conversion::Code(b)) => {
                                    let err = (b as i64 - a as i64).unsigned_abs() as usize;
                                    let bin = err.min(stats.code_error_lsb.len() - 1);
                                    stats.code_error_lsb[bin] += 1;
                                }
                                (_, Conversion::Missed) => stats.missed_pulses += 1,
                                (Conversion::Missed, Conversion::Code(_)) => {
                                    // Ideal was already lost; arbitration
                                    // cannot resurrect it earlier, so this
                                    // cannot occur (delay ≥ 0).
                                    // tidy:allow(panic: delay ≥ 0 — a grant can only move later than its flip)
                                    unreachable!("grant precedes flip");
                                }
                            }
                            sample_add.add(col, conv);
                        }
                    }
                }
            }
            let word = sample_add.finish();
            if word.column_overflow {
                stats.column_overflows += 1;
            }
            if word.sample_overflow {
                stats.sample_overflows += 1;
            }
            samples.push(word.value as u32);
            patterns.push(pattern);
        }
        CapturedFrame {
            samples,
            patterns,
            stats,
        }
    }

    fn check_scene(&self, scene: &ImageF64) {
        assert_eq!(
            (scene.width(), scene.height()),
            (self.config.cols(), self.config.rows()),
            "scene {}×{} does not match sensor {}×{}",
            scene.width(),
            scene.height(),
            self.config.cols(),
            self.config.rows()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tepics_ca::{CaSource, ElementaryRule};
    use tepics_imaging::Scene;

    fn small_config() -> SensorConfig {
        SensorConfig::builder(16, 16).build().unwrap()
    }

    fn source(config: &SensorConfig, seed: u64) -> CaSource {
        CaSource::new(
            config.rows() + config.cols(),
            seed,
            ElementaryRule::RULE_30,
            64,
            1,
        )
    }

    #[test]
    fn functional_capture_matches_manual_sum_of_codes() {
        let config = small_config();
        let scene = Scene::gaussian_blobs(2).render(16, 16, 3);
        let readout = FrameReadout::new(config.clone(), Fidelity::Functional);
        let codes = readout.code_image(&scene);
        let mut src = source(&config, 11);
        let frame = readout.capture(&scene, &mut src, 25);
        // Recompute each sample from the pattern and the code image.
        for (k, pattern) in frame.patterns.iter().enumerate() {
            let mut expected = 0u32;
            for row in 0..16 {
                for col in 0..16 {
                    if pattern.get(row) != pattern.get(16 + col) {
                        expected += codes.get(col, row) as u32;
                    }
                }
            }
            assert_eq!(frame.samples[k], expected, "sample {k}");
        }
    }

    #[test]
    fn event_accurate_matches_functional_when_events_cannot_collide() {
        // With an event duration far below the minimum pulse spacing,
        // arbitration never delays anything.
        let config = SensorConfig::builder(8, 8)
            .event_duration(1e-12)
            .release_delay(0.0)
            .build()
            .unwrap();
        let scene = Scene::LinearGradient { angle: 0.3 }.render(8, 8, 1);
        let f = FrameReadout::new(config.clone(), Fidelity::Functional);
        let e = FrameReadout::new(config.clone(), Fidelity::EventAccurate);
        let mut s1 = source(&config, 5);
        let mut s2 = source(&config, 5);
        let ff = f.capture(&scene, &mut s1, 30);
        let ee = e.capture(&scene, &mut s2, 30);
        assert_eq!(ff.samples, ee.samples);
        assert_eq!(ee.stats.error_fraction(), 0.0);
    }

    #[test]
    fn event_accurate_reports_queueing_on_flat_scenes() {
        // A uniform scene makes all pixels in a column flip at the same
        // instant: maximal contention.
        let config = small_config();
        let scene = Scene::Uniform(0.5).render(16, 16, 0);
        let readout = FrameReadout::new(config.clone(), Fidelity::EventAccurate);
        let mut src = source(&config, 9);
        let frame = readout.capture(&scene, &mut src, 10);
        assert!(
            frame.stats.queued_pulses > 0,
            "uniform scene must serialize pulses"
        );
        assert!(frame.stats.max_delay > 0.0);
    }

    #[test]
    fn missed_pulses_counted_when_window_is_too_short() {
        // Shrink the counter so dark pixels (long flip times) miss.
        let config = SensorConfig::builder(8, 8)
            .counter_bits(6) // window = 64 ticks ≈ 2.67 µs at 24 MHz
            .build()
            .unwrap();
        let scene = Scene::Uniform(0.02).render(8, 8, 0); // dark: ~10 µs flips
        let readout = FrameReadout::new(config.clone(), Fidelity::Functional);
        let mut src = source(&config, 1);
        let frame = readout.capture(&scene, &mut src, 5);
        assert!(frame.stats.missed_pulses > 0);
        // All pulses missed ⇒ all-zero samples.
        assert!(frame.samples.iter().all(|&s| s == 0));
    }

    #[test]
    fn capture_is_deterministic() {
        let config = small_config();
        let scene = Scene::natural_like().render(16, 16, 8);
        let readout = FrameReadout::new(config.clone(), Fidelity::EventAccurate);
        let mut s1 = source(&config, 3);
        let mut s2 = source(&config, 3);
        let a = readout.capture(&scene, &mut s1, 20);
        let b = readout.capture(&scene, &mut s2, 20);
        assert_eq!(a, b);
    }

    #[test]
    fn linearized_transfer_maps_intensity_linearly() {
        let config = SensorConfig::builder(8, 8)
            .transfer(CodeTransfer::Linearized)
            .build()
            .unwrap();
        let readout = FrameReadout::new(config, Fidelity::Functional);
        let scene = ImageF64::from_fn(8, 8, |x, _| x as f64 / 7.0);
        let codes = readout.code_image(&scene);
        // Linear: code = round(E * 255).
        assert_eq!(codes.get(0, 0), 0);
        assert_eq!(codes.get(7, 0), 255);
        let mid = codes.get(4, 0) as f64;
        assert!((mid - (4.0f64 / 7.0 * 255.0).round()).abs() < 1.0);
    }

    #[test]
    fn reciprocal_transfer_is_monotone_decreasing() {
        let config = small_config();
        let readout = FrameReadout::new(config, Fidelity::Functional);
        let scene = ImageF64::from_fn(16, 16, |x, _| x as f64 / 15.0);
        let codes = readout.code_image(&scene);
        for x in 1..16 {
            assert!(
                codes.get(x, 0) <= codes.get(x - 1, 0),
                "brighter pixels must get smaller codes"
            );
        }
    }

    #[test]
    fn jitter_changes_samples_but_stays_reproducible() {
        let config = SensorConfig::builder(16, 16)
            .jitter_sigma(20e-9)
            .build()
            .unwrap();
        let clean_cfg = small_config();
        let scene = Scene::gaussian_blobs(2).render(16, 16, 4);
        let noisy = FrameReadout::new(config.clone(), Fidelity::Functional);
        let clean = FrameReadout::new(clean_cfg.clone(), Fidelity::Functional);
        let mut s1 = source(&config, 2);
        let mut s2 = source(&clean_cfg, 2);
        let mut s3 = source(&config, 2);
        let a = noisy.capture(&scene, &mut s1, 15);
        let b = clean.capture(&scene, &mut s2, 15);
        let c = noisy.capture(&scene, &mut s3, 15);
        assert_ne!(a.samples, b.samples, "jitter must perturb samples");
        assert_eq!(a.samples, c.samples, "jittered capture must replay");
    }

    #[test]
    #[should_panic(expected = "does not match sensor")]
    fn wrong_scene_size_panics() {
        let config = small_config();
        let scene = Scene::Uniform(0.5).render(8, 8, 0);
        let mut src = source(&config, 1);
        FrameReadout::new(config, Fidelity::Functional).capture(&scene, &mut src, 1);
    }
}
