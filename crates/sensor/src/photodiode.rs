//! Photodiode integration model.
//!
//! The pixel front-end (Fig. 1, "Time-encoding of light intensity"): an
//! n-well/p-substrate photodiode discharges `V_pix` from `V_rst` at a
//! rate set by the photocurrent; the comparator flips when `V_pix`
//! crosses `V_ref`. The crossing time is
//! `t = C · (V_rst − V_ref) / I_ph` — the reciprocal light-to-time map
//! that the whole architecture is built on.

use crate::config::SensorConfig;

/// Photocurrent (A) for a scene intensity in `[0, 1]`:
/// `I_ph = I_dark + I_scale · E` (intensity clamped).
pub fn photocurrent(config: &SensorConfig, intensity: f64) -> f64 {
    config.i_dark() + config.i_scale() * intensity.clamp(0.0, 1.0)
}

/// Ideal comparator-crossing time (s) since pixel reset, before
/// comparator delay and noise.
pub fn crossing_time(config: &SensorConfig, intensity: f64) -> f64 {
    config.integration_charge() / photocurrent(config, intensity)
}

/// `V_pix` at time `t` after reset (clamped at `V_ref` once crossed —
/// the comparator flip freezes the chain downstream; used for the Fig. 1
/// waveform experiment).
pub fn v_pix_at(config: &SensorConfig, intensity: f64, t: f64) -> f64 {
    let slope = photocurrent(config, intensity) / config.cap_farads();
    (config.v_rst() - slope * t.max(0.0)).max(config.v_ref())
}

/// Inverts the reciprocal transfer: scene intensity that would produce
/// the given crossing time. Returns values clamped to `[0, 1]`.
pub fn intensity_from_crossing(config: &SensorConfig, t: f64) -> f64 {
    if t <= 0.0 {
        return 1.0;
    }
    let i_ph = config.integration_charge() / t;
    ((i_ph - config.i_dark()) / config.i_scale()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SensorConfig {
        SensorConfig::paper_prototype()
    }

    #[test]
    fn brighter_pixels_cross_sooner() {
        let c = config();
        let mut last = f64::INFINITY;
        for i in 0..=10 {
            let t = crossing_time(&c, i as f64 / 10.0);
            assert!(t < last, "crossing time must fall with intensity");
            last = t;
        }
    }

    #[test]
    fn crossing_time_matches_closed_form() {
        let c = config();
        let e = 0.5;
        let expected = c.integration_charge() / (c.i_dark() + 0.5 * c.i_scale());
        assert!((crossing_time(&c, e) - expected).abs() < 1e-18);
    }

    #[test]
    fn v_pix_ramp_hits_reference_at_crossing() {
        let c = config();
        let e = 0.3;
        let t_cross = crossing_time(&c, e);
        assert!((v_pix_at(&c, e, 0.0) - c.v_rst()).abs() < 1e-12);
        assert!((v_pix_at(&c, e, t_cross) - c.v_ref()).abs() < 1e-9);
        // Clamped after crossing.
        assert_eq!(v_pix_at(&c, e, t_cross * 2.0), c.v_ref());
    }

    #[test]
    fn intensity_clamps_outside_unit_range() {
        let c = config();
        assert_eq!(photocurrent(&c, -1.0), photocurrent(&c, 0.0));
        assert_eq!(photocurrent(&c, 2.0), photocurrent(&c, 1.0));
    }

    #[test]
    fn inversion_roundtrips() {
        let c = config();
        for i in 1..=9 {
            let e = i as f64 / 10.0;
            let back = intensity_from_crossing(&c, crossing_time(&c, e));
            assert!((back - e).abs() < 1e-9, "{e} -> {back}");
        }
    }
}
