//! Column-bus arbitration: the token protocol of Sect. II.E.
//!
//! All pixels of a column share one bus. The protocol the paper
//! implements with the `C_in`/`C_out` chain and the event-termination
//! unit has three rules, and the arbiter reproduces them exactly:
//!
//! 1. **Parallel blocking** — the moment any pixel pulls the bus down,
//!    every other pixel is blocked (the bus level feeds every token
//!    gate).
//! 2. **Bounded events** — the column control unit raises `Q` after a
//!    controllable delay, terminating the active pulse; the bus is busy
//!    for `event_duration` per pulse.
//! 3. **Sequential top-down release** — when the bus frees, the
//!    `C_out` chain releases waiting pixels from the top; the *topmost*
//!    waiting pixel fires next regardless of who flipped first.

use crate::config::SensorConfig;
use crate::desim::EventQueue;
use std::collections::BTreeMap;

/// The lifecycle of one pixel pulse through the column bus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PixelEvent {
    /// Row index of the emitting pixel (0 = top).
    pub row: usize,
    /// Comparator flip time (s since reset) — the *ideal* value.
    pub t_flip: f64,
    /// Time the bus was actually granted (s) — what the TDC samples.
    pub t_grant: f64,
    /// `true` if the pixel had to wait for the bus.
    pub queued: bool,
}

impl PixelEvent {
    /// Serialization delay suffered by this pulse (s).
    pub fn delay(&self) -> f64 {
        self.t_grant - self.t_flip
    }
}

/// Outcome of arbitrating one column for one compressed sample.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnOutcome {
    /// All granted pulses, in grant order.
    pub events: Vec<PixelEvent>,
    /// Largest number of simultaneously waiting pixels observed.
    pub max_queue_depth: usize,
}

impl ColumnOutcome {
    /// Number of pulses that were delayed by arbitration.
    pub fn queued_count(&self) -> usize {
        self.events.iter().filter(|e| e.queued).count()
    }

    /// Largest serialization delay (s), 0 when nothing queued.
    pub fn max_delay(&self) -> f64 {
        self.events
            .iter()
            .map(PixelEvent::delay)
            .fold(0.0, f64::max)
    }
}

/// Arbiter for one column bus.
#[derive(Debug, Clone)]
pub struct ColumnArbiter {
    event_duration: f64,
    release_delay: f64,
}

impl ColumnArbiter {
    /// Creates an arbiter with the configuration's event timing.
    pub fn new(config: &SensorConfig) -> Self {
        ColumnArbiter {
            event_duration: config.event_duration(),
            release_delay: config.release_delay(),
        }
    }

    /// Creates an arbiter with explicit timing (used by the overlap
    /// Monte-Carlo experiment).
    ///
    /// # Panics
    ///
    /// Panics if `event_duration <= 0` or `release_delay < 0`.
    pub fn with_timing(event_duration: f64, release_delay: f64) -> Self {
        assert!(event_duration > 0.0, "event duration must be positive");
        assert!(release_delay >= 0.0, "release delay must be non-negative");
        ColumnArbiter {
            event_duration,
            release_delay,
        }
    }

    /// Arbitrates a set of `(row, t_flip)` pulses. Rows must be unique
    /// (one pulse per pixel per sample — the activation latch guarantees
    /// this in hardware).
    ///
    /// Returns the granted events in grant order.
    ///
    /// # Panics
    ///
    /// Panics if two pulses share a row or any flip time is negative/NaN.
    pub fn arbitrate(&self, pulses: &[(usize, f64)]) -> ColumnOutcome {
        let mut seen = std::collections::BTreeSet::new();
        let mut flips: EventQueue<usize> = EventQueue::new();
        let mut flip_time: BTreeMap<usize, f64> = BTreeMap::new();
        for &(row, t) in pulses {
            assert!(
                t >= 0.0 && !t.is_nan(),
                "flip time must be a non-negative number"
            );
            assert!(seen.insert(row), "duplicate pulse for row {row}");
            // Priority = row: simultaneous flips resolve top-down, as the
            // token chain does.
            flips.push(t, row as u32, row);
            flip_time.insert(row, t);
        }
        let mut events = Vec::with_capacity(pulses.len());
        let mut waiting: BTreeMap<usize, f64> = BTreeMap::new();
        let mut max_queue_depth = 0usize;
        let mut bus_free_at = 0.0f64;
        let mut bus_ever_used = false;
        while !flips.is_empty() || !waiting.is_empty() {
            let (row, t_flip, queued, t_grant);
            if let Some((&w_row, &w_flip)) = waiting.iter().next() {
                // Topmost waiting pixel fires right after release.
                waiting.remove(&w_row);
                row = w_row;
                t_flip = w_flip;
                queued = true;
                t_grant = bus_free_at + self.release_delay;
            } else {
                let Some((t, _, f_row)) = flips.pop() else {
                    // Loop guard: with `waiting` empty, `flips` is not.
                    break;
                };
                row = f_row;
                t_flip = t;
                // The bus may still be busy if this flip lands inside an
                // earlier pulse (can only happen via the absorb loop
                // below, so here the bus is free).
                queued = bus_ever_used && t < bus_free_at;
                t_grant = if queued {
                    bus_free_at + self.release_delay
                } else {
                    t
                };
            }
            let t_end = t_grant + self.event_duration;
            events.push(PixelEvent {
                row,
                t_flip,
                t_grant,
                queued,
            });
            bus_free_at = t_end;
            bus_ever_used = true;
            // Every pixel flipping during this pulse joins the waiting
            // set (parallel blocking).
            while flips.peek_time().is_some_and(|t| t < t_end) {
                let Some((t, _, f_row)) = flips.pop() else {
                    break; // peek above guarantees a head
                };
                waiting.insert(f_row, t);
            }
            max_queue_depth = max_queue_depth.max(waiting.len());
        }
        ColumnOutcome {
            events,
            max_queue_depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arbiter() -> ColumnArbiter {
        ColumnArbiter::with_timing(5e-9, 1e-9)
    }

    #[test]
    fn lone_pulse_is_granted_at_flip_time() {
        let out = arbiter().arbitrate(&[(3, 1e-6)]);
        assert_eq!(out.events.len(), 1);
        assert_eq!(out.events[0].t_grant, 1e-6);
        assert!(!out.events[0].queued);
        assert_eq!(out.max_queue_depth, 0);
    }

    #[test]
    fn well_separated_pulses_never_queue() {
        let pulses: Vec<(usize, f64)> = (0..10).map(|r| (r, r as f64 * 1e-6)).collect();
        let out = arbiter().arbitrate(&pulses);
        assert_eq!(out.queued_count(), 0);
        for (e, p) in out.events.iter().zip(&pulses) {
            assert_eq!(e.t_grant, p.1);
        }
    }

    #[test]
    fn overlapping_pulse_waits_for_bus() {
        // Second pixel flips 2 ns into the first pixel's 5 ns pulse.
        let out = arbiter().arbitrate(&[(0, 100e-9), (1, 102e-9)]);
        assert_eq!(out.events.len(), 2);
        let second = &out.events[1];
        assert!(second.queued);
        // Granted at 100ns + 5ns + 1ns release.
        assert!((second.t_grant - 106e-9).abs() < 1e-15);
        assert_eq!(out.max_queue_depth, 1);
    }

    #[test]
    fn release_is_top_down_not_fifo() {
        // Row 5 flips first and takes the bus; rows 2 and 4 flip during
        // the pulse (2 after 4 in time). Release order must be 2 then 4
        // (topmost first), not 4 then 2 (arrival order).
        let out = arbiter().arbitrate(&[(5, 100e-9), (4, 101e-9), (2, 103e-9)]);
        let order: Vec<usize> = out.events.iter().map(|e| e.row).collect();
        assert_eq!(order, vec![5, 2, 4]);
        assert_eq!(out.max_queue_depth, 2);
    }

    #[test]
    fn simultaneous_flips_resolve_top_down() {
        let out = arbiter().arbitrate(&[(7, 50e-9), (1, 50e-9), (3, 50e-9)]);
        let order: Vec<usize> = out.events.iter().map(|e| e.row).collect();
        assert_eq!(order, vec![1, 3, 7]);
        // Only the first is unqueued.
        assert!(!out.events[0].queued);
        assert!(out.events[1].queued && out.events[2].queued);
    }

    #[test]
    fn no_two_events_overlap_ever() {
        // Dense random-ish pulses; verify the serialization invariant.
        let mut pulses = Vec::new();
        let mut rng = tepics_util::SplitMix64::new(77);
        for row in 0..64 {
            pulses.push((row, rng.next_f64() * 300e-9));
        }
        let arb = arbiter();
        let out = arb.arbitrate(&pulses);
        assert_eq!(out.events.len(), 64, "no pulse may be dropped");
        let mut sorted = out.events.clone();
        sorted.sort_by(|a, b| a.t_grant.partial_cmp(&b.t_grant).unwrap());
        for pair in sorted.windows(2) {
            assert!(
                pair[1].t_grant >= pair[0].t_grant + 5e-9 - 1e-18,
                "events overlap: {:?} then {:?}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn grant_never_precedes_flip() {
        let mut rng = tepics_util::SplitMix64::new(123);
        let pulses: Vec<(usize, f64)> = (0..32).map(|r| (r, rng.next_f64() * 1e-6)).collect();
        let out = arbiter().arbitrate(&pulses);
        for e in &out.events {
            assert!(e.t_grant >= e.t_flip - 1e-18, "{e:?}");
            assert!(e.delay() >= 0.0);
        }
    }

    #[test]
    fn empty_column_yields_no_events() {
        let out = arbiter().arbitrate(&[]);
        assert!(out.events.is_empty());
        assert_eq!(out.max_queue_depth, 0);
    }

    #[test]
    #[should_panic(expected = "duplicate pulse")]
    fn duplicate_rows_panic() {
        arbiter().arbitrate(&[(1, 1e-9), (1, 2e-9)]);
    }
}
