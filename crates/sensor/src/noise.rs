//! Deterministic noise generation: fixed-pattern and temporal.
//!
//! Every noise draw derives from the configuration seed, so a noisy
//! simulation is exactly reproducible. Fixed-pattern terms (comparator
//! offset after auto-zeroing, photoresponse gain) are frozen per pixel;
//! temporal jitter is redrawn per pixel *per compressed sample*, because
//! the array is reset before every sample.

use crate::config::SensorConfig;
use tepics_util::SplitMix64;

/// Frozen per-pixel deviations plus a temporal-jitter stream.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    rows: usize,
    cols: usize,
    /// Residual comparator offset per pixel (V).
    offsets: Vec<f64>,
    /// Multiplicative photoresponse gain per pixel (≈1).
    gains: Vec<f64>,
    jitter_sigma: f64,
    jitter_seed: u64,
}

impl NoiseModel {
    /// Builds the noise model for a configuration.
    pub fn new(config: &SensorConfig) -> Self {
        let n = config.pixel_count();
        let mut rng = SplitMix64::new(config.noise_seed());
        let mut offset_rng = rng.split();
        let mut gain_rng = rng.split();
        let jitter_seed = rng.next_u64();
        let offsets = (0..n)
            .map(|_| offset_rng.next_gaussian() * config.offset_sigma_volts())
            .collect();
        let gains = (0..n)
            .map(|_| (1.0 + gain_rng.next_gaussian() * config.fpn_gain_sigma()).max(0.05))
            .collect();
        NoiseModel {
            rows: config.rows(),
            cols: config.cols(),
            offsets,
            gains,
            jitter_sigma: config.jitter_sigma(),
            jitter_seed,
        }
    }

    /// Comparator offset of pixel `(row, col)` (V).
    pub fn offset(&self, row: usize, col: usize) -> f64 {
        self.offsets[self.index(row, col)]
    }

    /// Photoresponse gain of pixel `(row, col)`.
    pub fn gain(&self, row: usize, col: usize) -> f64 {
        self.gains[self.index(row, col)]
    }

    /// Temporal jitter (s) for pixel `(row, col)` during compressed
    /// sample `k` — deterministic in `(seed, k, row, col)`.
    pub fn jitter(&self, row: usize, col: usize, sample: usize) -> f64 {
        if self.jitter_sigma == 0.0 {
            return 0.0;
        }
        let stream = self
            .jitter_seed
            .wrapping_add((sample as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((self.index(row, col) as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
        SplitMix64::new(stream).next_gaussian() * self.jitter_sigma
    }

    fn index(&self, row: usize, col: usize) -> usize {
        assert!(
            row < self.rows && col < self.cols,
            "pixel ({row},{col}) out of range"
        );
        row * self.cols + col
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_config_generates_identity_model() {
        let c = SensorConfig::paper_prototype();
        let m = NoiseModel::new(&c);
        assert_eq!(m.offset(0, 0), 0.0);
        assert_eq!(m.gain(10, 20), 1.0);
        assert_eq!(m.jitter(5, 5, 3), 0.0);
    }

    #[test]
    fn fixed_pattern_is_frozen_and_deterministic() {
        let c = SensorConfig::builder(16, 16)
            .offset_sigma_volts(5e-3)
            .fpn_gain_sigma(0.02)
            .noise_seed(42)
            .build()
            .unwrap();
        let a = NoiseModel::new(&c);
        let b = NoiseModel::new(&c);
        for row in 0..16 {
            for col in 0..16 {
                assert_eq!(a.offset(row, col), b.offset(row, col));
                assert_eq!(a.gain(row, col), b.gain(row, col));
            }
        }
        // Different pixels get different offsets (w.h.p.).
        assert_ne!(a.offset(0, 0), a.offset(0, 1));
    }

    #[test]
    fn offset_statistics_match_sigma() {
        let sigma = 3e-3;
        let c = SensorConfig::builder(64, 64)
            .offset_sigma_volts(sigma)
            .build()
            .unwrap();
        let m = NoiseModel::new(&c);
        let mut stats = tepics_util::RunningStats::new();
        for row in 0..64 {
            for col in 0..64 {
                stats.push(m.offset(row, col));
            }
        }
        assert!(stats.mean().abs() < sigma * 0.1);
        assert!((stats.std_dev() - sigma).abs() < sigma * 0.1);
    }

    #[test]
    fn jitter_varies_per_sample_but_replays() {
        let c = SensorConfig::builder(8, 8)
            .jitter_sigma(1e-9)
            .build()
            .unwrap();
        let m = NoiseModel::new(&c);
        let j1 = m.jitter(3, 4, 0);
        let j2 = m.jitter(3, 4, 1);
        assert_ne!(j1, j2, "jitter must differ between samples");
        assert_eq!(j1, m.jitter(3, 4, 0), "jitter must replay");
    }

    #[test]
    fn gains_stay_physical() {
        let c = SensorConfig::builder(32, 32)
            .fpn_gain_sigma(0.5) // absurdly large on purpose
            .build()
            .unwrap();
        let m = NoiseModel::new(&c);
        for row in 0..32 {
            for col in 0..32 {
                assert!(m.gain(row, col) > 0.0, "gain must stay positive");
            }
        }
    }
}
