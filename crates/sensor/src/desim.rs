//! A minimal deterministic discrete-event queue.
//!
//! The column arbiter and the readout orchestration need a time-ordered
//! event stream with deterministic tie-breaking (hardware resolves ties
//! by row position; a simulation must resolve them identically on every
//! run). [`EventQueue`] wraps a binary heap with an insertion sequence
//! number so equal-time events pop in push order unless an explicit
//! priority says otherwise.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time in seconds. A thin wrapper enforcing totally-ordered,
/// non-NaN timestamps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Time(f64);

impl Time {
    /// Creates a timestamp.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is NaN.
    pub fn new(seconds: f64) -> Self {
        assert!(!seconds.is_nan(), "event time must not be NaN");
        Time(seconds)
    }

    /// Seconds since simulation start.
    pub fn seconds(self) -> f64 {
        self.0
    }
}

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> Ordering {
        // Event times are finite by construction; total_cmp agrees
        // with partial_cmp everywhere off NaN and cannot panic.
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug)]
struct Entry<T> {
    time: Time,
    priority: u32,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.priority == other.priority && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest pops first.
        other
            .time
            .cmp(&self.time)
            .then(other.priority.cmp(&self.priority))
            .then(other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-heap of timed events.
///
/// Pop order: earliest time, then lowest priority value, then insertion
/// order.
///
/// # Examples
///
/// ```
/// use tepics_sensor::desim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(2.0e-6, 0, "late");
/// q.push(1.0e-6, 0, "early");
/// assert_eq!(q.pop().unwrap().2, "early");
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
    last_popped: Option<Time>,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            last_popped: None,
        }
    }

    /// Schedules `payload` at `seconds` with a tie-break `priority`
    /// (lower pops first among equal times).
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is NaN.
    pub fn push(&mut self, seconds: f64, priority: u32, payload: T) {
        let entry = Entry {
            time: Time::new(seconds),
            priority,
            seq: self.seq,
            payload,
        };
        self.seq += 1;
        self.heap.push(entry);
    }

    /// Removes the earliest event, returning `(seconds, priority,
    /// payload)`. Time is monotone across pops.
    pub fn pop(&mut self) -> Option<(f64, u32, T)> {
        let e = self.heap.pop()?;
        debug_assert!(
            self.last_popped.is_none_or(|t| t <= e.time),
            "event queue time went backwards"
        );
        self.last_popped = Some(e.time);
        Some((e.time.seconds(), e.priority, e.payload))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time.seconds())
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for (i, t) in [5.0, 1.0, 3.0, 2.0, 4.0].iter().enumerate() {
            q.push(*t, 0, i);
        }
        let times: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _, _)| t)).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn equal_times_use_priority_then_fifo() {
        let mut q = EventQueue::new();
        q.push(1.0, 2, "low-prio-first-in");
        q.push(1.0, 1, "high-prio-second-in");
        q.push(1.0, 1, "high-prio-third-in");
        assert_eq!(q.pop().unwrap().2, "high-prio-second-in");
        assert_eq!(q.pop().unwrap().2, "high-prio-third-in");
        assert_eq!(q.pop().unwrap().2, "low-prio-first-in");
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(7.0, 0, ());
        assert_eq!(q.peek_time(), Some(7.0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_time_panics() {
        EventQueue::new().push(f64::NAN, 0, ());
    }
}
