//! Time-to-digital conversion and the Sample & Add accumulators.
//!
//! Sect. III.B: a global counter clocked at `f_clk` starts after the
//! initial delay; each arriving pulse samples the counter and the
//! per-column Sample & Add accumulates the sampled codes into a 14-bit
//! word (≤ 64 pixels × 8 bits); the 64 column sums add into a 20-bit
//! compressed sample — Eq. (1) widths, enforced with saturating
//! accumulators so any configuration that would clip is detected.

use crate::config::SensorConfig;
use tepics_util::fixed::SaturatingAccumulator;

/// Fate of one pulse at the TDC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Conversion {
    /// Pulse arrived inside the window; carries the sampled code.
    Code(u32),
    /// Pulse arrived after the conversion window closed — the value is
    /// lost (contributes nothing to the sample).
    Missed,
}

/// The global TDC counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalCounter {
    t_clk: f64,
    t_start: f64,
    code_max: u32,
}

impl GlobalCounter {
    /// Creates the counter from the sensor configuration.
    pub fn new(config: &SensorConfig) -> Self {
        GlobalCounter {
            t_clk: config.t_clk(),
            t_start: config.initial_delay(),
            code_max: config.code_max(),
        }
    }

    /// Samples the counter for a pulse arriving at `t` (s since reset).
    ///
    /// Arrivals before the counter starts read code 0; arrivals after
    /// `2^bits` ticks are [`Conversion::Missed`].
    pub fn convert(&self, t: f64) -> Conversion {
        if t < self.t_start {
            return Conversion::Code(0);
        }
        let ticks = ((t - self.t_start) / self.t_clk).floor() as u64;
        if ticks > self.code_max as u64 {
            Conversion::Missed
        } else {
            Conversion::Code(ticks.min(self.code_max as u64) as u32)
        }
    }

    /// The ideal code for a flip time, ignoring arbitration (used as the
    /// ground truth in LSB-error analyses).
    pub fn ideal_code(&self, t_flip: f64) -> Conversion {
        self.convert(t_flip)
    }
}

/// Per-column Sample & Add plus the final sample adder, with hardware
/// widths.
#[derive(Debug, Clone)]
pub struct SampleAdd {
    columns: Vec<SaturatingAccumulator>,
    column_bits: u32,
    sample_bits: u32,
}

/// A finished compressed sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleWord {
    /// The accumulated compressed sample value.
    pub value: u64,
    /// Width of the sample word in bits.
    pub bits: u32,
    /// `true` if any column accumulator clipped.
    pub column_overflow: bool,
    /// `true` if the final adder clipped.
    pub sample_overflow: bool,
}

impl SampleAdd {
    /// Creates accumulators for `cols` columns with widths derived from
    /// Eq. (1): column width = `pixel_bits + ⌈log2 rows⌉`, sample width
    /// = `pixel_bits + ⌈log2 (rows·cols)⌉`.
    pub fn for_config(config: &SensorConfig) -> Self {
        let column_bits =
            tepics_util::fixed::sum_bits(config.counter_bits(), config.rows() as u32, 1);
        let sample_bits = tepics_util::fixed::sum_bits(
            config.counter_bits(),
            config.rows() as u32,
            config.cols() as u32,
        );
        SampleAdd {
            columns: (0..config.cols())
                .map(|_| SaturatingAccumulator::new(column_bits))
                .collect(),
            column_bits,
            sample_bits,
        }
    }

    /// Column accumulator width (14 bits for the prototype).
    pub fn column_bits(&self) -> u32 {
        self.column_bits
    }

    /// Final sample width (20 bits for the prototype).
    pub fn sample_bits(&self) -> u32 {
        self.sample_bits
    }

    /// Accumulates a converted code into its column. Missed conversions
    /// are counted by the caller; they add nothing here.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn add(&mut self, col: usize, conversion: Conversion) {
        assert!(col < self.columns.len(), "column {col} out of range");
        if let Conversion::Code(code) = conversion {
            self.columns[col].add(code as u64);
        }
    }

    /// Sums the column words into the final sample and resets for the
    /// next one.
    pub fn finish(&mut self) -> SampleWord {
        let mut total = SaturatingAccumulator::new(self.sample_bits);
        let mut column_overflow = false;
        for c in &mut self.columns {
            column_overflow |= c.overflowed();
            total.add(c.value());
            c.reset();
        }
        SampleWord {
            value: total.value(),
            bits: self.sample_bits,
            column_overflow,
            sample_overflow: total.overflowed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SensorConfig {
        SensorConfig::paper_prototype()
    }

    #[test]
    fn paper_widths_are_14_and_20_bits() {
        let sa = SampleAdd::for_config(&config());
        assert_eq!(sa.column_bits(), 14);
        assert_eq!(sa.sample_bits(), 20);
    }

    #[test]
    fn counter_codes_are_monotone_in_time() {
        let c = config();
        let counter = GlobalCounter::new(&c);
        let mut last = 0;
        let mut t = c.initial_delay();
        while t < c.window_end() - c.t_clk() {
            match counter.convert(t) {
                Conversion::Code(code) => {
                    assert!(code >= last);
                    last = code;
                }
                Conversion::Missed => panic!("unexpected miss inside window"),
            }
            t += c.t_clk() * 3.7;
        }
        assert!(last > 200, "codes should span most of the range");
    }

    #[test]
    fn counter_boundaries() {
        let c = config();
        let counter = GlobalCounter::new(&c);
        // Before start: code 0.
        assert_eq!(counter.convert(0.0), Conversion::Code(0));
        // Exactly at start: code 0.
        assert_eq!(counter.convert(c.initial_delay()), Conversion::Code(0));
        // One tick in: code 1.
        assert_eq!(
            counter.convert(c.initial_delay() + 1.5 * c.t_clk()),
            Conversion::Code(1)
        );
        // Last valid tick: code 255.
        assert_eq!(
            counter.convert(c.initial_delay() + 255.5 * c.t_clk()),
            Conversion::Code(255)
        );
        // After the window: missed.
        assert_eq!(
            counter.convert(c.initial_delay() + 256.5 * c.t_clk()),
            Conversion::Missed
        );
    }

    #[test]
    fn one_clock_late_arrival_is_one_lsb() {
        // The paper's 1 LSB observation: a pulse delayed into the next
        // clock period reads one code higher.
        let c = config();
        let counter = GlobalCounter::new(&c);
        let t = c.initial_delay() + 100.0 * c.t_clk() + 0.9 * c.t_clk();
        let on_time = counter.convert(t);
        let late = counter.convert(t + 0.2 * c.t_clk());
        match (on_time, late) {
            (Conversion::Code(a), Conversion::Code(b)) => assert_eq!(b, a + 1),
            other => panic!("unexpected conversions {other:?}"),
        }
    }

    #[test]
    fn full_column_of_max_codes_fits_exactly() {
        let c = config();
        let mut sa = SampleAdd::for_config(&c);
        for _ in 0..64 {
            sa.add(0, Conversion::Code(255));
        }
        let word = sa.finish();
        assert_eq!(word.value, 64 * 255);
        assert!(!word.column_overflow);
        assert!(!word.sample_overflow);
    }

    #[test]
    fn worst_case_frame_never_overflows_eq1_widths() {
        // All 4096 pixels selected at code 255: exactly the Eq. (1) case.
        let c = config();
        let mut sa = SampleAdd::for_config(&c);
        for col in 0..64 {
            for _ in 0..64 {
                sa.add(col, Conversion::Code(255));
            }
        }
        let word = sa.finish();
        assert_eq!(word.value, 4096 * 255);
        assert!(!word.column_overflow && !word.sample_overflow);
        assert_eq!(word.bits, 20);
    }

    #[test]
    fn undersized_widths_do_clip_and_report() {
        // A 6-bit counter with a 64-pixel column would need 12 bits; feed
        // codes beyond that through a deliberately tiny config.
        let tiny = SensorConfig::builder(4, 2)
            .counter_bits(2)
            .clk_hz(24e6)
            .build()
            .unwrap();
        let mut sa = SampleAdd::for_config(&tiny);
        // column bits = 2 + log2(4) = 4; max 15. Add 4 codes of 3 -> 12 ok.
        for _ in 0..4 {
            sa.add(0, Conversion::Code(3));
        }
        let w = sa.finish();
        assert!(!w.column_overflow);
        assert_eq!(w.value, 12);
        // Overfill: 6 codes of 3 = 18 > 15 clips.
        for _ in 0..6 {
            sa.add(0, Conversion::Code(3));
        }
        let w = sa.finish();
        assert!(w.column_overflow);
    }

    #[test]
    fn missed_conversions_add_nothing() {
        let c = config();
        let mut sa = SampleAdd::for_config(&c);
        sa.add(0, Conversion::Missed);
        sa.add(1, Conversion::Code(7));
        let w = sa.finish();
        assert_eq!(w.value, 7);
    }
}
