//! The Fig. 1 pixel logic.
//!
//! Every named node of the elementary pixel is modeled:
//!
//! * `V1` — comparator output (time-encoded value);
//! * `V2` — XOR pixel selection (`V2` stuck high when `S_i = S_j`,
//!   else the inverse of `V1`) — placing selection right after the
//!   comparator keeps unselected pixels from toggling anything;
//! * `V3` — activation latch (set by a falling `V2`, cleared by reset);
//! * `V4` — event gate (`!V3` while `Q′` is high, else forced high);
//! * `V5` — bus driver control (rises when `V4` falls and `C_in` is
//!   low);
//! * `C_out` — 3-input-NAND token gate: low (allowing pixels below to
//!   fire) only when `C_in` is low, `V4` is high and the bus `V_o` is
//!   high.
//!
//! The functions are pure combinational logic, unit-tested against the
//! paper's prose; [`NodeTrace`] samples a full single-pixel timeline for
//! the `fig1` waveform experiment.

use crate::config::SensorConfig;
use crate::photodiode;

/// `V2`: XOR selection placed after the comparator. High (inactive) when
/// the pixel is not selected (`s_row == s_col`); otherwise the inverse
/// of the comparator output `v1`.
#[inline]
pub fn v2_select(v1: bool, s_row: bool, s_col: bool) -> bool {
    if s_row == s_col {
        true
    } else {
        !v1
    }
}

/// `V3`: activation latch. Set when `V2` is active-low; once set it
/// holds until pixel reset (`v3_prev` carries the latched state).
#[inline]
pub fn v3_latch(v2: bool, v3_prev: bool) -> bool {
    v3_prev || !v2
}

/// `V4`: the inverse of `V3` while the termination signal `Q′` is high;
/// forced high once `Q′` drops (ending the pulse).
#[inline]
pub fn v4_gate(v3: bool, q_prime: bool) -> bool {
    if q_prime {
        !v3
    } else {
        true
    }
}

/// `V5`: drives the bus pull-down transistor M2. Rises only when `V4`
/// has fallen *and* the token input `C_in` is low.
#[inline]
pub fn v5_driver(v4: bool, c_in: bool) -> bool {
    !v4 && !c_in
}

/// `C_out`: 3-input NAND. Low — releasing the pixels below — only when
/// `C_in` is low (nobody above wants the bus), `V4` is high (this pixel
/// is done or inactive) and `V_o` is high (bus free).
#[inline]
pub fn c_out(c_in: bool, v4: bool, v_o: bool) -> bool {
    !(!c_in && v4 && v_o)
}

/// One sampled point of the single-pixel timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSample {
    /// Time since pixel reset (s).
    pub t: f64,
    /// Analog integration node (V).
    pub v_pix: f64,
    /// Comparator output.
    pub v1: bool,
    /// Selection node.
    pub v2: bool,
    /// Activation latch.
    pub v3: bool,
    /// Event gate.
    pub v4: bool,
    /// Bus driver control.
    pub v5: bool,
    /// Termination signal.
    pub q_prime: bool,
    /// Column bus level.
    pub v_o: bool,
    /// Token output to the pixel below.
    pub c_out: bool,
}

/// A sampled timeline of all Fig. 1 nodes for one pixel.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTrace {
    /// Sampled points, ascending in time.
    pub samples: Vec<NodeSample>,
    /// The comparator flip time used (s).
    pub t_flip: f64,
    /// Bus grant time used (s).
    pub t_grant: f64,
}

impl NodeTrace {
    /// Simulates one pixel's nodes on a uniform time grid.
    ///
    /// * `selected` — whether `S_i ⊕ S_j = 1` this sample;
    /// * `t_grant` — when the arbiter grants the bus (pass the flip time
    ///   when the bus is free); the pulse lasts `event_duration`;
    /// * `points` — number of grid samples over `[0, window_end]`.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`.
    pub fn simulate(
        config: &SensorConfig,
        intensity: f64,
        selected: bool,
        t_grant: f64,
        points: usize,
    ) -> NodeTrace {
        assert!(points >= 2, "need at least two sample points");
        let t_flip = photodiode::crossing_time(config, intensity) + config.comparator_delay();
        let t_end = t_grant + config.event_duration();
        let horizon = config.window_end();
        let mut samples = Vec::with_capacity(points);
        for p in 0..points {
            let t = horizon * p as f64 / (points - 1) as f64;
            let v1 = t >= t_flip;
            let v2 = v2_select(v1, selected, false);
            let v3 = selected && v1;
            // Q′ falls once the termination loop has run its course.
            let q_prime = !(selected && t >= t_end);
            let pulsing = selected && t >= t_grant && t < t_end;
            let v4 = if pulsing { false } else { v4_gate(v3, q_prime) };
            // C_in low: single-pixel column with a free chain above.
            let v5 = pulsing;
            let v_o = !pulsing;
            samples.push(NodeSample {
                t,
                v_pix: photodiode::v_pix_at(config, intensity, t),
                v1,
                v2,
                v3,
                v4,
                v5,
                q_prime,
                v_o,
                c_out: c_out(false, v4, v_o),
            });
        }
        NodeTrace {
            samples,
            t_flip,
            t_grant,
        }
    }

    /// Renders selected digital nodes as ASCII waveforms (`▔`/`▁`).
    pub fn to_ascii(&self) -> String {
        type NodeProbe = fn(&NodeSample) -> bool;
        let rows: [(&str, NodeProbe); 7] = [
            ("V1 ", |s| s.v1),
            ("V2 ", |s| s.v2),
            ("V3 ", |s| s.v3),
            ("V4 ", |s| s.v4),
            ("V5 ", |s| s.v5),
            ("Q' ", |s| s.q_prime),
            ("Vo ", |s| s.v_o),
        ];
        let mut out = String::new();
        for (name, f) in rows {
            out.push_str(name);
            for s in &self.samples {
                out.push(if f(s) { '▔' } else { '▁' });
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The selection truth table from Sect. II.B: the pixel contributes
    /// in exactly half of the (S_i, S_j) combinations.
    #[test]
    fn v2_truth_table() {
        // Equal selections: V2 stuck high regardless of V1.
        assert!(v2_select(false, false, false));
        assert!(v2_select(true, false, false));
        assert!(v2_select(false, true, true));
        assert!(v2_select(true, true, true));
        // Different selections: V2 = !V1.
        assert!(v2_select(false, true, false));
        assert!(!v2_select(true, true, false));
        assert!(v2_select(false, false, true));
        assert!(!v2_select(true, false, true));
    }

    #[test]
    fn v3_latches_until_reset() {
        // Not yet active, V2 high: stays low.
        assert!(!v3_latch(true, false));
        // V2 falls: set.
        assert!(v3_latch(false, false));
        // V2 returns high: latched.
        assert!(v3_latch(true, true));
    }

    #[test]
    fn v4_respects_termination() {
        assert!(v4_gate(false, true)); // inactive pixel
        assert!(!v4_gate(true, true)); // active, Q' high: V4 low
        assert!(v4_gate(true, false)); // terminated: forced high
    }

    #[test]
    fn v5_requires_token_and_activation() {
        assert!(v5_driver(false, false)); // V4 low, C_in low: pulse
        assert!(!v5_driver(false, true)); // blocked by token
        assert!(!v5_driver(true, false)); // not activated
    }

    /// Sect. II.E: the three conditions for C_out = 0.
    #[test]
    fn c_out_truth_table() {
        assert!(!c_out(false, true, true)); // all conditions met: release
        assert!(c_out(true, true, true)); // someone above waiting
        assert!(c_out(false, false, true)); // this pixel mid-event
        assert!(c_out(false, true, false)); // bus busy
    }

    #[test]
    fn trace_shows_single_pulse_of_configured_width() {
        let c = SensorConfig::paper_prototype();
        let t_flip = crate::photodiode::crossing_time(&c, 0.5) + c.comparator_delay();
        let trace = NodeTrace::simulate(&c, 0.5, true, t_flip, 20_000);
        // V1 eventually rises; V5 pulses exactly while Vo is low.
        assert!(trace.samples.iter().any(|s| s.v1));
        for s in &trace.samples {
            assert_eq!(s.v5, !s.v_o, "bus must mirror the driver");
        }
        let pulse_samples = trace.samples.iter().filter(|s| s.v5).count();
        let dt = c.window_end() / 19_999.0;
        let width = pulse_samples as f64 * dt;
        assert!(
            (width - c.event_duration()).abs() < 3.0 * dt,
            "pulse width {width:.2e}s vs configured {:.2e}s",
            c.event_duration()
        );
    }

    #[test]
    fn unselected_pixel_never_pulses() {
        let c = SensorConfig::paper_prototype();
        let trace = NodeTrace::simulate(&c, 0.9, false, 1e-6, 2_000);
        assert!(trace.samples.iter().all(|s| !s.v5 && s.v_o));
        // V2 stays stuck high.
        assert!(trace.samples.iter().all(|s| s.v2));
    }

    #[test]
    fn ascii_render_has_seven_rows() {
        let c = SensorConfig::paper_prototype();
        let trace = NodeTrace::simulate(&c, 0.5, true, 1e-6, 100);
        assert_eq!(trace.to_ascii().lines().count(), 7);
    }
}
