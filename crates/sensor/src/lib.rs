//! Event-accurate behavioral simulator of the DATE 2018 compressive
//! image sensor.
//!
//! No silicon ships with this repository; what the paper validated with
//! post-layout simulation, TEPICS validates with a behavioral model that
//! reproduces every named circuit of the chip:
//!
//! * [`SensorConfig`] — electrical, timing and noise parameters with the
//!   paper's Table II values as defaults.
//! * [`photodiode`] / [`comparator`] — light → time encoding
//!   (`t = C·ΔV / I_ph`), auto-zeroed comparator offset, jitter.
//! * [`pixel`] — the Fig. 1 digital logic (XOR select, activation latch,
//!   event termination, `C_in`/`C_out` token gates) as pure functions.
//! * [`column`](mod@crate::column) — the asynchronous column bus: parallel blocking,
//!   sequential top-down release, bounded event duration.
//! * [`desim`] — the small deterministic event queue driving it.
//! * [`tdc`] — global counter + per-column Sample & Add with the 14-bit
//!   and 20-bit widths of Eq. (1) enforced.
//! * [`readout`] — whole-frame capture in `Functional` (ideal codes) or
//!   `EventAccurate` (arbitration, serialization delays, missed pulses)
//!   fidelity.
//! * [`chip`] — the geometry/area/power accounting model behind
//!   Figs. 2/4/5 and Table II.
//!
//! # Examples
//!
//! ```
//! use tepics_sensor::{Fidelity, FrameReadout, SensorConfig};
//! use tepics_imaging::Scene;
//! use tepics_ca::{CaSource, ElementaryRule};
//!
//! let config = SensorConfig::builder(16, 16).build().unwrap();
//! let scene = Scene::gaussian_blobs(2).render(16, 16, 1);
//! let mut source = CaSource::new(32, 7, ElementaryRule::RULE_30, 64, 1);
//! let readout = FrameReadout::new(config, Fidelity::EventAccurate);
//! let frame = readout.capture(&scene, &mut source, 40);
//! assert_eq!(frame.samples.len(), 40);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chip;
pub mod column;
pub mod comparator;
pub mod config;
pub mod desim;
pub mod noise;
pub mod photodiode;
pub mod pixel;
pub mod readout;
pub mod tdc;
pub mod vcd;

pub use chip::ChipModel;
pub use column::{ColumnArbiter, PixelEvent};
pub use config::{CodeTransfer, SensorConfig, SensorConfigBuilder};
pub use readout::{CapturedFrame, EventStats, Fidelity, FrameReadout};
