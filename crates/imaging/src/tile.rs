//! Frame geometry and overlapped tile decomposition.
//!
//! Recovery cost grows super-linearly in the pixel count, so megapixel
//! frames are decoded as independent tiles (the block-parallel
//! architecture of Björklund & Magli): every tile is sensed and
//! recovered with its own small measurement operator, and the
//! reconstructions are stitched back with overlap blending to hide
//! seams. This module supplies the geometry types for that pipeline:
//!
//! * [`FrameGeometry`] — a width × height frame, with no square or
//!   power-of-two assumption.
//! * [`TileConfig`] — tile side, overlap, and [`BlendMode`].
//! * [`TileLayout`] — the resolved decomposition: *uniform* tile
//!   rectangles (all exactly `tile_width × tile_height`) stepped by
//!   `tile − overlap`, with the last tile of each row/column shifted
//!   back to end at the frame edge. Uniform tiles mean every tile
//!   shares one measurement-operator geometry — a single operator-cache
//!   key serves the whole frame — while still covering dimensions that
//!   are not a multiple of the tile size.
//! * [`split_tiles`] / [`merge_tiles`] — extraction and
//!   overlap-weighted stitching. The merge is a deterministic
//!   sequential accumulation, so stitched results are bit-identical
//!   regardless of how (or on how many threads) the tiles were
//!   produced.
//!
//! # Examples
//!
//! ```
//! use tepics_imaging::tile::{FrameGeometry, TileConfig, TileLayout};
//!
//! let layout = TileLayout::new(
//!     FrameGeometry::new(40, 28),
//!     &TileConfig::new(16).overlap(4),
//! )
//! .unwrap();
//! assert_eq!((layout.tiles_x(), layout.tiles_y()), (3, 2));
//! assert_eq!(layout.rect(2).x, 24); // last column shifted to the edge
//! ```

use crate::image::ImageF64;
use std::fmt;

/// A frame's pixel dimensions: width × height, no shape assumptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameGeometry {
    width: usize,
    height: usize,
}

impl FrameGeometry {
    /// A `width × height` frame.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(width: usize, height: usize) -> FrameGeometry {
        assert!(width > 0 && height > 0, "frame dimensions must be positive");
        FrameGeometry { width, height }
    }

    /// A square `side × side` frame (the shape the bare `side`-based
    /// constructors used to assume).
    #[must_use]
    pub fn square(side: usize) -> FrameGeometry {
        FrameGeometry::new(side, side)
    }

    /// Frame width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total pixel count.
    #[must_use]
    pub fn pixels(&self) -> usize {
        self.width * self.height
    }
}

/// How overlapping tile regions are blended during stitching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BlendMode {
    /// Every covering tile contributes with equal weight.
    Average,
    /// Contributions ramp down linearly over the overlap band
    /// (feathering), hiding seams between independently recovered
    /// tiles. Equivalent to [`BlendMode::Average`] when the overlap is
    /// zero.
    #[default]
    Feather,
}

/// Tile decomposition parameters: tile side, overlap, blend.
///
/// Built fluently: `TileConfig::new(64).overlap(8)`. The tile is
/// nominally square; [`TileLayout`] clamps it to the frame on each axis
/// independently, so a 64-tile config on a 256 × 48 frame yields
/// 64 × 48 tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileConfig {
    tile: usize,
    overlap: usize,
    blend: BlendMode,
}

impl TileConfig {
    /// A `tile × tile` decomposition with no overlap and the default
    /// blend ([`BlendMode::Feather`]).
    #[must_use]
    pub fn new(tile: usize) -> TileConfig {
        TileConfig {
            tile,
            overlap: 0,
            blend: BlendMode::Feather,
        }
    }

    /// Sets the overlap between adjacent tiles, in pixels (must stay
    /// below the tile side; validated by [`TileLayout::new`]).
    #[must_use]
    pub fn overlap(mut self, overlap: usize) -> TileConfig {
        self.overlap = overlap;
        self
    }

    /// Sets the blend mode used when stitching.
    #[must_use]
    pub fn blend(mut self, blend: BlendMode) -> TileConfig {
        self.blend = blend;
        self
    }

    /// The configured tile side.
    #[must_use]
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// The configured overlap.
    #[must_use]
    pub fn overlap_px(&self) -> usize {
        self.overlap
    }

    /// The configured blend mode.
    #[must_use]
    pub fn blend_mode(&self) -> BlendMode {
        self.blend
    }
}

/// A rejected tile decomposition (degenerate tile, overlap too large…).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileLayoutError(String);

impl fmt::Display for TileLayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid tile layout: {}", self.0)
    }
}

impl std::error::Error for TileLayoutError {}

/// One tile's position and size inside the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileRect {
    /// Left edge (pixels from the frame's left).
    pub x: usize,
    /// Top edge (pixels from the frame's top).
    pub y: usize,
    /// Tile width (equal for every tile of a layout).
    pub w: usize,
    /// Tile height (equal for every tile of a layout).
    pub h: usize,
}

/// A resolved tile decomposition of one frame.
///
/// Tiles are uniform: every rectangle is exactly
/// `tile_width() × tile_height()`. Positions step by `tile − overlap`;
/// the last tile of each row/column is shifted back so it ends exactly
/// at the frame edge (increasing its overlap with its neighbor instead
/// of producing a ragged edge tile). Tile order is row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileLayout {
    frame: FrameGeometry,
    tile_w: usize,
    tile_h: usize,
    overlap: usize,
    blend: BlendMode,
    xs: Vec<usize>,
    ys: Vec<usize>,
}

/// Tile origins along one axis: step by `tile − overlap`, shift the
/// last origin back to `extent − tile`. Requires `tile <= extent`.
fn axis_positions(extent: usize, tile: usize, overlap: usize) -> Vec<usize> {
    let step = tile - overlap;
    let mut out = Vec::new();
    let mut x = 0;
    loop {
        if x + tile >= extent {
            out.push(extent - tile);
            break;
        }
        out.push(x);
        x += step;
    }
    out
}

impl TileLayout {
    /// Resolves `config` against `frame`, clamping the nominal tile to
    /// the frame on each axis (and the overlap along with it, when the
    /// clamped tile no longer accommodates the configured overlap).
    ///
    /// # Errors
    ///
    /// Returns [`TileLayoutError`] if the tile is zero or the
    /// configured overlap is not strictly smaller than the configured
    /// tile.
    pub fn new(frame: FrameGeometry, config: &TileConfig) -> Result<TileLayout, TileLayoutError> {
        if config.tile == 0 {
            return Err(TileLayoutError("tile size must be positive".into()));
        }
        if config.overlap >= config.tile {
            return Err(TileLayoutError(format!(
                "overlap {} must be smaller than tile {}",
                config.overlap, config.tile
            )));
        }
        let tile_w = config.tile.min(frame.width());
        let tile_h = config.tile.min(frame.height());
        let overlap = config.overlap.min(tile_w.min(tile_h) - 1);
        TileLayout::with_tile_dims(frame, tile_w, tile_h, overlap, config.blend)
    }

    /// Resolves a layout from explicit (already clamped) tile
    /// dimensions — the constructor the wire-format parser uses, where
    /// the tile dimensions arrive independently of the frame's.
    ///
    /// # Errors
    ///
    /// Returns [`TileLayoutError`] if a tile dimension is zero or
    /// exceeds the frame, or the overlap is not strictly smaller than
    /// the tile on both axes.
    pub fn with_tile_dims(
        frame: FrameGeometry,
        tile_w: usize,
        tile_h: usize,
        overlap: usize,
        blend: BlendMode,
    ) -> Result<TileLayout, TileLayoutError> {
        if tile_w == 0 || tile_h == 0 {
            return Err(TileLayoutError("tile dimensions must be positive".into()));
        }
        if tile_w > frame.width() || tile_h > frame.height() {
            return Err(TileLayoutError(format!(
                "tile {tile_w}×{tile_h} exceeds frame {}×{}",
                frame.width(),
                frame.height()
            )));
        }
        if overlap >= tile_w || overlap >= tile_h {
            return Err(TileLayoutError(format!(
                "overlap {overlap} must be smaller than tile {tile_w}×{tile_h}"
            )));
        }
        let xs = axis_positions(frame.width(), tile_w, overlap);
        let ys = axis_positions(frame.height(), tile_h, overlap);
        Ok(TileLayout {
            frame,
            tile_w,
            tile_h,
            overlap,
            blend,
            xs,
            ys,
        })
    }

    /// The frame this layout decomposes.
    #[must_use]
    pub fn frame(&self) -> FrameGeometry {
        self.frame
    }

    /// Width of every tile.
    #[must_use]
    pub fn tile_width(&self) -> usize {
        self.tile_w
    }

    /// Height of every tile.
    #[must_use]
    pub fn tile_height(&self) -> usize {
        self.tile_h
    }

    /// Pixels per tile.
    #[must_use]
    pub fn pixels_per_tile(&self) -> usize {
        self.tile_w * self.tile_h
    }

    /// The nominal overlap between adjacent tiles.
    #[must_use]
    pub fn overlap(&self) -> usize {
        self.overlap
    }

    /// The blend mode used when stitching.
    #[must_use]
    pub fn blend(&self) -> BlendMode {
        self.blend
    }

    /// Number of tile columns.
    #[must_use]
    pub fn tiles_x(&self) -> usize {
        self.xs.len()
    }

    /// Number of tile rows.
    #[must_use]
    pub fn tiles_y(&self) -> usize {
        self.ys.len()
    }

    /// Total tile count.
    #[must_use]
    pub fn tiles(&self) -> usize {
        self.xs.len() * self.ys.len()
    }

    /// The `i`-th tile rectangle (row-major order).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.tiles()`.
    #[must_use]
    pub fn rect(&self, i: usize) -> TileRect {
        assert!(i < self.tiles(), "tile {i} out of range");
        TileRect {
            x: self.xs[i % self.xs.len()],
            y: self.ys[i / self.xs.len()],
            w: self.tile_w,
            h: self.tile_h,
        }
    }

    /// All tile rectangles, in row-major order.
    pub fn rects(&self) -> impl Iterator<Item = TileRect> + '_ {
        (0..self.tiles()).map(|i| self.rect(i))
    }

    /// The per-pixel blend weight map of one tile (row-major,
    /// `tile_width × tile_height`; identical for every tile of the
    /// layout, since tiles are uniform). Average blending weights every
    /// pixel 1; feathering ramps linearly from 1 at the overlap-band
    /// boundary down toward the tile edge. Stitching normalizes by the
    /// total weight, so single-covered pixels are unaffected by the
    /// ramp.
    #[must_use]
    pub fn tile_weights(&self) -> Vec<f64> {
        let ramp = |d: usize, extent: usize| -> f64 {
            match self.blend {
                BlendMode::Average => 1.0,
                BlendMode::Feather => {
                    let edge = (d + 1).min(extent - d);
                    edge.min(self.overlap + 1) as f64
                }
            }
        };
        let mut w = Vec::with_capacity(self.tile_w * self.tile_h);
        for dy in 0..self.tile_h {
            let wy = ramp(dy, self.tile_h);
            for dx in 0..self.tile_w {
                w.push(wy * ramp(dx, self.tile_w));
            }
        }
        w
    }
}

/// Extracts every tile of `layout` from `img`, in row-major tile order;
/// each tile is a row-major `Vec<f64>` of `pixels_per_tile` values.
///
/// # Panics
///
/// Panics if the image dimensions differ from the layout's frame.
#[must_use]
pub fn split_tiles(img: &ImageF64, layout: &TileLayout) -> Vec<Vec<f64>> {
    assert!(
        img.width() == layout.frame().width() && img.height() == layout.frame().height(),
        "image {}×{} does not match layout frame {}×{}",
        img.width(),
        img.height(),
        layout.frame().width(),
        layout.frame().height()
    );
    layout
        .rects()
        .map(|r| {
            let mut tile = Vec::with_capacity(r.w * r.h);
            for dy in 0..r.h {
                for dx in 0..r.w {
                    tile.push(img.get(r.x + dx, r.y + dy));
                }
            }
            tile
        })
        .collect()
}

/// Stitches tiles back into a frame, blending overlapped regions by the
/// layout's weight map (weighted mean per pixel).
///
/// The accumulation is sequential in tile order, so the stitched result
/// is a pure function of the tile values — bit-identical no matter how
/// the tiles were computed or scheduled.
///
/// # Panics
///
/// Panics if the tile count or a tile's length disagrees with `layout`.
#[must_use]
pub fn merge_tiles(tiles: &[Vec<f64>], layout: &TileLayout) -> ImageF64 {
    assert_eq!(tiles.len(), layout.tiles(), "tile count mismatch");
    let frame = layout.frame();
    let weights = layout.tile_weights();
    let mut acc = vec![0.0f64; frame.pixels()];
    let mut wsum = vec![0.0f64; frame.pixels()];
    for (tile, r) in tiles.iter().zip(layout.rects()) {
        assert_eq!(tile.len(), layout.pixels_per_tile(), "tile size mismatch");
        for dy in 0..r.h {
            let row = (r.y + dy) * frame.width() + r.x;
            let trow = dy * r.w;
            for dx in 0..r.w {
                let w = weights[trow + dx];
                acc[row + dx] += w * tile[trow + dx];
                wsum[row + dx] += w;
            }
        }
    }
    for (a, &w) in acc.iter_mut().zip(&wsum) {
        debug_assert!(w > 0.0, "layout tiles must cover the frame");
        *a /= w;
    }
    ImageF64::from_vec(frame.width(), frame.height(), acc)
}

/// Stitches a frame from a *partial* tile set: erased tiles are `None`,
/// and pixels covered by no surviving tile come back flagged in the
/// returned mask (`true` = uncovered, value 0.0) for the caller to fill
/// (see [`fill_uncovered`]).
///
/// Surviving tiles blend exactly as in [`merge_tiles`]: a fully present
/// tile set stitches bit-identical to `merge_tiles`, and a pixel inside
/// any surviving tile takes the weighted mean of the tiles that do
/// cover it.
///
/// # Panics
///
/// Panics if the tile count or a present tile's length disagrees with
/// `layout`.
#[must_use]
pub fn merge_tiles_sparse(
    tiles: &[Option<Vec<f64>>],
    layout: &TileLayout,
) -> (ImageF64, Vec<bool>) {
    assert_eq!(tiles.len(), layout.tiles(), "tile count mismatch");
    let frame = layout.frame();
    let weights = layout.tile_weights();
    let mut acc = vec![0.0f64; frame.pixels()];
    let mut wsum = vec![0.0f64; frame.pixels()];
    for (tile, r) in tiles.iter().zip(layout.rects()) {
        let Some(tile) = tile else { continue };
        assert_eq!(tile.len(), layout.pixels_per_tile(), "tile size mismatch");
        for dy in 0..r.h {
            let row = (r.y + dy) * frame.width() + r.x;
            let trow = dy * r.w;
            for dx in 0..r.w {
                let w = weights[trow + dx];
                acc[row + dx] += w * tile[trow + dx];
                wsum[row + dx] += w;
            }
        }
    }
    let mut uncovered = vec![false; frame.pixels()];
    for ((a, &w), u) in acc.iter_mut().zip(&wsum).zip(uncovered.iter_mut()) {
        if w > 0.0 {
            *a /= w;
        } else {
            *u = true;
        }
    }
    (
        ImageF64::from_vec(frame.width(), frame.height(), acc),
        uncovered,
    )
}

/// Fills the `uncovered` pixels of `img` (the mask of
/// [`merge_tiles_sparse`]) by deterministic inward diffusion: each pass
/// assigns every still-unfilled pixel with at least one filled
/// 4-neighbor the mean of those neighbors' *previous-pass* values
/// (Jacobi sweeps, so the result is independent of traversal order).
/// Passes repeat until every reachable pixel is filled.
///
/// A frame with no covered pixels at all has nothing to diffuse from
/// and is left untouched (all zeros from the sparse stitch).
///
/// # Panics
///
/// Panics if the mask length differs from the image pixel count.
pub fn fill_uncovered(img: &mut ImageF64, uncovered: &[bool]) {
    assert_eq!(uncovered.len(), img.len(), "mask/image size mismatch");
    if uncovered.iter().all(|&u| !u) || uncovered.iter().all(|&u| u) {
        return;
    }
    let (w, h) = (img.width(), img.height());
    let mut filled: Vec<bool> = uncovered.iter().map(|&u| !u).collect();
    let mut remaining: usize = uncovered.iter().filter(|&&u| u).count();
    while remaining > 0 {
        let snapshot = img.as_slice().to_vec();
        let frozen = filled.clone();
        let mut progressed = false;
        for y in 0..h {
            for x in 0..w {
                let i = y * w + x;
                if frozen[i] {
                    continue;
                }
                let mut sum = 0.0;
                let mut n = 0usize;
                let mut visit = |j: usize| {
                    if frozen[j] {
                        sum += snapshot[j];
                        n += 1;
                    }
                };
                if x > 0 {
                    visit(i - 1);
                }
                if x + 1 < w {
                    visit(i + 1);
                }
                if y > 0 {
                    visit(i - w);
                }
                if y + 1 < h {
                    visit(i + w);
                }
                if n > 0 {
                    img.set(x, y, sum / n as f64);
                    filled[i] = true;
                    remaining -= 1;
                    progressed = true;
                }
            }
        }
        debug_assert!(progressed, "diffusion must reach every pixel");
        if !progressed {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenes::Scene;

    #[test]
    fn geometry_accessors() {
        let g = FrameGeometry::new(40, 28);
        assert_eq!((g.width(), g.height(), g.pixels()), (40, 28, 1120));
        assert_eq!(FrameGeometry::square(16), FrameGeometry::new(16, 16));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_geometry_panics() {
        let _ = FrameGeometry::new(0, 4);
    }

    #[test]
    fn layout_covers_non_multiple_dimensions() {
        let layout =
            TileLayout::new(FrameGeometry::new(40, 28), &TileConfig::new(16).overlap(4)).unwrap();
        assert_eq!((layout.tiles_x(), layout.tiles_y()), (3, 2));
        assert_eq!(layout.tiles(), 6);
        // Last tiles shifted to end exactly at the frame edge.
        let last = layout.rect(layout.tiles() - 1);
        assert_eq!(last.x + last.w, 40);
        assert_eq!(last.y + last.h, 28);
        // All tiles uniform.
        for r in layout.rects() {
            assert_eq!((r.w, r.h), (16, 16));
        }
    }

    #[test]
    fn tile_larger_than_frame_is_clamped() {
        let layout =
            TileLayout::new(FrameGeometry::new(10, 6), &TileConfig::new(64).overlap(8)).unwrap();
        assert_eq!((layout.tile_width(), layout.tile_height()), (10, 6));
        assert_eq!(layout.tiles(), 1);
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let frame = FrameGeometry::new(32, 32);
        assert!(TileLayout::new(frame, &TileConfig::new(0)).is_err());
        assert!(TileLayout::new(frame, &TileConfig::new(8).overlap(8)).is_err());
        assert!(
            TileLayout::with_tile_dims(frame, 40, 8, 0, BlendMode::Average).is_err(),
            "tile wider than frame"
        );
        assert!(TileLayout::with_tile_dims(frame, 8, 0, 0, BlendMode::Average).is_err());
        let err = TileLayout::new(frame, &TileConfig::new(8).overlap(9)).unwrap_err();
        assert!(err.to_string().contains("overlap"));
    }

    #[test]
    fn split_merge_roundtrip_without_overlap_is_exact() {
        let img = Scene::natural_like().render(37, 23, 5);
        let layout = TileLayout::new(FrameGeometry::new(37, 23), &TileConfig::new(10)).unwrap();
        let tiles = split_tiles(&img, &layout);
        let back = merge_tiles(&tiles, &layout);
        // Shifted tiles overlap on non-multiple dims, but identical
        // values blend back to themselves up to one rounding step.
        for (a, b) in img.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn split_merge_roundtrip_with_overlap_and_feather() {
        let img = Scene::gaussian_blobs(3).render(40, 28, 9);
        for blend in [BlendMode::Average, BlendMode::Feather] {
            let layout = TileLayout::new(
                FrameGeometry::new(40, 28),
                &TileConfig::new(16).overlap(4).blend(blend),
            )
            .unwrap();
            let back = merge_tiles(&split_tiles(&img, &layout), &layout);
            for (a, b) in img.as_slice().iter().zip(back.as_slice()) {
                assert!((a - b).abs() < 1e-12, "{blend:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn feather_weights_ramp_over_the_overlap_band() {
        let layout =
            TileLayout::new(FrameGeometry::new(64, 64), &TileConfig::new(16).overlap(3)).unwrap();
        let w = layout.tile_weights();
        // Corner pixel: 1 step into both ramps.
        assert_eq!(w[0], 1.0);
        // Interior pixel: full weight (overlap+1)².
        assert_eq!(w[8 * 16 + 8], 16.0);
        // Ramp is symmetric.
        assert_eq!(w[5], w[16 - 6]);
    }

    #[test]
    fn average_blend_weights_are_uniform() {
        let layout = TileLayout::new(
            FrameGeometry::new(32, 32),
            &TileConfig::new(16).overlap(4).blend(BlendMode::Average),
        )
        .unwrap();
        assert!(layout.tile_weights().iter().all(|&w| w == 1.0));
    }

    #[test]
    fn merge_is_deterministic_in_tile_order() {
        let img = Scene::natural_like().render(40, 28, 3);
        let layout =
            TileLayout::new(FrameGeometry::new(40, 28), &TileConfig::new(16).overlap(4)).unwrap();
        let tiles = split_tiles(&img, &layout);
        let a = merge_tiles(&tiles, &layout);
        let b = merge_tiles(&tiles, &layout);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "tile count mismatch")]
    fn merge_rejects_wrong_tile_count() {
        let layout = TileLayout::new(FrameGeometry::new(32, 32), &TileConfig::new(16)).unwrap();
        let _ = merge_tiles(&[vec![0.0; 256]], &layout);
    }

    #[test]
    fn sparse_merge_with_all_tiles_matches_dense_merge() {
        let img = Scene::gaussian_blobs(3).render(40, 28, 9);
        let layout =
            TileLayout::new(FrameGeometry::new(40, 28), &TileConfig::new(16).overlap(4)).unwrap();
        let tiles = split_tiles(&img, &layout);
        let dense = merge_tiles(&tiles, &layout);
        let some: Vec<Option<Vec<f64>>> = tiles.into_iter().map(Some).collect();
        let (sparse, uncovered) = merge_tiles_sparse(&some, &layout);
        assert_eq!(sparse, dense, "full tile set must stitch identically");
        assert!(uncovered.iter().all(|&u| !u));
    }

    #[test]
    fn sparse_merge_flags_only_pixels_no_tile_covers() {
        let img = Scene::natural_like().render(40, 28, 3);
        let layout =
            TileLayout::new(FrameGeometry::new(40, 28), &TileConfig::new(16).overlap(4)).unwrap();
        let mut tiles: Vec<Option<Vec<f64>>> =
            split_tiles(&img, &layout).into_iter().map(Some).collect();
        tiles[0] = None;
        let (stitched, uncovered) = merge_tiles_sparse(&tiles, &layout);
        // Tile 0 spans x 0..16, y 0..16; its neighbors start at x=12 /
        // y=12 (overlap 4), so exactly the pixels with x<12 && y<12 lose
        // all coverage.
        let mut flagged = 0;
        for (x, y, v) in stitched.enumerate_pixels() {
            let lost = x < 12 && y < 12;
            assert_eq!(uncovered[y * 40 + x], lost, "({x},{y})");
            if lost {
                assert_eq!(v, 0.0);
                flagged += 1;
            }
        }
        assert_eq!(flagged, 12 * 12);
    }

    #[test]
    fn fill_uncovered_diffuses_deterministically_from_the_boundary() {
        let img = Scene::gaussian_blobs(2).render(32, 32, 4);
        let layout = TileLayout::new(FrameGeometry::new(32, 32), &TileConfig::new(16)).unwrap();
        let mut tiles: Vec<Option<Vec<f64>>> =
            split_tiles(&img, &layout).into_iter().map(Some).collect();
        tiles[3] = None; // bottom-right quadrant erased, no overlap
        let (mut a, mask) = merge_tiles_sparse(&tiles, &layout);
        fill_uncovered(&mut a, &mask);
        // Every pixel filled, and values stay within the surviving range.
        let (lo, hi) = (img.min_value(), img.max_value());
        for (x, y, v) in a.enumerate_pixels() {
            assert!(v.is_finite());
            if x >= 16 && y >= 16 {
                assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "({x},{y}) = {v}");
            } else {
                assert_eq!(v, img.get(x, y), "covered pixels untouched");
            }
        }
        // Deterministic: a second run from the same inputs is identical.
        let (mut b, mask2) = merge_tiles_sparse(&tiles, &layout);
        fill_uncovered(&mut b, &mask2);
        assert_eq!(a, b);
    }

    #[test]
    fn fill_uncovered_leaves_fully_erased_frames_at_zero() {
        let layout = TileLayout::new(FrameGeometry::new(16, 16), &TileConfig::new(16)).unwrap();
        let (mut img, mask) = merge_tiles_sparse(&[None], &layout);
        fill_uncovered(&mut img, &mask);
        assert!(img.as_slice().iter().all(|&v| v == 0.0));
    }
}
