//! Block decomposition for block-based compressive sampling.
//!
//! The paper contrasts its full-frame strategy against the widespread
//! block-based approach (refs. \[6–8\], \[11\], minimum practical block
//! 8×8). These helpers split an image into B×B blocks (row-major block
//! order, row-major pixels within each block — the same vectorization
//! the per-block measurement matrices use) and merge them back.
//!
//! Dimensions need not be multiples of the block size: edge blocks are
//! clipped to the frame, so every pixel belongs to exactly one block
//! and the split/merge round-trip is exact for any geometry. (For
//! *uniform* tiles with overlap blending — the decode-side tiling — see
//! [`crate::tile`].)

use crate::image::ImageF64;

/// Splits an image into `block`×`block` tiles, clipping edge tiles to
/// the frame when a dimension is not a multiple of `block`.
///
/// Returns tiles in row-major block order; each tile is a row-major
/// `Vec<f64>` of its own (possibly clipped) dimensions.
///
/// # Panics
///
/// Panics if `block == 0`.
pub fn split_blocks(img: &ImageF64, block: usize) -> Vec<Vec<f64>> {
    assert!(block > 0, "block size must be positive");
    let bx = img.width().div_ceil(block);
    let by = img.height().div_ceil(block);
    let mut out = Vec::with_capacity(bx * by);
    for byi in 0..by {
        let h = block.min(img.height() - byi * block);
        for bxi in 0..bx {
            let w = block.min(img.width() - bxi * block);
            let mut tile = Vec::with_capacity(w * h);
            for dy in 0..h {
                for dx in 0..w {
                    tile.push(img.get(bxi * block + dx, byi * block + dy));
                }
            }
            out.push(tile);
        }
    }
    out
}

/// Reassembles tiles produced by [`split_blocks`].
///
/// # Panics
///
/// Panics if the tile count or tile sizes are inconsistent with the
/// target dimensions.
pub fn merge_blocks(tiles: &[Vec<f64>], width: usize, height: usize, block: usize) -> ImageF64 {
    assert!(block > 0, "block size must be positive");
    let bx = width.div_ceil(block);
    let by = height.div_ceil(block);
    assert_eq!(tiles.len(), bx * by, "tile count mismatch");
    let mut img = ImageF64::new(width, height, 0.0);
    for (t, tile) in tiles.iter().enumerate() {
        let bxi = t % bx;
        let byi = t / bx;
        let w = block.min(width - bxi * block);
        let h = block.min(height - byi * block);
        assert_eq!(tile.len(), w * h, "tile {t} has wrong size");
        for dy in 0..h {
            for dx in 0..w {
                img.set(bxi * block + dx, byi * block + dy, tile[dy * w + dx]);
            }
        }
    }
    img
}

/// Number of `block`×`block` tiles an image splits into (edge tiles
/// counted like interior ones).
pub fn block_count(width: usize, height: usize, block: usize) -> usize {
    assert!(block > 0, "block size must be positive");
    width.div_ceil(block) * height.div_ceil(block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenes::Scene;

    #[test]
    fn split_merge_roundtrip() {
        let img = Scene::natural_like().render(32, 24, 9);
        for block in [2, 4, 8] {
            let tiles = split_blocks(&img, block);
            assert_eq!(tiles.len(), block_count(32, 24, block));
            let back = merge_blocks(&tiles, 32, 24, block);
            assert_eq!(img, back, "roundtrip failed for block {block}");
        }
    }

    #[test]
    fn non_multiple_dimensions_roundtrip_exactly() {
        // 37×23 is coprime to every block size tested: every right and
        // bottom edge tile is clipped.
        let img = Scene::natural_like().render(37, 23, 4);
        for block in [3, 5, 8, 16] {
            let tiles = split_blocks(&img, block);
            assert_eq!(tiles.len(), block_count(37, 23, block));
            let back = merge_blocks(&tiles, 37, 23, block);
            assert_eq!(img, back, "roundtrip failed for block {block}");
        }
    }

    #[test]
    fn edge_tiles_are_clipped_not_padded() {
        // 5×3 image, 4-blocks: block (0,0) clips to 4×3 and block
        // (1,0) to 1×3 — no padding values are invented.
        let img = ImageF64::from_vec(5, 3, (0..15).map(f64::from).collect());
        let tiles = split_blocks(&img, 4);
        assert_eq!(tiles.len(), 2);
        assert_eq!(tiles[0].len(), 4 * 3);
        assert_eq!(tiles[1], vec![4.0, 9.0, 14.0]); // rightmost column
    }

    #[test]
    fn blocks_are_row_major_within_and_across() {
        // 4×4 image of values 0..16, 2×2 blocks.
        let img = ImageF64::from_vec(4, 4, (0..16).map(f64::from).collect());
        let tiles = split_blocks(&img, 2);
        assert_eq!(tiles[0], vec![0.0, 1.0, 4.0, 5.0]); // top-left
        assert_eq!(tiles[1], vec![2.0, 3.0, 6.0, 7.0]); // top-right
        assert_eq!(tiles[2], vec![8.0, 9.0, 12.0, 13.0]); // bottom-left
    }

    #[test]
    fn whole_image_block_is_identity() {
        let img = Scene::gaussian_blobs(2).render(16, 16, 3);
        let tiles = split_blocks(&img, 16);
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0], img.as_slice());
    }

    #[test]
    fn oversized_block_is_a_single_clipped_tile() {
        let img = Scene::gaussian_blobs(2).render(10, 6, 1);
        let tiles = split_blocks(&img, 64);
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0], img.as_slice());
        assert_eq!(merge_blocks(&tiles, 10, 6, 64), img);
    }

    #[test]
    #[should_panic(expected = "tile count mismatch")]
    fn merge_with_wrong_count_panics() {
        merge_blocks(&[vec![0.0; 4]], 4, 4, 2);
    }

    #[test]
    #[should_panic(expected = "wrong size")]
    fn merge_with_wrong_tile_size_panics() {
        merge_blocks(&[vec![0.0; 4], vec![0.0; 3]], 4, 2, 2);
    }
}
