//! Block decomposition for block-based compressive sampling.
//!
//! The paper contrasts its full-frame strategy against the widespread
//! block-based approach (refs. \[6–8\], \[11\], minimum practical block
//! 8×8). These helpers split an image into B×B blocks (row-major block
//! order, row-major pixels within each block — the same vectorization
//! the per-block measurement matrices use) and merge them back.

use crate::image::ImageF64;

/// Splits an image into `block`×`block` tiles.
///
/// Returns tiles in row-major block order; each tile is a row-major
/// `Vec<f64>` of length `block²`.
///
/// # Panics
///
/// Panics if either dimension is not divisible by `block` or `block == 0`.
pub fn split_blocks(img: &ImageF64, block: usize) -> Vec<Vec<f64>> {
    assert!(block > 0, "block size must be positive");
    assert!(
        img.width().is_multiple_of(block) && img.height().is_multiple_of(block),
        "{}×{} image not divisible into {block}×{block} blocks",
        img.width(),
        img.height()
    );
    let bx = img.width() / block;
    let by = img.height() / block;
    let mut out = Vec::with_capacity(bx * by);
    for byi in 0..by {
        for bxi in 0..bx {
            let mut tile = Vec::with_capacity(block * block);
            for dy in 0..block {
                for dx in 0..block {
                    tile.push(img.get(bxi * block + dx, byi * block + dy));
                }
            }
            out.push(tile);
        }
    }
    out
}

/// Reassembles tiles produced by [`split_blocks`].
///
/// # Panics
///
/// Panics if the tile count or tile sizes are inconsistent with the
/// target dimensions.
pub fn merge_blocks(tiles: &[Vec<f64>], width: usize, height: usize, block: usize) -> ImageF64 {
    assert!(block > 0, "block size must be positive");
    assert!(
        width.is_multiple_of(block) && height.is_multiple_of(block),
        "{width}×{height} not divisible by block {block}"
    );
    let bx = width / block;
    let by = height / block;
    assert_eq!(tiles.len(), bx * by, "tile count mismatch");
    let mut img = ImageF64::new(width, height, 0.0);
    for (t, tile) in tiles.iter().enumerate() {
        assert_eq!(tile.len(), block * block, "tile {t} has wrong size");
        let bxi = t % bx;
        let byi = t / bx;
        for dy in 0..block {
            for dx in 0..block {
                img.set(bxi * block + dx, byi * block + dy, tile[dy * block + dx]);
            }
        }
    }
    img
}

/// Number of `block`×`block` tiles an image splits into.
pub fn block_count(width: usize, height: usize, block: usize) -> usize {
    assert!(block > 0 && width.is_multiple_of(block) && height.is_multiple_of(block));
    (width / block) * (height / block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenes::Scene;

    #[test]
    fn split_merge_roundtrip() {
        let img = Scene::natural_like().render(32, 24, 9);
        for block in [2, 4, 8] {
            let tiles = split_blocks(&img, block);
            assert_eq!(tiles.len(), block_count(32, 24, block));
            let back = merge_blocks(&tiles, 32, 24, block);
            assert_eq!(img, back, "roundtrip failed for block {block}");
        }
    }

    #[test]
    fn blocks_are_row_major_within_and_across() {
        // 4×4 image of values 0..16, 2×2 blocks.
        let img = ImageF64::from_vec(4, 4, (0..16).map(f64::from).collect());
        let tiles = split_blocks(&img, 2);
        assert_eq!(tiles[0], vec![0.0, 1.0, 4.0, 5.0]); // top-left
        assert_eq!(tiles[1], vec![2.0, 3.0, 6.0, 7.0]); // top-right
        assert_eq!(tiles[2], vec![8.0, 9.0, 12.0, 13.0]); // bottom-left
    }

    #[test]
    fn whole_image_block_is_identity() {
        let img = Scene::gaussian_blobs(2).render(16, 16, 3);
        let tiles = split_blocks(&img, 16);
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0], img.as_slice());
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn non_divisible_split_panics() {
        let img = ImageF64::new(10, 10, 0.0);
        split_blocks(&img, 3);
    }

    #[test]
    #[should_panic(expected = "tile count mismatch")]
    fn merge_with_wrong_count_panics() {
        merge_blocks(&[vec![0.0; 4]], 4, 4, 2);
    }
}
