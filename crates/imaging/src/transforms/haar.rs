//! Orthonormal 2-D Haar wavelet transform.
//!
//! The Haar basis is the piecewise-constant counterpart to the DCT: the
//! best sparsifier for cartoon-like scenes (rectangles, bars) among the
//! dictionaries shipped with TEPICS. The implementation is the standard
//! Mallat decomposition: per level, a single orthonormal Haar step
//! (`(a+b)/√2`, `(a−b)/√2`) on every row then every column of the
//! current approximation quadrant.

/// Orthonormal 2-D Haar transform with a fixed number of levels.
///
/// # Examples
///
/// ```
/// use tepics_imaging::Haar2d;
///
/// let haar = Haar2d::new(8, 8, 3);
/// let x = vec![1.0; 64];
/// let coeffs = haar.forward(&x);
/// let back = haar.inverse(&coeffs);
/// for (a, b) in x.iter().zip(&back) {
///     assert!((a - b).abs() < 1e-12);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Haar2d {
    width: usize,
    height: usize,
    levels: usize,
}

impl Haar2d {
    /// Creates a transform of `levels` decomposition levels for
    /// `width`×`height` buffers.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero, or not divisible by `2^levels`.
    pub fn new(width: usize, height: usize, levels: usize) -> Self {
        assert!(width > 0 && height > 0, "dimensions must be positive");
        let div = 1usize << levels;
        assert!(
            width.is_multiple_of(div) && height.is_multiple_of(div),
            "{width}×{height} not divisible by 2^{levels}"
        );
        Haar2d {
            width,
            height,
            levels,
        }
    }

    /// The deepest decomposition the dimensions allow.
    pub fn max_levels(width: usize, height: usize) -> usize {
        let mut levels = 0;
        let mut div = 2;
        while width.is_multiple_of(div)
            && height.is_multiple_of(div)
            && div <= width
            && div <= height
        {
            levels += 1;
            div <<= 1;
        }
        levels
    }

    /// Buffer width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Buffer height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of decomposition levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Total coefficient count.
    pub fn len(&self) -> usize {
        self.width * self.height
    }

    /// Always `false`; kept for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Forward transform of a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width*height`.
    pub fn forward(&self, data: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.len()];
        let mut scratch = Vec::new();
        self.forward_with(data, &mut out, &mut scratch);
        out
    }

    /// Forward transform into a caller-provided buffer, reusing
    /// `scratch` across calls — the allocation-free path the fused
    /// solver kernels use. Results are bit-identical to
    /// [`Haar2d::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` or `out.len()` differ from `len()`.
    // tidy:alloc-free
    pub fn forward_with(&self, data: &[f64], out: &mut [f64], scratch: &mut Vec<f64>) {
        assert_eq!(data.len(), self.len(), "buffer length mismatch");
        assert_eq!(out.len(), self.len(), "output length mismatch");
        out.copy_from_slice(data);
        self.forward_rows_step(out, scratch);
        self.forward_finish(out, scratch);
    }

    /// Grows `scratch` to the single-line buffer the level steps need.
    fn line_buf<'s>(&self, scratch: &'s mut Vec<f64>) -> &'s mut [f64] {
        let side = self.width.max(self.height);
        if scratch.len() < side {
            scratch.resize(side, 0.0);
        }
        &mut scratch[..side]
    }

    /// One forward Haar row step at quadrant width `w` over `h` rows of
    /// full-width row-major `data`.
    fn fwd_rows(&self, data: &mut [f64], w: usize, h: usize, buf: &mut [f64]) {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        for y in 0..h {
            let row = &mut data[y * self.width..y * self.width + w];
            for i in 0..w / 2 {
                let a = row[2 * i];
                let b = row[2 * i + 1];
                buf[i] = (a + b) * s;
                buf[w / 2 + i] = (a - b) * s;
            }
            row.copy_from_slice(&buf[..w]);
        }
    }

    /// One forward Haar column step on the `w`×`h` quadrant.
    fn fwd_cols(&self, data: &mut [f64], w: usize, h: usize, buf: &mut [f64]) {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        for x in 0..w {
            for i in 0..h / 2 {
                let a = data[(2 * i) * self.width + x];
                let b = data[(2 * i + 1) * self.width + x];
                buf[i] = (a + b) * s;
                buf[h / 2 + i] = (a - b) * s;
            }
            for (y, &v) in buf[..h].iter().enumerate() {
                data[y * self.width + x] = v;
            }
        }
    }

    /// One inverse Haar column step on the `w`×`h` quadrant.
    fn inv_cols(&self, data: &mut [f64], w: usize, h: usize, buf: &mut [f64]) {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        for x in 0..w {
            for i in 0..h / 2 {
                let avg = data[i * self.width + x];
                let diff = data[(h / 2 + i) * self.width + x];
                buf[2 * i] = (avg + diff) * s;
                buf[2 * i + 1] = (avg - diff) * s;
            }
            for (y, &v) in buf[..h].iter().enumerate() {
                data[y * self.width + x] = v;
            }
        }
    }

    /// One inverse Haar row step at quadrant width `w` over `h` rows.
    fn inv_rows(&self, data: &mut [f64], w: usize, h: usize, buf: &mut [f64]) {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        for y in 0..h {
            let row = &mut data[y * self.width..y * self.width + w];
            for i in 0..w / 2 {
                let avg = row[i];
                let diff = row[w / 2 + i];
                buf[2 * i] = (avg + diff) * s;
                buf[2 * i + 1] = (avg - diff) * s;
            }
            row.copy_from_slice(&buf[..w]);
        }
    }

    /// The level-0 forward row step on a block of whole rows — the
    /// independent per-row stage the fused solver kernels interleave
    /// with measurement scatter. Composing this over the full buffer
    /// followed by [`Haar2d::forward_finish`] is bit-identical to
    /// [`Haar2d::forward_with`]. No-op when `levels == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len()` is not a multiple of the width.
    // tidy:alloc-free
    pub fn forward_rows_step(&self, rows: &mut [f64], scratch: &mut Vec<f64>) {
        assert!(
            rows.len().is_multiple_of(self.width),
            "partial rows in block"
        );
        if self.levels == 0 {
            return;
        }
        let h = rows.len() / self.width;
        let buf = self.line_buf(scratch);
        self.fwd_rows(rows, self.width, h, buf);
    }

    /// The remainder of the forward transform after
    /// [`Haar2d::forward_rows_step`]: the level-0 column step plus all
    /// deeper levels. Operates on the full buffer.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != len()`.
    // tidy:alloc-free
    pub fn forward_finish(&self, buf: &mut [f64], scratch: &mut Vec<f64>) {
        assert_eq!(buf.len(), self.len(), "buffer length mismatch");
        if self.levels == 0 {
            return;
        }
        let line = self.line_buf(scratch);
        self.fwd_cols(buf, self.width, self.height, line);
        let mut w = self.width / 2;
        let mut h = self.height / 2;
        for _ in 1..self.levels {
            self.fwd_rows(buf, w, h, line);
            self.fwd_cols(buf, w, h, line);
            w /= 2;
            h /= 2;
        }
    }

    /// The inverse counterpart of [`Haar2d::forward_finish`]: all deeper
    /// levels plus the level-0 column step, leaving only the level-0 row
    /// step for [`Haar2d::inverse_rows_step`].
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != len()`.
    // tidy:alloc-free
    pub fn inverse_begin(&self, buf: &mut [f64], scratch: &mut Vec<f64>) {
        assert_eq!(buf.len(), self.len(), "buffer length mismatch");
        if self.levels == 0 {
            return;
        }
        let line = self.line_buf(scratch);
        for level in (1..self.levels).rev() {
            let w = self.width >> level;
            let h = self.height >> level;
            self.inv_cols(buf, w, h, line);
            self.inv_rows(buf, w, h, line);
        }
        self.inv_cols(buf, self.width, self.height, line);
    }

    /// The level-0 inverse row step on a block of whole rows; see
    /// [`Haar2d::forward_rows_step`]. No-op when `levels == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len()` is not a multiple of the width.
    // tidy:alloc-free
    pub fn inverse_rows_step(&self, rows: &mut [f64], scratch: &mut Vec<f64>) {
        assert!(
            rows.len().is_multiple_of(self.width),
            "partial rows in block"
        );
        if self.levels == 0 {
            return;
        }
        let h = rows.len() / self.width;
        let buf = self.line_buf(scratch);
        self.inv_rows(rows, self.width, h, buf);
    }

    /// Inverse transform of a row-major coefficient buffer.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != width*height`.
    pub fn inverse(&self, coeffs: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.len()];
        let mut scratch = Vec::new();
        self.inverse_with(coeffs, &mut out, &mut scratch);
        out
    }

    /// Inverse transform into a caller-provided buffer; see
    /// [`Haar2d::forward_with`]. Results are bit-identical to
    /// [`Haar2d::inverse`].
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` or `out.len()` differ from `len()`.
    // tidy:alloc-free
    pub fn inverse_with(&self, coeffs: &[f64], out: &mut [f64], scratch: &mut Vec<f64>) {
        assert_eq!(coeffs.len(), self.len(), "buffer length mismatch");
        assert_eq!(out.len(), self.len(), "output length mismatch");
        out.copy_from_slice(coeffs);
        self.inverse_begin(out, scratch);
        self.inverse_rows_step(out, scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenes::Scene;

    fn energy(v: &[f64]) -> f64 {
        v.iter().map(|x| x * x).sum()
    }

    #[test]
    fn perfect_reconstruction_all_levels() {
        let img = Scene::piecewise_smooth(4).render(16, 16, 2);
        for levels in 0..=4 {
            let haar = Haar2d::new(16, 16, levels);
            let back = haar.inverse(&haar.forward(img.as_slice()));
            for (a, b) in img.as_slice().iter().zip(&back) {
                assert!((a - b).abs() < 1e-10, "levels={levels}");
            }
        }
    }

    #[test]
    fn rectangular_buffers_work() {
        let haar = Haar2d::new(16, 8, 3);
        let img = Scene::natural_like().render(16, 8, 7);
        let back = haar.inverse(&haar.forward(img.as_slice()));
        for (a, b) in img.as_slice().iter().zip(&back) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_energy_preservation() {
        let haar = Haar2d::new(32, 32, 5);
        let img = Scene::gaussian_blobs(3).render(32, 32, 1);
        let coeffs = haar.forward(img.as_slice());
        assert!((energy(img.as_slice()) - energy(&coeffs)).abs() < 1e-9);
    }

    #[test]
    fn constant_image_concentrates_in_scaling_coefficient() {
        let haar = Haar2d::new(8, 8, 3);
        let coeffs = haar.forward(&vec![2.0; 64]);
        // Scaling coefficient = 2 * sqrt(64) = 16.
        assert!((coeffs[0] - 16.0).abs() < 1e-12);
        assert!(coeffs[1..].iter().all(|c| c.abs() < 1e-12));
    }

    #[test]
    fn piecewise_constant_is_sparser_in_haar_than_dct() {
        use crate::transforms::dct::Dct2d;
        let img = Scene::piecewise_smooth(3).render(32, 32, 11);
        let haar = Haar2d::new(32, 32, 5).forward(img.as_slice());
        let dct = Dct2d::new(32, 32).forward(img.as_slice());
        let count_big = |v: &[f64]| {
            let e = energy(v);
            let mut mags: Vec<f64> = v.iter().map(|x| x * x).collect();
            mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let mut acc = 0.0;
            let mut k = 0;
            for m in mags {
                acc += m;
                k += 1;
                if acc >= 0.99 * e {
                    break;
                }
            }
            k
        };
        let k_haar = count_big(&haar);
        let k_dct = count_big(&dct);
        assert!(
            k_haar < k_dct,
            "haar needs {k_haar} coefficients, dct {k_dct} — expected haar sparser"
        );
    }

    #[test]
    fn max_levels_computation() {
        assert_eq!(Haar2d::max_levels(64, 64), 6);
        assert_eq!(Haar2d::max_levels(12, 8), 2);
        assert_eq!(Haar2d::max_levels(7, 8), 0);
    }

    #[test]
    fn staged_passes_compose_to_full_transform_bitwise() {
        // The fused-engine contract: row step over arbitrary row blocks
        // + finish/begin equals the one-shot transform exactly.
        let haar = Haar2d::new(16, 8, 3);
        let img = Scene::natural_like().render(16, 8, 5);
        let mut scratch = Vec::new();
        let full_fwd = haar.forward(img.as_slice());
        let full_inv = haar.inverse(&full_fwd);
        for step in [1usize, 3, 8] {
            let mut staged = img.as_slice().to_vec();
            let mut y = 0;
            while y < 8 {
                let y1 = (y + step).min(8);
                haar.forward_rows_step(&mut staged[y * 16..y1 * 16], &mut scratch);
                y = y1;
            }
            haar.forward_finish(&mut staged, &mut scratch);
            assert_eq!(staged, full_fwd, "forward step {step}");

            haar.inverse_begin(&mut staged, &mut scratch);
            let mut y = 0;
            while y < 8 {
                let y1 = (y + step).min(8);
                haar.inverse_rows_step(&mut staged[y * 16..y1 * 16], &mut scratch);
                y = y1;
            }
            assert_eq!(staged, full_inv, "inverse step {step}");
        }
    }

    #[test]
    fn zero_levels_is_identity() {
        let haar = Haar2d::new(4, 4, 0);
        let x: Vec<f64> = (0..16).map(f64::from).collect();
        assert_eq!(haar.forward(&x), x);
        assert_eq!(haar.inverse(&x), x);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_dimensions_panic() {
        Haar2d::new(12, 12, 3);
    }
}
