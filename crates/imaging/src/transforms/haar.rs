//! Orthonormal 2-D Haar wavelet transform.
//!
//! The Haar basis is the piecewise-constant counterpart to the DCT: the
//! best sparsifier for cartoon-like scenes (rectangles, bars) among the
//! dictionaries shipped with TEPICS. The implementation is the standard
//! Mallat decomposition: per level, a single orthonormal Haar step
//! (`(a+b)/√2`, `(a−b)/√2`) on every row then every column of the
//! current approximation quadrant.

/// Orthonormal 2-D Haar transform with a fixed number of levels.
///
/// # Examples
///
/// ```
/// use tepics_imaging::Haar2d;
///
/// let haar = Haar2d::new(8, 8, 3);
/// let x = vec![1.0; 64];
/// let coeffs = haar.forward(&x);
/// let back = haar.inverse(&coeffs);
/// for (a, b) in x.iter().zip(&back) {
///     assert!((a - b).abs() < 1e-12);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Haar2d {
    width: usize,
    height: usize,
    levels: usize,
}

impl Haar2d {
    /// Creates a transform of `levels` decomposition levels for
    /// `width`×`height` buffers.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero, or not divisible by `2^levels`.
    pub fn new(width: usize, height: usize, levels: usize) -> Self {
        assert!(width > 0 && height > 0, "dimensions must be positive");
        let div = 1usize << levels;
        assert!(
            width.is_multiple_of(div) && height.is_multiple_of(div),
            "{width}×{height} not divisible by 2^{levels}"
        );
        Haar2d {
            width,
            height,
            levels,
        }
    }

    /// The deepest decomposition the dimensions allow.
    pub fn max_levels(width: usize, height: usize) -> usize {
        let mut levels = 0;
        let mut div = 2;
        while width.is_multiple_of(div)
            && height.is_multiple_of(div)
            && div <= width
            && div <= height
        {
            levels += 1;
            div <<= 1;
        }
        levels
    }

    /// Buffer width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Buffer height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of decomposition levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Total coefficient count.
    pub fn len(&self) -> usize {
        self.width * self.height
    }

    /// Always `false`; kept for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Forward transform of a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width*height`.
    pub fn forward(&self, data: &[f64]) -> Vec<f64> {
        assert_eq!(data.len(), self.len(), "buffer length mismatch");
        let mut out = data.to_vec();
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let mut w = self.width;
        let mut h = self.height;
        for _ in 0..self.levels {
            // Rows of the active quadrant.
            let mut buf = vec![0.0; w.max(h)];
            for y in 0..h {
                for i in 0..w / 2 {
                    let a = out[y * self.width + 2 * i];
                    let b = out[y * self.width + 2 * i + 1];
                    buf[i] = (a + b) * s;
                    buf[w / 2 + i] = (a - b) * s;
                }
                out[y * self.width..y * self.width + w].copy_from_slice(&buf[..w]);
            }
            // Columns of the active quadrant.
            for x in 0..w {
                for i in 0..h / 2 {
                    let a = out[(2 * i) * self.width + x];
                    let b = out[(2 * i + 1) * self.width + x];
                    buf[i] = (a + b) * s;
                    buf[h / 2 + i] = (a - b) * s;
                }
                for y in 0..h {
                    out[y * self.width + x] = buf[y];
                }
            }
            w /= 2;
            h /= 2;
        }
        out
    }

    /// Inverse transform of a row-major coefficient buffer.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != width*height`.
    pub fn inverse(&self, coeffs: &[f64]) -> Vec<f64> {
        assert_eq!(coeffs.len(), self.len(), "buffer length mismatch");
        let mut out = coeffs.to_vec();
        let s = std::f64::consts::FRAC_1_SQRT_2;
        // Reconstruct from the deepest level outward.
        for level in (0..self.levels).rev() {
            let w = self.width >> level;
            let h = self.height >> level;
            let mut buf = vec![0.0; w.max(h)];
            // Columns first (mirror of forward order).
            for x in 0..w {
                for i in 0..h / 2 {
                    let avg = out[i * self.width + x];
                    let diff = out[(h / 2 + i) * self.width + x];
                    buf[2 * i] = (avg + diff) * s;
                    buf[2 * i + 1] = (avg - diff) * s;
                }
                for y in 0..h {
                    out[y * self.width + x] = buf[y];
                }
            }
            // Rows.
            for y in 0..h {
                for i in 0..w / 2 {
                    let avg = out[y * self.width + i];
                    let diff = out[y * self.width + w / 2 + i];
                    buf[2 * i] = (avg + diff) * s;
                    buf[2 * i + 1] = (avg - diff) * s;
                }
                out[y * self.width..y * self.width + w].copy_from_slice(&buf[..w]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenes::Scene;

    fn energy(v: &[f64]) -> f64 {
        v.iter().map(|x| x * x).sum()
    }

    #[test]
    fn perfect_reconstruction_all_levels() {
        let img = Scene::piecewise_smooth(4).render(16, 16, 2);
        for levels in 0..=4 {
            let haar = Haar2d::new(16, 16, levels);
            let back = haar.inverse(&haar.forward(img.as_slice()));
            for (a, b) in img.as_slice().iter().zip(&back) {
                assert!((a - b).abs() < 1e-10, "levels={levels}");
            }
        }
    }

    #[test]
    fn rectangular_buffers_work() {
        let haar = Haar2d::new(16, 8, 3);
        let img = Scene::natural_like().render(16, 8, 7);
        let back = haar.inverse(&haar.forward(img.as_slice()));
        for (a, b) in img.as_slice().iter().zip(&back) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_energy_preservation() {
        let haar = Haar2d::new(32, 32, 5);
        let img = Scene::gaussian_blobs(3).render(32, 32, 1);
        let coeffs = haar.forward(img.as_slice());
        assert!((energy(img.as_slice()) - energy(&coeffs)).abs() < 1e-9);
    }

    #[test]
    fn constant_image_concentrates_in_scaling_coefficient() {
        let haar = Haar2d::new(8, 8, 3);
        let coeffs = haar.forward(&vec![2.0; 64]);
        // Scaling coefficient = 2 * sqrt(64) = 16.
        assert!((coeffs[0] - 16.0).abs() < 1e-12);
        assert!(coeffs[1..].iter().all(|c| c.abs() < 1e-12));
    }

    #[test]
    fn piecewise_constant_is_sparser_in_haar_than_dct() {
        use crate::transforms::dct::Dct2d;
        let img = Scene::piecewise_smooth(3).render(32, 32, 11);
        let haar = Haar2d::new(32, 32, 5).forward(img.as_slice());
        let dct = Dct2d::new(32, 32).forward(img.as_slice());
        let count_big = |v: &[f64]| {
            let e = energy(v);
            let mut mags: Vec<f64> = v.iter().map(|x| x * x).collect();
            mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let mut acc = 0.0;
            let mut k = 0;
            for m in mags {
                acc += m;
                k += 1;
                if acc >= 0.99 * e {
                    break;
                }
            }
            k
        };
        let k_haar = count_big(&haar);
        let k_dct = count_big(&dct);
        assert!(
            k_haar < k_dct,
            "haar needs {k_haar} coefficients, dct {k_dct} — expected haar sparser"
        );
    }

    #[test]
    fn max_levels_computation() {
        assert_eq!(Haar2d::max_levels(64, 64), 6);
        assert_eq!(Haar2d::max_levels(12, 8), 2);
        assert_eq!(Haar2d::max_levels(7, 8), 0);
    }

    #[test]
    fn zero_levels_is_identity() {
        let haar = Haar2d::new(4, 4, 0);
        let x: Vec<f64> = (0..16).map(f64::from).collect();
        assert_eq!(haar.forward(&x), x);
        assert_eq!(haar.inverse(&x), x);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_dimensions_panic() {
        Haar2d::new(12, 12, 3);
    }
}
