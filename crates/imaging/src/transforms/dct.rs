//! Orthonormal discrete cosine transform (DCT-II / DCT-III pair).
//!
//! Two evaluation paths share one public API:
//!
//! * **Fast path** — for power-of-two lengths, a recursive even/odd
//!   (Lee 1984) factorization evaluates the transform in O(n log n)
//!   with precomputed half-secant twiddle factors. This is the path the
//!   recovery inner loop hits: the sensor geometries are powers of two,
//!   and every FISTA iteration runs a 2-D synthesis + analysis pair.
//! * **Matrix fallback** — for all other lengths, the precomputed
//!   orthonormal basis-matrix multiply (O(n²) per application, exact).
//!
//! The selection happens once, in [`Dct1d::new`]; both paths implement
//! the same orthonormal DCT-II (forward) / DCT-III (inverse) pair. The
//! fast path reassociates floating-point sums, so its outputs may
//! differ from the matrix path in the last bits — the difference is
//! bounded well below 1e-10 (relative) at every supported length and is
//! covered by equivalence tests against the matrix path. Both paths are
//! fully deterministic, so batch results remain bit-identical at any
//! thread count.
//!
//! The 2-D transform is the separable product (rows, then columns),
//! applied through scratch buffers so repeated transforms (the solver
//! hot loop) do no per-row allocation — see [`Dct2d::forward_with`].

/// Twiddle factors for the Lee factorization of a power-of-two length:
/// for each level size `s` (n, n/2, …, 2), the `s/2` half-secants
/// `1 / (2·cos((i + ½)·π / s))`, stored level-major (largest first).
fn lee_twiddles(n: usize) -> Vec<f64> {
    let mut tw = Vec::with_capacity(n.saturating_sub(1));
    let mut s = n;
    while s >= 2 {
        let half = s / 2;
        for i in 0..half {
            let angle = (i as f64 + 0.5) * std::f64::consts::PI / s as f64;
            tw.push(0.5 / angle.cos());
        }
        s = half;
    }
    tw
}

/// Unnormalized Lee DCT-II: `x_k ← Σ_i x_i cos(π(2i+1)k/2n)`, in place,
/// with `scratch.len() == x.len()` and the twiddles of [`lee_twiddles`].
fn lee_forward(x: &mut [f64], scratch: &mut [f64], tw: &[f64]) {
    let n = x.len();
    if n == 1 {
        return;
    }
    let half = n / 2;
    let (t, rest) = tw.split_at(half);
    {
        let (a, b) = scratch.split_at_mut(half);
        tepics_util::simd::butterfly_split(x, t, a, b);
        let (xa, xb) = x.split_at_mut(half);
        lee_forward(a, xa, rest);
        lee_forward(b, xb, rest);
    }
    let (a, b) = scratch.split_at(half);
    for i in 0..half - 1 {
        x[2 * i] = a[i];
        x[2 * i + 1] = b[i] + b[i + 1];
    }
    x[n - 2] = a[half - 1];
    x[n - 1] = b[half - 1];
}

/// Unnormalized Lee DCT-III (inverse of [`lee_forward`]):
/// `x_i ← v_0 + Σ_{k≥1} v_k cos(π(2i+1)k/2n)`, in place.
fn lee_inverse(v: &mut [f64], scratch: &mut [f64], tw: &[f64]) {
    let n = v.len();
    if n == 1 {
        return;
    }
    let half = n / 2;
    let (t, rest) = tw.split_at(half);
    {
        let (a, b) = scratch.split_at_mut(half);
        a[0] = v[0];
        b[0] = v[1];
        for i in 1..half {
            a[i] = v[2 * i];
            b[i] = v[2 * i - 1] + v[2 * i + 1];
        }
        let (va, vb) = v.split_at_mut(half);
        lee_inverse(a, va, rest);
        lee_inverse(b, vb, rest);
    }
    let (a, b) = scratch.split_at(half);
    tepics_util::simd::butterfly_merge(a, b, t, v);
}

/// [`lee_forward`] with whole `w`-length rows as elements: the column
/// pass of a separable 2-D transform on a row-major block, evaluated as
/// contiguous row-vector operations instead of per-column strided
/// gathers. Performs, per column, exactly the scalar recursion's
/// operations in the same order — results are bit-identical to applying
/// [`lee_forward`] column by column. `scratch.len() >= x.len()`.
// tidy:alloc-free
fn lee_forward_rows(x: &mut [f64], scratch: &mut [f64], w: usize, tw: &[f64]) {
    let h = x.len() / w;
    if h == 1 {
        return;
    }
    let half = h / 2;
    let (t, rest) = tw.split_at(half);
    {
        let (a, b) = scratch.split_at_mut(half * w);
        for i in 0..half {
            let ti = t[i];
            let (top_part, bottom_part) = x.split_at(half * w);
            let top = &top_part[i * w..(i + 1) * w];
            let bot = &bottom_part[(half - 1 - i) * w..(half - i) * w];
            let ar = &mut a[i * w..(i + 1) * w];
            let br = &mut b[i * w..(i + 1) * w];
            for j in 0..w {
                let (p, q) = (top[j], bot[j]);
                ar[j] = p + q;
                br[j] = (p - q) * ti;
            }
        }
        let (xa, xb) = x.split_at_mut(half * w);
        lee_forward_rows(a, xa, w, rest);
        lee_forward_rows(b, xb, w, rest);
    }
    let (a, b) = scratch.split_at(half * w);
    for i in 0..half - 1 {
        x[2 * i * w..(2 * i + 1) * w].copy_from_slice(&a[i * w..(i + 1) * w]);
        let dst = &mut x[(2 * i + 1) * w..(2 * i + 2) * w];
        let b0 = &b[i * w..(i + 1) * w];
        let b1 = &b[(i + 1) * w..(i + 2) * w];
        for j in 0..w {
            dst[j] = b0[j] + b1[j];
        }
    }
    x[(h - 2) * w..(h - 1) * w].copy_from_slice(&a[(half - 1) * w..half * w]);
    x[(h - 1) * w..h * w].copy_from_slice(&b[(half - 1) * w..half * w]);
}

/// Row-vector counterpart of [`lee_inverse`]; see [`lee_forward_rows`].
// tidy:alloc-free
fn lee_inverse_rows(v: &mut [f64], scratch: &mut [f64], w: usize, tw: &[f64]) {
    let h = v.len() / w;
    if h == 1 {
        return;
    }
    let half = h / 2;
    let (t, rest) = tw.split_at(half);
    {
        let (a, b) = scratch.split_at_mut(half * w);
        a[..w].copy_from_slice(&v[..w]);
        b[..w].copy_from_slice(&v[w..2 * w]);
        for i in 1..half {
            a[i * w..(i + 1) * w].copy_from_slice(&v[2 * i * w..(2 * i + 1) * w]);
            let dst = &mut b[i * w..(i + 1) * w];
            let lo = &v[(2 * i - 1) * w..2 * i * w];
            let hi = &v[(2 * i + 1) * w..(2 * i + 2) * w];
            for j in 0..w {
                dst[j] = lo[j] + hi[j];
            }
        }
        let (va, vb) = v.split_at_mut(half * w);
        lee_inverse_rows(a, va, w, rest);
        lee_inverse_rows(b, vb, w, rest);
    }
    let (a, b) = scratch.split_at(half * w);
    let (vf, vk) = v.split_at_mut(half * w);
    for i in 0..half {
        let ti = t[i];
        let ar = &a[i * w..(i + 1) * w];
        let br = &b[i * w..(i + 1) * w];
        let fr = &mut vf[i * w..(i + 1) * w];
        let bk = &mut vk[(half - 1 - i) * w..(half - i) * w];
        for j in 0..w {
            let y = br[j] * ti;
            fr[j] = ar[j] + y;
            bk[j] = ar[j] - y;
        }
    }
}

/// The evaluation strategy behind a [`Dct1d`].
#[derive(Debug, Clone, PartialEq)]
enum Kind {
    /// Row-major orthonormal basis: `basis[k*n + i] = c_k cos(π(2i+1)k/2n)`.
    Matrix { basis: Vec<f64> },
    /// Lee even/odd factorization twiddles (power-of-two lengths).
    Fast { twiddles: Vec<f64> },
}

/// Orthonormal 1-D DCT of a fixed length.
///
/// Forward is DCT-II with orthonormal scaling; inverse is its transpose
/// (DCT-III), so `inverse(forward(x)) == x` to machine precision.
/// Power-of-two lengths use the O(n log n) Lee factorization; other
/// lengths fall back to the exact basis-matrix product (see the module
/// docs for the path-selection and tolerance contract).
///
/// # Examples
///
/// ```
/// use tepics_imaging::Dct1d;
///
/// let dct = Dct1d::new(8);
/// let x = vec![1.0, 2.0, 3.0, 4.0, 4.0, 3.0, 2.0, 1.0];
/// let back = dct.inverse(&dct.forward(&x));
/// for (a, b) in x.iter().zip(&back) {
///     assert!((a - b).abs() < 1e-12);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dct1d {
    n: usize,
    /// Orthonormal weight of the DC row, `√(1/n)`.
    norm0: f64,
    /// Orthonormal weight of every other row, `√(2/n)`.
    norm: f64,
    kind: Kind,
}

impl Dct1d {
    /// Creates a transform of length `n`, selecting the fast path for
    /// powers of two and the basis-matrix fallback otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "transform length must be positive");
        let norm0 = (1.0 / n as f64).sqrt();
        let norm = (2.0 / n as f64).sqrt();
        let kind = if n.is_power_of_two() {
            Kind::Fast {
                twiddles: lee_twiddles(n),
            }
        } else {
            let mut basis = vec![0.0; n * n];
            for k in 0..n {
                let c = if k == 0 { norm0 } else { norm };
                for (i, b) in basis[k * n..(k + 1) * n].iter_mut().enumerate() {
                    *b = c
                        * (std::f64::consts::PI * (2 * i + 1) as f64 * k as f64 / (2 * n) as f64)
                            .cos();
                }
            }
            Kind::Matrix { basis }
        };
        Dct1d {
            n,
            norm0,
            norm,
            kind,
        }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`; kept for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `true` if this instance uses the O(n log n) Lee factorization
    /// (power-of-two lengths), `false` for the basis-matrix fallback.
    pub fn is_fast(&self) -> bool {
        matches!(self.kind, Kind::Fast { .. })
    }

    /// Forward transform (analysis): `X_k = c_k Σ_i cos(π(2i+1)k/2n)·x_i`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != len()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut out = x.to_vec();
        let mut scratch = vec![0.0; self.n];
        self.forward_in_place(&mut out, &mut scratch);
        out
    }

    /// Inverse transform (synthesis): `x_i = Σ_k c_k cos(π(2i+1)k/2n)·X_k`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != len()`.
    pub fn inverse(&self, coeffs: &[f64]) -> Vec<f64> {
        let mut out = coeffs.to_vec();
        let mut scratch = vec![0.0; self.n];
        self.inverse_in_place(&mut out, &mut scratch);
        out
    }

    /// In-place forward transform using caller-provided scratch, so hot
    /// loops can run allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != len()` or `scratch.len() < len()`.
    // tidy:alloc-free
    pub fn forward_in_place(&self, data: &mut [f64], scratch: &mut [f64]) {
        assert_eq!(data.len(), self.n, "input length mismatch");
        assert!(scratch.len() >= self.n, "scratch too small");
        match &self.kind {
            Kind::Fast { twiddles } => {
                lee_forward(data, &mut scratch[..self.n], twiddles);
                data[0] *= self.norm0;
                for v in &mut data[1..] {
                    *v *= self.norm;
                }
            }
            Kind::Matrix { basis } => {
                for (k, o) in scratch[..self.n].iter_mut().enumerate() {
                    let row = &basis[k * self.n..(k + 1) * self.n];
                    *o = tepics_util::simd::dot4(row, data);
                }
                data.copy_from_slice(&scratch[..self.n]);
            }
        }
    }

    /// In-place inverse transform using caller-provided scratch.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != len()` or `scratch.len() < len()`.
    // tidy:alloc-free
    pub fn inverse_in_place(&self, data: &mut [f64], scratch: &mut [f64]) {
        assert_eq!(data.len(), self.n, "input length mismatch");
        assert!(scratch.len() >= self.n, "scratch too small");
        match &self.kind {
            Kind::Fast { twiddles } => {
                data[0] *= self.norm0;
                for v in &mut data[1..] {
                    *v *= self.norm;
                }
                lee_inverse(data, &mut scratch[..self.n], twiddles);
            }
            Kind::Matrix { basis } => {
                let out = &mut scratch[..self.n];
                out.fill(0.0);
                for (k, &ck) in data.iter().enumerate() {
                    if ck == 0.0 {
                        continue;
                    }
                    let row = &basis[k * self.n..(k + 1) * self.n];
                    tepics_util::simd::axpy4(ck, row, out);
                }
                data.copy_from_slice(&scratch[..self.n]);
            }
        }
    }
}

/// Separable orthonormal 2-D DCT on row-major `width`×`height` buffers.
///
/// Coefficient layout matches the image layout: coefficient `(u, v)`
/// (horizontal frequency `u`, vertical `v`) lives at `v * width + u`,
/// so the DC coefficient is index 0.
///
/// # Examples
///
/// ```
/// use tepics_imaging::Dct2d;
///
/// let dct = Dct2d::new(8, 8);
/// let flat = vec![0.5; 64];
/// let coeffs = dct.forward(&flat);
/// // A constant image has all energy in DC.
/// assert!((coeffs[0] - 0.5 * 8.0).abs() < 1e-12);
/// assert!(coeffs[1..].iter().all(|c| c.abs() < 1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dct2d {
    width: usize,
    height: usize,
    row: Dct1d,
    col: Dct1d,
}

impl Dct2d {
    /// Creates a transform for `width`×`height` buffers.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        Dct2d {
            width,
            height,
            row: Dct1d::new(width),
            col: Dct1d::new(height),
        }
    }

    /// Buffer width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Buffer height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total coefficient count (`width × height`).
    pub fn len(&self) -> usize {
        self.width * self.height
    }

    /// Always `false`; kept for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Applies both separable passes into `out` through one scratch
    /// buffer: rows transform in place on `out`, then columns gather
    /// through a transpose-scratch region instead of allocating per row
    /// or per column.
    // tidy:alloc-free
    fn apply_with(&self, data: &[f64], out: &mut [f64], scratch: &mut Vec<f64>, forward: bool) {
        assert_eq!(data.len(), self.len(), "buffer length mismatch");
        assert_eq!(out.len(), self.len(), "output length mismatch");
        out.copy_from_slice(data);
        self.ensure_scratch(scratch);
        self.rows_pass(out, scratch, forward);
        self.cols_pass(out, scratch, forward);
    }

    /// Grows `scratch` to the layout the staged passes expect:
    /// `[col_buf: height][1-D scratch: max(width, height)]`, or the
    /// whole-buffer region the row-vector column recursion needs when
    /// the column transform is on the fast path. Never shrinks, so one
    /// scratch vector can serve several transform sizes.
    // tidy:alloc-free
    pub fn ensure_scratch(&self, scratch: &mut Vec<f64>) {
        let mut need = self.height + self.width.max(self.height);
        if self.col.is_fast() {
            need = need.max(self.len());
        }
        if scratch.len() < need {
            scratch.resize(need, 0.0);
        }
    }

    /// One separable pass over whole rows, in place: each contiguous
    /// `width`-length row in `rows` is transformed independently.
    ///
    /// `rows` may be any prefix of whole rows (a row *block*), which is
    /// what lets the fused Φᵀ/Ψᵀ engine transform a block while it is
    /// still cache-hot. `scratch` must have been sized by
    /// [`Dct2d::ensure_scratch`].
    ///
    /// # Panics
    ///
    /// Panics if `rows.len()` is not a multiple of `width()` or
    /// `scratch` is too small.
    // tidy:alloc-free
    pub fn rows_pass(&self, rows: &mut [f64], scratch: &mut [f64], forward: bool) {
        let w = self.width;
        assert_eq!(rows.len() % w, 0, "row block must hold whole rows");
        let s = &mut scratch[self.height..];
        for row in rows.chunks_exact_mut(w) {
            if forward {
                self.row.forward_in_place(row, s);
            } else {
                self.row.inverse_in_place(row, s);
            }
        }
    }

    /// One separable pass over all columns of a full `width`×`height`
    /// buffer, in place, gathering each column through the transpose
    /// region of `scratch` (sized by [`Dct2d::ensure_scratch`]).
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != len()` or `scratch` is too small.
    // tidy:alloc-free
    pub fn cols_pass(&self, buf: &mut [f64], scratch: &mut [f64], forward: bool) {
        assert_eq!(buf.len(), self.len(), "buffer length mismatch");
        let (w, h) = (self.width, self.height);
        // Fast-path columns run the Lee recursion with whole rows as
        // elements: every butterfly is a contiguous vector op, no
        // strided per-column gather. Bit-identical to the gather path
        // (same per-column operations in the same order).
        if let Kind::Fast { twiddles } = &self.col.kind {
            if scratch.len() >= w * h {
                let s = &mut scratch[..w * h];
                if forward {
                    lee_forward_rows(buf, s, w, twiddles);
                    for v in &mut buf[..w] {
                        *v *= self.col.norm0;
                    }
                    for v in &mut buf[w..] {
                        *v *= self.col.norm;
                    }
                } else {
                    for v in &mut buf[..w] {
                        *v *= self.col.norm0;
                    }
                    for v in &mut buf[w..] {
                        *v *= self.col.norm;
                    }
                    lee_inverse_rows(buf, s, w, twiddles);
                }
                return;
            }
        }
        let (col_buf, s) = scratch.split_at_mut(h);
        for x in 0..w {
            for (c, row) in col_buf.iter_mut().zip(buf.chunks_exact(w)) {
                *c = row[x];
            }
            if forward {
                self.col.forward_in_place(col_buf, s);
            } else {
                self.col.inverse_in_place(col_buf, s);
            }
            for (c, row) in col_buf.iter().zip(buf.chunks_exact_mut(w)) {
                row[x] = *c;
            }
        }
    }

    /// Forward 2-D transform of a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width*height`.
    pub fn forward(&self, data: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.len()];
        let mut scratch = Vec::new();
        self.apply_with(data, &mut out, &mut scratch, true);
        out
    }

    /// Inverse 2-D transform of a row-major coefficient buffer.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != width*height`.
    pub fn inverse(&self, coeffs: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.len()];
        let mut scratch = Vec::new();
        self.apply_with(coeffs, &mut out, &mut scratch, false);
        out
    }

    /// Forward transform into a caller-provided buffer, reusing
    /// `scratch` across calls (it is resized on first use and never
    /// reallocated after) — the allocation-free path the solver loop
    /// uses.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` or `out.len()` differ from `len()`.
    pub fn forward_with(&self, data: &[f64], out: &mut [f64], scratch: &mut Vec<f64>) {
        self.apply_with(data, out, scratch, true);
    }

    /// Inverse transform into a caller-provided buffer; see
    /// [`Dct2d::forward_with`].
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` or `out.len()` differ from `len()`.
    pub fn inverse_with(&self, coeffs: &[f64], out: &mut [f64], scratch: &mut Vec<f64>) {
        self.apply_with(coeffs, out, scratch, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenes::Scene;

    fn energy(v: &[f64]) -> f64 {
        v.iter().map(|x| x * x).sum()
    }

    /// A length-n reference DCT built directly from the basis matrix,
    /// bypassing the fast-path selection in `Dct1d::new`.
    fn matrix_reference(n: usize) -> (Vec<f64>, f64, f64) {
        let norm0 = (1.0 / n as f64).sqrt();
        let norm = (2.0 / n as f64).sqrt();
        let mut basis = vec![0.0; n * n];
        for k in 0..n {
            let c = if k == 0 { norm0 } else { norm };
            for i in 0..n {
                basis[k * n + i] = c
                    * (std::f64::consts::PI * (2 * i + 1) as f64 * k as f64 / (2 * n) as f64).cos();
            }
        }
        (basis, norm0, norm)
    }

    fn matrix_forward(basis: &[f64], x: &[f64]) -> Vec<f64> {
        let n = x.len();
        (0..n)
            .map(|k| {
                basis[k * n..(k + 1) * n]
                    .iter()
                    .zip(x)
                    .map(|(b, v)| b * v)
                    .sum()
            })
            .collect()
    }

    fn matrix_inverse(basis: &[f64], coeffs: &[f64]) -> Vec<f64> {
        let n = coeffs.len();
        let mut out = vec![0.0; n];
        for (k, &ck) in coeffs.iter().enumerate() {
            for (o, b) in out.iter_mut().zip(&basis[k * n..(k + 1) * n]) {
                *o += ck * b;
            }
        }
        out
    }

    fn pseudo_signal(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = tepics_util::SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() * 2.0 - 1.0).collect()
    }

    #[test]
    fn fast_path_is_selected_exactly_for_powers_of_two() {
        for n in [1usize, 2, 4, 8, 64, 128] {
            assert!(Dct1d::new(n).is_fast(), "n={n} should use the fast path");
        }
        for n in [3usize, 5, 6, 9, 12, 100] {
            assert!(!Dct1d::new(n).is_fast(), "n={n} should use the matrix path");
        }
    }

    #[test]
    fn fast_forward_matches_matrix_reference() {
        // Property over power-of-two lengths and many signals: the Lee
        // factorization equals the dense basis product to ≤1e-10.
        for n in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
            let (basis, _, _) = matrix_reference(n);
            let dct = Dct1d::new(n);
            for seed in 0..8 {
                let x = pseudo_signal(n, seed * 31 + n as u64);
                let fast = dct.forward(&x);
                let exact = matrix_forward(&basis, &x);
                for (k, (a, b)) in fast.iter().zip(&exact).enumerate() {
                    assert!(
                        (a - b).abs() <= 1e-10 * b.abs().max(1.0),
                        "n={n} seed={seed} k={k}: fast {a} vs matrix {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn fast_inverse_matches_matrix_reference() {
        for n in [2usize, 4, 16, 64, 256] {
            let (basis, _, _) = matrix_reference(n);
            let dct = Dct1d::new(n);
            for seed in 0..8 {
                let coeffs = pseudo_signal(n, seed * 17 + n as u64);
                let fast = dct.inverse(&coeffs);
                let exact = matrix_inverse(&basis, &coeffs);
                for (i, (a, b)) in fast.iter().zip(&exact).enumerate() {
                    assert!(
                        (a - b).abs() <= 1e-10 * b.abs().max(1.0),
                        "n={n} seed={seed} i={i}: fast {a} vs matrix {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn odd_lengths_use_matrix_path_and_round_trip() {
        for n in [3usize, 5, 7, 9, 11, 13, 24, 100] {
            let dct = Dct1d::new(n);
            let x = pseudo_signal(n, n as u64);
            let back = dct.inverse(&dct.forward(&x));
            for (a, b) in x.iter().zip(&back) {
                assert!((a - b).abs() < 1e-10, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn one_d_perfect_reconstruction() {
        for n in [1usize, 2, 3, 8, 64] {
            let dct = Dct1d::new(n);
            let x: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % 19) as f64 / 19.0).collect();
            let back = dct.inverse(&dct.forward(&x));
            for (a, b) in x.iter().zip(&back) {
                assert!((a - b).abs() < 1e-10, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn one_d_is_orthonormal() {
        // Parseval: energy is preserved, on both paths.
        for n in [16usize, 12] {
            let dct = Dct1d::new(n);
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
            let coeffs = dct.forward(&x);
            assert!((energy(&x) - energy(&coeffs)).abs() < 1e-10, "n={n}");
        }
    }

    #[test]
    fn dc_basis_vector_is_constant() {
        for n in [9usize, 8] {
            let dct = Dct1d::new(n);
            let dc = dct.inverse(&{
                let mut e = vec![0.0; n];
                e[0] = 1.0;
                e
            });
            let expected = (1.0f64 / n as f64).sqrt();
            for v in dc {
                assert!((v - expected).abs() < 1e-12, "n={n}");
            }
        }
    }

    #[test]
    fn in_place_matches_allocating_api() {
        for n in [8usize, 12] {
            let dct = Dct1d::new(n);
            let x = pseudo_signal(n, 5);
            let mut buf = x.clone();
            let mut scratch = vec![0.0; n];
            dct.forward_in_place(&mut buf, &mut scratch);
            assert_eq!(buf, dct.forward(&x), "forward n={n}");
            let mut inv = buf.clone();
            dct.inverse_in_place(&mut inv, &mut scratch);
            assert_eq!(inv, dct.inverse(&buf), "inverse n={n}");
        }
    }

    #[test]
    fn two_d_perfect_reconstruction_rectangular() {
        let dct = Dct2d::new(12, 8);
        let img = Scene::natural_like().render(12, 8, 4);
        let back = dct.inverse(&dct.forward(img.as_slice()));
        for (a, b) in img.as_slice().iter().zip(&back) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn two_d_matches_matrix_reference() {
        // The separable fast 2-D transform equals the all-matrix one.
        let (w, h) = (16usize, 16usize);
        let (basis, _, _) = matrix_reference(w);
        let img = Scene::gaussian_blobs(3).render(w, h, 8);
        let fast = Dct2d::new(w, h).forward(img.as_slice());
        // Reference: rows then columns with the dense basis.
        let mut tmp = vec![0.0; w * h];
        for y in 0..h {
            let row = matrix_forward(&basis, &img.as_slice()[y * w..(y + 1) * w]);
            tmp[y * w..(y + 1) * w].copy_from_slice(&row);
        }
        let mut exact = vec![0.0; w * h];
        for x in 0..w {
            let col: Vec<f64> = (0..h).map(|y| tmp[y * w + x]).collect();
            let t = matrix_forward(&basis, &col);
            for y in 0..h {
                exact[y * w + x] = t[y];
            }
        }
        for (i, (a, b)) in fast.iter().zip(&exact).enumerate() {
            assert!(
                (a - b).abs() <= 1e-10 * b.abs().max(1.0),
                "coeff {i}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn two_d_with_buffers_matches_allocating_api() {
        let dct = Dct2d::new(8, 8);
        let img = Scene::gaussian_blobs(2).render(8, 8, 3);
        let mut out = vec![0.0; 64];
        let mut scratch = Vec::new();
        dct.forward_with(img.as_slice(), &mut out, &mut scratch);
        assert_eq!(out, dct.forward(img.as_slice()));
        let mut back = vec![0.0; 64];
        dct.inverse_with(&out, &mut back, &mut scratch);
        assert_eq!(back, dct.inverse(&out));
    }

    #[test]
    fn row_vector_column_pass_matches_gather_path_bitwise() {
        // The row-vector Lee recursion must perform, per column, exactly
        // the scalar recursion's operations: giving cols_pass a scratch
        // too small for the row-vector path forces the per-column gather
        // fallback, and both must agree to the bit.
        let dct = Dct2d::new(16, 16);
        let img = Scene::natural_like().render(16, 16, 2);
        for forward in [true, false] {
            let mut fast = img.as_slice().to_vec();
            let mut big = Vec::new();
            dct.ensure_scratch(&mut big);
            dct.cols_pass(&mut fast, &mut big, forward);

            let mut gather = img.as_slice().to_vec();
            let mut small = vec![0.0; 16 + 16];
            dct.cols_pass(&mut gather, &mut small, forward);
            assert_eq!(fast, gather, "forward={forward}");
        }
    }

    #[test]
    fn two_d_parseval() {
        let dct = Dct2d::new(16, 16);
        let img = Scene::gaussian_blobs(3).render(16, 16, 8);
        let coeffs = dct.forward(img.as_slice());
        assert!((energy(img.as_slice()) - energy(&coeffs)).abs() < 1e-9);
    }

    #[test]
    fn smooth_images_concentrate_energy_in_low_frequencies() {
        let dct = Dct2d::new(32, 32);
        let img = Scene::gaussian_blobs(3).render(32, 32, 5);
        let coeffs = dct.forward(img.as_slice());
        // Energy in the 8×8 low-frequency corner vs total.
        let mut low = 0.0;
        for v in 0..8 {
            for u in 0..8 {
                low += coeffs[v * 32 + u] * coeffs[v * 32 + u];
            }
        }
        let ratio = low / energy(&coeffs);
        assert!(ratio > 0.95, "low-frequency energy ratio {ratio} too small");
    }

    #[test]
    fn cosine_input_hits_single_coefficient() {
        let n = 32;
        let dct = Dct1d::new(n);
        let k = 5;
        // The k-th basis vector itself.
        let mut e = vec![0.0; n];
        e[k] = 1.0;
        let x = dct.inverse(&e);
        let coeffs = dct.forward(&x);
        for (i, &c) in coeffs.iter().enumerate() {
            if i == k {
                assert!((c - 1.0).abs() < 1e-10);
            } else {
                assert!(c.abs() < 1e-10);
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_panics() {
        Dct1d::new(8).forward(&[0.0; 7]);
    }
}
