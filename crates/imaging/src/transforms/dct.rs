//! Orthonormal discrete cosine transform (DCT-II / DCT-III pair).
//!
//! The 1-D transform is implemented as a precomputed orthonormal basis
//! matrix multiply — O(n²) per application, which at the sensor's n=64
//! is both exact and fast enough that an FFT-based factorization would
//! only add code risk. The 2-D transform is the separable product
//! (rows, then columns).

/// Orthonormal 1-D DCT of a fixed length.
///
/// Forward is DCT-II with orthonormal scaling; inverse is its transpose
/// (DCT-III), so `inverse(forward(x)) == x` to machine precision.
///
/// # Examples
///
/// ```
/// use tepics_imaging::Dct1d;
///
/// let dct = Dct1d::new(8);
/// let x = vec![1.0, 2.0, 3.0, 4.0, 4.0, 3.0, 2.0, 1.0];
/// let back = dct.inverse(&dct.forward(&x));
/// for (a, b) in x.iter().zip(&back) {
///     assert!((a - b).abs() < 1e-12);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dct1d {
    n: usize,
    /// Row-major orthonormal basis: `basis[k*n + i] = c_k cos(π(2i+1)k/2n)`.
    basis: Vec<f64>,
}

impl Dct1d {
    /// Creates a transform of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "transform length must be positive");
        let mut basis = vec![0.0; n * n];
        let norm0 = (1.0 / n as f64).sqrt();
        let norm = (2.0 / n as f64).sqrt();
        for k in 0..n {
            let c = if k == 0 { norm0 } else { norm };
            for i in 0..n {
                basis[k * n + i] = c
                    * (std::f64::consts::PI * (2 * i + 1) as f64 * k as f64 / (2 * n) as f64).cos();
            }
        }
        Dct1d { n, basis }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`; kept for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Forward transform (analysis): `X_k = Σ_i basis[k,i]·x_i`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != len()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "input length mismatch");
        let mut out = vec![0.0; self.n];
        for (k, o) in out.iter_mut().enumerate() {
            let row = &self.basis[k * self.n..(k + 1) * self.n];
            *o = row.iter().zip(x).map(|(b, v)| b * v).sum();
        }
        out
    }

    /// Inverse transform (synthesis): `x_i = Σ_k basis[k,i]·X_k`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != len()`.
    pub fn inverse(&self, coeffs: &[f64]) -> Vec<f64> {
        assert_eq!(coeffs.len(), self.n, "input length mismatch");
        let mut out = vec![0.0; self.n];
        for (k, &ck) in coeffs.iter().enumerate() {
            if ck == 0.0 {
                continue;
            }
            let row = &self.basis[k * self.n..(k + 1) * self.n];
            for (o, b) in out.iter_mut().zip(row) {
                *o += ck * b;
            }
        }
        out
    }
}

/// Separable orthonormal 2-D DCT on row-major `width`×`height` buffers.
///
/// Coefficient layout matches the image layout: coefficient `(u, v)`
/// (horizontal frequency `u`, vertical `v`) lives at `v * width + u`,
/// so the DC coefficient is index 0.
///
/// # Examples
///
/// ```
/// use tepics_imaging::Dct2d;
///
/// let dct = Dct2d::new(8, 8);
/// let flat = vec![0.5; 64];
/// let coeffs = dct.forward(&flat);
/// // A constant image has all energy in DC.
/// assert!((coeffs[0] - 0.5 * 8.0).abs() < 1e-12);
/// assert!(coeffs[1..].iter().all(|c| c.abs() < 1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dct2d {
    width: usize,
    height: usize,
    row: Dct1d,
    col: Dct1d,
}

impl Dct2d {
    /// Creates a transform for `width`×`height` buffers.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        Dct2d {
            width,
            height,
            row: Dct1d::new(width),
            col: Dct1d::new(height),
        }
    }

    /// Buffer width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Buffer height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total coefficient count (`width × height`).
    pub fn len(&self) -> usize {
        self.width * self.height
    }

    /// Always `false`; kept for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    fn apply(&self, data: &[f64], forward: bool) -> Vec<f64> {
        assert_eq!(data.len(), self.len(), "buffer length mismatch");
        let (w, h) = (self.width, self.height);
        // Rows.
        let mut tmp = vec![0.0; w * h];
        let mut row_buf = vec![0.0; w];
        for y in 0..h {
            row_buf.copy_from_slice(&data[y * w..(y + 1) * w]);
            let t = if forward {
                self.row.forward(&row_buf)
            } else {
                self.row.inverse(&row_buf)
            };
            tmp[y * w..(y + 1) * w].copy_from_slice(&t);
        }
        // Columns.
        let mut out = vec![0.0; w * h];
        let mut col_buf = vec![0.0; h];
        for x in 0..w {
            for y in 0..h {
                col_buf[y] = tmp[y * w + x];
            }
            let t = if forward {
                self.col.forward(&col_buf)
            } else {
                self.col.inverse(&col_buf)
            };
            for y in 0..h {
                out[y * w + x] = t[y];
            }
        }
        out
    }

    /// Forward 2-D transform of a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width*height`.
    pub fn forward(&self, data: &[f64]) -> Vec<f64> {
        self.apply(data, true)
    }

    /// Inverse 2-D transform of a row-major coefficient buffer.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != width*height`.
    pub fn inverse(&self, coeffs: &[f64]) -> Vec<f64> {
        self.apply(coeffs, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenes::Scene;

    fn energy(v: &[f64]) -> f64 {
        v.iter().map(|x| x * x).sum()
    }

    #[test]
    fn one_d_perfect_reconstruction() {
        for n in [1usize, 2, 3, 8, 64] {
            let dct = Dct1d::new(n);
            let x: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % 19) as f64 / 19.0).collect();
            let back = dct.inverse(&dct.forward(&x));
            for (a, b) in x.iter().zip(&back) {
                assert!((a - b).abs() < 1e-10, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn one_d_is_orthonormal() {
        // Parseval: energy is preserved.
        let dct = Dct1d::new(16);
        let x: Vec<f64> = (0..16).map(|i| (i as f64 * 0.7).sin()).collect();
        let coeffs = dct.forward(&x);
        assert!((energy(&x) - energy(&coeffs)).abs() < 1e-10);
    }

    #[test]
    fn dc_basis_vector_is_constant() {
        let dct = Dct1d::new(9);
        let dc = dct.inverse(&{
            let mut e = vec![0.0; 9];
            e[0] = 1.0;
            e
        });
        let expected = (1.0f64 / 9.0).sqrt();
        for v in dc {
            assert!((v - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn two_d_perfect_reconstruction_rectangular() {
        let dct = Dct2d::new(12, 8);
        let img = Scene::natural_like().render(12, 8, 4);
        let back = dct.inverse(&dct.forward(img.as_slice()));
        for (a, b) in img.as_slice().iter().zip(&back) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn two_d_parseval() {
        let dct = Dct2d::new(16, 16);
        let img = Scene::gaussian_blobs(3).render(16, 16, 8);
        let coeffs = dct.forward(img.as_slice());
        assert!((energy(img.as_slice()) - energy(&coeffs)).abs() < 1e-9);
    }

    #[test]
    fn smooth_images_concentrate_energy_in_low_frequencies() {
        let dct = Dct2d::new(32, 32);
        let img = Scene::gaussian_blobs(3).render(32, 32, 5);
        let coeffs = dct.forward(img.as_slice());
        // Energy in the 8×8 low-frequency corner vs total.
        let mut low = 0.0;
        for v in 0..8 {
            for u in 0..8 {
                low += coeffs[v * 32 + u] * coeffs[v * 32 + u];
            }
        }
        let ratio = low / energy(&coeffs);
        assert!(ratio > 0.95, "low-frequency energy ratio {ratio} too small");
    }

    #[test]
    fn cosine_input_hits_single_coefficient() {
        let n = 32;
        let dct = Dct1d::new(n);
        let k = 5;
        // The k-th basis vector itself.
        let mut e = vec![0.0; n];
        e[k] = 1.0;
        let x = dct.inverse(&e);
        let coeffs = dct.forward(&x);
        for (i, &c) in coeffs.iter().enumerate() {
            if i == k {
                assert!((c - 1.0).abs() < 1e-10);
            } else {
                assert!(c.abs() < 1e-10);
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_panics() {
        Dct1d::new(8).forward(&[0.0; 7]);
    }
}
