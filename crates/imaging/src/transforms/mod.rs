//! Orthonormal sparsifying transforms.
//!
//! The decoder models images as `x = Ψ α` with `α` sparse. Two
//! orthonormal choices are provided — the 2-D DCT ([`dct`]) favored for
//! smooth/natural content and the 2-D Haar wavelet ([`haar`]) favored
//! for piecewise-constant content. Both satisfy `Ψᵀ Ψ = I` exactly
//! (up to floating-point roundoff), which the decoder's exact-centering
//! trick relies on.

pub mod dct;
pub mod haar;
