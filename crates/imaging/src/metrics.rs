//! Image-quality metrics.
//!
//! The experiments report reconstruction quality the way the CS
//! literature does: PSNR for headline numbers, SSIM for structural
//! fidelity. All metrics require equal-sized images and are symmetric
//! except for the `peak` convention of PSNR (pass `1.0` for unit-range
//! intensities, `255.0` for code-domain images).

use crate::image::ImageF64;

fn check_dims(a: &ImageF64, b: &ImageF64) {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "image size mismatch: {}×{} vs {}×{}",
        a.width(),
        a.height(),
        b.width(),
        b.height()
    );
}

/// Mean squared error.
///
/// # Panics
///
/// Panics if the images differ in size.
pub fn mse(a: &ImageF64, b: &ImageF64) -> f64 {
    check_dims(a, b);
    let n = a.len() as f64;
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
        / n
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if the images differ in size.
pub fn mae(a: &ImageF64, b: &ImageF64) -> f64 {
    check_dims(a, b);
    let n = a.len() as f64;
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x - y).abs())
        .sum::<f64>()
        / n
}

/// Peak signal-to-noise ratio in dB; `+inf` for identical images.
///
/// `peak` is the full-scale value (1.0 for unit-range, 255.0 for 8-bit
/// codes).
///
/// # Panics
///
/// Panics if the images differ in size or `peak <= 0`.
pub fn psnr(a: &ImageF64, b: &ImageF64, peak: f64) -> f64 {
    assert!(peak > 0.0, "peak must be positive");
    let e = mse(a, b);
    if e == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (peak * peak / e).log10()
    }
}

/// Structural similarity index (mean SSIM over sliding windows).
///
/// Uses the standard constants `C1 = (0.01·L)²`, `C2 = (0.03·L)²` with a
/// uniform `window`×`window` kernel (the original paper's Gaussian
/// window changes values by <1% at these sizes). Returns a value in
/// `[-1, 1]`; 1 means identical.
///
/// # Panics
///
/// Panics if the images differ in size, are smaller than the window, or
/// `peak <= 0`.
pub fn ssim_windowed(a: &ImageF64, b: &ImageF64, peak: f64, window: usize) -> f64 {
    check_dims(a, b);
    assert!(peak > 0.0, "peak must be positive");
    assert!(window >= 2, "window must be at least 2");
    assert!(
        a.width() >= window && a.height() >= window,
        "images smaller than SSIM window"
    );
    let c1 = (0.01 * peak) * (0.01 * peak);
    let c2 = (0.03 * peak) * (0.03 * peak);
    let n = (window * window) as f64;
    let mut total = 0.0;
    let mut count = 0usize;
    for y0 in 0..=(a.height() - window) {
        for x0 in 0..=(a.width() - window) {
            let mut sa = 0.0;
            let mut sb = 0.0;
            let mut saa = 0.0;
            let mut sbb = 0.0;
            let mut sab = 0.0;
            for dy in 0..window {
                for dx in 0..window {
                    let x = a.get(x0 + dx, y0 + dy);
                    let y = b.get(x0 + dx, y0 + dy);
                    sa += x;
                    sb += y;
                    saa += x * x;
                    sbb += y * y;
                    sab += x * y;
                }
            }
            let mu_a = sa / n;
            let mu_b = sb / n;
            let var_a = (saa / n - mu_a * mu_a).max(0.0);
            let var_b = (sbb / n - mu_b * mu_b).max(0.0);
            let cov = sab / n - mu_a * mu_b;
            let s = ((2.0 * mu_a * mu_b + c1) * (2.0 * cov + c2))
                / ((mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2));
            total += s;
            count += 1;
        }
    }
    total / count as f64
}

/// SSIM with the standard 8×8 window.
///
/// # Panics
///
/// See [`ssim_windowed`].
pub fn ssim(a: &ImageF64, b: &ImageF64, peak: f64) -> f64 {
    ssim_windowed(a, b, peak, 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenes::Scene;

    #[test]
    fn identical_images_are_perfect() {
        let img = Scene::gaussian_blobs(3).render(32, 32, 1);
        assert_eq!(mse(&img, &img), 0.0);
        assert_eq!(mae(&img, &img), 0.0);
        assert!(psnr(&img, &img, 1.0).is_infinite());
        assert!((ssim(&img, &img, 1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn known_mse_psnr_values() {
        let a = ImageF64::new(10, 10, 0.0);
        let b = ImageF64::new(10, 10, 0.1);
        assert!((mse(&a, &b) - 0.01).abs() < 1e-15);
        assert!((mae(&a, &b) - 0.1).abs() < 1e-15);
        // PSNR = 10 log10(1 / 0.01) = 20 dB.
        assert!((psnr(&a, &b, 1.0) - 20.0).abs() < 1e-9);
        // With peak 255 on the same absolute error: +48.13 dB offset.
        let offset = 20.0 * (255.0f64).log10();
        assert!((psnr(&a, &b, 255.0) - (20.0 + offset)).abs() < 1e-9);
    }

    #[test]
    fn psnr_decreases_with_noise_amplitude() {
        let base = Scene::natural_like().render(32, 32, 2);
        let mild = base.map(|v| (v + 0.01).clamp(0.0, 1.0));
        let harsh = base.map(|v| (v + 0.1).clamp(0.0, 1.0));
        assert!(psnr(&base, &mild, 1.0) > psnr(&base, &harsh, 1.0));
    }

    #[test]
    fn ssim_penalizes_structure_loss_more_than_offset() {
        let img = Scene::Checkerboard { tile: 4 }.render(32, 32, 0);
        // A constant image destroys all structure.
        let flat = ImageF64::new(32, 32, 0.5);
        // A small uniform offset keeps structure.
        let offset = img.map(|v| (v + 0.05).clamp(0.0, 1.0));
        assert!(ssim(&img, &offset, 1.0) > 0.8);
        assert!(ssim(&img, &flat, 1.0) < 0.2);
    }

    #[test]
    fn ssim_is_symmetric() {
        let a = Scene::gaussian_blobs(2).render(24, 24, 4);
        let b = Scene::gaussian_blobs(2).render(24, 24, 5);
        assert!((ssim(&a, &b, 1.0) - ssim(&b, &a, 1.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_panics() {
        let a = ImageF64::new(4, 4, 0.0);
        let b = ImageF64::new(4, 5, 0.0);
        mse(&a, &b);
    }

    #[test]
    #[should_panic(expected = "smaller than SSIM window")]
    fn tiny_images_panic_in_ssim() {
        let a = ImageF64::new(4, 4, 0.0);
        ssim(&a, &a, 1.0);
    }
}
