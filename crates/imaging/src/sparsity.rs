//! Compressibility measurements.
//!
//! CS recovery quality is governed by how fast the sorted transform
//! coefficients decay. These helpers quantify that decay, and the
//! `ffvb` experiment uses them to explain *why* particular scenes
//! reconstruct better than others at a given compression ratio.

/// Fraction of total energy captured by the `k` largest-magnitude
/// coefficients.
///
/// Returns 1.0 when `k >= len` and 0.0 for an all-zero vector.
///
/// # Examples
///
/// ```
/// use tepics_imaging::sparsity::top_k_energy;
///
/// let coeffs = vec![3.0, 0.0, -4.0, 0.0];
/// assert!((top_k_energy(&coeffs, 2) - 1.0).abs() < 1e-12);
/// assert!((top_k_energy(&coeffs, 1) - 16.0 / 25.0).abs() < 1e-12);
/// ```
pub fn top_k_energy(coeffs: &[f64], k: usize) -> f64 {
    let total: f64 = coeffs.iter().map(|c| c * c).sum();
    if total == 0.0 {
        return 0.0;
    }
    let mut mags: Vec<f64> = coeffs.iter().map(|c| c * c).collect();
    mags.sort_by(|a, b| b.total_cmp(a));
    mags.iter().take(k).sum::<f64>() / total
}

/// Smallest `k` whose top-k coefficients capture `fraction` of the
/// energy — the *effective sparsity* of the vector.
///
/// # Panics
///
/// Panics if `fraction` is outside `(0, 1]`.
pub fn effective_sparsity(coeffs: &[f64], fraction: f64) -> usize {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0,1], got {fraction}"
    );
    let total: f64 = coeffs.iter().map(|c| c * c).sum();
    if total == 0.0 {
        return 0;
    }
    let mut mags: Vec<f64> = coeffs.iter().map(|c| c * c).collect();
    mags.sort_by(|a, b| b.total_cmp(a));
    let mut acc = 0.0;
    for (i, m) in mags.iter().enumerate() {
        acc += m;
        if acc >= fraction * total {
            return i + 1;
        }
    }
    mags.len()
}

/// Zeroes all but the `k` largest-magnitude entries (best k-term
/// approximation in any orthonormal basis).
pub fn keep_top_k(coeffs: &[f64], k: usize) -> Vec<f64> {
    if k >= coeffs.len() {
        return coeffs.to_vec();
    }
    let mut idx: Vec<usize> = (0..coeffs.len()).collect();
    idx.sort_by(|&a, &b| coeffs[b].abs().total_cmp(&coeffs[a].abs()));
    let mut out = vec![0.0; coeffs.len()];
    for &i in idx.iter().take(k) {
        out[i] = coeffs[i];
    }
    out
}

/// Gini index of the magnitude distribution: 0 for perfectly spread
/// energy, → 1 for a single dominant coefficient. A standard scalar
/// sparsity measure (Hurley & Rickard 2009).
pub fn gini_index(coeffs: &[f64]) -> f64 {
    let mut mags: Vec<f64> = coeffs.iter().map(|c| c.abs()).collect();
    mags.sort_by(f64::total_cmp);
    let n = mags.len();
    let norm1: f64 = mags.iter().sum();
    if n == 0 || norm1 == 0.0 {
        return 0.0;
    }
    let mut acc = 0.0;
    for (i, &m) in mags.iter().enumerate() {
        acc += m / norm1 * ((n - i) as f64 - 0.5) / n as f64;
    }
    1.0 - 2.0 * acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenes::Scene;
    use crate::transforms::dct::Dct2d;

    #[test]
    fn top_k_energy_monotone_in_k() {
        let coeffs: Vec<f64> = (0..50).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut prev = 0.0;
        for k in 1..=50 {
            let e = top_k_energy(&coeffs, k);
            assert!(e >= prev);
            prev = e;
        }
        assert!((prev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn effective_sparsity_of_exact_sparse_vector() {
        let mut v = vec![0.0; 100];
        v[3] = 5.0;
        v[77] = -2.0;
        assert_eq!(effective_sparsity(&v, 1.0), 2);
        // The big coefficient alone has 25/29 of the energy.
        assert_eq!(effective_sparsity(&v, 0.8), 1);
    }

    #[test]
    fn keep_top_k_retains_largest() {
        let v = vec![1.0, -5.0, 3.0, 0.5];
        let kept = keep_top_k(&v, 2);
        assert_eq!(kept, vec![0.0, -5.0, 3.0, 0.0]);
        assert_eq!(keep_top_k(&v, 10), v);
    }

    #[test]
    fn gini_extremes() {
        let spread = vec![1.0; 64];
        let spike = {
            let mut v = vec![0.0; 64];
            v[0] = 1.0;
            v
        };
        assert!(gini_index(&spread) < 0.05);
        assert!(gini_index(&spike) > 0.95);
        assert_eq!(gini_index(&[]), 0.0);
    }

    #[test]
    fn smooth_scene_is_more_compressible_than_noise() {
        let dct = Dct2d::new(32, 32);
        let smooth = dct.forward(Scene::gaussian_blobs(3).render(32, 32, 1).as_slice());
        let noise = dct.forward(Scene::WhiteNoise.render(32, 32, 1).as_slice());
        let k_smooth = effective_sparsity(&smooth, 0.99);
        let k_noise = effective_sparsity(&noise, 0.99);
        assert!(
            k_smooth * 4 < k_noise,
            "smooth {k_smooth} vs noise {k_noise}: expected ≥4× gap"
        );
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn zero_fraction_panics() {
        effective_sparsity(&[1.0], 0.0);
    }
}
