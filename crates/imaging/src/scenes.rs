//! Deterministic synthetic test scenes.
//!
//! The paper's evaluation context is natural-image compressibility; this
//! repository ships no copyrighted corpora, so experiments run on seeded
//! synthetic scenes chosen to cover the compressibility spectrum:
//!
//! * smooth content (gradients, blobs) — highly DCT-compressible;
//! * piecewise-constant content (rectangles, bars) — Haar-friendly;
//! * `1/f`-spectrum textures — the accepted statistical model of
//!   natural images;
//! * star fields — *pixel-domain* sparse, the astronomy use case of the
//!   paper's INAOE co-authors;
//! * uniform / noise extremes — the incompressible control cases.
//!
//! All generators are deterministic in `(width, height, seed)`.

use crate::image::ImageF64;
use tepics_util::SplitMix64;

/// A synthetic scene description. Render to any size with
/// [`Scene::render`].
///
/// # Examples
///
/// ```
/// use tepics_imaging::Scene;
///
/// let img = Scene::star_field(20).render(64, 64, 1);
/// let again = Scene::star_field(20).render(64, 64, 1);
/// assert_eq!(img, again); // fully deterministic
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Scene {
    /// Constant intensity.
    Uniform(f64),
    /// Linear gradient along an angle (radians).
    LinearGradient {
        /// Gradient direction in radians (0 = left→right).
        angle: f64,
    },
    /// Checkerboard of `tile`-pixel squares.
    Checkerboard {
        /// Square size in pixels.
        tile: usize,
    },
    /// Sum of `count` random Gaussian blobs on a dark background.
    GaussianBlobs {
        /// Number of blobs.
        count: usize,
    },
    /// `stars` point sources with a ~1.5-pixel PSF on a near-black sky.
    StarField {
        /// Number of stars.
        stars: usize,
    },
    /// Vertical bars of the given period (resolution chart).
    Bars {
        /// Bar period in pixels.
        period: usize,
    },
    /// `1/f`-amplitude random cosine field (natural-image statistics).
    NaturalLike {
        /// Number of random plane waves summed per octave.
        waves_per_octave: usize,
    },
    /// Smooth background plus `shapes` random constant rectangles and
    /// ellipses (cartoon / piecewise-smooth model).
    PiecewiseSmooth {
        /// Number of shapes to draw.
        shapes: usize,
    },
    /// A step edge plus a smooth ramp — the classic edge-response probe.
    EdgeRamp,
    /// Uniform white noise (the incompressibility control).
    WhiteNoise,
}

impl Scene {
    /// Convenience constructor for [`Scene::GaussianBlobs`].
    pub fn gaussian_blobs(count: usize) -> Scene {
        Scene::GaussianBlobs { count }
    }

    /// Convenience constructor for [`Scene::StarField`].
    pub fn star_field(stars: usize) -> Scene {
        Scene::StarField { stars }
    }

    /// Convenience constructor for [`Scene::NaturalLike`].
    pub fn natural_like() -> Scene {
        Scene::NaturalLike {
            waves_per_octave: 6,
        }
    }

    /// Convenience constructor for [`Scene::PiecewiseSmooth`].
    pub fn piecewise_smooth(shapes: usize) -> Scene {
        Scene::PiecewiseSmooth { shapes }
    }

    /// The standard evaluation suite used by the experiments: a name and
    /// a scene, covering smooth → piecewise → textured → sparse content.
    pub fn evaluation_suite() -> Vec<(&'static str, Scene)> {
        vec![
            ("blobs", Scene::gaussian_blobs(4)),
            ("piecewise", Scene::piecewise_smooth(6)),
            ("natural", Scene::natural_like()),
            ("stars", Scene::star_field(25)),
            ("bars", Scene::Bars { period: 8 }),
            ("edge", Scene::EdgeRamp),
        ]
    }

    /// Renders the scene at the given size, deterministically in `seed`.
    /// Output intensities lie in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero (propagated from [`ImageF64`]).
    pub fn render(&self, width: usize, height: usize, seed: u64) -> ImageF64 {
        let mut rng = SplitMix64::new(seed ^ 0x5CE4E5_u64);
        let w = width as f64;
        let h = height as f64;
        match *self {
            Scene::Uniform(v) => ImageF64::new(width, height, v.clamp(0.0, 1.0)),
            Scene::LinearGradient { angle } => {
                let (s, c) = angle.sin_cos();
                let img = ImageF64::from_fn(width, height, |x, y| {
                    (x as f64 / w) * c + (y as f64 / h) * s
                });
                img.normalized()
            }
            Scene::Checkerboard { tile } => {
                let tile = tile.max(1);
                ImageF64::from_fn(width, height, |x, y| {
                    if (x / tile + y / tile) % 2 == 0 {
                        0.85
                    } else {
                        0.15
                    }
                })
            }
            Scene::GaussianBlobs { count } => {
                let blobs: Vec<(f64, f64, f64, f64)> = (0..count.max(1))
                    .map(|_| {
                        let cx = rng.next_f64() * w;
                        let cy = rng.next_f64() * h;
                        let sigma = (0.06 + 0.12 * rng.next_f64()) * w.min(h);
                        let amp = 0.4 + 0.6 * rng.next_f64();
                        (cx, cy, sigma, amp)
                    })
                    .collect();
                let img = ImageF64::from_fn(width, height, |x, y| {
                    let mut v = 0.05;
                    for &(cx, cy, sigma, amp) in &blobs {
                        let dx = x as f64 - cx;
                        let dy = y as f64 - cy;
                        v += amp * (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp();
                    }
                    v
                });
                img.clamped(0.0, 1.0)
            }
            Scene::StarField { stars } => {
                let sky = 0.02;
                let psf_sigma = 0.7;
                let pts: Vec<(f64, f64, f64)> = (0..stars.max(1))
                    .map(|_| {
                        (
                            rng.next_f64() * w,
                            rng.next_f64() * h,
                            // Magnitude-like brightness distribution.
                            0.2 + 0.8 * rng.next_f64() * rng.next_f64(),
                        )
                    })
                    .collect();
                let img = ImageF64::from_fn(width, height, |x, y| {
                    let mut v = sky;
                    for &(cx, cy, amp) in &pts {
                        let dx = x as f64 - cx;
                        let dy = y as f64 - cy;
                        let d2 = dx * dx + dy * dy;
                        if d2 < 25.0 {
                            v += amp * (-d2 / (2.0 * psf_sigma * psf_sigma)).exp();
                        }
                    }
                    v
                });
                img.clamped(0.0, 1.0)
            }
            Scene::Bars { period } => {
                let period = period.max(2);
                ImageF64::from_fn(width, height, |x, _| {
                    if (x / (period / 2)) % 2 == 0 {
                        0.9
                    } else {
                        0.1
                    }
                })
            }
            Scene::NaturalLike { waves_per_octave } => {
                // Sum of random plane waves, amplitude ∝ 1/frequency.
                let octaves = 5usize;
                let mut waves = Vec::new();
                for oct in 0..octaves {
                    let freq = 2.0f64.powi(oct as i32) / w.min(h);
                    for _ in 0..waves_per_octave.max(1) {
                        let theta = rng.next_f64() * std::f64::consts::TAU;
                        let phase = rng.next_f64() * std::f64::consts::TAU;
                        let amp = 1.0 / (1.0 + 2.0f64.powi(oct as i32));
                        waves.push((freq * theta.cos(), freq * theta.sin(), phase, amp));
                    }
                }
                let img = ImageF64::from_fn(width, height, |x, y| {
                    waves
                        .iter()
                        .map(|&(fx, fy, phase, amp)| {
                            amp * (std::f64::consts::TAU * (fx * x as f64 + fy * y as f64) + phase)
                                .cos()
                        })
                        .sum()
                });
                img.normalized()
            }
            Scene::PiecewiseSmooth { shapes } => {
                let mut img = ImageF64::from_fn(width, height, |x, y| {
                    0.25 + 0.3 * (x as f64 / w) + 0.15 * (y as f64 / h)
                });
                for _ in 0..shapes {
                    let cx = rng.next_f64() * w;
                    let cy = rng.next_f64() * h;
                    let rw = (0.08 + 0.22 * rng.next_f64()) * w;
                    let rh = (0.08 + 0.22 * rng.next_f64()) * h;
                    let level = rng.next_f64();
                    let ellipse = rng.next_bool();
                    for y in 0..height {
                        for x in 0..width {
                            let dx = (x as f64 - cx) / rw;
                            let dy = (y as f64 - cy) / rh;
                            let inside = if ellipse {
                                dx * dx + dy * dy <= 1.0
                            } else {
                                dx.abs() <= 1.0 && dy.abs() <= 1.0
                            };
                            if inside {
                                img.set(x, y, level);
                            }
                        }
                    }
                }
                img.clamped(0.0, 1.0)
            }
            Scene::EdgeRamp => ImageF64::from_fn(width, height, |x, y| {
                let ramp = y as f64 / h * 0.5;
                if x < width / 2 {
                    0.15 + ramp
                } else {
                    0.6 + ramp * 0.5
                }
            }),
            Scene::WhiteNoise => ImageF64::from_fn(width, height, |_, _| rng.next_f64()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_scenes() -> Vec<Scene> {
        let mut v: Vec<Scene> = Scene::evaluation_suite()
            .into_iter()
            .map(|(_, s)| s)
            .collect();
        v.push(Scene::Uniform(0.5));
        v.push(Scene::LinearGradient { angle: 0.7 });
        v.push(Scene::Checkerboard { tile: 4 });
        v.push(Scene::WhiteNoise);
        v
    }

    #[test]
    fn every_scene_stays_in_unit_range() {
        for scene in all_scenes() {
            let img = scene.render(32, 48, 3);
            assert!(
                img.min_value() >= 0.0 && img.max_value() <= 1.0,
                "{scene:?} escapes [0,1]: [{}, {}]",
                img.min_value(),
                img.max_value()
            );
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        for scene in all_scenes() {
            let a = scene.render(16, 16, 99);
            let b = scene.render(16, 16, 99);
            assert_eq!(a, b, "{scene:?} not deterministic");
        }
    }

    #[test]
    fn different_seeds_differ_for_random_scenes() {
        let a = Scene::gaussian_blobs(4).render(32, 32, 1);
        let b = Scene::gaussian_blobs(4).render(32, 32, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn star_field_is_mostly_dark() {
        let img = Scene::star_field(10).render(64, 64, 5);
        let dark = img.as_slice().iter().filter(|&&v| v < 0.1).count();
        assert!(
            dark > 64 * 64 / 2,
            "star field should be mostly sky, got {dark} dark pixels"
        );
        assert!(img.max_value() > 0.2, "stars must be visible");
    }

    #[test]
    fn checkerboard_alternates() {
        let img = Scene::Checkerboard { tile: 2 }.render(8, 8, 0);
        assert_eq!(img.get(0, 0), 0.85);
        assert_eq!(img.get(2, 0), 0.15);
        assert_eq!(img.get(0, 2), 0.15);
        assert_eq!(img.get(2, 2), 0.85);
    }

    #[test]
    fn gradient_increases_along_x() {
        let img = Scene::LinearGradient { angle: 0.0 }.render(16, 4, 0);
        assert!(img.get(15, 0) > img.get(0, 0));
    }

    #[test]
    fn evaluation_suite_has_unique_names() {
        let suite = Scene::evaluation_suite();
        let mut names: Vec<_> = suite.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len());
    }

    #[test]
    fn uniform_scene_is_flat() {
        let img = Scene::Uniform(0.3).render(5, 5, 7);
        assert!(img.as_slice().iter().all(|&v| v == 0.3));
    }
}
