//! Images, synthetic scenes, metrics and sparsifying transforms.
//!
//! Compressive sampling works because natural images are compressible in
//! a suitable basis. This crate supplies everything the TEPICS pipeline
//! needs on the image side:
//!
//! * [`Image`] — a minimal row-major raster container
//!   (with [`ImageF64`]/[`ImageU8`] aliases).
//! * [`Scene`] — deterministic synthetic scene generators standing in
//!   for natural test images (see DESIGN.md §2 for why: no copyrighted
//!   corpora ship with the repo; the generators are compressible in
//!   DCT/Haar, which is the property the experiments exercise).
//! * [`metrics`] — MSE / MAE / PSNR / SSIM.
//! * [`transforms`] — orthonormal 2-D DCT and Haar wavelet transforms,
//!   the sparsifying dictionaries Ψ of the decoder.
//! * [`block`] — 8×8-style block split/merge for block-based CS
//!   baselines (paper refs. \[6–8\], \[11\]).
//! * [`tile`] — frame geometry and overlapped tile decomposition for
//!   block-parallel decoding of large frames ([`FrameGeometry`],
//!   [`TileConfig`], [`tile::TileLayout`]).
//! * [`sparsity`] — compressibility measurements (top-k energy, k-term
//!   approximation error, Gini index).
//!
//! # Examples
//!
//! ```
//! use tepics_imaging::{metrics, Scene};
//!
//! let img = Scene::gaussian_blobs(3).render(64, 64, 42);
//! assert_eq!(img.width(), 64);
//! let same = metrics::psnr(&img, &img, 1.0);
//! assert!(same.is_infinite()); // identical images
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod image;
pub mod io;
pub mod metrics;
pub mod scenes;
pub mod sparsity;
pub mod tile;
pub mod transforms;

pub use image::{Image, ImageF64, ImageU8};
pub use metrics::{mae, mse, psnr, ssim};
pub use scenes::Scene;
pub use tile::{BlendMode, FrameGeometry, TileConfig};
pub use transforms::dct::{Dct1d, Dct2d};
pub use transforms::haar::Haar2d;
