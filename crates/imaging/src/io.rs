//! Netpbm image I/O (PGM/PPM).
//!
//! The simulator's inputs and outputs are images; PGM (P2/P5) is the
//! simplest interchange format every viewer understands and needs no
//! dependency. Binary P5 is written by default; both ASCII P2 and
//! binary P5 parse. A small false-color PPM writer visualizes error
//! maps.

use crate::image::{ImageF64, ImageU8};
use std::fmt;
use std::io::{Read, Write};

/// Error raised by the netpbm codec.
#[derive(Debug)]
pub enum PnmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The byte stream is not a PGM this reader supports.
    Malformed(String),
}

impl fmt::Display for PnmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PnmError::Io(e) => write!(f, "i/o error: {e}"),
            PnmError::Malformed(msg) => write!(f, "malformed pnm: {msg}"),
        }
    }
}

impl std::error::Error for PnmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PnmError::Io(e) => Some(e),
            PnmError::Malformed(_) => None,
        }
    }
}

impl From<std::io::Error> for PnmError {
    fn from(e: std::io::Error) -> Self {
        PnmError::Io(e)
    }
}

/// Writes an 8-bit image as binary PGM (P5). A `&mut` reference to any
/// `Write` works (e.g. `&mut Vec<u8>` or a file).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_pgm<W: Write>(image: &ImageU8, mut writer: W) -> Result<(), PnmError> {
    write!(writer, "P5\n{} {}\n255\n", image.width(), image.height())?;
    writer.write_all(image.as_slice())?;
    Ok(())
}

/// Writes a unit-range float image as binary PGM after 8-bit rounding.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_pgm_f64<W: Write>(image: &ImageF64, writer: W) -> Result<(), PnmError> {
    write_pgm(&image.to_u8(), writer)
}

/// Writes a signed error map as false-color binary PPM (P6): red for
/// positive error, blue for negative, scaled to `max_abs`.
///
/// # Errors
///
/// Propagates I/O errors; rejects a non-positive `max_abs`.
pub fn write_error_ppm<W: Write>(
    error: &ImageF64,
    max_abs: f64,
    mut writer: W,
) -> Result<(), PnmError> {
    if max_abs <= 0.0 {
        return Err(PnmError::Malformed("max_abs must be positive".into()));
    }
    write!(writer, "P6\n{} {}\n255\n", error.width(), error.height())?;
    let mut buf = Vec::with_capacity(error.len() * 3);
    for &v in error.as_slice() {
        let t = (v / max_abs).clamp(-1.0, 1.0);
        let mag = (t.abs() * 255.0).round() as u8;
        if t >= 0.0 {
            buf.extend_from_slice(&[mag, 0, 0]);
        } else {
            buf.extend_from_slice(&[0, 0, mag]);
        }
    }
    writer.write_all(&buf)?;
    Ok(())
}

/// Reads a PGM image (binary P5 or ASCII P2, maxval ≤ 255).
///
/// # Errors
///
/// Returns [`PnmError::Malformed`] for non-PGM input, unsupported
/// maxval, or truncated pixel data.
pub fn read_pgm<R: Read>(mut reader: R) -> Result<ImageU8, PnmError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    let mut pos = 0usize;

    fn skip_ws_and_comments(bytes: &[u8], pos: &mut usize) {
        loop {
            while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
                *pos += 1;
            }
            if *pos < bytes.len() && bytes[*pos] == b'#' {
                while *pos < bytes.len() && bytes[*pos] != b'\n' {
                    *pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn read_token<'a>(bytes: &'a [u8], pos: &mut usize) -> Result<&'a [u8], PnmError> {
        skip_ws_and_comments(bytes, pos);
        let start = *pos;
        while *pos < bytes.len() && !bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
        if start == *pos {
            Err(PnmError::Malformed("unexpected end of header".into()))
        } else {
            Ok(&bytes[start..*pos])
        }
    }

    fn read_usize(bytes: &[u8], pos: &mut usize, what: &str) -> Result<usize, PnmError> {
        let tok = read_token(bytes, pos)?;
        std::str::from_utf8(tok)
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| PnmError::Malformed(format!("bad {what}")))
    }

    let magic = read_token(&bytes, &mut pos)?.to_vec();
    let binary = match magic.as_slice() {
        b"P5" => true,
        b"P2" => false,
        other => {
            return Err(PnmError::Malformed(format!(
                "unsupported magic {:?}",
                String::from_utf8_lossy(other)
            )))
        }
    };
    let width = read_usize(&bytes, &mut pos, "width")?;
    let height = read_usize(&bytes, &mut pos, "height")?;
    let maxval = read_usize(&bytes, &mut pos, "maxval")?;
    if width == 0 || height == 0 {
        return Err(PnmError::Malformed("zero dimensions".into()));
    }
    if maxval == 0 || maxval > 255 {
        return Err(PnmError::Malformed(format!("unsupported maxval {maxval}")));
    }
    let n = width * height;
    let data: Vec<u8> = if binary {
        // Exactly one whitespace byte separates the header from pixels.
        pos += 1;
        if bytes.len() < pos + n {
            return Err(PnmError::Malformed("truncated pixel data".into()));
        }
        bytes[pos..pos + n].to_vec()
    } else {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(read_usize(&bytes, &mut pos, "pixel")? as u8);
        }
        out
    };
    // Rescale non-255 maxval to the full 8-bit range.
    let data = if maxval == 255 {
        data
    } else {
        data.iter()
            .map(|&v| ((v as usize * 255) / maxval) as u8)
            .collect()
    };
    Ok(ImageU8::from_vec(width, height, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;
    use crate::scenes::Scene;

    #[test]
    fn p5_roundtrip_is_lossless() {
        let img = Scene::gaussian_blobs(2).render(17, 9, 3).to_u8();
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        let back = read_pgm(&buf[..]).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn ascii_p2_parses_with_comments() {
        let text = b"P2\n# a comment\n3 2\n# another\n255\n0 128 255\n10 20 30\n";
        let img = read_pgm(&text[..]).unwrap();
        assert_eq!(img.width(), 3);
        assert_eq!(img.height(), 2);
        assert_eq!(img.get(1, 0), 128);
        assert_eq!(img.get(2, 1), 30);
    }

    #[test]
    fn low_maxval_rescales() {
        let text = b"P2\n2 1\n15\n0 15\n";
        let img = read_pgm(&text[..]).unwrap();
        assert_eq!(img.get(0, 0), 0);
        assert_eq!(img.get(1, 0), 255);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(read_pgm(&b"P3\n1 1\n255\n0"[..]).is_err()); // PPM magic
        assert!(read_pgm(&b"P5\n0 4\n255\n"[..]).is_err()); // zero dim
        assert!(read_pgm(&b"P5\n2 2\n255\nab"[..]).is_err()); // truncated
        assert!(read_pgm(&b"P5\n2 2\n65535\n"[..]).is_err()); // 16-bit
        assert!(read_pgm(&b""[..]).is_err());
    }

    #[test]
    fn f64_writer_quantizes_like_to_u8() {
        let img = Scene::natural_like().render(8, 8, 1);
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_pgm_f64(&img, &mut a).unwrap();
        write_pgm(&img.to_u8(), &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn error_ppm_encodes_sign_in_channels() {
        let err = Image::from_vec(2, 1, vec![0.5, -0.5]);
        let mut buf = Vec::new();
        write_error_ppm(&err, 1.0, &mut buf).unwrap();
        // Header "P6\n2 1\n255\n" is 11 bytes; then RGB triples.
        let pixels = &buf[11..];
        assert_eq!(pixels, &[128, 0, 0, 0, 0, 128]);
        assert!(write_error_ppm(&err, 0.0, Vec::new()).is_err());
    }
}
