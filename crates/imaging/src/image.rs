//! Row-major raster images.
//!
//! [`Image`] is deliberately small: the simulator needs deterministic,
//! inspectable pixel storage, not a full imaging framework. Pixels are
//! stored row-major (`index = y * width + x`), matching both the
//! sensor's row/column addressing and the vectorization convention used
//! by the measurement operators (`x ∈ R^{M·N}`).

use std::fmt;

/// A rectangular raster of copyable pixels.
///
/// # Examples
///
/// ```
/// use tepics_imaging::ImageF64;
///
/// let mut img = ImageF64::new(4, 3, 0.0);
/// img.set(2, 1, 0.5);
/// assert_eq!(img.get(2, 1), 0.5);
/// assert_eq!(img.as_slice().len(), 12);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Image<T> {
    width: usize,
    height: usize,
    data: Vec<T>,
}

/// Floating-point image (intensities or time codes).
pub type ImageF64 = Image<f64>;
/// 8-bit image (quantized TDC codes).
pub type ImageU8 = Image<u8>;

impl<T: Copy> Image<T> {
    /// Creates an image filled with a constant.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize, fill: T) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Image {
            width,
            height,
            data: vec![fill; width * height],
        }
    }

    /// Creates an image by evaluating `f(x, y)` at every pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        Image {
            width,
            height,
            data,
        }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height` or a dimension is zero.
    pub fn from_vec(width: usize, height: usize, data: Vec<T>) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        assert_eq!(
            data.len(),
            width * height,
            "buffer length {} does not match {width}×{height}",
            data.len()
        );
        Image {
            width,
            height,
            data,
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of pixels.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` only for the unreachable zero-pixel case (kept for API
    /// completeness; constructors reject empty images).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> T {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.data[y * self.width + x]
    }

    /// Writes pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: T) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.data[y * self.width + x] = v;
    }

    /// The backing row-major buffer.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the backing buffer.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the image, returning the backing buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Applies `f` to every pixel, producing a new image.
    pub fn map<U: Copy>(&self, f: impl Fn(T) -> U) -> Image<U> {
        Image {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Iterates pixels row-major with their coordinates.
    pub fn enumerate_pixels(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        let w = self.width;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i % w, i / w, v))
    }
}

impl ImageF64 {
    /// Mean pixel value.
    pub fn mean(&self) -> f64 {
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Minimum pixel value.
    pub fn min_value(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum pixel value.
    pub fn max_value(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Linearly rescales pixel values so they span `[0, 1]`. A constant
    /// image maps to all-zeros.
    pub fn normalized(&self) -> ImageF64 {
        let lo = self.min_value();
        let hi = self.max_value();
        if (hi - lo).abs() < f64::EPSILON {
            return self.map(|_| 0.0);
        }
        self.map(|v| (v - lo) / (hi - lo))
    }

    /// Clamps every pixel into `[lo, hi]`.
    pub fn clamped(&self, lo: f64, hi: f64) -> ImageF64 {
        self.map(|v| v.clamp(lo, hi))
    }

    /// Quantizes `[0,1]` values to `levels` steps (e.g. 256 for 8-bit),
    /// returning the quantized floating image.
    pub fn quantized(&self, levels: u32) -> ImageF64 {
        assert!(levels >= 2, "need at least two quantization levels");
        let q = (levels - 1) as f64;
        self.map(|v| (v.clamp(0.0, 1.0) * q).round() / q)
    }

    /// Converts `[0,1]` values to 8-bit codes by rounding.
    pub fn to_u8(&self) -> ImageU8 {
        self.map(|v| (v.clamp(0.0, 1.0) * 255.0).round() as u8)
    }

    /// Renders the image as coarse ASCII art (for terminal experiments).
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let mut out = String::with_capacity((self.width + 1) * self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                let v = self.get(x, y).clamp(0.0, 1.0);
                let idx = (v * (RAMP.len() - 1) as f64).round() as usize;
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out
    }
}

impl ImageU8 {
    /// Converts 8-bit codes to floats in `[0, 1]`.
    pub fn to_f64(&self) -> ImageF64 {
        self.map(|v| v as f64 / 255.0)
    }

    /// Converts 8-bit codes to raw float code values in `[0, 255]`.
    pub fn to_code_f64(&self) -> ImageF64 {
        self.map(|v| v as f64)
    }
}

impl<T: Copy + fmt::Debug> fmt::Debug for Image<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Image<{}x{}>", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_indexes_row_major() {
        let img = Image::from_fn(3, 2, |x, y| (10 * y + x) as u8);
        assert_eq!(img.as_slice(), &[0, 1, 2, 10, 11, 12]);
        assert_eq!(img.get(2, 1), 12);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut img = ImageF64::new(5, 5, 0.0);
        img.set(4, 4, 2.5);
        img.set(0, 3, -1.0);
        assert_eq!(img.get(4, 4), 2.5);
        assert_eq!(img.get(0, 3), -1.0);
    }

    #[test]
    fn map_preserves_shape() {
        let img = ImageF64::new(4, 2, 0.5);
        let doubled = img.map(|v| v * 2.0);
        assert_eq!(doubled.width(), 4);
        assert_eq!(doubled.height(), 2);
        assert!(doubled.as_slice().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn stats_on_known_image() {
        let img = ImageF64::from_vec(2, 2, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(img.mean(), 1.5);
        assert_eq!(img.min_value(), 0.0);
        assert_eq!(img.max_value(), 3.0);
    }

    #[test]
    fn normalized_spans_unit_interval() {
        let img = ImageF64::from_vec(2, 2, vec![5.0, 7.0, 9.0, 6.0]);
        let n = img.normalized();
        assert_eq!(n.min_value(), 0.0);
        assert_eq!(n.max_value(), 1.0);
        // Constant image does not divide by zero.
        let flat = ImageF64::new(3, 3, 4.2).normalized();
        assert_eq!(flat.max_value(), 0.0);
    }

    #[test]
    fn quantization_is_idempotent() {
        let img = ImageF64::from_vec(2, 2, vec![0.1, 0.499, 0.5, 0.9]);
        let q = img.quantized(256);
        let qq = q.quantized(256);
        assert_eq!(q, qq);
    }

    #[test]
    fn u8_roundtrip_is_exact_on_codes() {
        let img = Image::from_fn(16, 16, |x, y| ((x * 16 + y) % 256) as u8);
        let back = img.to_f64().to_u8();
        assert_eq!(img, back);
    }

    #[test]
    fn enumerate_pixels_covers_all() {
        let img = Image::from_fn(3, 3, |x, y| x + y);
        let collected: Vec<_> = img.enumerate_pixels().collect();
        assert_eq!(collected.len(), 9);
        assert_eq!(collected[0], (0, 0, 0));
        assert_eq!(collected[8], (2, 2, 4));
    }

    #[test]
    fn ascii_render_has_one_line_per_row() {
        let img = ImageF64::new(8, 3, 1.0);
        let art = img.to_ascii();
        assert_eq!(art.lines().count(), 3);
        assert!(art.lines().all(|l| l == "@@@@@@@@"));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_get_panics() {
        ImageF64::new(2, 2, 0.0).get(2, 0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_wrong_len_panics() {
        ImageF64::from_vec(2, 2, vec![0.0; 5]);
    }
}
