//! Experiment harness reproducing the paper's tables, figures and
//! numeric claims.
//!
//! Each module under [`experiments`] regenerates one artifact of the
//! DATE 2018 paper (or one in-text claim) and returns a self-contained
//! text report with paper-vs-measured columns. The `experiments` binary
//! runs them:
//!
//! ```text
//! cargo run --release -p tepics-bench --bin experiments -- all          # fast tier
//! cargo run --release -p tepics-bench --bin experiments -- all --full   # + nightly sweeps
//! cargo run --release -p tepics-bench --bin experiments -- table2 overlap
//! ```
//!
//! DESIGN.md §5 is the index mapping experiment ids to paper artifacts;
//! EXPERIMENTS.md records the outcomes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Timing is this crate's job: the clippy.toml wall-clock bans do not apply here.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]
pub mod experiments;
pub mod report;

/// Cost tier of an experiment: which CI lane runs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Seconds-scale: runs on every PR (`experiments all`).
    Fast,
    /// The full-size (64×64 class) sweeps: nightly only; `experiments
    /// all --full` includes them, or name them explicitly.
    Full,
}

/// An experiment: an id, the paper artifact it reproduces, its cost
/// tier, and a runner producing a text report.
pub struct Experiment {
    /// Command-line id.
    pub id: &'static str,
    /// The paper artifact this regenerates.
    pub artifact: &'static str,
    /// Which CI lane runs it.
    pub tier: Tier,
    /// Runs the experiment, returning a printable report.
    pub run: fn() -> String,
}

/// The registry of all experiments, in the order DESIGN.md lists them.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            tier: Tier::Fast,
            artifact: "Table I — Rule 30 truth table + Fig. 3 gate cell",
            run: experiments::table1::run,
        },
        Experiment {
            id: "table2",
            tier: Tier::Fast,
            artifact: "Table II — chip feature summary",
            run: experiments::table2::run,
        },
        Experiment {
            id: "fig1",
            tier: Tier::Full,
            artifact: "Fig. 1 — pixel node waveforms and event protocol",
            run: experiments::fig1::run,
        },
        Experiment {
            id: "fig2",
            tier: Tier::Fast,
            artifact: "Fig. 2 — conceptual floorplan and CA ring",
            run: experiments::fig2::run,
        },
        Experiment {
            id: "fig45",
            tier: Tier::Fast,
            artifact: "Figs. 4/5 — die and pixel area budgets",
            run: experiments::fig45::run,
        },
        Experiment {
            id: "eq1",
            tier: Tier::Fast,
            artifact: "Eq. (1) — compressed-sample dynamic range",
            run: experiments::eq1::run,
        },
        Experiment {
            id: "eq2",
            tier: Tier::Fast,
            artifact: "Eq. (2) — compressed-sample rate (≈50 kHz point)",
            run: experiments::eq2::run,
        },
        Experiment {
            id: "overlap",
            tier: Tier::Full,
            artifact: "Sect. III.B — event-overlap probability (6.25% claim)",
            run: experiments::overlap::run,
        },
        Experiment {
            id: "lsb",
            tier: Tier::Full,
            artifact: "Sect. III.B — 1 LSB error, system-level verification",
            run: experiments::lsb::run,
        },
        Experiment {
            id: "breakeven",
            tier: Tier::Fast,
            artifact: "Sect. III.B — R < 0.4 compression break-even",
            run: experiments::breakeven::run,
        },
        Experiment {
            id: "ffvb",
            tier: Tier::Full,
            artifact: "Conclusions — full-frame vs block-based CS",
            run: experiments::ffvb::run,
        },
        Experiment {
            id: "matrices",
            tier: Tier::Full,
            artifact: "Sect. I/III.A — measurement-matrix quality (RIP proxies)",
            run: experiments::matrices::run,
        },
        Experiment {
            id: "ca_spectrum",
            tier: Tier::Full,
            artifact: "Sect. III.A / ref. [10] — Rule 30 aperiodicity",
            run: experiments::ca_spectrum::run,
        },
        Experiment {
            id: "noise",
            tier: Tier::Full,
            artifact: "Sect. IV — comparator offset/auto-zero, jitter, FPN",
            run: experiments::noise::run,
        },
        Experiment {
            id: "progressive",
            tier: Tier::Full,
            artifact: "Sect. III.B — sequential samples ⇒ prefix reconstruction",
            run: experiments::progressive::run,
        },
        Experiment {
            id: "warmup",
            tier: Tier::Full,
            artifact: "(ablation) CA warm-up and step-per-sample knobs",
            run: experiments::warmup::run,
        },
        Experiment {
            id: "batch",
            tier: Tier::Full,
            artifact: "(infrastructure) parallel batch engine — scaling & determinism",
            run: experiments::batch::run,
        },
        Experiment {
            id: "hotpaths",
            tier: Tier::Full,
            artifact: "(infrastructure) hot-path timings — DCT, Φ apply/adjoint, warm decode",
            run: experiments::hotpaths::run,
        },
        Experiment {
            id: "solvers",
            tier: Tier::Full,
            artifact: "(infrastructure) solver shootout — every SolverKind, PSNR + wall-time",
            run: experiments::solvers::run,
        },
        Experiment {
            id: "tiled",
            tier: Tier::Full,
            artifact: "(infrastructure) tiled decode — stitched PSNR + block-parallel scaling",
            run: experiments::tiled::run,
        },
        Experiment {
            id: "throughput",
            tier: Tier::Full,
            artifact: "(infrastructure) streaming decode throughput — pool vs spawn-per-call",
            run: experiments::throughput::run,
        },
        Experiment {
            id: "resilience",
            tier: Tier::Fast,
            artifact: "(infrastructure) resilient wire v3 — corruption rate vs PSNR/recovery",
            run: experiments::resilience::run,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let mut ids: Vec<&str> = registry().iter().map(|e| e.id).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    /// Smoke: every fast-tier experiment must run and produce a
    /// non-empty report. (The full-tier sweeps run nightly via the
    /// binary's `--full` flag.)
    #[test]
    fn fast_experiments_produce_reports() {
        let fast: Vec<Experiment> = registry()
            .into_iter()
            .filter(|e| e.tier == Tier::Fast)
            .collect();
        assert!(fast.len() >= 7, "fast tier shrank unexpectedly");
        for exp in fast {
            let report = (exp.run)();
            assert!(report.len() > 100, "{} report suspiciously short", exp.id);
        }
    }
}
