//! Plain-text table rendering for experiment reports.

use std::fmt::Write as _;

/// A fixed-column text table with automatic width fitting.
///
/// # Examples
///
/// ```
/// use tepics_bench::report::Table;
///
/// let mut t = Table::new(&["quantity", "paper", "measured"]);
/// t.row(&["sample bits", "20", "20"]);
/// let rendered = t.render();
/// assert!(rendered.contains("sample bits"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of owned strings.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "| {:<width$} ", cell, width = widths[i]);
            }
            out.push_str("|\n");
        };
        write_row(&mut out, &self.header);
        for (i, w) in widths.iter().enumerate() {
            let _ = write!(out, "|{}", "-".repeat(w + 2));
            if i == cols - 1 {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Section header helper for reports.
pub fn section(title: &str) -> String {
    format!("\n## {title}\n\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "long header", "x"]);
        t.row(&["1", "2", "3"]);
        t.row(&["wide cell", "4", "5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn arity_mismatch_panics() {
        Table::new(&["a", "b"]).row(&["only one"]);
    }
}
