//! Fig. 1: pixel node waveforms and the column event protocol.

use crate::report::section;
use tepics_sensor::column::ColumnArbiter;
use tepics_sensor::pixel::NodeTrace;
use tepics_sensor::tdc::{Conversion, GlobalCounter};
use tepics_sensor::SensorConfig;

/// Runs the experiment.
pub fn run() -> String {
    let mut out = String::from("# Fig. 1 — elementary pixel, behavioral waveforms\n");
    let config = SensorConfig::paper_prototype();

    out.push_str(&section("Single selected pixel (intensity 0.35)"));
    let t_flip =
        tepics_sensor::photodiode::crossing_time(&config, 0.35) + config.comparator_delay();
    let trace = NodeTrace::simulate(&config, 0.35, true, t_flip, 100);
    out.push_str(&trace.to_ascii());
    out.push_str(&format!(
        "time axis 0 .. {:.2} us; comparator flips at {:.3} us; event lasts {:.0} ns\n",
        config.window_end() * 1e6,
        trace.t_flip * 1e6,
        config.event_duration() * 1e9
    ));

    out.push_str(&section(
        "Unselected pixel (S_i = S_j): V2 stuck high, no pulse",
    ));
    let quiet = NodeTrace::simulate(&config, 0.35, false, t_flip, 100);
    out.push_str(&quiet.to_ascii());

    out.push_str(&section(
        "Column protocol: near-simultaneous flips serialize",
    ));
    let arbiter = ColumnArbiter::new(&config);
    let counter = GlobalCounter::new(&config);
    let outcome = arbiter.arbitrate(&[(12, 2.0e-6), (40, 2.000002e-6), (3, 2.000004e-6)]);
    out.push_str("row | flip (us) | grant (us) | queued | ideal code | actual code\n");
    for e in &outcome.events {
        let fmt = |c: Conversion| match c {
            Conversion::Code(v) => v.to_string(),
            Conversion::Missed => "missed".into(),
        };
        out.push_str(&format!(
            " {:2} | {:9.6} | {:10.6} | {:6} | {:>10} | {:>11}\n",
            e.row,
            e.t_flip * 1e6,
            e.t_grant * 1e6,
            if e.queued { "yes" } else { "no" },
            fmt(counter.ideal_code(e.t_flip)),
            fmt(counter.convert(e.t_grant)),
        ));
    }
    out.push_str(
        "\nBlocking is parallel (both later pixels wait immediately); release is\n\
         sequential top-down (row 3 fires before row 40 despite flipping later),\n\
         reproducing Sect. II.E exactly.\n",
    );
    out
}
