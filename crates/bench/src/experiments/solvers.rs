//! (infrastructure) Solver shootout: PSNR + wall-time of every
//! [`SolverKind`] at fixed R, plus the column-materialization ablation.
//!
//! The recovery stack is solver-pluggable: all eight algorithms run
//! behind the `Solver` trait, selectable per session. This experiment
//! answers the operational question that raises — *which solver for
//! which budget* — by decoding one frame with every kind at a fixed
//! compression ratio and reporting reconstruction quality against
//! cold/warm decode wall-time. It also measures the column-materialized
//! view in isolation: OMP and CoSaMP with and without an attached
//! `ColumnMatrix`, the ablation behind the greedy fast path.
//!
//! Numbers land in `BENCH_solvers.json` at the workspace root (schema:
//! a `solvers` object keyed by solver label, plus a `column_view`
//! object with the ablation timings and speedups).
//!
//! Every warm decode is asserted bit-identical to its cold decode, so
//! the shootout doubles as an end-to-end identity check across all
//! solver kinds.

use std::sync::Arc;
use std::time::Instant;

use crate::report::{section, Table};
use tepics_core::prelude::*;
use tepics_cs::colview::ColumnMatrix;
use tepics_cs::dictionary::ZeroMeanDictionary;
use tepics_cs::{ComposedOperator, Dct2dDictionary, XorMeasurement};
use tepics_recovery::{CoSaMp, Omp, SolverWorkspace};

/// Where the machine-readable numbers land (workspace root).
const JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solvers.json");

/// Median wall time per call, in seconds, over `reps` calls; `sink`
/// absorbs a checksum so the optimizer cannot discard the work.
fn time_median(reps: usize, sink: &mut f64, mut f: impl FnMut() -> f64) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        *sink += f();
        samples.push(t.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Label a kind uniquely (the debiased and plain ℓ1 variants share a
/// solver name).
fn label(kind: &SolverKind) -> String {
    if kind.debias() {
        format!("{}+debias", kind.name())
    } else {
        kind.name().to_string()
    }
}

/// One shootout row.
struct Row {
    label: String,
    psnr_db: f64,
    cold_ms: f64,
    warm_ms: f64,
    iterations: usize,
}

/// Decodes `frame` with `kind` through a fresh session: returns the
/// row plus asserts warm ≡ cold.
fn shoot(
    imager: &CompressiveImager,
    scene: &ImageF64,
    frame: &CompressedFrame,
    kind: SolverKind,
    warm_reps: usize,
    sink: &mut f64,
) -> Row {
    let truth = imager.ideal_codes(scene).to_code_f64();
    let mut session = DecodeSession::new();
    session.algorithm(kind);
    let t0 = Instant::now();
    let cold = session.push_frame(frame).expect("cold decode");
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let warm = time_median(warm_reps, sink, || {
        let d = session.push_frame(frame).expect("warm decode");
        assert_eq!(
            d.reconstruction,
            cold.reconstruction,
            "{}: warm decode diverged from cold",
            label(&kind)
        );
        d.reconstruction.mean_code()
    });
    Row {
        label: label(&kind),
        psnr_db: psnr(&truth, cold.reconstruction.code_image(), 255.0),
        cold_ms,
        warm_ms: warm * 1e3,
        iterations: cold.reconstruction.stats().iterations,
    }
}

/// One greedy solver's ablation timings, all in milliseconds.
struct Ablation {
    /// Pre-fast-path cost model: fresh buffers every solve, no column
    /// view (per-atom extraction through the matrix-free operator) —
    /// what each greedy decode cost before this refactor.
    baseline_ms: f64,
    /// Warm workspace, no view (isolates the materialization win).
    warm_noview_ms: f64,
    /// Warm workspace + materialized view — the production fast path.
    fastpath_ms: f64,
}

impl Ablation {
    fn speedup(&self) -> f64 {
        self.baseline_ms / self.fastpath_ms
    }

    fn view_only_speedup(&self) -> f64 {
        self.warm_noview_ms / self.fastpath_ms
    }
}

/// The greedy fast-path ablation: wall time of OMP/CoSaMP on the
/// composed operator across the three cost models. Returns
/// `(omp, cosamp, view_build_ms)`.
fn ablation(
    imager: &CompressiveImager,
    side: usize,
    frame: &CompressedFrame,
    reps: usize,
    sink: &mut f64,
) -> (Ablation, Ablation, f64) {
    let k = frame.samples.len();
    let mut source = imager
        .strategy()
        .build_source(2 * side, imager.seed())
        .expect("strategy source");
    let phi = XorMeasurement::from_source(side, side, source.as_mut(), k);
    let psi = ZeroMeanDictionary::new(Dct2dDictionary::new(side, side), 0);
    let y: Vec<f64> = frame.samples.iter().map(|&s| s as f64).collect();
    let atoms = (k / 8).max(1);

    let plain = ComposedOperator::new(&phi, &psi);
    let t0 = Instant::now();
    let view = Arc::new(ColumnMatrix::from_operator(&plain));
    let view_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let viewed = ComposedOperator::new(&phi, &psi).with_column_view(view);

    let mut ws = SolverWorkspace::new();
    let omp = Omp::new(atoms);
    let cosamp = CoSaMp::new(atoms);
    let omp_baseline = time_median(reps, sink, || {
        omp.solve(&plain, &y).expect("omp").stats.residual_norm
    });
    let omp_warm = time_median(reps, sink, || {
        omp.solve_with(&plain, &y, &mut ws)
            .expect("omp")
            .stats
            .residual_norm
    });
    let omp_fast = time_median(reps, sink, || {
        omp.solve_with(&viewed, &y, &mut ws)
            .expect("omp")
            .stats
            .residual_norm
    });
    let cosamp_baseline = time_median(reps, sink, || {
        cosamp
            .solve(&plain, &y)
            .expect("cosamp")
            .stats
            .residual_norm
    });
    let cosamp_warm = time_median(reps, sink, || {
        cosamp
            .solve_with(&plain, &y, &mut ws)
            .expect("cosamp")
            .stats
            .residual_norm
    });
    let cosamp_fast = time_median(reps, sink, || {
        cosamp
            .solve_with(&viewed, &y, &mut ws)
            .expect("cosamp")
            .stats
            .residual_norm
    });
    let omp_res = Ablation {
        baseline_ms: omp_baseline * 1e3,
        warm_noview_ms: omp_warm * 1e3,
        fastpath_ms: omp_fast * 1e3,
    };
    let cosamp_res = Ablation {
        baseline_ms: cosamp_baseline * 1e3,
        warm_noview_ms: cosamp_warm * 1e3,
        fastpath_ms: cosamp_fast * 1e3,
    };
    (omp_res, cosamp_res, view_build_ms)
}

/// Runs the experiment: the shootout at 32×32, R = 0.35, plus the
/// column-view ablation; writes `BENCH_solvers.json`.
pub fn run() -> String {
    let side = 32;
    let ratio = 0.35;
    let imager = CompressiveImager::builder(side, side)
        .ratio(ratio)
        .seed(0x501E)
        .fidelity(Fidelity::Functional)
        .build()
        .expect("solvers imager");
    let scene = Scene::gaussian_blobs(3).render(side, side, 11);
    let frame = imager.capture(&scene);
    let k = frame.samples.len();
    let mut sink = 0.0;

    let rows: Vec<Row> = SolverKind::shootout_set(k)
        .into_iter()
        .map(|kind| shoot(&imager, &scene, &frame, kind, 5, &mut sink))
        .collect();
    let (omp_abl, cosamp_abl, view_build_ms) = ablation(&imager, side, &frame, 9, &mut sink);

    // Machine-readable trail.
    let mut json = String::from("{\n  \"schema\": 2,\n");
    json.push_str(&format!(
        "  \"config\": {{\"side\": {side}, \"ratio\": {ratio}, \"k\": {k}}},\n  \"solvers\": {{\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{\"psnr_db\": {:.2}, \"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \"iterations\": {}}}{}\n",
            r.label,
            r.psnr_db,
            r.cold_ms,
            r.warm_ms,
            r.iterations,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n  \"column_view\": {\n");
    json.push_str(&format!("    \"build_ms\": {view_build_ms:.3},\n"));
    for (name, a, comma) in [("omp", &omp_abl, ","), ("cosamp", &cosamp_abl, "")] {
        json.push_str(&format!(
            "    \"{name}\": {{\"baseline_ms\": {:.3}, \"warm_noview_ms\": {:.3}, \"fastpath_ms\": {:.3}, \"speedup\": {:.2}, \"view_only_speedup\": {:.2}}}{comma}\n",
            a.baseline_ms,
            a.warm_noview_ms,
            a.fastpath_ms,
            a.speedup(),
            a.view_only_speedup(),
        ));
    }
    json.push_str("  }\n}\n");
    let json_written = std::fs::write(JSON_PATH, &json).is_ok();

    let mut out = String::from("# Solver shootout — every SolverKind at fixed R\n");
    out.push_str(&section(&format!(
        "{side}×{side}, R = {ratio} (K = {k} measurements), one gaussian-blobs frame"
    )));
    let mut t = Table::new(&["solver", "PSNR (dB)", "cold (ms)", "warm (ms)", "iters"]);
    for r in &rows {
        t.row_owned(vec![
            r.label.clone(),
            format!("{:.1}", r.psnr_db),
            format!("{:.1}", r.cold_ms),
            format!("{:.1}", r.warm_ms),
            r.iterations.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&section(
        "greedy fast path (workspace + column view) ablation",
    ));
    let mut t = Table::new(&[
        "solver",
        "baseline (ms)",
        "warm, no view (ms)",
        "fast path (ms)",
        "speedup",
    ]);
    for (name, a) in [("omp", &omp_abl), ("cosamp", &cosamp_abl)] {
        t.row_owned(vec![
            name.into(),
            format!("{:.1}", a.baseline_ms),
            format!("{:.1}", a.warm_noview_ms),
            format!("{:.1}", a.fastpath_ms),
            format!("{:.2}×", a.speedup()),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nview build (one-time, memoized per cache key): {view_build_ms:.1} ms\n{} {} (checksum {sink:.3e})\n",
        if json_written {
            "machine-readable numbers written to"
        } else {
            "WARNING: could not write"
        },
        JSON_PATH,
    ));
    out.push_str(
        "\nEvery warm decode above was asserted bit-identical to its cold\n\
         decode; the greedy rows decode through the materialized Φ·Ψ view\n\
         (built once per cache key). Ablation cost models: `baseline` is\n\
         the pre-fast-path decode (fresh buffers per solve, per-atom\n\
         column extraction through the matrix-free operator); `warm, no\n\
         view` isolates the workspace reuse; `fast path` is the\n\
         production configuration. `speedup` compares baseline to fast\n\
         path — the greedy decode improvement this stack landed.\n",
    );
    out
}

/// Smoke-mode solvers check for CI: tiny geometry, no JSON output.
///
/// Decodes one 16×16 frame with every `SolverKind` (cold + warm,
/// asserting bit-identity and finite PSNR), and checks the column-view
/// consistency contracts: OMP is bit-identical with and without a view
/// (it only *reads* columns), CoSaMP agrees within the fast-path
/// tolerance (its restricted least squares reassociates sums).
pub fn smoke() -> Result<String, Vec<String>> {
    let side = 16;
    let imager = CompressiveImager::builder(side, side)
        .ratio(0.35)
        .seed(0x501E)
        .fidelity(Fidelity::Functional)
        .build()
        .expect("solvers smoke imager");
    let scene = Scene::gaussian_blobs(2).render(side, side, 5);
    let frame = imager.capture(&scene);
    let k = frame.samples.len();
    let truth = imager.ideal_codes(&scene).to_code_f64();
    let mut failures = Vec::new();
    let mut summary = format!("solvers smoke: {side}×{side} K={k}:");
    for kind in SolverKind::shootout_set(k) {
        let mut session = DecodeSession::new();
        session.algorithm(kind);
        let cold = session.push_frame(&frame).expect("cold decode");
        let warm = session.push_frame(&frame).expect("warm decode");
        let name = label(&kind);
        if warm.reconstruction != cold.reconstruction {
            failures.push(format!("solvers {name}: warm decode != cold decode"));
        }
        let db = psnr(&truth, cold.reconstruction.code_image(), 255.0);
        if !db.is_finite() {
            failures.push(format!("solvers {name}: non-finite PSNR"));
        }
        summary.push_str(&format!(" {name} {db:.1}dB"));
    }
    // Column-view consistency at the solver level.
    let mut source = imager
        .strategy()
        .build_source(2 * side, imager.seed())
        .expect("strategy source");
    let phi = XorMeasurement::from_source(side, side, source.as_mut(), k);
    let psi = ZeroMeanDictionary::new(Dct2dDictionary::new(side, side), 0);
    let y: Vec<f64> = frame.samples.iter().map(|&s| s as f64).collect();
    let plain = ComposedOperator::new(&phi, &psi);
    let view = Arc::new(ColumnMatrix::from_operator(&plain));
    let viewed = ComposedOperator::new(&phi, &psi).with_column_view(view);
    let atoms = (k / 8).max(1);
    let omp = Omp::new(atoms);
    let a = omp.solve(&plain, &y).expect("omp noview");
    let b = omp.solve(&viewed, &y).expect("omp view");
    if a != b {
        failures.push("solvers: OMP with column view != without".into());
    }
    let cosamp = CoSaMp::new(atoms);
    let c = cosamp.solve(&plain, &y).expect("cosamp noview");
    let d = cosamp.solve(&viewed, &y).expect("cosamp view");
    let scale = tepics_cs::op::norm2(&c.coefficients).max(1.0);
    let worst = c
        .coefficients
        .iter()
        .zip(&d.coefficients)
        .map(|(p, q)| (p - q).abs())
        .fold(0.0f64, f64::max);
    if worst > 1e-6 * scale {
        failures.push(format!(
            "solvers: CoSaMP view path drifted {worst:.3e} from scatter path"
        ));
    }
    if failures.is_empty() {
        Ok(summary)
    } else {
        Err(failures)
    }
}
