//! (infrastructure) Hot-path timings: DCT apply, Φ apply/adjoint, the
//! fused `ΦᵀΨᵀ` / `ΨΦ` composed kernels, their micro-kernels
//! (subset-sum table build, Lee DCT butterfly), and a full warm
//! `DecodeSession` frame — swept over 32/64/128 geometries.
//!
//! The recovery inner loop is dominated by three kernels: the
//! sparsifying transform (2-D DCT), the measurement operator Φ
//! (forward and adjoint), and — since the fused engine landed — the
//! one-pass composed kernels that stream Φᵀ's scatter straight into
//! Ψᵀ's row passes. This experiment times each in isolation plus the
//! end-to-end warm-decode path they compose into, and writes the
//! numbers to `BENCH_hotpaths.json` at the workspace root so perf
//! changes leave a machine-readable trail.
//!
//! The JSON file (schema 2) keeps a frozen `baseline` section (the
//! 64×64 numbers measured before the fast-path engine landed —
//! preserved across reruns), a `current` section (this run at 64×64,
//! including the fused and micro-kernel rows the baseline predates), a
//! derived `speedup` section over the keys both share, and a `sweep`
//! section with the 32/64/128 size ladder. A rerun on a tree that only
//! has `current` promotes it to `baseline`, so the very first run
//! establishes the reference point.

use std::time::Instant;

use crate::report::{section, Table};
use tepics_core::prelude::*;
use tepics_cs::dictionary::ZeroMeanDictionary;
use tepics_cs::{ComposedOperator, Dct2dDictionary, Dictionary, LinearOperator, XorMeasurement};
use tepics_imaging::Dct2d;
use tepics_util::{simd, SplitMix64};

/// Where the machine-readable numbers land (workspace root).
const JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpaths.json");

/// One set of hot-path measurements. The first five keys exist in the
/// frozen pre-fused baseline; the last four were added with the fused
/// engine and carry `NaN` when parsed from files that predate them.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Metrics {
    dct2d_forward_us: f64,
    dct2d_inverse_us: f64,
    phi_apply_us: f64,
    phi_adjoint_us: f64,
    warm_decode_ms: f64,
    fused_apply_us: f64,
    fused_adjoint_us: f64,
    subset_sum_ns: f64,
    dct_butterfly_ns: f64,
}

impl Metrics {
    const KEYS: [&'static str; 9] = [
        "dct2d_forward_us",
        "dct2d_inverse_us",
        "phi_apply_us",
        "phi_adjoint_us",
        "warm_decode_ms",
        "fused_apply_us",
        "fused_adjoint_us",
        "subset_sum_ns",
        "dct_butterfly_ns",
    ];

    fn values(&self) -> [f64; 9] {
        [
            self.dct2d_forward_us,
            self.dct2d_inverse_us,
            self.phi_apply_us,
            self.phi_adjoint_us,
            self.warm_decode_ms,
            self.fused_apply_us,
            self.fused_adjoint_us,
            self.subset_sum_ns,
            self.dct_butterfly_ns,
        ]
    }

    /// Serializes the finite entries (a baseline parsed from an older
    /// schema keeps only the keys it actually had).
    fn to_json(self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (k, v) in Self::KEYS.iter().zip(self.values()) {
            if !v.is_finite() {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("\"{k}\": {v:.3}"));
        }
        out.push('}');
        out
    }

    fn from_json(obj: &str) -> Option<Metrics> {
        let opt = |key| extract_number(obj, key).unwrap_or(f64::NAN);
        Some(Metrics {
            dct2d_forward_us: extract_number(obj, "dct2d_forward_us")?,
            dct2d_inverse_us: extract_number(obj, "dct2d_inverse_us")?,
            phi_apply_us: extract_number(obj, "phi_apply_us")?,
            phi_adjoint_us: extract_number(obj, "phi_adjoint_us")?,
            warm_decode_ms: extract_number(obj, "warm_decode_ms")?,
            fused_apply_us: opt("fused_apply_us"),
            fused_adjoint_us: opt("fused_adjoint_us"),
            subset_sum_ns: opt("subset_sum_ns"),
            dct_butterfly_ns: opt("dct_butterfly_ns"),
        })
    }
}

/// Extracts the brace-balanced object following `"key"` in `json`.
fn extract_section<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\"");
    let start = json.find(&pat)?;
    let brace = json[start..].find('{')? + start;
    let mut depth = 0usize;
    for (i, c) in json[brace..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&json[brace..=brace + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts a bare JSON number following `"key":` in `obj`.
fn extract_number(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = obj.find(&pat)? + pat.len();
    let rest = obj[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Median wall time per call, in seconds, over `reps` calls.
///
/// The closure returns an f64 checksum that is folded into a sink the
/// caller prints, so the optimizer cannot discard the work.
fn time_median(reps: usize, sink: &mut f64, mut f: impl FnMut() -> f64) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        *sink += f();
        samples.push(t.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Maximum relative deviation between `got` and `want`.
fn max_rel_dev(got: &[f64], want: &[f64]) -> f64 {
    got.iter()
        .zip(want)
        .map(|(g, w)| (g - w).abs() / w.abs().max(1.0))
        .fold(0.0, f64::max)
}

/// Measures the hot paths at `side`×`side`, ratio `ratio`. Also checks
/// the fused composed kernels against the explicit two-pass reference
/// and returns the worst relative deviation seen.
fn measure(side: usize, ratio: f64, reps: usize, sink: &mut f64) -> (Metrics, usize, f64) {
    let scene = Scene::gaussian_blobs(3).render(side, side, 11);
    let dct = Dct2d::new(side, side);
    let fwd = time_median(reps, sink, || dct.forward(scene.as_slice())[1]);
    let coeffs = dct.forward(scene.as_slice());
    let inv = time_median(reps, sink, || dct.inverse(&coeffs)[1]);

    let imager = CompressiveImager::builder(side, side)
        .ratio(ratio)
        .seed(0x407B)
        .fidelity(Fidelity::Functional)
        .build()
        .expect("hotpaths imager");
    let k = imager.sample_count();
    let mut source = imager
        .strategy()
        .build_source(2 * side, imager.seed())
        .expect("hotpaths strategy");
    let phi = XorMeasurement::from_source(side, side, source.as_mut(), k);
    let mut rng = SplitMix64::new(7);
    let x: Vec<f64> = (0..phi.cols()).map(|_| rng.next_f64() * 255.0).collect();
    let y: Vec<f64> = (0..phi.rows()).map(|_| rng.next_gaussian()).collect();
    let mut ybuf = vec![0.0; phi.rows()];
    let mut xbuf = vec![0.0; phi.cols()];
    let phi_reps = reps.div_ceil(4);
    let apply = time_median(phi_reps, sink, || {
        phi.apply(&x, &mut ybuf);
        ybuf[0]
    });
    let adjoint = time_median(phi_reps, sink, || {
        phi.apply_adjoint(&y, &mut xbuf);
        xbuf[0]
    });

    // Fused composed kernels: the decoder's exact envelope (XOR Φ with
    // the DC-pinned DCT dictionary), one-pass ΨΦ / ΦᵀΨᵀ.
    let dict = ZeroMeanDictionary::new(Dct2dDictionary::new(side, side), 0);
    let a = ComposedOperator::new(&phi, &dict);
    let fused_apply = time_median(phi_reps, sink, || {
        a.apply(&x, &mut ybuf);
        ybuf[0]
    });
    let fused_adjoint = time_median(phi_reps, sink, || {
        a.apply_adjoint(&y, &mut xbuf);
        xbuf[0]
    });
    // Identity guard: the fused one-pass results must match the
    // explicit two-pass composition within the documented 1e-10.
    let fwd_ref = phi.apply_vec(&dict.synthesize_vec(&x));
    let adj_ref = dict.analyze_vec(&phi.apply_adjoint_vec(&y));
    let fused_dev = max_rel_dev(&a.apply_vec(&x), &fwd_ref)
        .max(max_rel_dev(&a.apply_adjoint_vec(&y), &adj_ref));

    // Micro-kernels, batched so one sample is well above timer
    // resolution: the adjoint's 256-entry subset-sum table build and
    // one forward+inverse Lee butterfly sweep at the row length.
    const BATCH: usize = 1024;
    let vals: Vec<f64> = (0..8).map(|_| rng.next_gaussian()).collect();
    let mut table = vec![0.0f64; 256];
    let subset = time_median(phi_reps, sink, || {
        for _ in 0..BATCH {
            tepics_cs::measurement::subset_sum_kernel(&vals, &mut table);
        }
        table[255]
    }) / BATCH as f64;
    let half = (side / 2).max(1);
    let sig: Vec<f64> = (0..side).map(|_| rng.next_gaussian()).collect();
    let tw: Vec<f64> = (0..half).map(|i| 1.0 + i as f64 * 1e-3).collect();
    let (mut ea, mut eb) = (vec![0.0; half], vec![0.0; half]);
    let mut merged = vec![0.0; side];
    let butterfly = time_median(phi_reps, sink, || {
        for _ in 0..BATCH {
            simd::butterfly_split(&sig, &tw, &mut ea, &mut eb);
            simd::butterfly_merge(&ea, &eb, &tw, &mut merged);
        }
        merged[0]
    }) / BATCH as f64;

    // Warm decode: one cold frame primes the session's operator cache,
    // then the same frame decodes again with everything warm.
    let frame = imager.capture(&scene);
    let mut session = DecodeSession::new();
    let cold = session.push_frame(&frame).expect("cold decode");
    let warm_reps = 3;
    let warm = time_median(warm_reps, sink, || {
        let d = session.push_frame(&frame).expect("warm decode");
        assert_eq!(
            d.reconstruction, cold.reconstruction,
            "warm decode diverged from cold"
        );
        d.reconstruction.mean_code()
    });

    (
        Metrics {
            dct2d_forward_us: fwd * 1e6,
            dct2d_inverse_us: inv * 1e6,
            phi_apply_us: apply * 1e6,
            phi_adjoint_us: adjoint * 1e6,
            warm_decode_ms: warm * 1e3,
            fused_apply_us: fused_apply * 1e6,
            fused_adjoint_us: fused_adjoint * 1e6,
            subset_sum_ns: subset * 1e9,
            dct_butterfly_ns: butterfly * 1e9,
        },
        k,
        fused_dev,
    )
}

/// Runs the experiment: sweeps 32/64/128, updates
/// `BENCH_hotpaths.json` (schema 2), and reports the before/after
/// table anchored at 64×64 plus the size ladder.
pub fn run() -> String {
    let ratio = 0.35;
    let sides = [32usize, 64, 128];
    let mut sink = 0.0;
    let mut sweep = Vec::new();
    for &side in &sides {
        // Fewer reps at 128: each warm decode is a full reconstruction.
        let reps = match side {
            128 => 12,
            _ => 40,
        };
        let (m, k, dev) = measure(side, ratio, reps, &mut sink);
        assert!(
            dev <= 1e-10,
            "fused kernels deviate from two-pass reference at {side}: {dev:e}"
        );
        sweep.push((side, m, k));
    }
    let &(_, current, k64) = sweep
        .iter()
        .find(|(s, _, _)| *s == 64)
        .expect("64 is in the sweep");

    let previous = std::fs::read_to_string(JSON_PATH).ok();
    let baseline = previous.as_deref().and_then(|json| {
        extract_section(json, "baseline")
            .or_else(|| extract_section(json, "current"))
            .and_then(Metrics::from_json)
    });
    if previous.is_some() && baseline.is_none() {
        // An existing file we cannot parse holds the frozen pre-PR
        // reference; never overwrite it with a baseline-less rewrite.
        let mut out = String::from("# Hot-path timings — DCT, Φ, fused kernels, warm decode\n");
        out.push_str(&format!(
            "\nWARNING: {JSON_PATH} exists but its baseline/current sections\n\
             could not be parsed; leaving the file untouched. Fix or delete\n\
             it to record new numbers.\n\nmeasured current: {}\n",
            current.to_json()
        ));
        return out;
    }

    let mut json = String::from("{\n  \"schema\": 2,\n");
    json.push_str(&format!(
        "  \"config\": {{\"ratio\": {ratio}, \"sides\": [32, 64, 128], \"k64\": {k64}}},\n"
    ));
    if let Some(base) = baseline {
        json.push_str(&format!("  \"baseline\": {},\n", base.to_json()));
    }
    json.push_str(&format!("  \"current\": {}", current.to_json()));
    if let Some(base) = baseline {
        json.push_str(",\n  \"speedup\": {");
        let mut first = true;
        for (key, (b, c)) in Metrics::KEYS
            .iter()
            .zip(base.values().into_iter().zip(current.values()))
        {
            if !b.is_finite() {
                continue; // key postdates the frozen baseline
            }
            if !first {
                json.push_str(", ");
            }
            first = false;
            let name = key
                .trim_end_matches("_us")
                .trim_end_matches("_ms")
                .trim_end_matches("_ns");
            json.push_str(&format!("\"{name}\": {:.2}", b / c));
        }
        json.push('}');
    }
    json.push_str(",\n  \"sweep\": {");
    for (i, (side, m, k)) in sweep.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        let mut obj = m.to_json();
        obj.insert_str(1, &format!("\"k\": {k}, "));
        json.push_str(&format!("\"{side}\": {obj}"));
    }
    json.push_str("}\n}\n");
    let json_written = std::fs::write(JSON_PATH, &json).is_ok();

    let mut out = String::from("# Hot-path timings — DCT, Φ, fused kernels, warm decode\n");
    out.push_str(&section(&format!(
        "64×64, R = {ratio} (K = {k64} measurements), medians"
    )));
    let mut t = Table::new(&["kernel", "baseline", "current", "speedup"]);
    for (key, (b, c)) in Metrics::KEYS.iter().zip(
        baseline
            .map(|m| m.values().map(Some))
            .unwrap_or([None; 9])
            .into_iter()
            .zip(current.values()),
    ) {
        let b = b.filter(|v| v.is_finite());
        t.row_owned(vec![
            key.to_string(),
            b.map_or("—".into(), |v| format!("{v:.1}")),
            format!("{c:.1}"),
            b.map_or("—".into(), |v| format!("{:.2}×", v / c)),
        ]);
    }
    out.push_str(&t.render());

    out.push_str(&section("size sweep (32 / 64 / 128)"));
    let mut t = Table::new(&["kernel", "32", "64", "128"]);
    for (i, key) in Metrics::KEYS.iter().enumerate() {
        t.row_owned(
            std::iter::once(key.to_string())
                .chain(
                    sweep
                        .iter()
                        .map(|(_, m, _)| format!("{:.1}", m.values()[i])),
                )
                .collect(),
        );
    }
    out.push_str(&t.render());

    out.push_str(&format!(
        "\n{} {} (checksum {sink:.3e})\n",
        if json_written {
            "machine-readable numbers written to"
        } else {
            "WARNING: could not write"
        },
        JSON_PATH,
    ));
    out.push_str(
        "\nThe warm-decode row is the one the ROADMAP hot-path item tracks:\n\
         a full FISTA reconstruction of a 64×64 frame with the operator\n\
         cache already primed — i.e. pure solver-loop cost, no CA replay,\n\
         no power iteration, now routed through the fused one-pass\n\
         ΦᵀΨᵀ/ΨΦ kernels. `fused_*` rows time the composed operator the\n\
         solver actually calls; `subset_sum_ns`/`dct_butterfly_ns` time\n\
         its two micro-kernels per call. The first run of this experiment\n\
         froze the `baseline` section; later runs only update\n\
         `current`/`speedup`/`sweep`.\n",
    );
    out
}

/// Smoke-mode hotpaths check for CI: tiny geometry, no JSON output.
///
/// Exercises the same kernels plus a warm decode and returns
/// human-readable failures instead of timings-as-acceptance (CI boxes
/// are too noisy for absolute thresholds). `measure` itself asserts
/// that every warm decode is bit-identical to the cold one and checks
/// the fused composed kernels against the explicit two-pass reference,
/// so the fast paths are verified end to end on every PR.
/// (Thread-count determinism is already covered by the batch half of
/// `--smoke`.)
pub fn smoke() -> Result<String, Vec<String>> {
    let side = 16;
    let mut sink = 0.0;
    let (metrics, k, fused_dev) = measure(side, 0.35, 4, &mut sink);
    let mut failures = Vec::new();
    for (key, v) in Metrics::KEYS.iter().zip(metrics.values()) {
        if !v.is_finite() || v <= 0.0 {
            failures.push(format!("hotpaths {key} = {v} not positive/finite"));
        }
    }
    // NaN must fail too, hence the explicit disjunction.
    if fused_dev.is_nan() || fused_dev > 1e-10 {
        failures.push(format!(
            "fused kernels deviate from two-pass reference: {fused_dev:e} > 1e-10"
        ));
    }
    if failures.is_empty() {
        Ok(format!(
            "hotpaths smoke: {side}×{side} K={k}: dct fwd {:.1}µs inv {:.1}µs, Φ apply {:.1}µs adj {:.1}µs, fused apply {:.1}µs adj {:.1}µs (dev {fused_dev:.1e}), warm decode {:.2}ms",
            metrics.dct2d_forward_us,
            metrics.dct2d_inverse_us,
            metrics.phi_apply_us,
            metrics.phi_adjoint_us,
            metrics.fused_apply_us,
            metrics.fused_adjoint_us,
            metrics.warm_decode_ms,
        ))
    } else {
        Err(failures)
    }
}
