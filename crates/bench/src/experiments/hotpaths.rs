//! (infrastructure) Hot-path timings: DCT apply, Φ apply/adjoint, and a
//! full warm `DecodeSession` frame.
//!
//! The recovery inner loop is dominated by three kernels: the
//! sparsifying transform (2-D DCT), the measurement operator Φ
//! (forward and adjoint), and the solver bookkeeping around them. This
//! experiment times each in isolation plus the end-to-end warm-decode
//! path they compose into, and writes the numbers to
//! `BENCH_hotpaths.json` at the workspace root so perf changes leave a
//! machine-readable trail.
//!
//! The JSON file keeps two sections: `baseline` (the numbers measured
//! before the fast-path engine landed — preserved across reruns) and
//! `current` (this run). When both are present a `speedup` section is
//! derived. A rerun on a tree that only has `current` promotes it to
//! `baseline`, so the very first run establishes the reference point.

use std::time::Instant;

use crate::report::{section, Table};
use tepics_core::prelude::*;
use tepics_cs::{LinearOperator, XorMeasurement};
use tepics_imaging::Dct2d;
use tepics_util::SplitMix64;

/// Where the machine-readable numbers land (workspace root).
const JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpaths.json");

/// One set of hot-path measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Metrics {
    dct2d_forward_us: f64,
    dct2d_inverse_us: f64,
    phi_apply_us: f64,
    phi_adjoint_us: f64,
    warm_decode_ms: f64,
}

impl Metrics {
    const KEYS: [&'static str; 5] = [
        "dct2d_forward_us",
        "dct2d_inverse_us",
        "phi_apply_us",
        "phi_adjoint_us",
        "warm_decode_ms",
    ];

    fn values(&self) -> [f64; 5] {
        [
            self.dct2d_forward_us,
            self.dct2d_inverse_us,
            self.phi_apply_us,
            self.phi_adjoint_us,
            self.warm_decode_ms,
        ]
    }

    fn to_json(self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in Self::KEYS.iter().zip(self.values()).enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{k}\": {v:.3}"));
        }
        out.push('}');
        out
    }

    fn from_json(obj: &str) -> Option<Metrics> {
        Some(Metrics {
            dct2d_forward_us: extract_number(obj, "dct2d_forward_us")?,
            dct2d_inverse_us: extract_number(obj, "dct2d_inverse_us")?,
            phi_apply_us: extract_number(obj, "phi_apply_us")?,
            phi_adjoint_us: extract_number(obj, "phi_adjoint_us")?,
            warm_decode_ms: extract_number(obj, "warm_decode_ms")?,
        })
    }
}

/// Extracts the brace-balanced object following `"key"` in `json`.
fn extract_section<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\"");
    let start = json.find(&pat)?;
    let brace = json[start..].find('{')? + start;
    let mut depth = 0usize;
    for (i, c) in json[brace..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&json[brace..=brace + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts a bare JSON number following `"key":` in `obj`.
fn extract_number(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = obj.find(&pat)? + pat.len();
    let rest = obj[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Median wall time per call, in seconds, over `reps` calls.
///
/// The closure returns an f64 checksum that is folded into a sink the
/// caller prints, so the optimizer cannot discard the work.
fn time_median(reps: usize, sink: &mut f64, mut f: impl FnMut() -> f64) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        *sink += f();
        samples.push(t.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Measures the hot paths at `side`×`side`, ratio `ratio`.
fn measure(side: usize, ratio: f64, reps: usize, sink: &mut f64) -> (Metrics, usize) {
    let scene = Scene::gaussian_blobs(3).render(side, side, 11);
    let dct = Dct2d::new(side, side);
    let fwd = time_median(reps, sink, || dct.forward(scene.as_slice())[1]);
    let coeffs = dct.forward(scene.as_slice());
    let inv = time_median(reps, sink, || dct.inverse(&coeffs)[1]);

    let imager = CompressiveImager::builder(side, side)
        .ratio(ratio)
        .seed(0x407B)
        .fidelity(Fidelity::Functional)
        .build()
        .expect("hotpaths imager");
    let k = imager.sample_count();
    let mut source = imager
        .strategy()
        .build_source(2 * side, imager.seed())
        .expect("hotpaths strategy");
    let phi = XorMeasurement::from_source(side, side, source.as_mut(), k);
    let mut rng = SplitMix64::new(7);
    let x: Vec<f64> = (0..phi.cols()).map(|_| rng.next_f64() * 255.0).collect();
    let y: Vec<f64> = (0..phi.rows()).map(|_| rng.next_gaussian()).collect();
    let mut ybuf = vec![0.0; phi.rows()];
    let mut xbuf = vec![0.0; phi.cols()];
    let phi_reps = reps.div_ceil(4);
    let apply = time_median(phi_reps, sink, || {
        phi.apply(&x, &mut ybuf);
        ybuf[0]
    });
    let adjoint = time_median(phi_reps, sink, || {
        phi.apply_adjoint(&y, &mut xbuf);
        xbuf[0]
    });

    // Warm decode: one cold frame primes the session's operator cache,
    // then the same frame decodes again with everything warm.
    let frame = imager.capture(&scene);
    let mut session = DecodeSession::new();
    let cold = session.push_frame(&frame).expect("cold decode");
    let warm_reps = 3;
    let warm = time_median(warm_reps, sink, || {
        let d = session.push_frame(&frame).expect("warm decode");
        assert_eq!(
            d.reconstruction, cold.reconstruction,
            "warm decode diverged from cold"
        );
        d.reconstruction.mean_code()
    });

    (
        Metrics {
            dct2d_forward_us: fwd * 1e6,
            dct2d_inverse_us: inv * 1e6,
            phi_apply_us: apply * 1e6,
            phi_adjoint_us: adjoint * 1e6,
            warm_decode_ms: warm * 1e3,
        },
        k,
    )
}

/// Runs the experiment: measures at 64×64, updates
/// `BENCH_hotpaths.json`, and reports the before/after table.
pub fn run() -> String {
    let side = 64;
    let ratio = 0.35;
    let mut sink = 0.0;
    let (current, k) = measure(side, ratio, 40, &mut sink);

    let previous = std::fs::read_to_string(JSON_PATH).ok();
    let baseline = previous.as_deref().and_then(|json| {
        extract_section(json, "baseline")
            .or_else(|| extract_section(json, "current"))
            .and_then(Metrics::from_json)
    });
    if previous.is_some() && baseline.is_none() {
        // An existing file we cannot parse holds the frozen pre-PR
        // reference; never overwrite it with a baseline-less rewrite.
        let mut out = String::from("# Hot-path timings — DCT, Φ apply/adjoint, warm decode\n");
        out.push_str(&format!(
            "\nWARNING: {JSON_PATH} exists but its baseline/current sections\n\
             could not be parsed; leaving the file untouched. Fix or delete\n\
             it to record new numbers.\n\nmeasured current: {}\n",
            current.to_json()
        ));
        return out;
    }

    let mut json = String::from("{\n  \"schema\": 1,\n");
    json.push_str(&format!(
        "  \"config\": {{\"side\": {side}, \"ratio\": {ratio}, \"k\": {k}}},\n"
    ));
    if let Some(base) = baseline {
        json.push_str(&format!("  \"baseline\": {},\n", base.to_json()));
    }
    json.push_str(&format!("  \"current\": {}", current.to_json()));
    if let Some(base) = baseline {
        json.push_str(",\n  \"speedup\": {");
        for (i, (key, (b, c))) in Metrics::KEYS
            .iter()
            .zip(base.values().into_iter().zip(current.values()))
            .enumerate()
        {
            if i > 0 {
                json.push_str(", ");
            }
            let name = key.trim_end_matches("_us").trim_end_matches("_ms");
            json.push_str(&format!("\"{name}\": {:.2}", b / c));
        }
        json.push('}');
    }
    json.push_str("\n}\n");
    let json_written = std::fs::write(JSON_PATH, &json).is_ok();

    let mut out = String::from("# Hot-path timings — DCT, Φ apply/adjoint, warm decode\n");
    out.push_str(&section(&format!(
        "{side}×{side}, R = {ratio} (K = {k} measurements), medians"
    )));
    let mut t = Table::new(&["kernel", "baseline", "current", "speedup"]);
    for (key, (b, c)) in Metrics::KEYS.iter().zip(
        baseline
            .map(|m| m.values().map(Some))
            .unwrap_or([None; 5])
            .into_iter()
            .zip(current.values()),
    ) {
        t.row_owned(vec![
            key.to_string(),
            b.map_or("—".into(), |v| format!("{v:.1}")),
            format!("{c:.1}"),
            b.map_or("—".into(), |v| format!("{:.2}×", v / c)),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\n{} {} (checksum {sink:.3e})\n",
        if json_written {
            "machine-readable numbers written to"
        } else {
            "WARNING: could not write"
        },
        JSON_PATH,
    ));
    out.push_str(
        "\nThe warm-decode row is the one the ROADMAP hot-path item tracks:\n\
         a full FISTA reconstruction of a 64×64 frame with the operator\n\
         cache already primed — i.e. pure solver-loop cost, no CA replay,\n\
         no power iteration. The first run of this experiment freezes the\n\
         `baseline` section; later runs only update `current`/`speedup`.\n",
    );
    out
}

/// Smoke-mode hotpaths check for CI: tiny geometry, no JSON output.
///
/// Exercises the same three kernels plus a warm decode and returns
/// human-readable failures instead of timings-as-acceptance (CI boxes
/// are too noisy for absolute thresholds). `measure` itself asserts
/// that every warm decode is bit-identical to the cold one, so the
/// fast paths are checked end to end on every PR. (Thread-count
/// determinism is already covered by the batch half of `--smoke`.)
pub fn smoke() -> Result<String, Vec<String>> {
    let side = 16;
    let mut sink = 0.0;
    let (metrics, k) = measure(side, 0.35, 4, &mut sink);
    let mut failures = Vec::new();
    for (key, v) in Metrics::KEYS.iter().zip(metrics.values()) {
        if !v.is_finite() || v <= 0.0 {
            failures.push(format!("hotpaths {key} = {v} not positive/finite"));
        }
    }
    if failures.is_empty() {
        Ok(format!(
            "hotpaths smoke: {side}×{side} K={k}: dct fwd {:.1}µs inv {:.1}µs, Φ apply {:.1}µs adj {:.1}µs, warm decode {:.2}ms",
            metrics.dct2d_forward_us,
            metrics.dct2d_inverse_us,
            metrics.phi_apply_us,
            metrics.phi_adjoint_us,
            metrics.warm_decode_ms,
        ))
    } else {
        Err(failures)
    }
}
