//! Eq. (1): `N_B = N_b + log2(M·N)` — dynamic-range accounting.

use crate::report::{section, Table};
use tepics_core::params::eq1_sample_bits;

/// Runs the experiment.
pub fn run() -> String {
    let mut out = String::from("# Eq. (1) — compressed-sample dynamic range\n");

    out.push_str(&section("N_B over array sizes (N_b = 8)"));
    let mut t = Table::new(&["array", "pixels", "N_B (bits)", "paper reference"]);
    let cases: [(u32, u32, &str); 6] = [
        (8, 8, "Sect. II: block-based minimum, 14b"),
        (16, 16, ""),
        (32, 32, ""),
        (64, 1, "Sect. III.B: one column sum, 14b"),
        (64, 64, "Sect. II/III.B: full frame, 20b"),
        (256, 256, "ref. [5] scale"),
    ];
    for (m, n, note) in cases {
        t.row_owned(vec![
            format!("{m}×{n}"),
            (m as u64 * n as u64).to_string(),
            eq1_sample_bits(8, m, n).to_string(),
            note.into(),
        ]);
    }
    out.push_str(&t.render());

    out.push_str(&section("N_B over pixel depths (64×64)"));
    let mut t = Table::new(&["N_b (bits)", "N_B (bits)"]);
    for nb in [4u32, 6, 8, 10, 12] {
        t.row_owned(vec![
            nb.to_string(),
            eq1_sample_bits(nb, 64, 64).to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nChecks: 8 + log2(4096) = 20 bits (paper's sample width) and\n\
         8 + log2(64) = 14 bits (paper's column Sample & Add width and the\n\
         8×8 block-based width) — both reproduced exactly. The simulator\n\
         enforces these widths with saturating accumulators; the worst-case\n\
         frame (all pixels selected at code 255) does not clip (unit tests\n\
         `tdc::worst_case_frame_never_overflows_eq1_widths`).\n",
    );
    out
}
