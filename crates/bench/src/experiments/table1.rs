//! Table I: the Rule 30 truth table, plus the Fig. 3 cell netlists.

use crate::report::{section, Table};
use tepics_ca::gates::{check_against_rule, rule30_cell, rule30_cell_nand, synthesize_rule};
use tepics_ca::ElementaryRule;

/// Runs the experiment.
pub fn run() -> String {
    let mut out = String::from("# Table I — Rule 30 truth table\n");
    let rule = ElementaryRule::RULE_30;

    out.push_str(&section("Truth table (paper order, (1,1,1) … (0,0,0))"));
    let mut t = Table::new(&["L", "S", "R", "NS (paper)", "NS (impl)", "match"]);
    // Paper Table I, verbatim.
    let paper_rows = [
        (true, true, true, false),
        (true, true, false, false),
        (true, false, true, false),
        (true, false, false, true),
        (false, true, true, true),
        (false, true, false, true),
        (false, false, true, true),
        (false, false, false, false),
    ];
    let mut all_match = true;
    for (l, s, r, ns_paper) in paper_rows {
        let ns_impl = rule.next(l, s, r);
        all_match &= ns_impl == ns_paper;
        t.row_owned(vec![
            (l as u8).to_string(),
            (s as u8).to_string(),
            (r as u8).to_string(),
            (ns_paper as u8).to_string(),
            (ns_impl as u8).to_string(),
            if ns_impl == ns_paper { "yes" } else { "NO" }.into(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nTable I reproduced: {}\n",
        if all_match { "EXACT MATCH" } else { "MISMATCH" }
    ));

    out.push_str(&section("Fig. 3 cell implementations (gate level)"));
    let mut t = Table::new(&[
        "netlist",
        "gates",
        "transistors (est.)",
        "equivalent to Rule 30",
    ]);
    for (name, netlist) in [
        ("XOR + OR (direct)", rule30_cell()),
        ("NAND-only mapping", rule30_cell_nand()),
        ("generic SOP synthesis", synthesize_rule(rule)),
    ] {
        let ok = check_against_rule(&netlist, rule).is_none();
        t.row_owned(vec![
            name.into(),
            netlist.gate_count().to_string(),
            netlist.transistor_count().to_string(),
            if ok { "yes" } else { "NO" }.into(),
        ]);
    }
    out.push_str(&t.render());

    out.push_str(&section("Closed form"));
    out.push_str(
        "NS = L XOR (S OR R) — verified exhaustively against the rule number \
         30 = 0b00011110 for all 8 neighborhoods.\n",
    );
    out
}
