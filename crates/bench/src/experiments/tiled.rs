//! (infrastructure) Tiled megapixel decode: stitched quality and
//! block-parallel core scaling.
//!
//! The tiled path splits a frame into fixed-size overlapping tiles,
//! captures one wire record per tile, and stitches the per-tile
//! reconstructions back into a full frame. Every tile shares one
//! geometry (the last tile in each axis is shifted back to the frame
//! edge), so a single `OperatorCache` entry serves the whole frame —
//! the decode cost is `tiles × warm-tile-solve`, which is what makes
//! megapixel-class frames tractable on the 64×64-native recovery stack.
//!
//! Two measurements, written to `BENCH_tiled.json`:
//!
//! * **Stitching quality** at 64×64: the stitched PSNR of a 32-px-tile
//!   decode (overlap 8, feather blend) against the per-tile reference
//!   (each tile scored against its own ideal codes) and against a
//!   monolithic single-frame decode of the same scene.
//! * **Core scaling** at 512×512 (tile 64, overlap 8, 81 tiles): warm
//!   stitched decodes at several thread counts — through the persistent
//!   decode pool — reporting tiles/sec and the speedup curve, with
//!   every run checked bit-identical to the single-thread decode. The
//!   JSON records the host's `available_parallelism`, and on a 1-core
//!   host the speedup column is suppressed (`null` / "n/a") rather
//!   than reporting a misleading flat curve.

use std::time::Instant;

use crate::report::{section, Table};
use tepics_core::prelude::*;
use tepics_imaging::tile::split_tiles;

/// Where the machine-readable numbers land (workspace root).
const JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tiled.json");

/// Builds a tiled imager over `width`×`height` with square `tile`s.
fn tiled_imager(width: usize, height: usize, tile: usize, overlap: usize) -> CompressiveImager {
    CompressiveImager::builder_for(FrameGeometry::new(width, height))
        .tiling(TileConfig::new(tile).overlap(overlap))
        .ratio(0.35)
        .seed(0x7EDD)
        .fidelity(Fidelity::Functional)
        .build()
        .expect("tiled imager config")
}

/// Stitched vs per-tile vs monolithic PSNR at 64×64 (tile 32).
struct QualityNumbers {
    monolithic_db: f64,
    stitched_db: f64,
    per_tile_mean_db: f64,
}

fn measure_quality() -> QualityNumbers {
    let side = 64;
    let scene = Scene::natural_like().render(side, side, 21);

    // Monolithic reference: one full-frame record, one solve.
    let mono = CompressiveImager::builder(side, side)
        .ratio(0.35)
        .seed(0x7EDD)
        .fidelity(Fidelity::Functional)
        .build()
        .expect("monolithic imager config");
    let mono_report = evaluate(&mono, |_| {}, &scene).expect("monolithic evaluate");

    // Tiled: 3×3 grid of 32-px tiles at overlap 8, stitched.
    let imager = tiled_imager(side, side, 32, 8);
    let stitched_report = evaluate(&imager, |_| {}, &scene).expect("tiled evaluate");

    // Per-tile reference: each record decoded standalone and scored
    // against the ideal codes of its own tile. The per-tile squared
    // errors are pooled over all tile pixels before converting to dB —
    // a mean of per-tile dB values would overweight the easy tiles and
    // make the reference incomparable to the full-frame stitched PSNR.
    let layout = imager.tile_layout().expect("layout").clone();
    let tile_imager = imager.tile_imager().expect("tile imager");
    let mut enc = EncodeSession::new(imager.clone()).expect("tiled encode");
    let records = enc.capture(&scene).expect("tiled capture");
    let mut per_tile = DecodeSession::new();
    let code_max = ((1u32 << enc.header().code_bits) - 1) as f64;
    let tiles = split_tiles(&scene, &layout);
    let mut pooled_sq = 0.0;
    for (record, tile) in records.iter().zip(&tiles) {
        let decoded = per_tile.push_frame(record).expect("per-tile decode");
        let tile_scene =
            ImageF64::from_vec(layout.tile_width(), layout.tile_height(), tile.clone());
        let truth = tile_imager.ideal_codes(&tile_scene).to_code_f64();
        pooled_sq += mse(&truth, decoded.reconstruction.code_image());
    }
    let pooled_mse = pooled_sq / records.len() as f64;

    QualityNumbers {
        monolithic_db: mono_report.psnr_code_db,
        stitched_db: stitched_report.psnr_code_db,
        per_tile_mean_db: 10.0 * (code_max * code_max / pooled_mse).log10(),
    }
}

/// One point on the core-scaling curve.
struct ScalePoint {
    threads: usize,
    seconds: f64,
    tiles_per_sec: f64,
    identical: bool,
}

/// Warm stitched decodes of one `side`×`side` frame at each thread
/// count, all checked bit-identical to the single-thread result.
fn measure_scaling(side: usize, tile: usize, thread_counts: &[usize]) -> (Vec<ScalePoint>, usize) {
    let imager = tiled_imager(side, side, tile, 8);
    let tiles = imager.tile_layout().expect("layout").tiles();
    let scene = Scene::natural_like().render(side, side, 33);
    let mut enc = EncodeSession::new(imager).expect("scaling encode");
    enc.capture(&scene).expect("scaling capture");
    let bytes = enc.to_bytes();

    // Shared cache: one cold decode primes Φ/dictionary/step size, then
    // every timed run is warm — pure block-parallel solve cost.
    let cache = OperatorCache::shared();
    let decode = |threads: usize| {
        let mut dec = DecodeSession::with_cache(cache.clone());
        dec.threads(threads);
        dec.push_bytes(&bytes).expect("scaling decode")
    };
    let reference = decode(1);

    let mut points = Vec::new();
    for &threads in thread_counts {
        let t = Instant::now();
        let decoded = decode(threads);
        let seconds = t.elapsed().as_secs_f64();
        points.push(ScalePoint {
            threads,
            seconds,
            tiles_per_sec: tiles as f64 / seconds,
            identical: decoded == reference,
        });
    }
    (points, tiles)
}

/// Runs the experiment: 64×64 stitching quality + 512×512 core scaling,
/// updating `BENCH_tiled.json`.
pub fn run() -> String {
    let quality = measure_quality();
    let side = 512;
    let tile = 64;
    let thread_counts = [1, 2, 4];
    let (points, tiles) = measure_scaling(side, tile, &thread_counts);
    // Honesty guard: a speedup curve from a 1-core host is noise, not
    // scaling — record the host's parallelism and flag the column so
    // readers (and CI on small runners) don't mistake flat for broken.
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    let speedup_meaningful = host_parallelism > 1;

    // Machine-readable trail.
    let mut json = String::from("{\n  \"schema\": 2,\n");
    json.push_str(&format!(
        "  \"host_parallelism\": {host_parallelism}, \"speedup_meaningful\": {speedup_meaningful},\n"
    ));
    json.push_str(&format!(
        "  \"quality\": {{\"side\": 64, \"tile\": 32, \"overlap\": 8, \
         \"monolithic_db\": {:.3}, \"stitched_db\": {:.3}, \"per_tile_mean_db\": {:.3}, \
         \"stitch_delta_db\": {:.3}}},\n",
        quality.monolithic_db,
        quality.stitched_db,
        quality.per_tile_mean_db,
        quality.stitched_db - quality.per_tile_mean_db,
    ));
    json.push_str(&format!(
        "  \"scaling\": {{\"side\": {side}, \"tile\": {tile}, \"overlap\": 8, \"tiles\": {tiles}, \"points\": ["
    ));
    let base = points[0].seconds;
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        if speedup_meaningful {
            json.push_str(&format!(
                "{{\"threads\": {}, \"seconds\": {:.3}, \"tiles_per_sec\": {:.2}, \
                 \"speedup\": {:.2}, \"bit_identical\": {}}}",
                p.threads,
                p.seconds,
                p.tiles_per_sec,
                base / p.seconds,
                p.identical,
            ));
        } else {
            json.push_str(&format!(
                "{{\"threads\": {}, \"seconds\": {:.3}, \"tiles_per_sec\": {:.2}, \
                 \"speedup\": null, \"bit_identical\": {}}}",
                p.threads, p.seconds, p.tiles_per_sec, p.identical,
            ));
        }
    }
    json.push_str("]}\n}\n");
    let json_written = std::fs::write(JSON_PATH, &json).is_ok();

    let mut out = String::from("# Tiled decode — stitched quality and core scaling\n");
    out.push_str(&section("64×64, tile 32, overlap 8, feather blend"));
    let mut q = Table::new(&["decode path", "PSNR (dB)"]);
    q.row_owned(vec![
        "monolithic (one 64×64 solve)".into(),
        format!("{:.2}", quality.monolithic_db),
    ]);
    q.row_owned(vec![
        "per-tile reference (9 solo tiles)".into(),
        format!("{:.2}", quality.per_tile_mean_db),
    ]);
    q.row_owned(vec![
        "stitched (9 tiles, feathered)".into(),
        format!("{:.2}", quality.stitched_db),
    ]);
    out.push_str(&q.render());
    out.push_str(&format!(
        "\nstitch delta vs per-tile reference: {:+.2} dB (acceptance: no more than\n\
         0.5 dB below the reference; positive = feathered overlaps help)\n",
        quality.stitched_db - quality.per_tile_mean_db
    ));

    out.push_str(&section(&format!(
        "{side}×{side}, tile {tile}, overlap 8 — {tiles} tiles, warm decodes"
    )));
    let mut t = Table::new(&[
        "threads",
        "seconds",
        "tiles/sec",
        "speedup",
        "bit-identical",
    ]);
    for p in &points {
        t.row_owned(vec![
            p.threads.to_string(),
            format!("{:.2}", p.seconds),
            format!("{:.1}", p.tiles_per_sec),
            if speedup_meaningful {
                format!("{:.2}×", base / p.seconds)
            } else {
                "n/a (1 core)".into()
            },
            if p.identical {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    out.push_str(&t.render());
    if speedup_meaningful {
        out.push_str(&format!(
            "\n(host has {host_parallelism} cores; tiles are independent, so the\n\
             speedup curve tracks available cores)\n"
        ));
    } else {
        out.push_str(
            "\n(host has 1 core: the speedup column is suppressed — a flat curve\n\
             here measures scheduling overhead, not scaling)\n",
        );
    }
    out.push_str(&format!(
        "\n{} {JSON_PATH}\n",
        if json_written {
            "machine-readable numbers written to"
        } else {
            "WARNING: could not write"
        },
    ));
    out
}

/// Smoke-mode tiled check for CI: a 40×28 frame in 16-px tiles.
///
/// Exercises the full geometry-first path — non-square, non-multiple
/// frame dims, tiled wire records, stitched decode — and checks the
/// operator cache served every tile after the first from one entry,
/// plus bit-identity between serial and threaded decodes.
pub fn smoke() -> Result<String, Vec<String>> {
    let mut failures = Vec::new();
    let imager = tiled_imager(40, 28, 16, 4);
    let tiles = imager.tile_layout().expect("layout").tiles();
    let scene = Scene::gaussian_blobs(3).render(40, 28, 5);
    let truth = imager.ideal_codes(&scene).to_code_f64();

    let mut enc = EncodeSession::new(imager).expect("smoke tiled encode");
    enc.capture(&scene).expect("smoke tiled capture");
    let bytes = enc.to_bytes();

    let mut dec = DecodeSession::new();
    let decoded = dec.push_bytes(&bytes).expect("smoke tiled decode");
    if decoded.len() != 1 {
        failures.push(format!("tiled smoke: {} frames, expected 1", decoded.len()));
    }
    let stats = dec.cache().stats();
    if stats.misses != 1 || stats.hits != tiles as u64 - 1 {
        failures.push(format!(
            "tiled smoke: cache hits {} misses {}, expected {} / 1 — the shared tile \
             geometry should build Φ exactly once",
            stats.hits,
            stats.misses,
            tiles - 1,
        ));
    }
    let db = psnr(&truth, decoded[0].reconstruction.code_image(), 255.0);
    if db < 18.0 {
        failures.push(format!("tiled smoke: stitched PSNR {db:.1} dB < 18"));
    }

    let mut threaded = DecodeSession::new();
    threaded.threads(4);
    let parallel = threaded.push_bytes(&bytes).expect("smoke threaded decode");
    if parallel != decoded {
        failures.push("tiled smoke: threaded decode diverged from serial".into());
    }

    if failures.is_empty() {
        Ok(format!(
            "tiled smoke: 40×28 in {tiles} 16-px tiles, stitched {db:.1} dB, \
             1 Φ build + {} cache hits, threads(4) ≡ serial",
            tiles - 1
        ))
    } else {
        Err(failures)
    }
}
