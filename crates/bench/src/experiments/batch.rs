//! (infrastructure) The parallel batch capture engine: scaling and
//! determinism.
//!
//! The capture→wire→reconstruct loops of the experiment harness are
//! embarrassingly parallel — like the parallel acquisition architecture
//! of Björklund & Magli (arXiv:1311.0646), every compressed frame is an
//! independent unit of work. This experiment measures how
//! [`BatchRunner`] scales a batch of frames across worker threads and
//! double-checks the engine's headline guarantee: per-frame reports are
//! bit-identical at every thread count.

use crate::report::{section, Table};
use tepics_core::batch::BatchRunner;
use tepics_core::prelude::*;
use tepics_util::parallel::default_threads;

/// Runs the experiment.
pub fn run() -> String {
    let mut out = String::from("# Batch capture engine — thread scaling & determinism\n");
    let side = 32;
    let frames = 24;
    let imager = CompressiveImager::builder(side, side)
        .ratio(0.3)
        .seed(0xBA7C)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap();
    let scenes: Vec<ImageF64> = (0..frames)
        .map(|i| Scene::gaussian_blobs(3).render(side, side, i))
        .collect();

    let hw = default_threads();
    let mut sweep: Vec<usize> = vec![1, 2, 4, hw];
    sweep.sort_unstable();
    sweep.dedup();

    out.push_str(&section(&format!(
        "{frames} frames of {side}×{side} at R = 0.30 ({hw} hardware threads)"
    )));
    let mut t = Table::new(&[
        "threads",
        "wall (s)",
        "frames/s",
        "speedup",
        "mean PSNR (dB)",
    ]);
    let mut baseline: Option<(f64, Vec<_>)> = None;
    let mut identical = true;
    for &threads in &sweep {
        let outcome = BatchRunner::with_threads(threads)
            .run(&imager, &scenes)
            .expect("batch pipeline");
        let summary = outcome.summary();
        let secs = outcome.elapsed.as_secs_f64();
        let speedup = match &baseline {
            Some((serial_secs, serial_reports)) => {
                identical &= *serial_reports == outcome.reports;
                serial_secs / secs
            }
            None => {
                baseline = Some((secs, outcome.reports.clone()));
                1.0
            }
        };
        t.row_owned(vec![
            threads.to_string(),
            format!("{secs:.2}"),
            format!("{:.1}", summary.frames_per_sec),
            format!("{speedup:.2}×"),
            format!("{:.1}", summary.mean_psnr_db),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nPer-frame reports bit-identical across thread counts: {}\n",
        if identical { "YES" } else { "NO (BUG)" }
    ));
    out.push_str(
        "\nEach frame owns its CA replay and solver state, so the only\n\
         shared resource is the memory bus — scaling is near-linear until\n\
         the solver's working set outgrows the last-level cache. The\n\
         determinism check is the load-bearing property: it is what lets\n\
         the noise/warm-up/ffvb sweeps keep their published numbers while\n\
         running on however many cores CI happens to have.\n",
    );
    out
}
