//! (infrastructure) The parallel batch capture engine: scaling and
//! determinism.
//!
//! The capture→wire→reconstruct loops of the experiment harness are
//! embarrassingly parallel — like the parallel acquisition architecture
//! of Björklund & Magli (arXiv:1311.0646), every compressed frame is an
//! independent unit of work. This experiment measures how
//! [`BatchRunner`] scales a batch of frames across worker threads and
//! double-checks the engine's headline guarantee: per-frame reports are
//! bit-identical at every thread count. A second section audits the
//! decode-side operator cache: reconstructing same-seed frames through
//! one `DecodeSession` (Φ, dictionary, and FISTA step built once) must
//! beat an equal number of cold `Decoder::for_frame` reconstructions —
//! and match them bit for bit.

use crate::report::{section, Table};
use tepics_core::batch::BatchRunner;
use tepics_core::prelude::*;
use tepics_util::parallel::default_threads;

/// Runs the experiment.
pub fn run() -> String {
    let mut out = String::from("# Batch capture engine — thread scaling & determinism\n");
    let side = 32;
    let frames = 24;
    let imager = CompressiveImager::builder(side, side)
        .ratio(0.3)
        .seed(0xBA7C)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap();
    let scenes: Vec<ImageF64> = (0..frames)
        .map(|i| Scene::gaussian_blobs(3).render(side, side, i))
        .collect();

    let hw = default_threads();
    let mut sweep: Vec<usize> = vec![1, 2, 4, hw];
    sweep.sort_unstable();
    sweep.dedup();

    out.push_str(&section(&format!(
        "{frames} frames of {side}×{side} at R = 0.30 ({hw} hardware threads)"
    )));
    let mut t = Table::new(&[
        "threads",
        "wall (s)",
        "frames/s",
        "speedup",
        "mean PSNR (dB)",
    ]);
    let mut baseline: Option<(f64, Vec<_>)> = None;
    let mut identical = true;
    for &threads in &sweep {
        let outcome = BatchRunner::with_threads(threads)
            .run(&imager, &scenes)
            .expect("batch pipeline");
        let summary = outcome.summary();
        let secs = outcome.elapsed.as_secs_f64();
        let speedup = match &baseline {
            Some((serial_secs, serial_reports)) => {
                identical &= *serial_reports == outcome.reports;
                serial_secs / secs
            }
            None => {
                baseline = Some((secs, outcome.reports.clone()));
                1.0
            }
        };
        t.row_owned(vec![
            threads.to_string(),
            format!("{secs:.2}"),
            format!("{:.1}", summary.frames_per_sec),
            format!("{speedup:.2}×"),
            format!("{:.1}", summary.mean_psnr_db),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nPer-frame reports bit-identical across thread counts: {}\n",
        if identical { "YES" } else { "NO (BUG)" }
    ));
    out.push_str(
        "\nEach frame owns its CA replay and solver state, so the only\n\
         shared resource is the memory bus — scaling is near-linear until\n\
         the solver's working set outgrows the last-level cache. The\n\
         determinism check is the load-bearing property: it is what lets\n\
         the noise/warm-up/ffvb sweeps keep their published numbers while\n\
         running on however many cores CI happens to have.\n",
    );
    out.push_str(&cache_section(&imager, &scenes));
    out
}

/// Operator-cache audit: decode the same same-seed frames cold (a fresh
/// `Decoder::for_frame` per frame, rebuilding Φ, the dictionary, and
/// the FISTA step size every time) and warm (one `DecodeSession`
/// holding an `OperatorCache`), on one thread. The reconstructions must
/// be bit-identical; the warm pass must be faster.
fn cache_section(imager: &CompressiveImager, scenes: &[ImageF64]) -> String {
    use std::time::Instant;

    let frames: Vec<CompressedFrame> = scenes.iter().take(6).map(|s| imager.capture(s)).collect();

    let cold_start = Instant::now();
    let cold: Vec<Reconstruction> = frames
        .iter()
        .map(|f| {
            Decoder::for_frame(f)
                .expect("well-formed frame")
                .reconstruct(f)
                .expect("cold reconstruct")
        })
        .collect();
    let cold_secs = cold_start.elapsed().as_secs_f64();

    let mut session = DecodeSession::new();
    let warm_start = Instant::now();
    let warm: Vec<Reconstruction> = frames
        .iter()
        .map(|f| {
            session
                .push_frame(f)
                .expect("warm reconstruct")
                .reconstruction
        })
        .collect();
    let warm_secs = warm_start.elapsed().as_secs_f64();

    let stats = session.cache().stats();
    let identical = cold == warm;
    let speedup = cold_secs / warm_secs;
    let mut out = section(&format!(
        "operator cache — {} same-seed frames, warm vs cold (1 thread)",
        frames.len()
    ));
    let mut t = Table::new(&["path", "wall (s)", "frames/s", "Φ builds"]);
    t.row_owned(vec![
        "cold (Decoder::for_frame per frame)".into(),
        format!("{cold_secs:.3}"),
        format!("{:.2}", frames.len() as f64 / cold_secs),
        format!("{}", frames.len()),
    ]);
    t.row_owned(vec![
        "warm (DecodeSession + OperatorCache)".into(),
        format!("{warm_secs:.3}"),
        format!("{:.2}", frames.len() as f64 / warm_secs),
        format!("{}", stats.misses),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\ncache hit rate: {:.0}% ({} hits / {} misses); speedup {speedup:.2}x\n\
         warm reconstructions bit-identical to cold: {}\n\
         warm faster than cold: {}\n",
        stats.hit_rate() * 100.0,
        stats.hits,
        stats.misses,
        if identical { "YES" } else { "NO (BUG)" },
        if speedup > 1.0 {
            "YES (PASS)"
        } else {
            "NO (REGRESSION)"
        },
    ));
    out.push_str(
        "\nThe cache removes the per-frame CA replay, selection-count and\n\
         dictionary builds, and — the dominant saving — the seeded power\n\
         iteration estimating the FISTA step 1/L (60 operator applications\n\
         per frame). Because every cached value is bit-identical to a cold\n\
         rebuild, the determinism guarantee above is unaffected.\n",
    );
    out
}
