//! Sensor non-idealities: why the prototype auto-zeroes its comparators
//! (Sect. IV: "In order to reduce the influence of the offset of the
//! comparator, an auto-zeroing scheme has been implemented").
//!
//! The experiment sweeps the three analog error sources the behavioral
//! model exposes — comparator offset (with and without auto-zero),
//! flip-time jitter, and photoresponse non-uniformity — and reports the
//! end-to-end reconstruction cost of each.
//!
//! All sixteen sweep points are independent capture→recover loops, so
//! they run as **one [`BatchRunner`] batch** fanned across worker
//! threads; per-point results are sliced back out of the (input-ordered,
//! thread-count-independent) report vector.

use std::sync::Arc;

use crate::report::{section, Table};
use tepics_core::batch::BatchRunner;
use tepics_core::params;
use tepics_core::pipeline::PipelineReport;
use tepics_core::prelude::*;
use tepics_core::CoreError;
use tepics_imaging::{psnr, ssim};

const SIDE: usize = 32;
const RATIO: f64 = 0.38;
const SEED: u64 = 0x0FF5E7;

/// One sweep point: the sensor configuration to evaluate.
struct Job {
    config: SensorConfig,
}

fn job(configure: impl FnOnce(&mut tepics_sensor::SensorConfigBuilder)) -> Job {
    let mut builder = SensorConfig::builder(SIDE, SIDE);
    configure(&mut builder);
    Job {
        config: builder.build().unwrap(),
    }
}

/// Runs one sweep point: capture with the noisy sensor, reconstruct,
/// grade against `truth` — the *noiseless* ideal codes, computed once
/// by the caller — so every analog error counts as reconstruction
/// error.
fn run_job(
    j: &Job,
    scene: &ImageF64,
    truth: &ImageF64,
    cache: &Arc<OperatorCache>,
) -> Result<PipelineReport, CoreError> {
    let imager = CompressiveImager::builder(SIDE, SIDE)
        .sensor_config(j.config.clone())
        .ratio(RATIO)
        .seed(SEED)
        .build()?;
    let (frame, event_stats) = imager.capture_with_stats(scene);
    // Analog noise knobs do not touch Φ: every sweep point shares
    // (geometry, strategy, seed, k), so the whole batch decodes through
    // one cached operator.
    let mut session = DecodeSession::with_cache(cache.clone());
    let recon = session.push_frame(&frame)?.reconstruction;
    let code_max = ((1u32 << frame.header.code_bits) - 1) as f64;
    Ok(PipelineReport {
        ratio: frame.ratio(),
        psnr_code_db: psnr(truth, recon.code_image(), code_max),
        ssim_code: ssim(truth, recon.code_image(), code_max),
        wire_bits: frame.wire_bits(),
        raw_bits: params::raw_bits(
            frame.header.rows as u32,
            frame.header.cols as u32,
            frame.header.code_bits as u32,
        ),
        iterations: recon.stats().iterations,
        event_stats,
    })
}

/// Runs the experiment.
pub fn run() -> String {
    let mut out = String::from("# Sensor non-idealities — the case for auto-zeroing\n");
    let scene = Scene::gaussian_blobs(3).render(SIDE, SIDE, 40);

    // Assemble the full sweep up front, then fan it out as one batch.
    let offset_mv = [
        (0.0, "ideal comparators"),
        (2.0, "with auto-zero (residual)"),
        (8.0, "weak auto-zero"),
        (25.0, "no auto-zero (raw offset)"),
    ];
    let narrow_mv = [0.0, 2.0, 8.0, 25.0];
    let jitter_ns = [0.0, 5.0, 20.0, 80.0];
    let fpn_sigma = [0.0, 0.005, 0.02, 0.05];

    let mut jobs: Vec<Job> = Vec::new();
    for (mv, _) in offset_mv {
        jobs.push(job(|b| {
            b.offset_sigma_volts(mv * 1e-3);
        }));
    }
    for mv in narrow_mv {
        jobs.push(job(|b| {
            // Narrow swing: rescale currents so the code range is kept.
            b.v_ref(2.5)
                .i_dark(2.14e-9 / 5.0)
                .i_scale(42.9e-9 / 5.0)
                .offset_sigma_volts(mv * 1e-3);
        }));
    }
    for ns in jitter_ns {
        jobs.push(job(|b| {
            b.jitter_sigma(ns * 1e-9);
        }));
    }
    for sigma in fpn_sigma {
        jobs.push(job(|b| {
            b.fpn_gain_sigma(sigma);
        }));
    }

    // The noiseless truth is shared by every sweep point.
    let truth = CompressiveImager::builder(SIDE, SIDE)
        .ratio(RATIO)
        .seed(SEED)
        .build()
        .unwrap()
        .ideal_codes(&scene)
        .to_code_f64();
    let runner = BatchRunner::new();
    let outcome = runner
        .run_jobs(&jobs, |j| run_job(j, &scene, &truth, runner.cache()))
        .expect("noise sweep pipeline");
    let db: Vec<f64> = outcome.reports.iter().map(|r| r.psnr_code_db).collect();
    // Slice the input-ordered results back into their sections.
    let (offset_db, rest) = db.split_at(offset_mv.len());
    let (narrow_db, rest) = rest.split_at(narrow_mv.len());
    let (jitter_db, fpn_db) = rest.split_at(jitter_ns.len());

    out.push_str(&section(
        "Comparator offset at the default 1.5 V integration swing",
    ));
    let mut t = Table::new(&["offset σ (mV)", "scenario", "PSNR (dB)"]);
    for ((mv, label), db) in offset_mv.iter().zip(offset_db) {
        t.row_owned(vec![
            format!("{mv:.0}"),
            (*label).into(),
            format!("{db:.1}"),
        ]);
    }
    out.push_str(&t.render());

    out.push_str(&section(
        "…and at a narrowed swing (V_ref = 2.5 V, ΔV = 0.3 V — the adaptive-exposure regime)",
    ));
    let mut t = Table::new(&["offset σ (mV)", "σ / ΔV", "PSNR (dB)"]);
    for (mv, db) in narrow_mv.iter().zip(narrow_db) {
        t.row_owned(vec![
            format!("{mv:.0}"),
            format!("{:.1}%", mv * 1e-3 / 0.3 * 100.0),
            format!("{db:.1}"),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nAt the generous default swing a raw 25 mV offset is only 1.7% of ΔV\n\
         and costs under 1 dB. The auto-zero capacitor earns its area when\n\
         the on-line V_ref adaptation of Sect. II.A *narrows* the swing for\n\
         low light: the same 25 mV is then 8.3% of ΔV and the fixed-pattern\n\
         error dominates — exactly the operating regime the prototype's\n\
         MiM auto-zero protects.\n",
    );

    out.push_str(&section("Temporal jitter on the flip time"));
    let mut t = Table::new(&["jitter σ (ns)", "σ in LSB (41.7 ns clock)", "PSNR (dB)"]);
    for (ns, db) in jitter_ns.iter().zip(jitter_db) {
        t.row_owned(vec![
            format!("{ns:.0}"),
            format!("{:.2}", ns / 41.7),
            format!("{db:.1}"),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nJitter is temporal and zero-mean: it averages across the K\n\
         measurements each pixel participates in, so the pipeline tolerates\n\
         sub-LSB jitter almost for free.\n",
    );

    out.push_str(&section("Photoresponse non-uniformity (gain FPN)"));
    let mut t = Table::new(&["gain σ", "PSNR (dB)"]);
    for (sigma, db) in fpn_sigma.iter().zip(fpn_db) {
        t.row_owned(vec![format!("{:.1}%", sigma * 100.0), format!("{db:.1}")]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nGain FPN enters multiplicatively before the reciprocal transfer;\n\
         like offset it is frozen per pixel and does not average out. The\n\
         behavioral model makes all three knobs orthogonal so silicon-\n\
         calibration studies can be rehearsed in simulation.\n",
    );
    out.push_str(&format!(
        "\n[batch: {} sweep points on {} threads in {:.2}s — {:.1} frames/s]\n",
        outcome.reports.len(),
        BatchRunner::new().threads(),
        outcome.elapsed.as_secs_f64(),
        outcome.summary().frames_per_sec,
    ));
    out
}
