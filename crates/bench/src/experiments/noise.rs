//! Sensor non-idealities: why the prototype auto-zeroes its comparators
//! (Sect. IV: "In order to reduce the influence of the offset of the
//! comparator, an auto-zeroing scheme has been implemented").
//!
//! The experiment sweeps the three analog error sources the behavioral
//! model exposes — comparator offset (with and without auto-zero),
//! flip-time jitter, and photoresponse non-uniformity — and reports the
//! end-to-end reconstruction cost of each.

use crate::report::{section, Table};
use tepics_core::prelude::*;
use tepics_imaging::psnr;

fn psnr_with(
    configure: impl FnOnce(&mut tepics_sensor::SensorConfigBuilder),
    scene: &ImageF64,
) -> f64 {
    let mut builder = SensorConfig::builder(32, 32);
    configure(&mut builder);
    let config = builder.build().unwrap();
    let imager = CompressiveImager::builder(32, 32)
        .sensor_config(config)
        .ratio(0.38)
        .seed(0x0FF5E7)
        .build()
        .unwrap();
    let frame = imager.capture(scene);
    let recon = Decoder::for_frame(&frame).unwrap().reconstruct(&frame).unwrap();
    // Grade against the *noiseless* ideal codes: every analog error
    // counts as reconstruction error.
    let clean = CompressiveImager::builder(32, 32)
        .ratio(0.38)
        .seed(0x0FF5E7)
        .build()
        .unwrap();
    let truth = clean.ideal_codes(scene).to_code_f64();
    psnr(&truth, recon.code_image(), 255.0)
}

/// Runs the experiment.
pub fn run() -> String {
    let mut out = String::from("# Sensor non-idealities — the case for auto-zeroing\n");
    let scene = Scene::gaussian_blobs(3).render(32, 32, 40);

    out.push_str(&section("Comparator offset at the default 1.5 V integration swing"));
    let mut t = Table::new(&["offset σ (mV)", "scenario", "PSNR (dB)"]);
    for (mv, label) in [
        (0.0, "ideal comparators"),
        (2.0, "with auto-zero (residual)"),
        (8.0, "weak auto-zero"),
        (25.0, "no auto-zero (raw offset)"),
    ] {
        let db = psnr_with(|b| {
            b.offset_sigma_volts(mv * 1e-3);
        }, &scene);
        t.row_owned(vec![format!("{mv:.0}"), label.into(), format!("{db:.1}")]);
    }
    out.push_str(&t.render());

    out.push_str(&section(
        "…and at a narrowed swing (V_ref = 2.5 V, ΔV = 0.3 V — the adaptive-exposure regime)",
    ));
    let mut t = Table::new(&["offset σ (mV)", "σ / ΔV", "PSNR (dB)"]);
    for mv in [0.0, 2.0, 8.0, 25.0] {
        let db = psnr_with(|b| {
            // Narrow swing: rescale currents so the code range is kept.
            b.v_ref(2.5)
                .i_dark(2.14e-9 / 5.0)
                .i_scale(42.9e-9 / 5.0)
                .offset_sigma_volts(mv * 1e-3);
        }, &scene);
        t.row_owned(vec![
            format!("{mv:.0}"),
            format!("{:.1}%", mv * 1e-3 / 0.3 * 100.0),
            format!("{db:.1}"),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nAt the generous default swing a raw 25 mV offset is only 1.7% of ΔV\n\
         and costs under 1 dB. The auto-zero capacitor earns its area when\n\
         the on-line V_ref adaptation of Sect. II.A *narrows* the swing for\n\
         low light: the same 25 mV is then 8.3% of ΔV and the fixed-pattern\n\
         error dominates — exactly the operating regime the prototype's\n\
         MiM auto-zero protects.\n",
    );

    out.push_str(&section("Temporal jitter on the flip time"));
    let mut t = Table::new(&["jitter σ (ns)", "σ in LSB (41.7 ns clock)", "PSNR (dB)"]);
    for ns in [0.0, 5.0, 20.0, 80.0] {
        let db = psnr_with(|b| {
            b.jitter_sigma(ns * 1e-9);
        }, &scene);
        t.row_owned(vec![
            format!("{ns:.0}"),
            format!("{:.2}", ns / 41.7),
            format!("{db:.1}"),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nJitter is temporal and zero-mean: it averages across the K\n\
         measurements each pixel participates in, so the pipeline tolerates\n\
         sub-LSB jitter almost for free.\n",
    );

    out.push_str(&section("Photoresponse non-uniformity (gain FPN)"));
    let mut t = Table::new(&["gain σ", "PSNR (dB)"]);
    for sigma in [0.0, 0.005, 0.02, 0.05] {
        let db = psnr_with(|b| {
            b.fpn_gain_sigma(sigma);
        }, &scene);
        t.row_owned(vec![format!("{:.1}%", sigma * 100.0), format!("{db:.1}")]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nGain FPN enters multiplicatively before the reciprocal transfer;\n\
         like offset it is frozen per pixel and does not average out. The\n\
         behavioral model makes all three knobs orthogonal so silicon-\n\
         calibration studies can be rehearsed in simulation.\n",
    );
    out
}
