//! Fig. 2: conceptual floorplan — CA ring around the array.

use crate::report::{section, Table};
use tepics_ca::gates::synthesize_rule;
use tepics_ca::ElementaryRule;
use tepics_sensor::ChipModel;

/// Runs the experiment.
pub fn run() -> String {
    let mut out = String::from("# Fig. 2 — conceptual floorplan of the sensor chip\n");
    let chip = ChipModel::paper_prototype();

    out.push_str(&section("Block diagram"));
    out.push_str(&chip.floorplan_ascii());

    out.push_str(&section("CA ring accounting"));
    let cell = synthesize_rule(ElementaryRule::RULE_30);
    let mut t = Table::new(&["quantity", "value"]);
    t.row_owned(vec![
        "ring cells (M + N)".into(),
        chip.ca_cell_count().to_string(),
    ]);
    t.row_owned(vec![
        "gates per cell (SOP synthesis)".into(),
        cell.gate_count().to_string(),
    ]);
    t.row_owned(vec![
        "transistors per cell (est., + DFF ~20T)".into(),
        format!("{}", cell.transistor_count() + 20),
    ]);
    t.row_owned(vec![
        "total ring transistors (est.)".into(),
        format!(
            "{}",
            (cell.transistor_count() + 20) * chip.ca_cell_count() as u32
        ),
    ]);
    t.row_owned(vec![
        "state to transmit/store instead of Φ".into(),
        "64-bit seed".into(),
    ]);
    t.row_owned(vec![
        "Φ size if stored explicitly (K=1638)".into(),
        format!("{} kbit", 1638 * 4096 / 1024),
    ]);
    out.push_str(&t.render());
    out.push_str(
        "\nThe ring regenerates a 6.7-Mbit measurement ensemble from 64 bits of\n\
         state — the architectural saving Sect. I claims over storing or\n\
         transmitting Φ.\n",
    );
    out
}
