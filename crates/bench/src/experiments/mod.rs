//! One module per reproduced artifact — see DESIGN.md §5 for the index.

pub mod batch;
pub mod breakeven;
pub mod ca_spectrum;
pub mod eq1;
pub mod eq2;
pub mod ffvb;
pub mod fig1;
pub mod fig2;
pub mod fig45;
pub mod hotpaths;
pub mod lsb;
pub mod matrices;
pub mod noise;
pub mod overlap;
pub mod progressive;
pub mod resilience;
pub mod solvers;
pub mod table1;
pub mod table2;
pub mod throughput;
pub mod tiled;
pub mod warmup;
