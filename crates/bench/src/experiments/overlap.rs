//! Sect. III.B: "there is a 6.25% chance that two events will randomly
//! overlap" (5 ns events, 64 selected pixels, 20 µs window).
//!
//! The sentence does not pin down which probability is meant, so the
//! Monte Carlo reports every natural reading, measured on the *actual
//! arbiter* (not an idealized model), alongside the analytic
//! approximations. See EXPERIMENTS.md for the conclusion: the number
//! matches "probability that a delayed pulse crosses a TDC clock edge"
//! at a 12.8 MHz conversion clock (5 ns / 78.1 ns = 6.4%), not the
//! pairwise-overlap probability (which is far higher at n = 64).

use crate::report::{section, Table};
use tepics_sensor::ColumnArbiter;
use tepics_util::SplitMix64;

struct McResult {
    p_any_overlap: f64,
    mean_queued: f64,
    p_event_queued: f64,
    p_code_edge_24mhz: f64,
    p_code_edge_12p8mhz: f64,
}

fn monte_carlo(n: usize, duration: f64, window: f64, trials: usize, seed: u64) -> McResult {
    let arbiter = ColumnArbiter::with_timing(duration, 1e-9);
    let mut rng = SplitMix64::new(seed);
    let mut any = 0usize;
    let mut queued_total = 0usize;
    let mut events_total = 0usize;
    let mut edge24 = 0usize;
    let mut edge128 = 0usize;
    let t24 = 1.0 / 24e6;
    let t128 = 1.0 / 12.8e6;
    for _ in 0..trials {
        let pulses: Vec<(usize, f64)> = (0..n).map(|row| (row, rng.next_f64() * window)).collect();
        let outcome = arbiter.arbitrate(&pulses);
        let queued = outcome.queued_count();
        if queued > 0 {
            any += 1;
        }
        queued_total += queued;
        events_total += outcome.events.len();
        for e in &outcome.events {
            if e.queued {
                // Does the delay move the pulse into a later clock period?
                let crosses = |t_clk: f64| {
                    (e.t_grant / t_clk).floor() as i64 != (e.t_flip / t_clk).floor() as i64
                };
                if crosses(t24) {
                    edge24 += 1;
                }
                if crosses(t128) {
                    edge128 += 1;
                }
            }
        }
    }
    McResult {
        p_any_overlap: any as f64 / trials as f64,
        mean_queued: queued_total as f64 / trials as f64,
        p_event_queued: queued_total as f64 / events_total as f64,
        p_code_edge_24mhz: edge24 as f64 / events_total as f64,
        p_code_edge_12p8mhz: edge128 as f64 / events_total as f64,
    }
}

/// Runs the experiment.
pub fn run() -> String {
    let mut out = String::from("# Event overlap — Monte Carlo on the column arbiter\n");
    let trials = 20_000;
    let window = 20e-6;

    out.push_str(&section(
        "Paper operating point: n = 64 events of 5 ns in a 20 µs window",
    ));
    let r = monte_carlo(64, 5e-9, window, trials, 0xCA11);
    let mut t = Table::new(&["interpretation", "measured", "analytic approx"]);
    let n = 64.0f64;
    let d = 5e-9f64;
    t.row_owned(vec![
        "P(any two events overlap in a sample)".into(),
        format!("{:.1}%", r.p_any_overlap * 100.0),
        format!(
            "{:.1}%  (1 − e^{{−n(n−1)d/T}})",
            (1.0 - (-n * (n - 1.0) * d / window).exp()) * 100.0
        ),
    ]);
    t.row_owned(vec![
        "E[# delayed pulses per sample]".into(),
        format!("{:.2}", r.mean_queued),
        format!("{:.2}  (n(n−1)d/T)", n * (n - 1.0) * d / window),
    ]);
    t.row_owned(vec![
        "P(a given pulse is delayed)".into(),
        format!("{:.2}%", r.p_event_queued * 100.0),
        format!("{:.2}%  ((n−1)d/T)", (n - 1.0) * d / window * 100.0),
    ]);
    t.row_owned(vec![
        "P(pulse code shifts, 24 MHz TDC)".into(),
        format!("{:.2}%", r.p_code_edge_24mhz * 100.0),
        "delay-weighted".into(),
    ]);
    t.row_owned(vec![
        "P(pulse code shifts, 12.8 MHz TDC)".into(),
        format!("{:.2}%", r.p_code_edge_12p8mhz * 100.0),
        "5 ns/78.1 ns = 6.4% per delayed event".into(),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nPaper claim: 6.25%. The pairwise-overlap reading measures {:.0}%\n\
         (any overlap) / {:.1}% (per event) — neither is 6.25%. The closest\n\
         quantity is the chance that a *serialization delay crosses one TDC\n\
         clock period*: 5 ns events against an 80 ns-class clock give\n\
         5/80 = 6.25% exactly; our measured edge-crossing ratio at 12.8 MHz\n\
         is {:.1}% of delayed pulses. EXPERIMENTS.md discusses.\n",
        r.p_any_overlap * 100.0,
        r.p_event_queued * 100.0,
        if r.p_event_queued > 0.0 {
            r.p_code_edge_12p8mhz / r.p_event_queued * 100.0
        } else {
            0.0
        }
    ));

    out.push_str(&section("Sweep: selected pixels per column"));
    let mut t = Table::new(&["n", "P(any overlap)", "E[delayed]", "P(event delayed)"]);
    for n in [8usize, 16, 32, 64] {
        let r = monte_carlo(n, 5e-9, window, trials / 2, 0xCA12 + n as u64);
        t.row_owned(vec![
            n.to_string(),
            format!("{:.2}%", r.p_any_overlap * 100.0),
            format!("{:.3}", r.mean_queued),
            format!("{:.3}%", r.p_event_queued * 100.0),
        ]);
    }
    out.push_str(&t.render());

    out.push_str(&section("Sweep: event duration (n = 64)"));
    let mut t = Table::new(&[
        "duration",
        "P(any overlap)",
        "E[delayed]",
        "P(code shift @24MHz)",
    ]);
    for d in [1e-9, 5e-9, 20e-9, 80e-9] {
        let r = monte_carlo(64, d, window, trials / 2, 0xCA20);
        t.row_owned(vec![
            format!("{:.0} ns", d * 1e9),
            format!("{:.1}%", r.p_any_overlap * 100.0),
            format!("{:.2}", r.mean_queued),
            format!("{:.2}%", r.p_code_edge_24mhz * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nShape check: overlap statistics grow ~linearly in n² and d, as the\n\
         birthday-style analysis predicts; serialization never drops a pulse\n\
         (arbiter invariant, property-tested).\n",
    );
    out
}
