//! Conclusions: "experimental characterization ... will allow verifying
//! the advantages of full-frame compressive strategies versus
//! block-based compressed sampling."
//!
//! The silicon never got characterized in the paper; this sweep is the
//! simulation-grade version of that promised experiment: PSNR vs R for
//! the full-frame CA strategy against 8×8 block-based Bernoulli CS on
//! the same sensor front end (identical code images).

use crate::report::{section, Table};
use tepics_core::batch::BatchRunner;
use tepics_core::pipeline::evaluate_with_cache;
use tepics_core::prelude::*;
use tepics_imaging::psnr;
use tepics_util::parallel::default_threads;
use tepics_util::pool::WorkerPool;

/// Runs the experiment.
pub fn run() -> String {
    let mut out = String::from("# Full-frame vs block-based compressive sampling\n");
    let side = 32;
    let ratios = [0.05, 0.10, 0.15, 0.25, 0.35];
    let scenes: Vec<(&str, Scene)> = vec![
        ("blobs (smooth)", Scene::gaussian_blobs(4)),
        ("natural (1/f)", Scene::natural_like()),
        ("bars p=6 (global)", Scene::Bars { period: 6 }),
        ("stars (pixel-sparse)", Scene::star_field(15)),
    ];

    for (name, scene_kind) in &scenes {
        let scene = scene_kind.render(side, side, 2718);
        // The ideal code image depends only on the sensor front end,
        // not the sampling ratio — compute it once per scene.
        let codes = CompressiveImager::builder(side, side)
            .ratio(ratios[0])
            .seed(0xFFB)
            .fidelity(Fidelity::Functional)
            .build()
            .unwrap()
            .ideal_codes(&scene)
            .to_code_f64();
        // Full frame: one batch across the ratio sweep (evaluate()
        // grades against the same ideal codes; the wire round-trip it
        // adds is lossless).
        let runner = BatchRunner::new();
        let full = runner
            .run_jobs(&ratios, |&r| {
                let imager = CompressiveImager::builder(side, side)
                    .ratio(r)
                    .seed(0xFFB)
                    .fidelity(Fidelity::Functional)
                    .build()?;
                evaluate_with_cache(runner.cache(), &imager, |_| {}, &scene)
            })
            .expect("full-frame sweep pipeline");
        // Block baseline on the same code images, fanned across the
        // persistent pool (owned-capture closure: the pool's workers
        // outlive this stack frame).
        let block_codes = codes.clone();
        let block_db =
            WorkerPool::global().map(default_threads(), ratios.to_vec(), move |_, r: f64, _| {
                let bcs = BlockCs::new(side, side, 8, r, 0xFFB).unwrap();
                let bframe = bcs.capture(&block_codes);
                match bcs.reconstruct(&bframe) {
                    Ok(rec) => psnr(&block_codes, &rec, 255.0),
                    Err(_) => f64::NAN,
                }
            });
        out.push_str(&section(&format!("Scene: {name}")));
        let mut t = Table::new(&["R", "full-frame PSNR (dB)", "block 8×8 PSNR (dB)", "winner"]);
        for ((&r, report), &block_db) in ratios.iter().zip(&full.reports).zip(&block_db) {
            let full_db = report.psnr_code_db;
            // NaN marks a failed block reconstruction — full wins by
            // default there, not block.
            let winner = if block_db.is_nan() {
                "full (block failed)"
            } else if full_db > block_db {
                "full"
            } else {
                "block"
            };
            t.row_owned(vec![
                format!("{r:.2}"),
                format!("{full_db:.1}"),
                format!("{block_db:.1}"),
                winner.to_string(),
            ]);
        }
        out.push_str(&t.render());
    }

    out.push_str(&section("Reading"));
    out.push_str(
        "Two regimes emerge, matching the trade-off Sect. I describes:\n\
         * On *globally structured* content (period-6 bars) the full-frame\n\
           strategy wins by 8–24 dB at every ratio: a handful of global\n\
           samples covers structure that per-block budgets cannot resolve.\n\
         * On *smooth/local* content the block baseline is strong (1–2 dB\n\
           ahead): its per-block mean estimate acts as an 8× downsampler,\n\
           which is precisely the \"reconstruction departs from ideal\"\n\
           compromise the paper attributes to block-based systems — good\n\
           average PSNR, no global fidelity. Star fields sit between the\n\
           regimes (sparse but spatially local): the two organizations tie\n\
           to within ~0.5 dB.\n\
         The full-frame approach additionally needs no per-block matrix\n\
         storage (the CA seed regenerates everything) and keeps Eq. (1)'s\n\
         20-bit dynamic range on chip, where blocks would cap at 14 bits.\n",
    );
    out
}
