//! Table II: the chip feature summary, paper vs accounting model.

use crate::report::{section, Table};
use tepics_sensor::ChipModel;

/// Runs the experiment.
pub fn run() -> String {
    let mut out = String::from("# Table II — summary of chip features\n");
    let chip = ChipModel::paper_prototype();

    out.push_str(&section("Feature summary (paper vs model)"));
    let mut t = Table::new(&["feature", "paper", "model"]);
    for row in chip.table_ii() {
        t.row(&[&row.name, &row.paper, &row.model]);
    }
    out.push_str(&t.render());

    out.push_str(&section("First-order power budget"));
    let mut t = Table::new(&["block", "mW"]);
    for (name, mw) in chip.power_budget_mw() {
        t.row_owned(vec![name, format!("{mw:.2}")]);
    }
    t.row_owned(vec![
        "TOTAL".into(),
        format!("{:.1}", chip.total_power_mw()),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nTable II bound: predicted <100 mW; model total {:.1} mW -> {}\n",
        chip.total_power_mw(),
        if chip.total_power_mw() < 100.0 {
            "CONSISTENT"
        } else {
            "INCONSISTENT"
        }
    ));
    out
}
