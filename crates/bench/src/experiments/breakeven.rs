//! Sect. III.B: compression pays only below `R = N_b / N_B = 0.4`.

use crate::report::{section, Table};
use tepics_core::params::{breakeven_ratio, compressed_bits, raw_bits};
use tepics_core::{CompressedFrame, FrameHeader, StrategyKind};

/// Runs the experiment.
pub fn run() -> String {
    let mut out = String::from("# Break-even — bits on the wire vs compression ratio\n");

    out.push_str(&section(
        "Payload accounting (64×64, 8b pixels, 20b samples)",
    ));
    let raw = raw_bits(64, 64, 8);
    let mut t = Table::new(&["R", "K", "compressed bits", "raw bits", "verdict"]);
    for r in [0.05f64, 0.1, 0.2, 0.3, 0.39, 0.40, 0.41, 0.5] {
        let k = (r * 4096.0).round() as u32;
        let c = compressed_bits(k, 20);
        t.row_owned(vec![
            format!("{r:.2}"),
            k.to_string(),
            c.to_string(),
            raw.to_string(),
            if c < raw {
                "compressed wins".into()
            } else if c == raw {
                "tie".to_string()
            } else {
                "raw wins".into()
            },
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nClosed form: R* = N_b/N_B = {:.2} — matching the paper's \"needs to\n\
         be below 0.4\". The crossover lands exactly between R = 0.39 and\n\
         R = 0.41 above.\n",
        breakeven_ratio(8, 20)
    ));

    out.push_str(&section("Including real header overhead (wire codec)"));
    let mut t = Table::new(&["R", "wire bits (header+payload)", "raw bits", "saving"]);
    for r in [0.1f64, 0.2, 0.3, 0.39] {
        let k = (r * 4096.0).round() as usize;
        let frame = CompressedFrame {
            header: FrameHeader {
                rows: 64,
                cols: 64,
                code_bits: 8,
                sample_bits: 20,
                strategy: StrategyKind::rule30(256),
                seed: 0,
            },
            samples: vec![0; k],
        };
        let wire = frame.wire_bits() as u64;
        t.row_owned(vec![
            format!("{r:.2}"),
            wire.to_string(),
            raw.to_string(),
            format!("{:.1}%", (1.0 - wire as f64 / raw as f64) * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nThe 27-byte header (which carries the 64-bit CA seed — the entire\n\
         'measurement matrix' on the wire) shifts the crossover by less\n\
         than 0.6% of R.\n",
    );
    out
}
