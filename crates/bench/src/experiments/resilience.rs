//! (infrastructure) Resilient wire v3 — corruption rate vs recovered
//! quality.
//!
//! The version-3 container pays a per-record overhead (sequence number,
//! two CRC-8s, periodic sync words) to survive a lossy link: the parser
//! resynchronizes after corrupt records instead of dying, and the
//! session stitches tile groups around erased tiles instead of dropping
//! whole frames. This experiment buys the overhead and measures what it
//! purchases: a seeded [`FaultInjector`] flips bits in the record
//! stretch of a v3 tiled stream at increasing rates (the header is left
//! intact, modelling a handshake-protected session setup), and each
//! dirty stream is decoded to completion under
//! [`ErasurePolicy::NeighborBlend`].
//!
//! Written to `BENCH_resilience.json` per corruption rate:
//!
//! * the fraction of frames recovered (emitted at all, degraded or not);
//! * mean PSNR of the recovered frames against the clean-decode truth;
//! * corrupt events, bytes resynchronized past, and tiles erased.
//!
//! The acceptance line is the 0.1% row: a v3 tiled stream at 0.1% byte
//! corruption must decode to completion with ≥90% of frames recovered
//! and no panics.

use std::collections::HashMap;

use crate::report::{section, Table};
use tepics_core::prelude::*;

/// Where the machine-readable numbers land (workspace root).
const JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_resilience.json");

/// Corruption rates swept (probability that any given *bit* in the
/// record stretch flips; 0.001 ≈ the 0.1%-of-bytes acceptance point at
/// the byte level is `1 - (1-p)^8`, so bit rates here are chosen to
/// bracket it).
const BIT_RATES: [f64; 5] = [0.0, 0.000_25, 0.000_5, 0.001, 0.002];

/// The fixed fault seed: every run of this experiment applies the
/// byte-identical fault pattern.
const FAULT_SEED: u64 = 0x00DD_5EED;

fn tiled_resilient_imager(side: usize) -> CompressiveImager {
    CompressiveImager::builder_for(FrameGeometry::new(side, side))
        .tiling(TileConfig::new(16).overlap(4))
        .ratio(0.35)
        .seed(0xE1A5)
        .fidelity(Fidelity::Functional)
        .build()
        .expect("resilience imager config")
}

/// One corruption-rate measurement.
struct RatePoint {
    bit_rate: f64,
    bits_flipped: usize,
    recovered_fraction: f64,
    frames_degraded: usize,
    tiles_erased: usize,
    corrupt_events: usize,
    bytes_skipped: usize,
    mean_psnr_db: f64,
}

/// Decodes `bytes` under `policy` and returns `(frames, report)`,
/// tolerating a poisoned tail (everything decoded before the error is
/// kept — that is the graceful-degradation contract under test).
fn decode_all(bytes: &[u8], policy: ErasurePolicy) -> (Vec<DecodedFrame>, DecodeReport) {
    let mut dec = DecodeSession::new();
    dec.erasure_policy(policy);
    let mut frames = dec.push_bytes(bytes).unwrap_or_default();
    frames.extend(dec.finish().unwrap_or_default());
    let report = dec.report();
    (frames, report)
}

/// Sweeps the corruption rates over one v3 tiled stream.
fn measure(side: usize, n_frames: usize) -> (Vec<RatePoint>, usize, usize) {
    let imager = tiled_resilient_imager(side);
    let header_len = {
        // The v3 tiled header: protected by the model (handshake), so
        // the injector skips it.
        use tepics_core::stream::RESILIENT_TILED_HEADER_BYTES;
        RESILIENT_TILED_HEADER_BYTES
    };
    let mut enc = EncodeSession::with_profile(imager, WireProfile::Resilient)
        .expect("resilient encode session");
    for i in 0..n_frames {
        enc.capture(&Scene::natural_like().render(side, side, 100 + i as u64))
            .expect("resilience capture");
    }
    let clean = enc.into_bytes();

    // Clean-decode truth, keyed by stream index (corrupted decodes may
    // lose frames; the survivors are scored against their own truth).
    let (truth_frames, _) = decode_all(&clean, ErasurePolicy::NeighborBlend);
    assert_eq!(
        truth_frames.len(),
        n_frames,
        "clean v3 stream must decode fully"
    );
    let truth: HashMap<usize, &DecodedFrame> = truth_frames.iter().map(|f| (f.index, f)).collect();

    let mut points = Vec::new();
    for &rate in &BIT_RATES {
        let mut dirty = clean.clone();
        let bits_flipped =
            FaultInjector::new(FAULT_SEED).flip_bits_after(&mut dirty, header_len, rate);
        let (frames, report) = decode_all(&dirty, ErasurePolicy::NeighborBlend);

        let mut psnr_sum = 0.0;
        let mut scored = 0usize;
        for f in &frames {
            if let Some(t) = truth.get(&f.index) {
                psnr_sum += psnr(
                    t.reconstruction.code_image(),
                    f.reconstruction.code_image(),
                    255.0,
                );
                scored += 1;
            }
        }
        points.push(RatePoint {
            bit_rate: rate,
            bits_flipped,
            recovered_fraction: frames.len() as f64 / n_frames as f64,
            frames_degraded: report.frames_degraded,
            tiles_erased: report.tiles_erased,
            corrupt_events: report.corrupt_events,
            bytes_skipped: report.bytes_skipped,
            mean_psnr_db: if scored == 0 {
                0.0
            } else {
                psnr_sum / scored as f64
            },
        });
    }
    (points, clean.len(), header_len)
}

/// Runs the sweep and updates `BENCH_resilience.json`.
pub fn run() -> String {
    let side = 48;
    let n_frames = 12;
    let (points, stream_bytes, header_len) = measure(side, n_frames);

    // Machine-readable trail.
    let mut json = String::from("{\n  \"schema\": 1,\n");
    json.push_str(&format!(
        "  \"setup\": {{\"side\": {side}, \"tile\": 16, \"overlap\": 4, \"frames\": {n_frames}, \
         \"stream_bytes\": {stream_bytes}, \"protected_header_bytes\": {header_len}, \
         \"policy\": \"NeighborBlend\", \"fault_seed\": {FAULT_SEED}}},\n  \"points\": [\n"
    ));
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"bit_rate\": {}, \"bits_flipped\": {}, \"recovered_fraction\": {:.4}, \
             \"mean_psnr_db\": {:.3}, \"frames_degraded\": {}, \"tiles_erased\": {}, \
             \"corrupt_events\": {}, \"bytes_skipped\": {}}}{}\n",
            p.bit_rate,
            p.bits_flipped,
            p.recovered_fraction,
            p.mean_psnr_db,
            p.frames_degraded,
            p.tiles_erased,
            p.corrupt_events,
            p.bytes_skipped,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let json_written = std::fs::write(JSON_PATH, &json).is_ok();

    let mut out = String::from("# Resilient wire v3 — corruption rate vs recovered quality\n");
    out.push_str(&section(&format!(
        "{side}×{side} in 16-px tiles (overlap 4), {n_frames} frames, {stream_bytes}-byte v3 \
         stream, NeighborBlend"
    )));
    let mut t = Table::new(&[
        "bit flip rate",
        "bits flipped",
        "frames recovered",
        "mean PSNR vs clean (dB)",
        "degraded",
        "tiles erased",
        "corrupt events",
        "bytes resynced",
    ]);
    for p in &points {
        t.row_owned(vec![
            format!("{:.4}%", p.bit_rate * 100.0),
            p.bits_flipped.to_string(),
            format!("{:.0}%", p.recovered_fraction * 100.0),
            if p.bit_rate == 0.0 {
                "∞ (bit-identical)".into()
            } else {
                format!("{:.1}", p.mean_psnr_db)
            },
            p.frames_degraded.to_string(),
            p.tiles_erased.to_string(),
            p.corrupt_events.to_string(),
            p.bytes_skipped.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nacceptance: the 0.1%-class row must recover ≥90% of frames with no\n\
         panics; the 0% row must be a bit-identical decode (the v3 overhead\n\
         never costs quality on a clean link)\n",
    );
    out.push_str(&format!(
        "\n{} {JSON_PATH}\n",
        if json_written {
            "machine-readable numbers written to"
        } else {
            "WARNING: could not write"
        },
    ));
    out
}

/// Smoke-mode resilience check for CI: clean v3 ≡ compact decode, and a
/// corrupted v3 stream still recovers ≥90% of its frames.
///
/// A 32×32 tiled stream is captured once; the same records go out both
/// as a compact (v2) and a resilient (v3) container, so the two decodes
/// must be bit-identical. The v3 copy is then bit-flipped at the 0.1%
/// byte class (header protected) and must decode to completion — no
/// panics, no poisoned session — with ≥90% of frames recovered.
pub fn smoke() -> Result<String, Vec<String>> {
    let mut failures = Vec::new();
    let side = 32;
    let n_frames = 10;
    let imager = tiled_resilient_imager(side);

    let mut enc_v3 = EncodeSession::with_profile(imager.clone(), WireProfile::Resilient)
        .expect("smoke v3 encode");
    let mut enc_v2 =
        EncodeSession::with_profile(imager, WireProfile::Compact).expect("smoke v2 encode");
    for i in 0..n_frames {
        let records = enc_v3
            .capture(&Scene::gaussian_blobs(3).render(side, side, 40 + i as u64))
            .expect("smoke capture");
        for r in &records {
            enc_v2.push_frame(r).expect("smoke v2 push");
        }
    }
    if enc_v3.wire_version() != 3 || enc_v2.wire_version() != 2 {
        failures.push(format!(
            "resilience smoke: wire versions {} / {}, expected 3 / 2",
            enc_v3.wire_version(),
            enc_v2.wire_version()
        ));
    }
    let v3_bytes = enc_v3.into_bytes();
    let v2_bytes = enc_v2.into_bytes();

    let (v3_frames, v3_report) = decode_all(&v3_bytes, ErasurePolicy::NeighborBlend);
    let (v2_frames, _) = decode_all(&v2_bytes, ErasurePolicy::NeighborBlend);
    if v3_frames.len() != n_frames || v2_frames.len() != n_frames {
        failures.push(format!(
            "resilience smoke: clean decodes yielded {} (v3) / {} (v2) of {n_frames} frames",
            v3_frames.len(),
            v2_frames.len()
        ));
    }
    if v3_report.corrupt_events != 0 || v3_report.frames_degraded != 0 {
        failures.push(format!(
            "resilience smoke: clean v3 stream reported {} corrupt events, {} degraded",
            v3_report.corrupt_events, v3_report.frames_degraded
        ));
    }
    for (a, b) in v3_frames.iter().zip(&v2_frames) {
        if a.reconstruction != b.reconstruction {
            failures.push(format!(
                "resilience smoke: v3 frame {} diverged from its v2 decode",
                a.index
            ));
            break;
        }
    }

    // The acceptance corruption class: 0.1% of bytes ⇒ each bit flips
    // with p = 0.001/8.
    let mut dirty = v3_bytes;
    let flipped = FaultInjector::new(FAULT_SEED).flip_bits_after(
        &mut dirty,
        tepics_core::stream::RESILIENT_TILED_HEADER_BYTES,
        0.001 / 8.0,
    );
    let (frames, report) = decode_all(&dirty, ErasurePolicy::NeighborBlend);
    let recovered = frames.len() as f64 / n_frames as f64;
    if recovered < 0.9 {
        failures.push(format!(
            "resilience smoke: {flipped} bit flips recovered only {:.0}% of frames \
             ({} corrupt events, {} bytes resynced)",
            recovered * 100.0,
            report.corrupt_events,
            report.bytes_skipped
        ));
    }

    if failures.is_empty() {
        Ok(format!(
            "resilience smoke: clean v3 ≡ v2 over {n_frames} frames; {flipped} bit flips \
             ⇒ {:.0}% recovered ({} degraded, {} tiles erased, {} corrupt events)",
            recovered * 100.0,
            report.frames_degraded,
            report.tiles_erased,
            report.corrupt_events
        ))
    } else {
        Err(failures)
    }
}
