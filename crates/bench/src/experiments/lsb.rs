//! Sect. III.B: "some pulses are detected in the following clock period,
//! what will introduce a 1 LSB error ... Verification on the negligible
//! influence of this error has been performed at system level."
//!
//! Reproduced in both halves: (a) the code-error distribution of the
//! event-accurate readout at the paper's scale, and (b) the system-level
//! reconstruction comparison (functional vs event-accurate capture of
//! the same scenes).

use crate::report::{section, Table};
use tepics_core::prelude::*;
use tepics_imaging::psnr;

/// Runs the experiment.
pub fn run() -> String {
    let mut out = String::from("# 1 LSB serialization error — system-level verification\n");

    out.push_str(&section(
        "Code-error distribution at the paper's scale (64×64, R=0.38)",
    ));
    let scene = Scene::gaussian_blobs(4).render(64, 64, 7);
    let imager = CompressiveImager::builder(64, 64)
        .ratio(0.38)
        .seed(0x15B)
        .build()
        .unwrap();
    let (_, stats) = imager.capture_with_stats(&scene);
    let mut t = Table::new(&["|Δcode| (LSB)", "pulses", "fraction"]);
    for (e, &c) in stats.code_error_lsb.iter().enumerate() {
        let label = if e == stats.code_error_lsb.len() - 1 {
            format!("≥{e}")
        } else {
            e.to_string()
        };
        t.row_owned(vec![
            label,
            c.to_string(),
            format!("{:.4}%", c as f64 / stats.total_pulses as f64 * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\n{} pulses total; {} delayed by arbitration; error fraction\n\
         {:.3}% of pulses, mean error {:.4} LSB, worst delay {:.1} ns.\n\
         The dominant error is exactly ±1 LSB, as the paper states.\n",
        stats.total_pulses,
        stats.queued_pulses,
        stats.error_fraction() * 100.0,
        stats.mean_error_lsb(),
        stats.max_delay * 1e9,
    ));

    out.push_str(&section(
        "System level: reconstruction with vs without the error",
    ));
    let mut t = Table::new(&[
        "scene",
        "PSNR functional (dB)",
        "PSNR event-accurate (dB)",
        "loss (dB)",
    ]);
    for (name, scene_kind) in Scene::evaluation_suite().into_iter().take(4) {
        let scene = scene_kind.render(32, 32, 99);
        let build = |fidelity| {
            CompressiveImager::builder(32, 32)
                .ratio(0.38)
                .seed(11)
                .fidelity(fidelity)
                .build()
                .unwrap()
        };
        let reference = build(Fidelity::Functional);
        let truth = reference.ideal_codes(&scene).to_code_f64();
        let db_of = |im: &CompressiveImager| {
            let frame = im.capture(&scene);
            let recon = Decoder::for_frame(&frame)
                .unwrap()
                .reconstruct(&frame)
                .unwrap();
            psnr(&truth, recon.code_image(), 255.0)
        };
        let f = db_of(&reference);
        let e = db_of(&build(Fidelity::EventAccurate));
        t.row_owned(vec![
            name.into(),
            format!("{f:.2}"),
            format!("{e:.2}"),
            format!("{:+.2}", f - e),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nLosses stay well under 1 dB across content types — the\n\
         reproduction of the paper's \"negligible influence\" verdict.\n",
    );
    out
}
