//! Eq. (2): `f_cs = R·M·N·f_s` and the ≈50 kHz / 20 µs operating point.

use crate::report::{section, Table};
use tepics_core::params::{eq2_cs_rate, sample_slot_seconds};

/// Runs the experiment.
pub fn run() -> String {
    let mut out = String::from("# Eq. (2) — compressed-sample rate\n");

    out.push_str(&section("f_cs sweep (64×64, f_s = 30 fps)"));
    let mut t = Table::new(&["R", "f_cs (kHz)", "slot per sample (µs)"]);
    for r in [0.1, 0.2, 0.3, 0.4] {
        t.row_owned(vec![
            format!("{r:.1}"),
            format!("{:.2}", eq2_cs_rate(r, 64, 64, 30.0) / 1e3),
            format!("{:.2}", sample_slot_seconds(r, 64, 64, 30.0) * 1e6),
        ]);
    }
    out.push_str(&t.render());

    out.push_str(&section("The paper's operating point"));
    let rate = eq2_cs_rate(0.4, 64, 64, 30.0);
    let mut t = Table::new(&["quantity", "paper", "computed"]);
    t.row_owned(vec![
        "max f_cs at R=0.4, 30 fps".into(),
        "≈50 kHz".into(),
        format!("{:.3} kHz", rate / 1e3),
    ]);
    t.row_owned(vec![
        "time per compressed sample".into(),
        "20 µs".into(),
        format!("{:.2} µs", 1e6 / rate),
    ]);
    t.row_owned(vec![
        "TDC ticks in the slot at 24 MHz".into(),
        "256 ticks needed".into(),
        format!("{:.0} ticks available", 24e6 / rate),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nExact value: 0.4 · 4096 · 30 = {rate:.0} Hz — the paper rounds to\n\
         50 kHz / 20 µs. At the paper's 24 MHz clock the 256-tick conversion\n\
         window occupies {:.2} µs of the {:.2} µs slot, leaving margin for the\n\
         initial propagation delay (Sect. III.B) — the configuration the\n\
         simulator uses by default.\n",
        256.0 / 24e6 * 1e6,
        1e6 / rate
    ));

    out.push_str(&section(
        "Scaling: f_s needed to keep 30 fps-equivalent at other sizes",
    ));
    let mut t = Table::new(&["array", "f_cs at R=0.4 (kHz)"]);
    for side in [16u32, 32, 64, 128] {
        t.row_owned(vec![
            format!("{side}×{side}"),
            format!("{:.1}", eq2_cs_rate(0.4, side, side, 30.0) / 1e3),
        ]);
    }
    out.push_str(&t.render());
    out
}
