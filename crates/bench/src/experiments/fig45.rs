//! Figs. 4 and 5: die-level and pixel-level area budgets.

use crate::report::{section, Table};
use tepics_sensor::ChipModel;

/// Runs the experiment.
pub fn run() -> String {
    let mut out = String::from("# Figs. 4/5 — die and pixel area budgets\n");
    let chip = ChipModel::paper_prototype();

    out.push_str(&section(
        "Fig. 4 — die (paper: 3174 µm × 2227 µm incl. pads)",
    ));
    let (aw, ah) = chip.array_extent_um();
    let mut t = Table::new(&["region", "value", "share of die"]);
    let die = chip.die_area_mm2();
    let rows: Vec<(String, f64)> = vec![
        ("pixel array".into(), chip.array_area_mm2()),
        (
            "core periphery (CA, S&A, counter, bias)".into(),
            chip.core_area_mm2() - chip.array_area_mm2(),
        ),
        ("pad ring".into(), die - chip.core_area_mm2()),
    ];
    for (name, mm2) in rows {
        t.row_owned(vec![
            name,
            format!("{mm2:.3} mm²"),
            format!("{:.1}%", mm2 / die * 100.0),
        ]);
    }
    t.row_owned(vec![
        "TOTAL die".into(),
        format!("{die:.3} mm²"),
        "100%".into(),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\narray extent {aw:.0} µm × {ah:.0} µm (64 × 22 µm pitch); {} pads,\n\
         {} of them supply/ground (Sect. IV: one third of 84).\n",
        84,
        chip.supply_pad_count()
    ));

    out.push_str(&section(
        "Fig. 5 — elementary pixel (paper: 22 µm × 22 µm, FF 9.2%)",
    ));
    let mut t = Table::new(&["block", "area (µm²)", "share of pixel"]);
    let pixel = chip.pixel_area_um2();
    let pd = chip.photodiode_area_um2();
    // Remaining area split across the Fig. 1 blocks; shares follow the
    // block transistor weights of the schematic (comparator + auto-zero
    // MiM dominates the active area).
    let blocks = [
        ("photodiode (from 9.2% fill factor)", pd),
        ("comparator + auto-zero", 0.40 * (pixel - pd)),
        ("selection XOR (6T) + latch", 0.15 * (pixel - pd)),
        ("event termination + token gates", 0.25 * (pixel - pd)),
        ("bus driver M2 + routing", 0.20 * (pixel - pd)),
    ];
    for (name, a) in blocks {
        t.row_owned(vec![
            name.into(),
            format!("{a:.1}"),
            format!("{:.1}%", a / pixel * 100.0),
        ]);
    }
    t.row_owned(vec![
        "TOTAL pixel".into(),
        format!("{pixel:.1}"),
        "100%".into(),
    ]);
    out.push_str(&t.render());
    out.push_str(
        "\nThe 9.2% fill factor is the price of the in-pixel event logic —\n\
         the paper's trade for generating compressed samples at the focal\n\
         plane instead of buffering a digitized frame.\n",
    );
    out
}
