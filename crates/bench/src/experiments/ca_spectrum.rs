//! Sect. III.A / ref. \[10\] (Jen 1990): Rule 30 "displays aperiodic
//! (class III) behavior" — the property that makes it a usable on-chip
//! randomness source where additive rules and bare LFSRs fail.

use crate::report::{section, Table};
use tepics_ca::analysis::{analyze_sequence, cell_time_series, find_cycle, render_space_time};
use tepics_ca::{Automaton1D, Boundary, ElementaryRule, Lfsr};

/// Runs the experiment.
pub fn run() -> String {
    let mut out = String::from("# Rule 30 aperiodicity — class III diagnostics\n");

    out.push_str(&section(
        "State-cycle length on small rings (centered-one seed)",
    ));
    let mut t = Table::new(&[
        "cells",
        "Rule 30",
        "Rule 45",
        "Rule 90",
        "Rule 110",
        "LFSR (2^w−1)",
    ]);
    for cells in [8usize, 12, 16, 20] {
        let mut row = vec![cells.to_string()];
        for rule in [30u8, 45, 90, 110] {
            let ca =
                Automaton1D::centered_one(cells, ElementaryRule::new(rule), Boundary::Periodic);
            let cycle = find_cycle(&ca, 3_000_000);
            row.push(match cycle {
                Some(info) => info.period.to_string(),
                None => ">3e6".into(),
            });
        }
        row.push(((1u64 << cells) - 1).to_string());
        t.row_owned(row);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nRule 30 cycles grow rapidly with ring size (class III); Rule 90\n\
         stays short (additive), Rule 110 intermediate. An LFSR of equal\n\
         state reaches 2^w − 1 by construction but is *linear* — see below.\n",
    );

    out.push_str(&section("Nilpotency of Rule 90 on power-of-two rings"));
    let mut ca = Automaton1D::from_seed(64, 0xBEEF, ElementaryRule::RULE_90, Boundary::Periodic);
    let mut died_at = None;
    for step in 0..=64 {
        if ca.state().count_ones() == 0 {
            died_at = Some(step);
            break;
        }
        ca.step();
    }
    out.push_str(&format!(
        "Rule 90 on a 64-cell ring from a random seed reaches the all-zero\n\
         state after {} steps (T^64 = 0 over GF(2)); Rule 30 from the same\n\
         seed is still alive after 10,000 steps: {}.\n",
        died_at.map_or("?".into(), |s: usize| s.to_string()),
        {
            let mut r30 =
                Automaton1D::from_seed(64, 0xBEEF, ElementaryRule::RULE_30, Boundary::Periodic);
            r30.step_n(10_000);
            if r30.state().count_ones() > 0 {
                "alive"
            } else {
                "dead"
            }
        }
    ));

    out.push_str(&section(
        "Sequence quality of the selection bit stream (1024 steps)",
    ));
    let mut t = Table::new(&[
        "generator",
        "balance",
        "entropy (8-bit blocks)",
        "max |autocorr| lag≤32",
        "linear complexity",
    ]);
    let sequences: Vec<(&str, Vec<bool>)> = vec![
        (
            "Rule 30 center cell (129 ring)",
            cell_time_series(
                Automaton1D::centered_one(129, ElementaryRule::RULE_30, Boundary::Periodic),
                64,
                1024,
            ),
        ),
        (
            "Rule 45 center cell",
            cell_time_series(
                Automaton1D::centered_one(129, ElementaryRule::RULE_45, Boundary::Periodic),
                64,
                1024,
            ),
        ),
        (
            "Rule 110 center cell",
            cell_time_series(
                Automaton1D::centered_one(129, ElementaryRule::RULE_110, Boundary::Periodic),
                64,
                1024,
            ),
        ),
        ("LFSR-16 output", {
            let mut l = Lfsr::maximal(16, 0xACE1);
            (0..1024).map(|_| l.next_bool()).collect()
        }),
        ("SplitMix64 reference", {
            let mut rng = tepics_util::SplitMix64::new(7);
            (0..1024).map(|_| rng.next_bool()).collect()
        }),
    ];
    for (name, seq) in sequences {
        let rep = analyze_sequence(&seq);
        t.row_owned(vec![
            name.to_string(),
            format!("{:.3}", rep.balance),
            format!("{:.2} / 8", rep.entropy8),
            format!("{:.3}", rep.max_autocorr),
            rep.linear_complexity.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nBerlekamp–Massey separates the generators sharply: the LFSR's\n\
         linear complexity equals its register width (16) — an adversary or\n\
         an unlucky image can align with its linear structure — while Rule\n\
         30's center column sits near the n/2 value of a truly random\n\
         sequence, matching ref. [10]'s aperiodicity result.\n",
    );

    out.push_str(&section("Space–time diagram (Rule 30, centered seed)"));
    let mut ca = Automaton1D::centered_one(65, ElementaryRule::RULE_30, Boundary::Fixed(false));
    out.push_str(&render_space_time(&ca.space_time(24)));
    out
}
