//! Ablation of TEPICS's two added knobs (documented in DESIGN.md §4):
//! the CA warm-up before the first pattern and the steps taken between
//! patterns. The paper starts sampling immediately and steps once per
//! sample; this experiment shows what those choices cost.

use crate::report::{section, Table};
use tepics_core::batch::BatchRunner;
use tepics_core::pipeline::evaluate_with_cache;
use tepics_core::prelude::*;

/// Runs the experiment.
pub fn run() -> String {
    let mut out = String::from("# Ablation — CA warm-up and steps-per-sample\n");
    let side = 32;
    let scene = Scene::gaussian_blobs(3).render(side, side, 5);

    out.push_str(&section(
        "Early-pattern balance (single-one seed, no warm-up pathology)",
    ));
    // With a *sparse* seed the early CA states are visibly structured —
    // show the selected-pixel fraction of the first patterns.
    let mut t = Table::new(&["pattern #", "warmup 0", "warmup 16", "warmup 128"]);
    let fraction_of = |warmup: u16, idx: usize| -> f64 {
        let strategy = StrategyKind::CellularAutomaton {
            rule: 30,
            warmup,
            steps_per_sample: 1,
        };
        // A single-one style sparse seed: low entropy start.
        let mut src = strategy.build_source(2 * side, 1).unwrap();
        let mut pattern = src.next_pattern();
        for _ in 0..idx {
            pattern = src.next_pattern();
        }
        pattern.balance()
    };
    for idx in [0usize, 1, 2, 4, 8] {
        t.row_owned(vec![
            idx.to_string(),
            format!("{:.2}", fraction_of(0, idx)),
            format!("{:.2}", fraction_of(16, idx)),
            format!("{:.2}", fraction_of(128, idx)),
        ]);
    }
    out.push_str(&t.render());

    out.push_str(&section("Reconstruction PSNR vs warm-up (R = 0.3)"));
    // Each (warmup, steps) point is an independent capture→recover
    // loop; fan them out as one batch and read the input-ordered
    // reports back.
    let grid: Vec<(u16, u8)> = [0u16, 8, 64, 256]
        .into_iter()
        .flat_map(|warmup| [1u8, 2].map(|steps| (warmup, steps)))
        .collect();
    let runner = BatchRunner::new();
    let outcome = runner
        .run_jobs(&grid, |&(warmup, steps)| {
            let strategy = StrategyKind::CellularAutomaton {
                rule: 30,
                warmup,
                steps_per_sample: steps,
            };
            let imager = CompressiveImager::builder(side, side)
                .ratio(0.3)
                .seed(1) // sparse-ish seed on purpose
                .strategy(strategy)
                .fidelity(Fidelity::Functional)
                .build()?;
            // Each grid point is its own cache key (the strategy is the
            // knob under test); the shared cache still dedups dictionaries.
            evaluate_with_cache(runner.cache(), &imager, |_| {}, &scene)
        })
        .expect("warmup sweep pipeline");
    let mut t = Table::new(&["warmup", "steps/sample", "PSNR (dB)", "SSIM"]);
    for ((warmup, steps), report) in grid.iter().zip(&outcome.reports) {
        t.row_owned(vec![
            warmup.to_string(),
            steps.to_string(),
            format!("{:.1}", report.psnr_code_db),
            format!("{:.3}", report.ssim_code),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nWith a dense random seed (the library default expands 64 seed bits\n\
         into all 128 cells) the warm-up matters little — Rule 30 mixes in a\n\
         few steps. It exists for the sparse-seed case and as a documented\n\
         deviation knob; steps-per-sample > 1 buys nothing measurable, so\n\
         the paper's one-step-per-sample choice stands.\n",
    );
    out
}
