//! Sect. III.B: "compressed samples are generated sequentially" — which
//! means a receiver can reconstruct at *any prefix* of the stream. This
//! experiment traces quality vs received samples, the property that
//! makes the architecture graceful on lossy/starved links (and the
//! reason the surveillance example can drop the stream mid-frame).

use crate::report::{section, Table};
use tepics_core::pipeline::progressive_psnr;
use tepics_core::prelude::*;

/// Runs the experiment.
pub fn run() -> String {
    let mut out = String::from("# Progressive reconstruction — quality vs received samples\n");
    let side = 32;
    let imager = CompressiveImager::builder(side, side)
        .ratio(0.4)
        .seed(0x960)
        .fidelity(Fidelity::Functional)
        .build()
        .unwrap();
    let total = imager.sample_count();
    let checkpoints: Vec<usize> = [0.125, 0.25, 0.5, 0.75, 1.0]
        .iter()
        .map(|f| ((f * total as f64) as usize).max(1))
        .collect();

    for (name, scene_kind) in Scene::evaluation_suite().into_iter().take(3) {
        let scene = scene_kind.render(side, side, 123);
        out.push_str(&section(&format!(
            "Scene: {name} (of {total} samples total)"
        )));
        let curve = progressive_psnr(&imager, &scene, &checkpoints).unwrap();
        let mut t = Table::new(&["received K", "effective R", "PSNR (dB)"]);
        for (k, db) in curve {
            t.row_owned(vec![
                k.to_string(),
                format!("{:.3}", k as f64 / (side * side) as f64),
                format!("{db:.1}"),
            ]);
        }
        out.push_str(&t.render());
    }

    out.push_str(&section("Reading"));
    out.push_str(
        "Each prefix of the sample stream is itself a valid compressed\n\
         frame (the CA replay simply stops earlier), so quality degrades\n\
         gracefully with truncation instead of failing — a raster readout\n\
         cut at 50% loses the bottom half of the image; this architecture\n\
         loses ~a few dB uniformly. The curve is the receiver-side twin of\n\
         Eq. (2): time, samples and quality are interchangeable.\n",
    );
    out
}
